//! §2.3's IBM Intelligent Miner Scoring path: a model trained elsewhere
//! arrives as a PMML document, is imported into the engine, and is
//! immediately optimizable — envelopes derive from the imported content.
//!
//! ```sh
//! cargo run --example pmml_import
//! ```

use mining_predicates::prelude::*;
use mpq_datagen::{generate_test, generate_train, table2};
use mpq_pmml::{export, import, PmmlModel};
use std::sync::Arc;

fn main() {
    let spec = table2().into_iter().find(|s| s.name == "Diabetes").expect("catalog has Diabetes");
    let train = generate_train(&spec, 7);
    let test = generate_test(&spec, 7, 0.02);

    // "Another system" trains the classifier...
    let tree = DecisionTree::train(&train, mpq_models::TreeParams::default()).expect("nonempty");
    let document = export(&PmmlModel::Tree(tree)).expect("trained tree exports");
    println!("exported PMML document ({} bytes):\n", document.len());
    for line in document.lines().take(18) {
        println!("  {line}");
    }
    println!("  ...\n");

    // ...and we import it, like IDMMX.DM_impClasFile() in §2.3.
    let PmmlModel::Tree(imported) = import(&document).expect("valid document") else {
        panic!("expected a tree model");
    };
    println!(
        "imported decision tree: {} leaves over {} attributes",
        imported.n_leaves(),
        Classifier::schema(&imported).len()
    );

    // Envelopes derive from the imported model's content.
    let schema = Classifier::schema(&imported).clone();
    let env = imported.envelope(ClassId(1), &DeriveOptions::default());
    println!(
        "\nenvelope of class '{}' from the imported model:\n  WHERE {}\n",
        Classifier::class_name(&imported, ClassId(1)),
        envelope_to_sql(&schema, &env)
    );

    // Register and query.
    let mut catalog = Catalog::new();
    catalog.add_table(Table::from_dataset("patients", &test)).expect("fresh");
    catalog.add_model("risk", Arc::new(imported), DeriveOptions::default()).expect("fresh");
    let engine = Engine::new(catalog);
    let envs: Vec<Expr> = engine.catalog().model(0).envelopes
        .iter()
        .map(|e| mpq_engine::envelope_to_expr(&schema, e).normalize(&schema))
        .collect();
    let opts = engine.options();
    tune_indexes(&mut engine.catalog_mut(), 0, &envs, 8, &opts);

    let out = engine.query("SELECT * FROM patients WHERE PREDICT(risk) = 'k1'").expect("valid");
    println!("query on the imported model:\n{}", out.plan);
    println!(
        "rows: {} | pages: {} | model invocations: {}",
        out.metrics.output_rows,
        out.metrics.total_pages(),
        out.metrics.model_invocations
    );
}
