//! Building one experiment setup: dataset → trained model → engine.

use mpq_core::{DeriveOptions, Envelope, EnvelopeProvider};
use mpq_datagen::{generate_test, generate_train, DatasetSpec};
use mpq_engine::{Catalog, Engine, Table};
use mpq_models::{
    DecisionTree, Gmm, GmmParams, KMeans, KMeansParams, NaiveBayes, TreeParams,
};
use mpq_types::{ClassId, Dataset, LabeledDataset};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scale factor for test-table sizes: `1.0` reproduces the paper's 1M+
/// rows; smaller values shrink proportionally while preserving every
/// selectivity (the tables are built by doubling either way).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Reads the scale from the first `--scale <f>` CLI argument or the
    /// `MPQ_SCALE` environment variable; defaults to `default`.
    pub fn from_args(default: f64) -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if let Some(i) = args.iter().position(|a| a == "--scale") {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                return Scale(v);
            }
        }
        if let Ok(v) = std::env::var("MPQ_SCALE") {
            if let Ok(v) = v.parse::<f64>() {
                return Scale(v);
            }
        }
        Scale(default)
    }
}

/// Which model family an experiment trains (the paper's three columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKindTag {
    /// Decision tree.
    Tree,
    /// Discrete naive Bayes.
    NaiveBayes,
    /// Clustering: k-prototypes (weighted Euclidean on ordered
    /// attributes, mismatch on categorical ones) with the paper's
    /// per-dataset cluster counts.
    Clustering,
}

/// A fully prepared experiment: engine with the test table registered,
/// the trained model, per-class envelopes and timings.
pub struct ExperimentSetup {
    /// Engine holding the test table (id 0) and model (id 0).
    pub engine: Engine,
    /// The trained model.
    pub model: Arc<dyn EnvelopeProvider + Send + Sync>,
    /// Number of prediction classes.
    pub n_classes: usize,
    /// Wall-clock training time.
    pub train_time: Duration,
    /// Wall-clock time to derive all per-class envelopes.
    pub derive_time: Duration,
    /// Test-table row count.
    pub test_rows: usize,
    /// Original class selectivities over the test table (fraction of
    /// rows the model predicts into each class).
    pub class_selectivity: Vec<f64>,
}

impl ExperimentSetup {
    /// The precomputed envelope of one class (cloned out of the
    /// catalog, whose read guard cannot outlive this call).
    pub fn envelope(&self, class: ClassId) -> Envelope {
        self.engine.catalog().model(0).envelopes[class.index()].clone()
    }
}

/// Trains the chosen model kind on a spec's training data.
pub fn train_model(
    spec: &DatasetSpec,
    kind: ModelKindTag,
    train: &LabeledDataset,
    seed: u64,
) -> Arc<dyn EnvelopeProvider + Send + Sync> {
    match kind {
        ModelKindTag::Tree => Arc::new(
            DecisionTree::train(train, TreeParams::default()).expect("nonempty training data"),
        ),
        ModelKindTag::NaiveBayes => {
            Arc::new(NaiveBayes::train(train).expect("nonempty training data"))
        }
        ModelKindTag::Clustering => {
            // Model-based (EM) clustering on all-ordered schemas — like
            // the paper's Analysis Server clusterer, EM recovers skewed
            // mixture components, giving the low-selectivity clusters
            // that make envelopes pay off. Mixed schemas fall back to
            // k-prototypes (mismatch distance on categorical dims),
            // whose SSE objective yields more balanced clusters.
            if spec.all_ordered() {
                Arc::new(
                    Gmm::train_encoded(
                        &train.data,
                        GmmParams { k: spec.n_clusters, seed, ..Default::default() },
                    )
                    .expect("nonempty training data"),
                )
            } else {
                Arc::new(
                    KMeans::train_encoded(
                        &train.data,
                        KMeansParams { k: spec.n_clusters, seed, ..Default::default() },
                    )
                    .expect("nonempty training data"),
                )
            }
        }
    }
}

/// Builds the full setup for one (dataset, model-kind) pair.
pub fn build_setup(
    spec: &DatasetSpec,
    kind: ModelKindTag,
    scale: Scale,
    seed: u64,
    derive_opts: &DeriveOptions,
) -> ExperimentSetup {
    let train = generate_train(spec, seed);
    let test: Dataset = generate_test(spec, seed, scale.0);

    let t0 = Instant::now();
    let model = train_model(spec, kind, &train, seed);
    let train_time = t0.elapsed();

    // Envelope precomputation happens at registration (§4.2); time it.
    let mut catalog = Catalog::new();
    catalog.add_table(Table::from_dataset(sanitize(spec.name), &test)).expect("fresh catalog");
    let t1 = Instant::now();
    catalog.add_model("model", model.clone(), *derive_opts).expect("fresh catalog");
    let derive_time = t1.elapsed();

    let n_classes = model.n_classes();
    let mut counts = vec![0u64; n_classes];
    for row in test.rows() {
        counts[model.predict(row).index()] += 1;
    }
    let test_rows = test.len();
    let class_selectivity =
        counts.iter().map(|&c| c as f64 / test_rows.max(1) as f64).collect();

    ExperimentSetup {
        engine: Engine::new(catalog),
        model,
        n_classes,
        train_time,
        derive_time,
        test_rows,
        class_selectivity,
    }
}

/// Table names must be bare identifiers in the SQL surface.
pub fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_datagen::table2;

    #[test]
    fn setup_builds_for_each_model_kind() {
        let spec = table2().into_iter().find(|s| s.name == "Balance-Scale").unwrap();
        for kind in [ModelKindTag::Tree, ModelKindTag::NaiveBayes, ModelKindTag::Clustering] {
            let setup = build_setup(&spec, kind, Scale(0.001), 7, &DeriveOptions::default());
            assert!(setup.n_classes >= 2, "{kind:?}");
            assert!(setup.test_rows >= 1000);
            let sum: f64 = setup.class_selectivity.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "selectivities sum to 1, got {sum}");
            assert_eq!(
                setup.engine.catalog().model(0).envelopes.len(),
                setup.n_classes
            );
        }
    }

    #[test]
    fn mixed_schema_clusters_with_k_prototypes() {
        let spec = table2().into_iter().find(|s| s.name == "Chess").unwrap();
        assert!(!spec.all_ordered());
        let train = generate_train(&spec, 7);
        let m = train_model(&spec, ModelKindTag::Clustering, &train, 7);
        assert_eq!(m.n_classes(), spec.n_clusters, "Table 2's cluster count is honored");
    }

    #[test]
    fn scale_parsing_prefers_env() {
        std::env::set_var("MPQ_SCALE", "0.25");
        assert_eq!(Scale::from_args(1.0), Scale(0.25));
        std::env::remove_var("MPQ_SCALE");
        assert_eq!(Scale::from_args(0.5), Scale(0.5));
    }

    #[test]
    fn sanitize_makes_identifiers() {
        assert_eq!(sanitize("Kdd-cup-99"), "Kdd_cup_99");
        assert_eq!(sanitize("Parity5+5"), "Parity5_5");
    }
}
