//! Raw (pre-encoding) attribute values.

/// A raw attribute value as it appears at the edges of the system: data
/// loading, SQL text, PMML documents.
///
/// Inside the system every value is a `u16` member index; `Value` exists so
/// that schemas can encode/decode and so that generated SQL can refer to
/// the original representation (`age <= 63` rather than `age IN bin#2`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A categorical member, by name.
    Str(String),
    /// A numeric value (continuous attributes before discretization).
    Num(f64),
}

impl Value {
    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Num(_) => None,
        }
    }

    /// Returns the numeric payload, if this is a [`Value::Num`].
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Str(_) => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Num(x as f64)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Num(x) => write!(f, "{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variant() {
        assert_eq!(Value::from("low").as_str(), Some("low"));
        assert_eq!(Value::from("low").as_num(), None);
        assert_eq!(Value::from(3.5).as_num(), Some(3.5));
        assert_eq!(Value::from(3.5).as_str(), None);
        assert_eq!(Value::from(7i64).as_num(), Some(7.0));
    }

    #[test]
    fn display_quotes_strings_and_escapes() {
        assert_eq!(Value::from("lo'w").to_string(), "'lo''w'");
        assert_eq!(Value::from(2.5).to_string(), "2.5");
    }
}
