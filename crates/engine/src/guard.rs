//! Cooperative query-execution guards.
//!
//! A [`QueryGuard`] bounds how much work a single query may perform:
//! wall-clock time, rows examined, pages read, and black-box model
//! invocations. The executor checks the guard cooperatively at row and
//! page granularity; a breach aborts the query with
//! [`crate::EngineError::BudgetExceeded`] — the engine never returns a
//! silently truncated row set.
//!
//! The guard exists because envelope-based plans can mis-estimate badly
//! when an envelope is loose (or degraded to `TRUE`): the optimizer may
//! pick an index union that touches far more pages than estimated. A
//! guard converts "runaway query" into a typed, retryable error.

use std::time::{Duration, Instant};

use crate::error::{EngineError, GuardResource};
use crate::exec::ExecMetrics;

/// Resource budgets for one query execution. `None` means unlimited.
///
/// ```
/// use mpq_engine::QueryGuard;
/// use std::time::Duration;
///
/// let guard = QueryGuard::default()
///     .with_deadline(Duration::from_millis(50))
///     .with_max_rows_examined(10_000)
///     .with_max_pages(1_000)
///     .with_max_model_invocations(10_000);
/// assert_eq!(guard.max_pages, Some(1_000));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryGuard {
    /// Wall-clock budget for the whole execution.
    pub deadline: Option<Duration>,
    /// Maximum rows fetched and tested against the residual predicate.
    pub max_rows_examined: Option<u64>,
    /// Maximum heap + index pages read.
    pub max_pages: Option<u64>,
    /// Maximum black-box model applications.
    pub max_model_invocations: Option<u64>,
}

impl QueryGuard {
    /// A guard with every budget unlimited (same as `Default`).
    pub fn unlimited() -> QueryGuard {
        QueryGuard::default()
    }

    /// Sets the wall-clock budget.
    pub fn with_deadline(mut self, deadline: Duration) -> QueryGuard {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the examined-rows budget.
    pub fn with_max_rows_examined(mut self, rows: u64) -> QueryGuard {
        self.max_rows_examined = Some(rows);
        self
    }

    /// Sets the pages-read budget (heap + index).
    pub fn with_max_pages(mut self, pages: u64) -> QueryGuard {
        self.max_pages = Some(pages);
        self
    }

    /// Sets the model-invocation budget.
    pub fn with_max_model_invocations(mut self, n: u64) -> QueryGuard {
        self.max_model_invocations = Some(n);
        self
    }

    /// True when no budget is configured at all.
    pub fn is_unlimited(&self) -> bool {
        *self == QueryGuard::default()
    }

    /// Returns a copy with the budget for `resource` replaced by
    /// `limit` (`None` = unlimited; wall-clock limits are in
    /// milliseconds). This is how `SET GUARD <resource> <n>` updates
    /// one budget of a session's guard without disturbing the rest.
    pub fn with_limit(
        mut self,
        resource: crate::error::GuardResource,
        limit: Option<u64>,
    ) -> QueryGuard {
        use crate::error::GuardResource;
        match resource {
            GuardResource::WallClock => self.deadline = limit.map(Duration::from_millis),
            GuardResource::RowsExamined => self.max_rows_examined = limit,
            GuardResource::PagesRead => self.max_pages = limit,
            GuardResource::ModelInvocations => self.max_model_invocations = limit,
        }
        self
    }
}

/// How much budget was left when a query finished; recorded in
/// [`ExecMetrics::guard`]. `None` means the corresponding budget was
/// unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardHeadroom {
    /// Rows-examined budget remaining.
    pub rows_remaining: Option<u64>,
    /// Pages budget remaining.
    pub pages_remaining: Option<u64>,
    /// Model-invocation budget remaining.
    pub model_invocations_remaining: Option<u64>,
    /// Wall-clock budget remaining, in milliseconds.
    pub time_remaining_ms: Option<u64>,
}

/// Time source for deadline checks: the wall clock anchored at guard
/// creation, or (in tests) a virtual nanosecond counter advanced
/// explicitly — so deadline tests are deterministic under arbitrary CI
/// load instead of sleeping real time.
#[derive(Debug, Clone)]
enum Clock {
    /// Wall clock anchored at guard creation.
    Real(Instant),
    /// Virtual elapsed nanoseconds, advanced explicitly by tests.
    #[cfg(test)]
    Virtual(std::sync::Arc<std::sync::atomic::AtomicU64>),
}

impl Clock {
    fn elapsed(&self) -> Duration {
        match self {
            Clock::Real(t0) => t0.elapsed(),
            #[cfg(test)]
            Clock::Virtual(ns) => {
                Duration::from_nanos(ns.load(std::sync::atomic::Ordering::Relaxed))
            }
        }
    }
}

/// Live guard state for one execution: the configured budgets plus the
/// clock for deadline checks. Shared by reference across the parallel
/// executor's workers (budget counters live in the metrics, not here).
#[derive(Debug, Clone)]
pub(crate) struct GuardState {
    guard: QueryGuard,
    clock: Clock,
}

impl GuardState {
    pub(crate) fn new(guard: QueryGuard) -> GuardState {
        GuardState { guard, clock: Clock::Real(Instant::now()) }
    }

    /// A guard state reading elapsed time from `ns` (virtual
    /// nanoseconds) instead of the wall clock. Test-only: lets deadline
    /// tests advance time deterministically.
    #[cfg(test)]
    fn with_virtual_clock(
        guard: QueryGuard,
        ns: std::sync::Arc<std::sync::atomic::AtomicU64>,
    ) -> GuardState {
        GuardState { guard, clock: Clock::Virtual(ns) }
    }

    /// Elapsed time according to this guard's clock.
    pub(crate) fn elapsed(&self) -> Duration {
        self.clock.elapsed()
    }

    /// The configured budgets. The vectorized executor charges rows in
    /// page batches and needs the raw limits to emulate the reference
    /// executor's per-row trip points.
    pub(crate) fn guard(&self) -> &QueryGuard {
        &self.guard
    }

    /// Checks only the wall-clock budget. The parallel executor's
    /// workers use this between the exact atomic budget charges — a
    /// deadline probe needs no counters, just the clock.
    pub(crate) fn check_deadline(&self) -> Result<(), EngineError> {
        if let Some(budget) = self.guard.deadline {
            let elapsed = self.elapsed();
            if elapsed > budget {
                return Err(EngineError::BudgetExceeded {
                    resource: GuardResource::WallClock,
                    spent: elapsed.as_millis() as u64,
                    limit: budget.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Checks every configured budget against the metrics so far.
    pub(crate) fn check(&self, m: &ExecMetrics) -> Result<(), EngineError> {
        let g = &self.guard;
        if let Some(limit) = g.max_rows_examined {
            if m.rows_examined > limit {
                return Err(EngineError::BudgetExceeded {
                    resource: GuardResource::RowsExamined,
                    spent: m.rows_examined,
                    limit,
                });
            }
        }
        if let Some(limit) = g.max_pages {
            let spent = m.heap_pages_read + m.index_pages_read;
            if spent > limit {
                return Err(EngineError::BudgetExceeded {
                    resource: GuardResource::PagesRead,
                    spent,
                    limit,
                });
            }
        }
        if let Some(limit) = g.max_model_invocations {
            if m.model_invocations > limit {
                return Err(EngineError::BudgetExceeded {
                    resource: GuardResource::ModelInvocations,
                    spent: m.model_invocations,
                    limit,
                });
            }
        }
        self.check_deadline()
    }

    /// Headroom left at end of execution.
    pub(crate) fn headroom(&self, m: &ExecMetrics) -> GuardHeadroom {
        let g = &self.guard;
        GuardHeadroom {
            rows_remaining: g
                .max_rows_examined
                .map(|l| l.saturating_sub(m.rows_examined)),
            pages_remaining: g
                .max_pages
                .map(|l| l.saturating_sub(m.heap_pages_read + m.index_pages_read)),
            model_invocations_remaining: g
                .max_model_invocations
                .map(|l| l.saturating_sub(m.model_invocations)),
            time_remaining_ms: g.deadline.map(|d| {
                d.saturating_sub(self.elapsed()).as_millis() as u64
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let st = GuardState::new(QueryGuard::unlimited());
        let m = ExecMetrics {
            rows_examined: u64::MAX,
            heap_pages_read: u64::MAX / 2,
            index_pages_read: 17,
            model_invocations: u64::MAX,
            ..ExecMetrics::default()
        };
        assert!(st.check(&m).is_ok());
        assert_eq!(st.headroom(&m), GuardHeadroom::default());
    }

    #[test]
    fn row_budget_trips_with_spent_and_limit() {
        let st = GuardState::new(QueryGuard::default().with_max_rows_examined(10));
        let mut m = ExecMetrics { rows_examined: 10, ..ExecMetrics::default() };
        assert!(st.check(&m).is_ok(), "at the limit is still fine");
        m.rows_examined = 11;
        match st.check(&m) {
            Err(EngineError::BudgetExceeded { resource, spent, limit }) => {
                assert_eq!(resource, GuardResource::RowsExamined);
                assert_eq!((spent, limit), (11, 10));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn page_budget_counts_heap_plus_index() {
        let st = GuardState::new(QueryGuard::default().with_max_pages(5));
        let m = ExecMetrics {
            heap_pages_read: 3,
            index_pages_read: 3,
            ..ExecMetrics::default()
        };
        match st.check(&m) {
            Err(EngineError::BudgetExceeded { resource, spent, limit }) => {
                assert_eq!(resource, GuardResource::PagesRead);
                assert_eq!((spent, limit), (6, 5));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn zero_deadline_trips() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        // Virtual clock: no sleeping, no dependence on scheduler load.
        let ns = Arc::new(AtomicU64::new(0));
        let st = GuardState::with_virtual_clock(
            QueryGuard::default().with_deadline(Duration::ZERO),
            Arc::clone(&ns),
        );
        let m = ExecMetrics::default();
        assert!(st.check(&m).is_ok(), "nothing elapsed yet");
        ns.store(1_000_000, Ordering::Relaxed); // advance 1ms
        match st.check(&m) {
            Err(EngineError::BudgetExceeded { resource, spent, limit }) => {
                assert_eq!(resource, GuardResource::WallClock);
                assert_eq!((spent, limit), (1, 0), "exactly the virtual 1ms");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn deadline_headroom_is_exact_under_virtual_clock() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let ns = Arc::new(AtomicU64::new(0));
        let st = GuardState::with_virtual_clock(
            QueryGuard::default().with_deadline(Duration::from_millis(100)),
            Arc::clone(&ns),
        );
        let m = ExecMetrics::default();
        ns.store(40_000_000, Ordering::Relaxed); // 40ms of virtual work
        assert!(st.check(&m).is_ok());
        assert_eq!(st.headroom(&m).time_remaining_ms, Some(60));
        ns.store(101_000_000, Ordering::Relaxed); // past the budget
        assert!(st.check(&m).is_err());
        assert_eq!(st.headroom(&m).time_remaining_ms, Some(0), "saturates at zero");
    }

    #[test]
    fn headroom_reports_remaining() {
        let st = GuardState::new(
            QueryGuard::default().with_max_rows_examined(100).with_max_pages(50),
        );
        let m = ExecMetrics {
            rows_examined: 40,
            heap_pages_read: 10,
            index_pages_read: 5,
            ..ExecMetrics::default()
        };
        let h = st.headroom(&m);
        assert_eq!(h.rows_remaining, Some(60));
        assert_eq!(h.pages_remaining, Some(35));
        assert_eq!(h.model_invocations_remaining, None);
    }
}
