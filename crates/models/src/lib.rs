//! # mpq-models
//!
//! From-scratch implementations of the discrete predictive mining models
//! the ICDE 2002 paper derives upper envelopes for:
//!
//! * [`DecisionTree`] — binary entropy-split trees in the C4.5 family
//!   (paper §3.1);
//! * [`NaiveBayes`] — discrete naive Bayes with Laplace smoothing and the
//!   paper's prior-based tie resolution (§3.2.1, Eq. 1–2);
//! * [`RuleSet`] — if-then rule classifiers learned by sequential covering
//!   with weight-based conflict resolution (§3.1);
//! * [`KMeans`] — centroid-based partitional clustering under weighted
//!   Euclidean distance (§3.3);
//! * [`Gmm`] — model-based clustering: a diagonal-covariance Gaussian
//!   mixture fitted with EM (§3.3);
//! * [`BoundaryClustering`] — boundary/density-based clustering over the
//!   discretized grid (§3.3).
//!
//! All classifiers consume rows *encoded* against an [`mpq_types::Schema`]
//! (member indexes); the clusterers additionally expose raw-space
//! assignment, since their decision surfaces live in the original
//! continuous space.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boundary;
mod decision_tree;
mod gmm;
mod kmeans;
mod naive_bayes;
mod rules;

pub use boundary::BoundaryClustering;
pub use decision_tree::{DecisionTree, Node, Split, TreeParams};
pub use gmm::{Gmm, GmmParams};
pub use kmeans::{embed_member, KMeans, KMeansParams};
pub use naive_bayes::NaiveBayes;
pub use rules::{Rule, RuleCond, RuleSet, RuleSetParams};

use mpq_types::{ClassId, Row, Schema};

/// A trained discrete predictive model: maps an encoded row to one of `K`
/// classes. This is the contract the engine's black-box `PREDICTION JOIN`
/// evaluation uses, and the reference against which envelope soundness is
/// property-tested.
pub trait Classifier {
    /// The schema of rows this model scores.
    fn schema(&self) -> &Schema;

    /// Number of output classes `K`.
    fn n_classes(&self) -> usize;

    /// Human-readable label of class `c`.
    fn class_name(&self, c: ClassId) -> &str;

    /// Predicts the class of an encoded row.
    fn predict(&self, row: &Row) -> ClassId;

    /// Resolves a class label to its id (case-insensitive), if present.
    fn class_by_name(&self, name: &str) -> Option<ClassId> {
        (0..self.n_classes())
            .map(|i| ClassId(i as u16))
            .find(|&c| self.class_name(c).eq_ignore_ascii_case(name))
    }
}

/// Classification accuracy of `model` over labeled `data` — handy in tests
/// and examples to confirm trained models actually learned something.
pub fn accuracy<M: Classifier + ?Sized>(model: &M, data: &mpq_types::LabeledDataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let hits = data.iter().filter(|(row, label)| model.predict(row) == *label).count();
    hits as f64 / data.len() as f64
}
