//! The top-down envelope derivation — the paper's Algorithm 1.
//!
//! Starting from the full grid, regions are classified MUST-WIN /
//! MUST-LOSE / AMBIGUOUS from efficiently computable score bounds;
//! ambiguous regions are *shrunk* (members whose pinned slice must lose
//! are dropped — only from the two ends on ordered dimensions, keeping
//! ranges contiguous) and then *split* at the entropy-minimizing
//! boundary, recursively, until every region is decided or the expansion
//! budget (the paper's threshold `t`) runs out. Surviving regions are
//! merged bottom-up into the final disjunction.
//!
//! Complexity: `O(t · n · m · K)` per class, versus `K · Π n_d` for the
//! naive enumeration (§3.2.2).

use crate::envelope::{DeriveOptions, DeriveStats, Envelope, TraceStep};
use crate::error::CoreError;
use crate::region::{DimSet, Region};
use crate::score_model::{RegionStatus, ScoreModel};
use mpq_types::{ClassId, MemberSet, Schema};

/// Derives the upper envelope of class `k` from a score model using the
/// top-down bound-and-split algorithm.
///
/// Infallible surface: if `opts.time_budget` is set and exceeded, the
/// result degrades to the trivial `TRUE` envelope (sound, no pruning
/// power). Callers that need to *observe* the timeout should use
/// [`try_derive_topdown`].
pub fn derive_topdown(
    model: &ScoreModel,
    schema: &Schema,
    class: ClassId,
    opts: &DeriveOptions,
) -> Envelope {
    try_derive_topdown(model, schema, class, opts)
        .unwrap_or_else(|_| Envelope::trivial(class, schema))
}

/// Fallible top-down derivation: returns
/// [`CoreError::DeriveTimeout`] when `opts.time_budget` is exceeded
/// (checked cooperatively at every region expansion), instead of
/// silently degrading like [`derive_topdown`].
pub fn try_derive_topdown(
    model: &ScoreModel,
    schema: &Schema,
    class: ClassId,
    opts: &DeriveOptions,
) -> Result<Envelope, CoreError> {
    let started = std::time::Instant::now();
    let k = class.index();
    let mut stats = DeriveStats::default();
    let mut trace = Vec::new();
    let mut kept: Vec<Region> = Vec::new();
    let mut all_exact = true;

    // Best-first: expand the largest ambiguous region next, so a bounded
    // budget shaves volume where it matters most (a depth-first order
    // would leave entire untouched siblings behind when the budget runs
    // out).
    let mut queue = std::collections::BinaryHeap::new();
    let mut tiebreak = 0u64; // FIFO among equal-cardinality regions
    queue.push(Prio { size: Region::full(schema).cardinality(), order: u64::MAX, region: Region::full(schema) });
    while let Some(Prio { region, .. }) = queue.pop() {
        // Cooperative wall-clock check, once per popped region: the
        // per-region work (bounding, shrinking, splitting) is small and
        // bounded, so this is the natural preemption granularity.
        if let Some(budget) = opts.time_budget {
            if started.elapsed() >= budget {
                return Err(CoreError::DeriveTimeout { budget });
            }
        }
        let status = model.region_status(&region, k, opts.bound_mode);
        if opts.trace {
            trace.push(evaluated_step(model, schema, &region, status));
        }
        match status {
            RegionStatus::MustWin => kept.push(region),
            RegionStatus::MustLose => {}
            RegionStatus::Ambiguous => {
                if stats.expansions >= opts.max_expansions {
                    // Budget exhausted: no more splits, but shrinking is
                    // cheap (linear) and sound — tighten what we keep.
                    stats.thresholded_regions += 1;
                    all_exact = false;
                    if let Some(region) =
                        shrink(model, schema, &region, k, opts, &mut stats, &mut trace)
                    {
                        kept.push(region);
                    }
                    continue;
                }
                stats.expansions += 1;
                // Shrink, re-check, then split.
                let Some(region) = shrink(model, schema, &region, k, opts, &mut stats, &mut trace)
                else {
                    continue; // shrunk to empty: nothing of class k here
                };
                let status = model.region_status(&region, k, opts.bound_mode);
                match status {
                    RegionStatus::MustWin => {
                        kept.push(region);
                        continue;
                    }
                    RegionStatus::MustLose => continue,
                    RegionStatus::Ambiguous => {}
                }
                let chosen_split = match opts.split_heuristic {
                    crate::envelope::SplitHeuristic::Entropy => {
                        split(model, schema, &region, k)
                    }
                    crate::envelope::SplitHeuristic::RivalGap => {
                        split_rival_gap(model, schema, &region, k)
                            .or_else(|| split(model, schema, &region, k))
                    }
                };
                match chosen_split {
                    Some((a, b)) => {
                        if opts.trace {
                            let d = differing_dim(&a, &b);
                            trace.push(TraceStep::Split {
                                dim: d,
                                children: (format_region(schema, &a), format_region(schema, &b)),
                            });
                        }
                        tiebreak += 1;
                        queue.push(Prio { size: b.cardinality(), order: u64::MAX - tiebreak, region: b });
                        tiebreak += 1;
                        queue.push(Prio { size: a.cardinality(), order: u64::MAX - tiebreak, region: a });
                    }
                    None => {
                        // Unsplittable (single cell / no informative cut)
                        // yet ambiguous: keep it — for point models this
                        // can only happen for a winning single cell or a
                        // genuine tie, both of which must stay covered.
                        if !region.is_cell() || !model.is_point_model() {
                            all_exact = false;
                        }
                        kept.push(region);
                    }
                }
            }
        }
    }

    // Bottom-up merge sweep: repeatedly merge any pair differing in one
    // dimension with a representable union.
    merge_regions(&mut kept, &mut stats);

    let mut env = Envelope { class, regions: kept, exact: all_exact, stats, trace };
    env.cap_disjuncts(opts.max_disjuncts, schema);
    Ok(env)
}

/// Priority-queue entry: largest region first, then insertion order.
struct Prio {
    size: u64,
    order: u64,
    region: Region,
}

impl PartialEq for Prio {
    fn eq(&self, other: &Self) -> bool {
        self.size == other.size && self.order == other.order
    }
}
impl Eq for Prio {}
impl PartialOrd for Prio {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Prio {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.size.cmp(&other.size).then(self.order.cmp(&other.order))
    }
}

fn evaluated_step(
    model: &ScoreModel,
    schema: &Schema,
    region: &Region,
    status: RegionStatus,
) -> TraceStep {
    let bounds = (0..model.n_classes())
        .map(|j| (model.region_score_min(region, j), model.region_score_max(region, j)))
        .collect();
    TraceStep::Evaluated { region: format_region(schema, region), bounds, status }
}

/// Renders a region like the paper: `(d0:[2..3], d1:[0..1])`.
pub fn format_region(schema: &Schema, region: &Region) -> String {
    let mut parts = Vec::new();
    for (d, attr) in schema.iter() {
        let ds = region.dim(d.index());
        if ds.is_full(attr.domain.cardinality()) {
            continue;
        }
        let desc = match ds {
            DimSet::Range { lo, hi } => format!("{}:[{}..{}]", attr.name, lo, hi),
            DimSet::Set(s) => {
                let members: Vec<String> = s.iter().map(|m| m.to_string()).collect();
                format!("{}:{{{}}}", attr.name, members.join(","))
            }
        };
        parts.push(desc);
    }
    if parts.is_empty() {
        "(*)".to_string()
    } else {
        format!("({})", parts.join(", "))
    }
}

fn differing_dim(a: &Region, b: &Region) -> usize {
    (0..a.n_dims()).find(|&d| a.dim(d) != b.dim(d)).unwrap_or(0)
}

/// The paper's shrink step: remove members whose pinned slice must lose,
/// to a fixpoint (batched per pass inside [`ScoreModel::shrink_region`]).
/// Ordered dimensions are only trimmed from the ends. Returns `None` if
/// the region empties.
fn shrink(
    model: &ScoreModel,
    schema: &Schema,
    region: &Region,
    k: usize,
    opts: &DeriveOptions,
    stats: &mut DeriveStats,
    trace: &mut Vec<TraceStep>,
) -> Option<Region> {
    let _ = schema;
    let (shrunk, removed) = model.shrink_region(region, k, opts.bound_mode);
    stats.shrunk_members += removed.len();
    if opts.trace {
        for (dim, member) in removed {
            trace.push(TraceStep::Shrunk { dim, member });
        }
    }
    shrunk
}

/// The paper's split step: evaluate the entropy of the target-class
/// probability mass on each side of every candidate boundary and pick
/// the split minimizing the weighted average entropy. Ordered dimensions
/// admit prefix cuts; unordered dimensions are ordered by the class's
/// estimated posterior and then cut by prefix (the standard reduction of
/// subset search).
fn split(model: &ScoreModel, schema: &Schema, region: &Region, k: usize) -> Option<(Region, Region)> {
    let mut best: Option<(f64, usize, Vec<u16>, Vec<u16>)> = None;
    for (d, attr) in schema.iter() {
        let d = d.index();
        let members: Vec<u16> = region.dim(d).iter().collect();
        if members.len() < 2 {
            continue;
        }
        // Per-member estimates: posterior mass of class k at the member
        // vs total mass, using interval midpoints. exp() is normalized by
        // the member-wise max to avoid underflow.
        let table = model.dim(d);
        let kk = model.n_classes();
        let mid = |m: u16, j: usize| 0.5 * (table.lo(m, j) + table.hi(m, j));
        let max_mid = members
            .iter()
            .flat_map(|&m| (0..kk).map(move |j| mid(m, j) + model.prior(j)))
            .fold(f64::NEG_INFINITY, f64::max);
        let pos: Vec<f64> = members
            .iter()
            .map(|&m| (mid(m, k) + model.prior(k) - max_mid).exp())
            .collect();
        let mass: Vec<f64> = members
            .iter()
            .map(|&m| (0..kk).map(|j| (mid(m, j) + model.prior(j) - max_mid).exp()).sum())
            .collect();

        let order: Vec<usize> = if attr.domain.is_ordered() {
            (0..members.len()).collect()
        } else {
            let mut o: Vec<usize> = (0..members.len()).collect();
            let q = |i: usize| pos[i] / mass[i].max(f64::MIN_POSITIVE);
            o.sort_by(|&a, &b| q(b).partial_cmp(&q(a)).expect("finite posterior"));
            o
        };

        // Prefix scan in `order`.
        let total_pos: f64 = pos.iter().sum();
        let total_mass: f64 = mass.iter().sum();
        let mut acc_pos = 0.0;
        let mut acc_mass = 0.0;
        for cut in 0..order.len() - 1 {
            acc_pos += pos[order[cut]];
            acc_mass += mass[order[cut]];
            let (lp, lm) = (acc_pos, acc_mass);
            let (rp, rm) = (total_pos - acc_pos, total_mass - acc_mass);
            let w = (lm * binary_entropy(lp / lm.max(f64::MIN_POSITIVE))
                + rm * binary_entropy(rp / rm.max(f64::MIN_POSITIVE)))
                / total_mass.max(f64::MIN_POSITIVE);
            if best.as_ref().is_none_or(|(bw, ..)| w < *bw) {
                let left: Vec<u16> = order[..=cut].iter().map(|&i| members[i]).collect();
                let right: Vec<u16> = order[cut + 1..].iter().map(|&i| members[i]).collect();
                best = Some((w, d, left, right));
            }
        }
    }
    let (_, d, left, right) = best?;
    let mk = |ms: Vec<u16>| -> DimSet {
        if schema.attrs()[d].domain.is_ordered() {
            let lo = *ms.iter().min().expect("nonempty side");
            let hi = *ms.iter().max().expect("nonempty side");
            debug_assert_eq!(hi as usize - lo as usize + 1, ms.len(), "ordered side contiguous");
            DimSet::Range { lo, hi }
        } else {
            DimSet::Set(MemberSet::of(
                schema.attrs()[d].domain.cardinality(),
                ms.iter().copied(),
            ))
        }
    };
    Some((region.with_dim(d, mk(left)), region.with_dim(d, mk(right))))
}

/// Rival-targeted split: find the rival `j*` closest to dominating the
/// whole region (smallest `max(score_k − score_j)`), then choose the
/// (dimension, cut) that minimizes that maximum on one side — driving a
/// child toward MUST-LOSE as fast as possible. Entropy splits optimize
/// separating the *target* class; in many-class models the bottleneck is
/// instead proving all the *other* space lost, which this heuristic
/// attacks directly.
fn split_rival_gap(
    model: &ScoreModel,
    schema: &Schema,
    region: &Region,
    k: usize,
) -> Option<(Region, Region)> {
    // Rival closest to dominating (finite dmax required).
    let mut jstar: Option<(usize, f64)> = None;
    for j in 0..model.n_classes() {
        if j == k {
            continue;
        }
        let dmax = model.region_diff_max(region, k, j);
        if dmax.is_finite() && jstar.is_none_or(|(_, b)| dmax < b) {
            jstar = Some((j, dmax));
        }
    }
    let (j, _) = jstar?;

    // Per-dimension member values v_m = max diff contribution vs j*; the
    // split should isolate low-v members (where k loses to j*) from
    // high-v ones.
    let mut best: Option<(f64, usize, Vec<u16>, Vec<u16>)> = None; // (min side max, dim, left, right)
    for (did, attr) in schema.iter() {
        let d = did.index();
        let members: Vec<u16> = region.dim(d).iter().collect();
        if members.len() < 2 {
            continue;
        }
        let vals: Vec<f64> =
            members.iter().map(|&m| model.member_diff_bounds(d, m, k, j).1).collect();
        let order: Vec<usize> = if attr.domain.is_ordered() {
            (0..members.len()).collect()
        } else {
            let mut o: Vec<usize> = (0..members.len()).collect();
            o.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("finite or inf"));
            o
        };
        // Prefix cuts in `order`: score = the smaller of the two sides'
        // max values (one side close to exclusion).
        for cut in 0..order.len() - 1 {
            let left_max =
                order[..=cut].iter().map(|&i| vals[i]).fold(f64::NEG_INFINITY, f64::max);
            let right_max =
                order[cut + 1..].iter().map(|&i| vals[i]).fold(f64::NEG_INFINITY, f64::max);
            let score = left_max.min(right_max);
            if best.as_ref().is_none_or(|(b, ..)| score < *b) {
                let left: Vec<u16> = order[..=cut].iter().map(|&i| members[i]).collect();
                let right: Vec<u16> = order[cut + 1..].iter().map(|&i| members[i]).collect();
                best = Some((score, d, left, right));
            }
        }
    }
    let (_, d, left, right) = best?;
    let mk = |ms: Vec<u16>| -> DimSet {
        if schema.attrs()[d].domain.is_ordered() {
            let lo = *ms.iter().min().expect("nonempty side");
            let hi = *ms.iter().max().expect("nonempty side");
            DimSet::Range { lo, hi }
        } else {
            DimSet::Set(MemberSet::of(schema.attrs()[d].domain.cardinality(), ms.iter().copied()))
        }
    };
    Some((region.with_dim(d, mk(left)), region.with_dim(d, mk(right))))
}

fn binary_entropy(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.ln();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).ln();
    }
    h
}

/// Iteratively merges regions pairwise until no pair can merge. Each
/// pass sweeps all pairs once (merging in place), so the whole sweep is
/// O(passes · R²) rather than restarting from scratch per merge.
pub fn merge_regions(regions: &mut Vec<Region>, stats: &mut DeriveStats) {
    loop {
        let mut merged_any = false;
        let mut i = 0;
        while i < regions.len() {
            let mut j = i + 1;
            while j < regions.len() {
                if let Some(m) = regions[i].try_merge(&regions[j]) {
                    regions[i] = m;
                    regions.swap_remove(j);
                    stats.merges += 1;
                    merged_any = true;
                    // regions[i] changed: re-scan the js from the start
                    // of the remaining suffix for more merges into it.
                    j = i + 1;
                } else {
                    j += 1;
                }
            }
            i += 1;
        }
        if !merged_any {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score_model::BoundMode;
    use mpq_models::{Classifier as _, NaiveBayes};
    use mpq_types::{AttrDomain, Attribute};

    fn table1() -> NaiveBayes {
        let schema = Schema::new(vec![
            Attribute::new("d0", AttrDomain::categorical(["m0", "m1", "m2", "m3"])),
            Attribute::new("d1", AttrDomain::categorical(["m0", "m1", "m2"])),
        ])
        .unwrap();
        let d0 = vec![
            vec![0.4, 0.1, 0.05],
            vec![0.4, 0.1, 0.05],
            vec![0.05, 0.4, 0.4],
            vec![0.05, 0.4, 0.4],
        ];
        let d1 = vec![
            vec![0.01, 0.7, 0.05],
            vec![0.5, 0.29, 0.05],
            vec![0.49, 0.01, 0.9],
        ];
        NaiveBayes::from_probabilities(
            schema,
            vec!["c1".into(), "c2".into(), "c3".into()],
            &[0.33, 0.5, 0.17],
            &[d0, d1],
        )
        .unwrap()
    }

    fn assert_sound_and_report_exact(nb: &NaiveBayes, opts: &DeriveOptions) {
        let sm = ScoreModel::from_naive_bayes(nb);
        let schema = nb.schema();
        for k in 0..nb.n_classes() {
            let class = ClassId(k as u16);
            let env = derive_topdown(&sm, schema, class, opts);
            for cell in Region::full(schema).cells() {
                let predicted = nb.predict(&cell) == class;
                if predicted {
                    assert!(
                        env.matches(&cell),
                        "UNSOUND: class {k} cell {cell:?} predicted but not covered ({opts:?})"
                    );
                }
                if env.exact && !predicted {
                    assert!(
                        !env.matches(&cell),
                        "claimed exact but covers foreign cell {cell:?} for class {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn table1_envelopes_sound_basic() {
        assert_sound_and_report_exact(
            &table1(),
            &DeriveOptions { bound_mode: BoundMode::Basic, ..Default::default() },
        );
    }

    #[test]
    fn table1_envelopes_sound_pairwise() {
        assert_sound_and_report_exact(
            &table1(),
            &DeriveOptions { bound_mode: BoundMode::PairwiseRatio, ..Default::default() },
        );
    }

    #[test]
    fn table1_envelopes_sound_with_tiny_budget() {
        for budget in [0, 1, 2, 3] {
            assert_sound_and_report_exact(
                &table1(),
                &DeriveOptions { max_expansions: budget, ..Default::default() },
            );
        }
    }

    #[test]
    fn table1_class_c1_envelope_is_exact_with_enough_budget() {
        // The paper works c1 by hand: it is exactly
        // (d0:{m0,m1}, d1:{m1,m2}) after one shrink and one split.
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let env = derive_topdown(&sm, nb.schema(), ClassId(0), &DeriveOptions::default());
        assert!(env.exact, "c1's region is clean; derivation should prove it");
        let covered: Vec<Vec<u16>> = Region::full(nb.schema())
            .cells()
            .filter(|c| env.matches(c))
            .collect();
        let truth: Vec<Vec<u16>> = Region::full(nb.schema())
            .cells()
            .filter(|c| nb.predict(c) == ClassId(0))
            .collect();
        assert_eq!(covered, truth);
        assert_eq!(env.n_disjuncts(), 1, "c1 is a single rectangle");
    }

    #[test]
    fn zero_budget_envelope_is_shrunk_but_sound() {
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let env = derive_topdown(
            &sm,
            nb.schema(),
            ClassId(2),
            &DeriveOptions { max_expansions: 0, ..Default::default() },
        );
        // With no split budget the region cannot be carved, but the
        // final shrink pass still trims MUST-LOSE members; the result is
        // a single (possibly loose) region covering all of c3's cells.
        assert!(!env.exact);
        assert_eq!(env.stats.thresholded_regions, 1);
        assert_eq!(env.n_disjuncts(), 1);
        for cell in Region::full(nb.schema()).cells() {
            if nb.predict(&cell) == ClassId(2) {
                assert!(env.matches(&cell), "cell {cell:?}");
            }
        }
        // c3 only wins inside d0 ∈ {m2,m3} × d1 = m2; shrink alone finds
        // a strictly smaller region than the grid.
        assert!(env.covered_cells() < 12);
    }

    #[test]
    fn trace_records_evaluations_and_splits() {
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let env = derive_topdown(
            &sm,
            nb.schema(),
            ClassId(0),
            &DeriveOptions { bound_mode: BoundMode::Basic, trace: true, ..Default::default() },
        );
        assert!(
            env.trace.iter().any(|s| matches!(s, TraceStep::Evaluated { .. })),
            "trace must contain evaluations"
        );
        assert!(
            env.trace.iter().any(|s| matches!(s, TraceStep::Shrunk { dim: 1, member: 0 })),
            "Figure 2(b): d1's first member is shrunk away"
        );
    }

    #[test]
    fn merge_regions_collapses_adjacent() {
        let schema = Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()),
        ])
        .unwrap();
        let mut rs = vec![
            Region::full(&schema).with_dim(0, DimSet::Range { lo: 0, hi: 0 }),
            Region::full(&schema).with_dim(0, DimSet::Range { lo: 2, hi: 3 }),
            Region::full(&schema).with_dim(0, DimSet::Range { lo: 1, hi: 1 }),
        ];
        let mut stats = DeriveStats::default();
        merge_regions(&mut rs, &mut stats);
        assert_eq!(rs.len(), 1);
        assert!(rs[0].is_full(&schema));
        assert_eq!(stats.merges, 2);
    }

    #[test]
    fn format_region_prints_constrained_dims_only() {
        let nb = table1();
        let r = Region::full(nb.schema())
            .with_dim(1, DimSet::Set(MemberSet::of(3, [0, 1])));
        let s = format_region(nb.schema(), &r);
        assert_eq!(s, "(d1:{0,1})");
        assert_eq!(format_region(nb.schema(), &Region::full(nb.schema())), "(*)");
    }
}
