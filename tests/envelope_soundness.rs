//! Property-based soundness tests: for *any* model, the derived upper
//! envelope of class `c` must admit every point the model predicts as
//! `c` — the defining contract of the paper (`predict(x)=c ⇒ M_c(x)`),
//! under every bound mode and expansion budget.

use mining_predicates::prelude::*;
use mpq_core::{derive_enumerate, DEFAULT_CELL_LIMIT};
use proptest::prelude::*;

/// Strategy: a random small schema (2–4 dims, 2–5 members each, mixed
/// ordered/categorical).
fn arb_schema() -> impl Strategy<Value = Schema> {
    proptest::collection::vec((2u16..=5, any::<bool>()), 2..=4).prop_map(|dims| {
        let attrs = dims
            .into_iter()
            .enumerate()
            .map(|(i, (card, ordered))| {
                let domain = if ordered {
                    AttrDomain::binned((1..card).map(|c| c as f64).collect()).expect("increasing")
                } else {
                    AttrDomain::categorical((0..card).map(|m| format!("v{m}")))
                };
                Attribute::new(format!("a{i}"), domain)
            })
            .collect();
        Schema::new(attrs).expect("unique names")
    })
}

/// Strategy: a naive Bayes model with random positive probabilities over
/// a random schema.
fn arb_nb() -> impl Strategy<Value = NaiveBayes> {
    (arb_schema(), 2usize..=4).prop_flat_map(|(schema, k)| {
        let total_members: usize =
            schema.attrs().iter().map(|a| a.domain.cardinality() as usize).sum();
        (
            Just(schema),
            proptest::collection::vec(0.05f64..1.0, k),
            proptest::collection::vec(0.01f64..1.0, total_members * k),
        )
            .prop_map(move |(schema, priors, conds)| {
                let mut it = conds.into_iter();
                let cond: Vec<Vec<Vec<f64>>> = schema
                    .attrs()
                    .iter()
                    .map(|a| {
                        (0..a.domain.cardinality())
                            .map(|_| (0..k).map(|_| it.next().expect("sized")).collect())
                            .collect()
                    })
                    .collect();
                let names = (0..k).map(|i| format!("c{i}")).collect();
                NaiveBayes::from_probabilities(schema, names, &priors, &cond)
                    .expect("positive parameters")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topdown_envelopes_cover_all_predictions(nb in arb_nb(), budget in 0usize..64) {
        let schema = Classifier::schema(&nb).clone();
        for mode in [BoundMode::Basic, BoundMode::PairwiseRatio] {
            let opts = DeriveOptions { bound_mode: mode, max_expansions: budget, ..Default::default() };
            for k in 0..Classifier::n_classes(&nb) {
                let class = ClassId(k as u16);
                let env = nb.envelope(class, &opts);
                for cell in Region::full(&schema).cells() {
                    if Classifier::predict(&nb, &cell) == class {
                        prop_assert!(
                            env.matches(&cell),
                            "unsound: {mode:?} budget {budget} class {k} cell {cell:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exact_claims_are_honest(nb in arb_nb()) {
        // When the derivation claims exactness, the envelope must admit
        // *only* the class's cells.
        let schema = Classifier::schema(&nb).clone();
        for k in 0..Classifier::n_classes(&nb) {
            let class = ClassId(k as u16);
            let env = nb.envelope(class, &DeriveOptions::default());
            if !env.exact {
                continue;
            }
            for cell in Region::full(&schema).cells() {
                prop_assert_eq!(
                    env.matches(&cell),
                    Classifier::predict(&nb, &cell) == class,
                    "exact envelope wrong at {:?}", cell
                );
            }
        }
    }

    #[test]
    fn enumeration_oracle_agrees(nb in arb_nb()) {
        // Enumeration is exact for naive Bayes; the top-down result must
        // be a superset of it.
        let schema = Classifier::schema(&nb).clone();
        let sm = ScoreModel::from_naive_bayes(&nb);
        for k in 0..Classifier::n_classes(&nb) {
            let class = ClassId(k as u16);
            let oracle = derive_enumerate(&sm, &schema, class, DEFAULT_CELL_LIMIT)
                .expect("small grid");
            let td = derive_topdown(&sm, &schema, class, &DeriveOptions::default());
            for cell in Region::full(&schema).cells() {
                prop_assert_eq!(
                    oracle.matches(&cell),
                    Classifier::predict(&nb, &cell) == class,
                    "oracle must be exact at {:?}", cell
                );
                if oracle.matches(&cell) {
                    prop_assert!(td.matches(&cell), "top-down misses {:?}", cell);
                }
            }
        }
    }
}

/// Strategy: a k-means model over an all-ordered schema.
fn arb_kmeans() -> impl Strategy<Value = KMeans> {
    (
        2usize..=3,  // dims
        2usize..=4,  // clusters
        proptest::collection::vec(-2.0f64..8.0, 12),
        proptest::collection::vec(0.2f64..3.0, 12),
    )
        .prop_map(|(n, k, coords, weights)| {
            let attrs = (0..n)
                .map(|i| {
                    Attribute::new(
                        format!("x{i}"),
                        AttrDomain::binned(vec![1.0, 3.0, 5.0]).expect("increasing"),
                    )
                })
                .collect();
            let schema = Schema::new(attrs).expect("unique");
            let centroids: Vec<Vec<f64>> =
                (0..k).map(|c| (0..n).map(|d| coords[c * n + d]).collect()).collect();
            let w: Vec<Vec<f64>> =
                (0..k).map(|c| (0..n).map(|d| weights[c * n + d]).collect()).collect();
            KMeans::from_parts(schema, centroids, w).expect("valid parts")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_envelopes_cover_raw_space(km in arb_kmeans(), points in proptest::collection::vec((-4.0f64..10.0, -4.0f64..10.0, -4.0f64..10.0), 60)) {
        let schema = Classifier::schema(&km).clone();
        let n = schema.len();
        // Raw-space coverage requires the interval (raw-sound) mode; the
        // default derives against the discretized point model.
        let opts = DeriveOptions { cluster_raw_sound: true, ..Default::default() };
        let envs = km.envelopes(&opts);
        for p in points {
            let raw = [p.0, p.1, p.2];
            let raw = &raw[..n];
            let cluster = km.assign_raw(raw);
            let cell: Vec<u16> = raw
                .iter()
                .enumerate()
                .map(|(d, &x)| schema.attrs()[d].domain.encode(&Value::Num(x)).expect("numeric"))
                .collect();
            prop_assert!(
                envs[cluster.index()].matches(&cell),
                "raw point {raw:?} (cell {cell:?}) assigned {cluster} but not covered"
            );
        }
    }
}
