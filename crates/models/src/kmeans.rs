//! Centroid-based partitional clustering (paper §3.3).
//!
//! Lloyd's algorithm with k-means++ seeding under **weighted Euclidean
//! distance** on ordered attributes, extended k-prototypes-style to
//! categorical attributes (mismatch distance against the cluster's modal
//! member). The paper assigns a point to
//! `argmax_k −Σ_d w_{dk} δ_{dk}(x_d)` — structurally Eq. 2 without the
//! prior term — which is exactly the additive per-dimension form the
//! envelope derivation in `mpq-core` consumes: quadratic contributions on
//! ordered dimensions, per-member point contributions on categorical
//! ones.
//!
//! Clustering operates in the raw continuous space for ordered
//! attributes; encoded rows are embedded through each bin's
//! representative value (categorical members embed as their own index)
//! for black-box prediction, while envelope derivation bounds the score
//! over whole bins so soundness holds for *every* raw point.

use crate::Classifier;
use mpq_types::{AttrDomain, ClassId, Dataset, Row, Schema, TypesError};
use rand::prelude::IndexedRandom;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Training hyperparameters for [`KMeans`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansParams {
    /// Number of clusters `K`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
    /// If true, per-dimension weights on ordered attributes are set to
    /// `1/var_d` of the data (a common normalization); otherwise all
    /// weights are 1. Categorical mismatch weights are always 1.
    pub normalize_weights: bool,
}

impl Default for KMeansParams {
    fn default() -> Self {
        KMeansParams { k: 5, max_iters: 50, seed: 7, normalize_weights: true }
    }
}

/// A trained centroid-based clustering model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    schema: Schema,
    cluster_names: Vec<String>,
    /// `centroids[k][d]`: coordinate on ordered dims, modal member index
    /// on categorical dims.
    centroids: Vec<Vec<f64>>,
    /// `weights[k][d]` of the distance.
    weights: Vec<Vec<f64>>,
    /// Which dims are categorical (mismatch distance).
    categorical: Vec<bool>,
}

impl KMeans {
    /// Trains on an encoded dataset; ordered attributes embed through
    /// bin representatives, categorical attributes through their member
    /// index (mismatch distance).
    pub fn train_encoded(data: &Dataset, params: KMeansParams) -> Result<Self, TypesError> {
        let schema = data.schema().clone();
        let points: Vec<Vec<f64>> = data.rows().map(|r| embed(&schema, r)).collect();
        Self::train_raw(schema, &points, params)
    }

    /// Trains on raw points directly. Coordinates on categorical
    /// dimensions must be member indexes.
    pub fn train_raw(schema: Schema, points: &[Vec<f64>], params: KMeansParams) -> Result<Self, TypesError> {
        let n = schema.len();
        if points.is_empty() || params.k == 0 {
            return Err(TypesError::ArityMismatch { expected: 1, got: 0 });
        }
        if points.iter().any(|p| p.len() != n) {
            return Err(TypesError::ArityMismatch { expected: n, got: 0 });
        }
        let categorical: Vec<bool> =
            schema.attrs().iter().map(|a| !a.domain.is_ordered()).collect();
        let k = params.k.min(points.len());
        let weights_row: Vec<f64> = if params.normalize_weights {
            (0..n)
                .map(|d| {
                    if categorical[d] {
                        return 1.0;
                    }
                    let mean = points.iter().map(|p| p[d]).sum::<f64>() / points.len() as f64;
                    let var = points.iter().map(|p| (p[d] - mean).powi(2)).sum::<f64>()
                        / points.len() as f64;
                    if var > 1e-12 {
                        1.0 / var
                    } else {
                        1.0
                    }
                })
                .collect()
        } else {
            vec![1.0; n]
        };

        let dist = |p: &[f64], c: &[f64]| -> f64 {
            let mut s = 0.0;
            for d in 0..n {
                if categorical[d] {
                    if p[d] != c[d] {
                        s += weights_row[d];
                    }
                } else {
                    s += weights_row[d] * (p[d] - c[d]) * (p[d] - c[d]);
                }
            }
            s
        };

        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut centroids = kmeanspp_init(points, k, &dist, &mut rng);
        let mut assignment = vec![0usize; points.len()];
        for _ in 0..params.max_iters {
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let mut best = 0;
                let mut bd = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = dist(p, centroid);
                    if d < bd {
                        bd = d;
                        best = c;
                    }
                }
                if best != assignment[i] {
                    assignment[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            // Recompute centroids: means on ordered dims, modes on
            // categorical dims; an emptied cluster is re-seeded so K
            // stays fixed.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<&Vec<f64>> = points
                    .iter()
                    .zip(&assignment)
                    .filter(|(_, &a)| a == c)
                    .map(|(p, _)| p)
                    .collect();
                if members.is_empty() {
                    *centroid = points.choose(&mut rng).expect("nonempty").clone();
                    continue;
                }
                for d in 0..n {
                    if categorical[d] {
                        let card = schema.attrs()[d].domain.cardinality() as usize;
                        let mut counts = vec![0usize; card];
                        for p in &members {
                            counts[p[d] as usize] += 1;
                        }
                        let mode = counts
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, &cnt)| cnt)
                            .map(|(m, _)| m)
                            .expect("nonempty domain");
                        centroid[d] = mode as f64;
                    } else {
                        centroid[d] =
                            members.iter().map(|p| p[d]).sum::<f64>() / members.len() as f64;
                    }
                }
            }
        }

        let cluster_names = (0..k).map(|i| format!("cluster_{i}")).collect();
        let weights = vec![weights_row; k];
        Ok(KMeans { schema, cluster_names, centroids, weights, categorical })
    }

    /// Builds a model from explicit centroids and weights.
    pub fn from_parts(
        schema: Schema,
        centroids: Vec<Vec<f64>>,
        weights: Vec<Vec<f64>>,
    ) -> Result<Self, TypesError> {
        let n = schema.len();
        if centroids.is_empty() || centroids.len() != weights.len() {
            return Err(TypesError::ArityMismatch { expected: centroids.len(), got: weights.len() });
        }
        if centroids.iter().chain(weights.iter()).any(|v| v.len() != n) {
            return Err(TypesError::ArityMismatch { expected: n, got: 0 });
        }
        if weights.iter().flatten().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(TypesError::BadCuts { detail: "weights must be finite and >= 0".into() });
        }
        let categorical = schema.attrs().iter().map(|a| !a.domain.is_ordered()).collect();
        let cluster_names = (0..centroids.len()).map(|i| format!("cluster_{i}")).collect();
        Ok(KMeans { schema, cluster_names, centroids, weights, categorical })
    }

    /// Cluster centroids, `[k][d]`.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Distance weights, `[k][d]`.
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    /// Whether dimension `d` uses categorical mismatch distance.
    pub fn is_categorical_dim(&self, d: usize) -> bool {
        self.categorical[d]
    }

    /// The additive score of cluster `k` at raw point `x`: negated
    /// weighted distance (quadratic on ordered dims, mismatch on
    /// categorical dims); assignment is argmax, ties to the lower id.
    pub fn score_raw(&self, x: &[f64], k: ClassId) -> f64 {
        let mut s = 0.0;
        for (d, &xd) in x.iter().enumerate() {
            s += self.dim_score(k, d, xd);
        }
        s
    }

    /// The additive contribution of dimension `d` at coordinate `x` to
    /// cluster `k`'s score. `score_raw` is exactly the dimension-order
    /// sum of these terms, which is what lets proxy-score compilation
    /// tabulate per-member contributions that reproduce the scorer
    /// bit-for-bit (a categorical match contributes literal `0.0`;
    /// partial sums start at `+0.0` and only ever add non-positive
    /// terms, so they can never be `-0.0` and `s + 0.0 == s` exactly).
    pub fn dim_score(&self, k: ClassId, d: usize, x: f64) -> f64 {
        let (c, w) = (self.centroids[k.index()][d], self.weights[k.index()][d]);
        if self.categorical[d] {
            if x != c {
                -w
            } else {
                0.0
            }
        } else {
            -(w * (x - c) * (x - c))
        }
    }

    /// Assigns a raw point to its cluster.
    pub fn assign_raw(&self, x: &[f64]) -> ClassId {
        let mut best = ClassId(0);
        let mut best_s = self.score_raw(x, best);
        for k in 1..self.centroids.len() {
            let c = ClassId(k as u16);
            let s = self.score_raw(x, c);
            if s > best_s {
                best = c;
                best_s = s;
            }
        }
        best
    }
}

/// Embeds an encoded row: ordered dims through bin representatives,
/// categorical dims as their member index.
pub(crate) fn embed(schema: &Schema, row: &Row) -> Vec<f64> {
    row.iter().enumerate().map(|(d, &m)| embed_member(schema, d, m)).collect()
}

/// The embedded coordinate of member `m` on dimension `d` — the exact
/// per-dimension mapping the clusterers apply to encoded rows before
/// scoring (bin representative for ordered dims, the member index for
/// categorical ones). Public so proxy-score compilation tabulates
/// per-member scores through the same embedding the scorer uses.
pub fn embed_member(schema: &Schema, d: usize, m: u16) -> f64 {
    match &schema.attrs()[d].domain {
        AttrDomain::Binned { .. } => {
            schema.attrs()[d].domain.bin_representative(m).expect("ordered attr")
        }
        AttrDomain::Categorical { .. } => m as f64,
    }
}

fn kmeanspp_init(
    points: &[Vec<f64>],
    k: usize,
    dist: &impl Fn(&[f64], &[f64]) -> f64,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| centroids.iter().map(|c| dist(p, c)).fold(f64::INFINITY, f64::min))
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All remaining points coincide with a centroid.
            centroids.push(points[rng.random_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.random_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            if target < d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

impl Classifier for KMeans {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn n_classes(&self) -> usize {
        self.centroids.len()
    }

    fn class_name(&self, c: ClassId) -> &str {
        &self.cluster_names[c.index()]
    }

    fn predict(&self, row: &Row) -> ClassId {
        self.assign_raw(&embed(&self.schema, row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::Attribute;

    fn grid_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0, 6.0, 8.0]).unwrap()),
            Attribute::new("y", AttrDomain::binned(vec![2.0, 4.0, 6.0, 8.0]).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn separates_two_blobs() {
        let schema = grid_schema();
        let mut points = Vec::new();
        for i in 0..30 {
            let j = (i % 5) as f64 * 0.1;
            points.push(vec![1.0 + j, 1.0 - j]);
            points.push(vec![9.0 - j, 9.0 + j]);
        }
        let km = KMeans::train_raw(schema, &points, KMeansParams { k: 2, ..Default::default() }).unwrap();
        let a = km.assign_raw(&[1.0, 1.0]);
        let b = km.assign_raw(&[9.0, 9.0]);
        assert_ne!(a, b, "the two blobs must land in different clusters");
        assert_eq!(km.assign_raw(&[1.3, 0.8]), a);
        assert_eq!(km.assign_raw(&[8.7, 9.2]), b);
    }

    #[test]
    fn score_is_negative_weighted_distance() {
        let schema = grid_schema();
        let km = KMeans::from_parts(
            schema,
            vec![vec![0.0, 0.0], vec![10.0, 10.0]],
            vec![vec![1.0, 2.0], vec![1.0, 1.0]],
        )
        .unwrap();
        let s = km.score_raw(&[1.0, 2.0], ClassId(0));
        assert!((s - (-(1.0) - 2.0 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn ties_resolve_to_lower_cluster_id() {
        let schema = grid_schema();
        let km = KMeans::from_parts(
            schema,
            vec![vec![0.0, 0.0], vec![10.0, 0.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        )
        .unwrap();
        assert_eq!(km.assign_raw(&[5.0, 3.0]), ClassId(0), "equidistant point goes to cluster 0");
    }

    #[test]
    fn encoded_prediction_uses_bin_representatives() {
        let schema = grid_schema();
        let km = KMeans::from_parts(
            schema.clone(),
            vec![vec![1.0, 1.0], vec![9.0, 9.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        )
        .unwrap();
        assert_eq!(km.predict(&[0, 0]), ClassId(0));
        assert_eq!(km.predict(&[4, 4]), ClassId(1));
    }

    #[test]
    fn mixed_schema_clusters_on_categorical_mismatch() {
        let schema = Schema::new(vec![
            Attribute::new("c", AttrDomain::categorical(["a", "b"])),
            Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        ])
        .unwrap();
        // Two clusters separated purely by the categorical attribute
        // (the ordered attribute is constant).
        let mut ds = Dataset::new(schema.clone());
        for i in 0..40 {
            ds.push_encoded(&[(i % 2) as u16, 1]).unwrap();
        }
        let km = KMeans::train_encoded(&ds, KMeansParams { k: 2, ..Default::default() }).unwrap();
        let a = km.predict(&[0, 0]);
        let b = km.predict(&[1, 0]);
        assert_ne!(a, b, "categorical mismatch must separate the clusters");
        // Modal centroids are exact member indexes.
        for c in km.centroids() {
            assert!(c[0] == 0.0 || c[0] == 1.0, "categorical centroid is a member index");
        }
        assert!(km.is_categorical_dim(0) && !km.is_categorical_dim(1));
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let schema = grid_schema();
        let points = vec![vec![1.0, 1.0], vec![9.0, 9.0]];
        let km = KMeans::train_raw(schema, &points, KMeansParams { k: 10, ..Default::default() }).unwrap();
        assert_eq!(km.n_classes(), 2);
    }

    #[test]
    fn from_parts_validates_shapes() {
        let schema = grid_schema();
        assert!(KMeans::from_parts(schema.clone(), vec![], vec![]).is_err());
        assert!(KMeans::from_parts(schema.clone(), vec![vec![0.0]], vec![vec![1.0, 1.0]]).is_err());
        assert!(KMeans::from_parts(
            schema,
            vec![vec![0.0, 0.0]],
            vec![vec![-1.0, 1.0]],
        )
        .is_err());
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let schema = grid_schema();
        let points: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64 * 3.0])
            .collect();
        let p = KMeansParams { k: 3, seed: 42, ..Default::default() };
        let a = KMeans::train_raw(schema.clone(), &points, p).unwrap();
        let b = KMeans::train_raw(schema, &points, p).unwrap();
        assert_eq!(a, b);
    }
}
