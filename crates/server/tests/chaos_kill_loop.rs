//! The chaos kill-loop and its recovery oracle.
//!
//! A supervisor spawns the real `mpq-serverd` binary over a durable
//! data directory with a seeded chaos schedule (`--chaos-seed`), lets
//! concurrent [`ReliableClient`] writers hammer it with stamped
//! INSERTs, SIGKILLs the daemon at seeded-random points, restarts it,
//! and repeats. Every restart recovers from the WAL under injected
//! connection and disk faults.
//!
//! The oracle, checked against the final recovered state:
//!
//! 1. **No lost acks** — every write a client saw acknowledged is in
//!    the recovered table.
//! 2. **No duplicates** — no (writer, seq) pair appears twice, no
//!    matter how many times its statement was retried across crashes.
//! 3. **No ghosts** — every recovered row was actually attempted.
//! 4. **Reference equivalence** — a fresh, never-faulted engine given
//!    the same rows serially answers the workload queries identically.
//!
//! `chaos_kill_loop_smoke` is sized for CI (a few kill cycles, four
//! writers). The acceptance-scale run — 20 cycles, eight writers — is
//! `chaos_kill_loop_full`, `#[ignore]`d by default:
//!
//! ```text
//! cargo test -p mpq-server --test chaos_kill_loop -- --ignored
//! ```

use mpq_client::{ReliableClient, RetryPolicy};
use mpq_engine::{Catalog, Engine, Table};
use mpq_types::{AttrDomain, Attribute, Dataset, Member, Schema};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

const MAX_WRITERS: usize = 8;
const MAX_SEQS: usize = 512;
/// Writers stop a little short of the domain so the workload can never
/// outrun the label space even on a fast machine.
const SEQ_CAP: u64 = 500;

/// The chaos table: each row is one acknowledged-or-not write, encoded
/// losslessly as a (writer, seq) pair of categorical members. A single
/// sentinel row (`w0`, `s511`) keeps the table non-empty from birth;
/// the oracle excludes it.
fn chaos_schema() -> Schema {
    let writers: Vec<String> = (0..MAX_WRITERS).map(|w| format!("w{w}")).collect();
    let seqs: Vec<String> = (0..MAX_SEQS).map(|s| format!("s{s}")).collect();
    Schema::new(vec![
        Attribute::new("writer", AttrDomain::categorical(writers.iter().map(String::as_str))),
        Attribute::new("seq", AttrDomain::categorical(seqs.iter().map(String::as_str))),
    ])
    .unwrap()
}

const SENTINEL: (Member, Member) = (0, (MAX_SEQS - 1) as Member);

fn chaos_table() -> Table {
    let mut ds = Dataset::new(chaos_schema());
    ds.push_encoded(&[SENTINEL.0, SENTINEL.1]).unwrap();
    Table::with_page_bytes("chaos", &ds, 512)
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mpq-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create temp dir");
    d
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Spawns `mpq-serverd` over `data_dir` and blocks until it publishes
/// its port. `chaos_seed: None` starts a healthy (drain-only) server.
fn spawn_serverd(
    data_dir: &Path,
    port_file: &Path,
    chaos_seed: Option<u64>,
) -> (Child, String) {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mpq-serverd"));
    cmd.arg("--data-dir")
        .arg(data_dir)
        .arg("--port-file")
        .arg(port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(seed) = chaos_seed {
        cmd.args(["--chaos-seed", &seed.to_string(), "--chaos-period-ms", "20"]);
    }
    let mut child = cmd.spawn().expect("spawn mpq-serverd");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(addr) = std::fs::read_to_string(port_file) {
            return (child, addr.trim().to_string());
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("mpq-serverd exited before publishing its port: {status}");
        }
        assert!(Instant::now() < deadline, "mpq-serverd never published its port");
        std::thread::sleep(Duration::from_millis(10));
    }
}

struct WriterLog {
    acked: Vec<u64>,
    attempted: u64,
}

/// One writer: stamped INSERTs through a [`ReliableClient`] whose
/// address handle the supervisor repoints after every restart. A
/// statement that exhausts its retry budget is recorded as attempted
/// (it may or may not have applied — but never twice, because every
/// retry carried the same id); the writer moves on to the next seq.
fn run_writer(
    writer: usize,
    addr: Arc<RwLock<String>>,
    stop: Arc<AtomicBool>,
) -> WriterLog {
    let policy = RetryPolicy {
        max_attempts: 1000,
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(100),
        total_budget: Duration::from_secs(30),
        attempt_timeout: Duration::from_secs(2),
    };
    let mut client = ReliableClient::with_addr_handle(addr, policy, 1000 + writer as u64);
    let mut log = WriterLog { acked: Vec::new(), attempted: 0 };
    for seq in 0..SEQ_CAP {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        log.attempted = seq + 1;
        let sql = format!("INSERT INTO chaos VALUES ('w{writer}', 's{seq}')");
        if client.statement(&sql).is_ok() {
            log.acked.push(seq);
        }
    }
    log
}

fn kill_loop(tag: &str, seed: u64, cycles: usize, writers: usize) {
    assert!(writers <= MAX_WRITERS);
    let dir = temp_dir(tag);
    let port_file = dir.join("port");

    // Pre-create the chaos table (there is no CREATE TABLE over the
    // wire); a clean close writes the shutdown marker so the first
    // serverd start recovers trivially.
    {
        let e = Engine::open(&dir).expect("pre-create data dir");
        e.create_table(chaos_table()).expect("create chaos table");
    }

    let mut rng = seed | 1;
    let addr = Arc::new(RwLock::new(String::new()));
    let stop = Arc::new(AtomicBool::new(false));

    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let (addr, stop) = (Arc::clone(&addr), Arc::clone(&stop));
            std::thread::spawn(move || run_writer(w, addr, stop))
        })
        .collect();

    for cycle in 0..cycles {
        let (mut child, new_addr) =
            spawn_serverd(&dir, &port_file, Some(seed ^ (cycle as u64).wrapping_mul(0x9e37)));
        *addr.write().unwrap() = new_addr;
        // SIGKILL at a seeded-random point: sometimes mid-recovery
        // burst, sometimes into the steady state.
        std::thread::sleep(Duration::from_millis(120 + xorshift(&mut rng) % 400));
        child.kill().expect("SIGKILL serverd");
        child.wait().expect("reap serverd");
    }

    // Final healthy server: writers drain their in-flight retries
    // against it, then stop.
    let (mut child, new_addr) = spawn_serverd(&dir, &port_file, None);
    *addr.write().unwrap() = new_addr;
    stop.store(true, Ordering::Relaxed);
    let logs: Vec<WriterLog> = handles.into_iter().map(|h| h.join().expect("writer")).collect();
    child.kill().expect("SIGKILL final serverd");
    child.wait().expect("reap final serverd");

    // ---- the recovery oracle ----
    let recovered = Engine::open(&dir).expect("final recovery");
    let t = recovered.catalog().table_by_name("chaos").expect("chaos table survived");
    let (writer_col, seq_col) = {
        let cat = recovered.catalog();
        let table = &cat.table(t).table;
        (table.column(0).to_vec(), table.column(1).to_vec())
    };
    let mut present = HashSet::new();
    let mut duplicates = Vec::new();
    for (&w, &s) in writer_col.iter().zip(&seq_col) {
        if (w, s) == SENTINEL {
            continue;
        }
        if !present.insert((w, s)) {
            duplicates.push((w, s));
        }
    }
    assert!(duplicates.is_empty(), "writes applied twice: {duplicates:?}");

    let total_acked: usize = logs.iter().map(|l| l.acked.len()).sum();
    for (w, log) in logs.iter().enumerate() {
        for &seq in &log.acked {
            assert!(
                present.contains(&(w as Member, seq as Member)),
                "acknowledged write (w{w}, s{seq}) lost by recovery"
            );
        }
    }
    for &(w, s) in &present {
        let log = logs.get(w as usize).unwrap_or_else(|| panic!("ghost writer w{w}"));
        assert!(
            (s as u64) < log.attempted,
            "recovered (w{w}, s{s}) was never attempted (attempted up to {})",
            log.attempted
        );
    }
    // The run must have actually exercised something.
    assert!(total_acked > 0, "no write was ever acknowledged — chaos too hot");
    assert!(present.len() >= total_acked);

    // Reference equivalence: a never-faulted engine fed the same rows
    // serially answers the workload queries identically.
    let mut reference_cat = Catalog::new();
    reference_cat.add_table(chaos_table()).unwrap();
    let reference = Engine::new(reference_cat);
    let mut rows: Vec<Vec<Member>> = present.iter().map(|&(w, s)| vec![w, s]).collect();
    rows.sort();
    reference.insert_rows("chaos", rows).expect("reference insert");
    // Row ids are physical positions and the two engines ingested in
    // different orders, so compare the *decoded* result sets.
    let decode = |e: &Engine, tid: usize, ids: &[u32]| -> Vec<(Member, Member)> {
        let cat = e.catalog();
        let table = &cat.table(tid).table;
        let mut rows: Vec<(Member, Member)> = ids
            .iter()
            .map(|&i| (table.column(0)[i as usize], table.column(1)[i as usize]))
            .collect();
        rows.sort_unstable();
        rows
    };
    let reference_tid = reference.catalog().table_by_name("chaos").unwrap();
    for w in 0..writers {
        let q = format!("SELECT * FROM chaos WHERE writer = 'w{w}'");
        let live = recovered.query(&q).expect("recovered query").rows;
        let reference_ids = reference.query(&q).expect("reference query").rows;
        assert_eq!(
            decode(&recovered, t, &live),
            decode(&reference, reference_tid, &reference_ids),
            "writer w{w}: recovered != reference"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// CI-sized: a handful of kill cycles over four concurrent writers,
/// fixed seed, well under a minute end to end.
#[test]
fn chaos_kill_loop_smoke() {
    kill_loop("smoke", 0xc0ffee, 5, 4);
}

/// Acceptance-scale: twenty SIGKILL cycles, eight concurrent retrying
/// writers. Run explicitly with `-- --ignored`.
#[test]
#[ignore = "acceptance-scale chaos run; minutes long"]
fn chaos_kill_loop_full() {
    kill_loop("full", 0xdecade, 20, 8);
}
