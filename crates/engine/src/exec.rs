//! Plan execution with honest cost accounting.

use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::optimizer::{AccessPath, Plan};
use crate::table::RowId;
use std::collections::HashSet;
use std::time::Instant;

/// Metrics observed while executing a plan — the quantities the paper's
/// experiments compare (pages touched drive the running-time reductions;
/// model invocations measure the black-box "extract and mine" overhead).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecMetrics {
    /// Heap pages read.
    pub heap_pages_read: u64,
    /// Index pages read (postings traffic).
    pub index_pages_read: u64,
    /// Rows fetched and tested against the residual predicate.
    pub rows_examined: u64,
    /// Black-box model applications performed.
    pub model_invocations: u64,
    /// Rows in the result.
    pub output_rows: u64,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
}

impl ExecMetrics {
    /// Total pages of any kind.
    pub fn total_pages(&self) -> u64 {
        self.heap_pages_read + self.index_pages_read
    }
}

/// Result of executing a plan: matching row ids plus metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Row ids satisfying the predicate, ascending.
    pub rows: Vec<RowId>,
    /// Observed metrics.
    pub metrics: ExecMetrics,
}

/// Executes `plan` against the catalog.
pub fn execute(plan: &Plan, catalog: &Catalog) -> ExecResult {
    let start = Instant::now();
    let entry = catalog.table(plan.table);
    let table = &entry.table;
    let mut m = ExecMetrics::default();
    let mut out = Vec::new();
    let mut row_buf = vec![0u16; table.schema().len()];

    let mut test_pred = |row: RowId, pred: &Expr, m: &mut ExecMetrics, out: &mut Vec<RowId>| {
        for d in 0..table.schema().len() {
            row_buf[d] = table.cell(row, d);
        }
        m.rows_examined += 1;
        if pred.eval(&row_buf, catalog, &mut m.model_invocations) {
            out.push(row);
        }
    };
    let residual = &plan.residual;

    match &plan.access {
        AccessPath::ConstantScan => {}
        AccessPath::FullScan => {
            m.heap_pages_read = table.n_pages() as u64;
            for row in 0..table.n_rows() as RowId {
                test_pred(row, residual, &mut m, &mut out);
            }
        }
        AccessPath::IndexSeek(seek) => {
            let ix = &entry.indexes[seek.index];
            let rows = ix.probe(&seek.preds);
            m.index_pages_read = index_pages(rows.len(), table.rows_per_page());
            m.heap_pages_read = distinct_pages(&rows, table);
            for row in rows {
                test_pred(row, residual, &mut m, &mut out);
            }
        }
        AccessPath::IndexUnion(seeks) => {
            // Tag each fetched row with whether *some* exact seek
            // produced it: those rows already satisfy the union's OR and
            // only need the `skip_or` residual (other conjuncts) — the
            // covering-index fast path that makes big-DNF envelopes
            // cheap to verify.
            let mut union: Vec<(RowId, bool)> = Vec::new();
            for seek in seeks {
                let ix = &entry.indexes[seek.index];
                let rows = ix.probe(&seek.preds);
                m.index_pages_read += index_pages(rows.len(), table.rows_per_page());
                union.extend(rows.into_iter().map(|r| (r, seek.exact)));
            }
            union.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            union.dedup_by_key(|(r, _)| *r); // keeps the exact=true copy
            m.heap_pages_read =
                distinct_pages_iter(union.iter().map(|(r, _)| *r), table);
            let skip_or = plan.skip_or.as_ref();
            for (row, exact) in union {
                match (exact, skip_or) {
                    (true, Some(rest)) => test_pred(row, rest, &mut m, &mut out),
                    _ => test_pred(row, residual, &mut m, &mut out),
                }
            }
        }
    }

    m.output_rows = out.len() as u64;
    m.elapsed = start.elapsed();
    ExecResult { rows: out, metrics: m }
}

fn index_pages(postings: usize, rows_per_page: usize) -> u64 {
    // Postings are dense u32s; a page holds ~4x as many entries as rows.
    (postings.div_ceil((rows_per_page * 4).max(1)).max(1)) as u64
}

fn distinct_pages(rows: &[RowId], table: &crate::table::Table) -> u64 {
    distinct_pages_iter(rows.iter().copied(), table)
}

fn distinct_pages_iter(rows: impl Iterator<Item = RowId>, table: &crate::table::Table) -> u64 {
    let mut pages: HashSet<usize> = HashSet::new();
    for r in rows {
        pages.insert(table.page_of(r));
    }
    pages.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Atom, AtomPred};
    use crate::optimizer::{choose_plan, OptimizerOptions};
    use crate::table::Table;
    use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, Schema};

    /// 100k rows; the rare member (0.1%) occupies the first 100 rows so
    /// its heap pages are genuinely few.
    fn catalog() -> Catalog {
        let schema = Schema::new(vec![Attribute::new(
            "a",
            AttrDomain::categorical(["rare", "common"]),
        )])
        .unwrap();
        let rows = (0..100_000).map(|i| vec![u16::from(i >= 100)]);
        let ds = Dataset::from_rows(schema, rows).unwrap();
        let mut cat = Catalog::new();
        let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.create_index(t, &[AttrId(0)]);
        cat
    }

    fn run(e: Expr, cat: &Catalog) -> ExecResult {
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, cat, &OptimizerOptions::default());
        execute(&plan, cat)
    }

    #[test]
    fn full_scan_reads_all_pages_and_filters() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) }); // 99%
        let r = run(e, &cat);
        assert_eq!(r.rows.len(), 99_900);
        assert_eq!(r.metrics.rows_examined, 100_000);
        assert_eq!(r.metrics.heap_pages_read, cat.table(0).table.n_pages() as u64);
    }

    #[test]
    fn index_seek_touches_few_pages() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }); // 1%
        let r = run(e, &cat);
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.metrics.rows_examined, 100, "only matched rows fetched");
        assert!(
            r.metrics.heap_pages_read < cat.table(0).table.n_pages() as u64,
            "index fetch must touch fewer pages than a scan"
        );
        assert!(r.metrics.index_pages_read >= 1);
    }

    #[test]
    fn constant_scan_touches_nothing() {
        let cat = catalog();
        let r = run(Expr::Const(false), &cat);
        assert!(r.rows.is_empty());
        assert_eq!(r.metrics.total_pages(), 0);
        assert_eq!(r.metrics.rows_examined, 0);
    }

    #[test]
    fn index_union_dedupes_rows() {
        let cat = catalog();
        // a = rare OR a = rare (duplicate seeks) must not double-count.
        let e = Expr::Or(vec![
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
        ]);
        // Bypass normalize-dedup on purpose: hand the raw OR to the
        // optimizer.
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let r = execute(&plan, &cat);
        assert_eq!(r.rows.len(), 100);
        assert!(r.rows.windows(2).all(|w| w[0] < w[1]), "sorted, deduped row ids");
    }

    #[test]
    fn results_identical_across_access_paths() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let schema = cat.table(0).table.schema().clone();
        let seek_plan = choose_plan(e.clone(), 0, &schema, &cat, &OptimizerOptions::default());
        // Force a scan by disallowing union + pretending no indexes:
        let scan_plan = Plan {
            access: AccessPath::FullScan,
            ..seek_plan.clone()
        };
        assert_eq!(execute(&seek_plan, &cat).rows, execute(&scan_plan, &cat).rows);
    }
}
