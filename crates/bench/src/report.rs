//! Aggregations and markdown rendering of experiment rows — one function
//! per table/figure of the paper.

use crate::experiment::ExperimentRow;
use crate::setup::ModelKindTag;

/// Model-kind display names matching the paper's column headers.
pub fn kind_name(kind: ModelKindTag) -> &'static str {
    match kind {
        ModelKindTag::Tree => "Decision Tree",
        ModelKindTag::NaiveBayes => "Naive Bayes",
        ModelKindTag::Clustering => "Clustering",
    }
}

/// §5.2.1 first inline table: average running-time reduction per model
/// kind, in percent.
pub fn avg_reduction_by_kind(rows: &[ExperimentRow]) -> Vec<(ModelKindTag, f64)> {
    kinds()
        .into_iter()
        .filter_map(|k| {
            let xs: Vec<f64> =
                rows.iter().filter(|r| r.kind == k).map(|r| r.reduction().max(0.0)).collect();
            if xs.is_empty() {
                None
            } else {
                Some((k, 100.0 * xs.iter().sum::<f64>() / xs.len() as f64))
            }
        })
        .collect()
}

/// Scale-free companion to [`avg_reduction_by_kind`]: average reduction
/// in pages read (heap + index) vs the full scan. This is what the
/// paper's I/O-bound running times actually measured; our in-memory
/// wall-clock at small scales is CPU-noise-dominated.
pub fn avg_page_reduction_by_kind(rows: &[ExperimentRow]) -> Vec<(ModelKindTag, f64)> {
    kinds()
        .into_iter()
        .filter_map(|k| {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| r.kind == k)
                .map(|r| r.page_reduction().max(0.0))
                .collect();
            if xs.is_empty() {
                None
            } else {
                Some((k, 100.0 * xs.iter().sum::<f64>() / xs.len() as f64))
            }
        })
        .collect()
}

/// §5.2.1 second inline table: percentage of queries whose plan changed.
pub fn plan_change_by_kind(rows: &[ExperimentRow]) -> Vec<(ModelKindTag, f64)> {
    kinds()
        .into_iter()
        .filter_map(|k| {
            let xs: Vec<bool> =
                rows.iter().filter(|r| r.kind == k).map(|r| r.plan_changed).collect();
            if xs.is_empty() {
                None
            } else {
                Some((k, 100.0 * xs.iter().filter(|&&b| b).count() as f64 / xs.len() as f64))
            }
        })
        .collect()
}

/// Figures 3–5: per-dataset plan-change percentage for one model kind.
pub fn plan_change_by_dataset(rows: &[ExperimentRow], kind: ModelKindTag) -> Vec<(String, f64)> {
    let mut datasets: Vec<String> = rows
        .iter()
        .filter(|r| r.kind == kind)
        .map(|r| r.dataset.clone())
        .collect();
    datasets.dedup();
    datasets
        .into_iter()
        .map(|d| {
            let xs: Vec<bool> = rows
                .iter()
                .filter(|r| r.kind == kind && r.dataset == d)
                .map(|r| r.plan_changed)
                .collect();
            let pct = 100.0 * xs.iter().filter(|&&b| b).count() as f64 / xs.len().max(1) as f64;
            (d, pct)
        })
        .collect()
}

/// Figure 6's x-axis buckets over selectivity.
pub const SELECTIVITY_BUCKETS: [(f64, f64, &str); 5] = [
    (0.0, 0.0005, "<=0.05%"),
    (0.0005, 0.005, "0.05-0.5%"),
    (0.005, 0.05, "0.5-5%"),
    (0.05, 0.1, "5-10%"),
    (0.1, 1.01, ">10%"),
];

/// Figure 6: average running-time reduction bucketed by selectivity;
/// `use_envelope_selectivity` switches between the figure's two bar
/// series (original vs upper-envelope selectivity).
pub fn reduction_by_selectivity_bucket(
    rows: &[ExperimentRow],
    use_envelope_selectivity: bool,
) -> Vec<(&'static str, usize, f64)> {
    SELECTIVITY_BUCKETS
        .iter()
        .map(|&(lo, hi, label)| {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| {
                    let s = if use_envelope_selectivity {
                        r.env_selectivity
                    } else {
                        r.orig_selectivity
                    };
                    s >= lo && s < hi
                })
                .map(|r| 100.0 * r.page_reduction().max(0.0))
                .collect();
            let avg = if xs.is_empty() { 0.0 } else { xs.iter().sum::<f64>() / xs.len() as f64 };
            (label, xs.len(), avg)
        })
        .collect()
}

/// Figure 7: the tightness scatter — (original, envelope) selectivity per
/// class, for naive Bayes and clustering (trees are exact by §3.1).
pub fn tightness_points(rows: &[ExperimentRow]) -> Vec<&ExperimentRow> {
    rows.iter().filter(|r| r.kind != ModelKindTag::Tree).collect()
}

/// Renders a two-column markdown table.
pub fn md_table(headers: (&str, &str), rows: impl IntoIterator<Item = (String, String)>) -> String {
    let mut out = format!("| {} | {} |\n|---|---|\n", headers.0, headers.1);
    for (a, b) in rows {
        out.push_str(&format!("| {a} | {b} |\n"));
    }
    out
}

fn kinds() -> [ModelKindTag; 3] {
    [ModelKindTag::Tree, ModelKindTag::NaiveBayes, ModelKindTag::Clustering]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn row(kind: ModelKindTag, dataset: &str, orig: f64, env: f64, changed: bool, red: f64) -> ExperimentRow {
        ExperimentRow {
            dataset: dataset.into(),
            kind,
            class: 0,
            orig_selectivity: orig,
            env_selectivity: env,
            n_disjuncts: 1,
            exact: false,
            plan_changed: changed,
            constant_scan: false,
            scan_time: Duration::from_millis(100),
            env_time: Duration::from_millis((100.0 * (1.0 - red)) as u64),
            scan_pages: 100,
            env_pages: (100.0 * (1.0 - red)) as u64,
        }
    }

    #[test]
    fn aggregations_compute_percentages() {
        let rows = vec![
            row(ModelKindTag::Tree, "a", 0.01, 0.01, true, 0.8),
            row(ModelKindTag::Tree, "a", 0.5, 0.5, false, 0.0),
            row(ModelKindTag::NaiveBayes, "a", 0.001, 0.002, true, 0.9),
        ];
        let red = avg_reduction_by_kind(&rows);
        let tree = red.iter().find(|(k, _)| *k == ModelKindTag::Tree).unwrap().1;
        assert!((tree - 40.0).abs() < 1.0, "avg of 80% and 0%: got {tree}");
        let pc = plan_change_by_kind(&rows);
        let tree_pc = pc.iter().find(|(k, _)| *k == ModelKindTag::Tree).unwrap().1;
        assert_eq!(tree_pc, 50.0);
        let by_ds = plan_change_by_dataset(&rows, ModelKindTag::NaiveBayes);
        assert_eq!(by_ds, vec![("a".to_string(), 100.0)]);
    }

    #[test]
    fn buckets_partition_selectivity_space() {
        // Bucket boundaries must cover [0, 1] without gaps.
        let mut prev_hi = 0.0;
        for (lo, hi, _) in SELECTIVITY_BUCKETS {
            assert_eq!(lo, prev_hi, "buckets must be contiguous");
            prev_hi = hi;
        }
        assert!(prev_hi >= 1.0);
        let rows = vec![
            row(ModelKindTag::Tree, "a", 0.0001, 0.0001, true, 0.9),
            row(ModelKindTag::Tree, "a", 0.2, 0.2, false, 0.0),
        ];
        let buckets = reduction_by_selectivity_bucket(&rows, false);
        assert_eq!(buckets[0].1, 1, "one row in the lowest bucket");
        assert_eq!(buckets[4].1, 1, "one row in the highest bucket");
        assert!(buckets[0].2 > buckets[4].2);
    }

    #[test]
    fn tightness_excludes_trees() {
        let rows = vec![
            row(ModelKindTag::Tree, "a", 0.1, 0.1, true, 0.5),
            row(ModelKindTag::NaiveBayes, "a", 0.1, 0.2, true, 0.5),
            row(ModelKindTag::Clustering, "a", 0.1, 0.3, true, 0.5),
        ];
        assert_eq!(tightness_points(&rows).len(), 2);
    }

    #[test]
    fn md_table_renders() {
        let t = md_table(("a", "b"), vec![("x".into(), "1".into())]);
        assert!(t.contains("| a | b |") && t.contains("| x | 1 |"));
    }
}
