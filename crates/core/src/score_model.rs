//! Additive score models: the shared abstraction the top-down derivation
//! bounds over.
//!
//! Naive Bayes (Eq. 2), centroid-based clustering and diagonal-Gaussian
//! model-based clustering all score a point as
//! `score_k(x) = prior_k + Σ_d contrib_{dk}(x_d)` and predict the argmax
//! class — §3.3 of the paper makes exactly this observation to reuse the
//! naive-Bayes algorithm for clustering. A [`ScoreModel`] stores, for
//! every (dimension, member, class), an **interval** `[lo, hi]` bounding
//! the per-dimension contribution over that member:
//!
//! * discrete naive Bayes: `lo == hi == log Pr(m | c_k)` (a point);
//! * k-means / GMM: the min and max of the per-dimension quadratic over
//!   the member's bin, so every *raw* point of the bin is bounded, not
//!   just its representative.
//!
//! All values live in the log domain; f64 addition is monotone, so
//! summing per-dimension bounds in fixed order yields sound region
//! bounds under rounding.

use crate::region::Region;
use mpq_types::{ClassId, Member, Row};
use mpq_models::{Gmm, KMeans, NaiveBayes};

/// Which bounding scheme the derivation uses on ambiguous regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// Lemma 3.1: independent per-class min/max of the score.
    Basic,
    /// Generalized Lemma 3.2: bound the *difference* `score_k − score_j`
    /// per rival class `j`. Exact for `K = 2`; strictly tighter than
    /// [`BoundMode::Basic`] for `K > 2`.
    #[default]
    PairwiseRatio,
}

/// Region status with respect to the target class (paper §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionStatus {
    /// Every point of the region is predicted as the target class.
    MustWin,
    /// No point of the region is predicted as the target class.
    MustLose,
    /// Undetermined; shrink and split further.
    Ambiguous,
}

/// Per-dimension score table: `lo/hi[m * K + k]` bound the contribution
/// of member `m` to class `k`'s score.
#[derive(Debug, Clone, PartialEq)]
pub struct DimTable {
    k: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl DimTable {
    /// Lower bound of member `m`'s contribution to class `k`.
    #[inline]
    pub fn lo(&self, m: Member, k: usize) -> f64 {
        self.lo[m as usize * self.k + k]
    }

    /// Upper bound of member `m`'s contribution to class `k`.
    #[inline]
    pub fn hi(&self, m: Member, k: usize) -> f64 {
        self.hi[m as usize * self.k + k]
    }

    /// Number of members in this dimension.
    pub fn n_members(&self) -> u16 {
        (self.lo.len() / self.k) as u16
    }
}

/// A per-dimension, per-class quadratic score contribution
/// `contrib(x) = k0 − w·(x − c)²` — the shape shared by weighted-
/// Euclidean k-means terms and diagonal-Gaussian log densities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadTerm {
    /// Additive constant.
    pub k0: f64,
    /// Non-negative curvature weight.
    pub w: f64,
    /// Center (centroid coordinate / mean).
    pub c: f64,
}

impl QuadTerm {
    /// Evaluates the contribution at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.k0 - self.w * (x - self.c) * (x - self.c)
    }
}

/// Quadratic description of one dimension: the per-class terms plus each
/// member's numeric bin interval. Present only for quadratic models
/// (k-means, GMM); enables the *exact* pairwise difference bound that
/// interval subtraction cannot provide (notably on unbounded end bins,
/// where independent intervals are `[-inf, hi]` and can never decide).
#[derive(Debug, Clone, PartialEq)]
pub struct QuadDim {
    /// One term per class.
    pub terms: Vec<QuadTerm>,
    /// `(lo, hi]` numeric interval per member; end bins may be infinite.
    pub bins: Vec<(f64, f64)>,
}

impl QuadDim {
    /// Range of `terms[k](x) − terms[j](x)` over member `m`'s bin.
    /// The difference of two quadratics is one quadratic, so its extrema
    /// over an interval are at the endpoints or the vertex.
    pub fn diff_range(&self, m: Member, k: usize, j: usize) -> (f64, f64) {
        let (tk, tj) = (self.terms[k], self.terms[j]);
        // g(x) = αx² + βx + γ
        let alpha = tj.w - tk.w;
        let beta = 2.0 * (tk.w * tk.c - tj.w * tj.c);
        let gamma = (tk.k0 - tj.k0) - tk.w * tk.c * tk.c + tj.w * tj.c * tj.c;
        let (lo, hi) = self.bins[m as usize];
        quad_range(alpha, beta, gamma, lo, hi)
    }
}

/// Min and max of `αx² + βx + γ` over `[lo, hi]`, where either endpoint
/// may be infinite.
fn quad_range(alpha: f64, beta: f64, gamma: f64, lo: f64, hi: f64) -> (f64, f64) {
    let eval = |x: f64| alpha * x * x + beta * x + gamma;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut consider = |v: f64| {
        min = min.min(v);
        max = max.max(v);
    };
    for &end in &[lo, hi] {
        if end.is_finite() {
            consider(eval(end));
        } else if alpha != 0.0 {
            consider(if alpha > 0.0 { f64::INFINITY } else { f64::NEG_INFINITY });
        } else if beta != 0.0 {
            // Linear: x → −inf gives −sign(β)·inf, x → +inf gives +sign(β)·inf.
            let toward_pos_inf = end == f64::INFINITY;
            let v = if (beta > 0.0) == toward_pos_inf { f64::INFINITY } else { f64::NEG_INFINITY };
            consider(v);
        } else {
            consider(gamma);
        }
    }
    if alpha != 0.0 {
        let vertex = -beta / (2.0 * alpha);
        if vertex > lo && vertex <= hi {
            consider(eval(vertex));
        }
    }
    (min, max)
}

/// An additive interval score model over the discretized grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreModel {
    n_classes: usize,
    /// Additive per-class constant (log prior / log τ / 0 for k-means).
    prior: Vec<f64>,
    /// Tie-break rank per class; smaller rank wins ties. For naive Bayes
    /// this encodes "higher prior wins"; clustering uses the cluster id.
    tie_rank: Vec<u16>,
    dims: Vec<DimTable>,
    /// Exact quadratic description per dimension, where the model has
    /// one (ordered k-means/GMM dimensions). Used by the pairwise bound;
    /// dimensions without a quadratic (discrete NB, categorical k-means
    /// mismatch terms) fall back to the interval tables, which are exact
    /// points there anyway. Empty when no dimension is quadratic.
    quads: Vec<Option<QuadDim>>,
    /// True when every interval is a point (`lo == hi`), i.e. the model's
    /// prediction is fully determined by the cell — naive Bayes.
    point_model: bool,
}

impl ScoreModel {
    /// Builds a score model from raw parts (used by tests and ablations).
    pub fn from_parts(prior: Vec<f64>, tie_rank: Vec<u16>, dims: Vec<DimTable>) -> ScoreModel {
        let n_classes = prior.len();
        debug_assert_eq!(tie_rank.len(), n_classes);
        let point_model = dims.iter().all(|t| t.lo == t.hi);
        ScoreModel { n_classes, prior, tie_rank, dims, quads: Vec::new(), point_model }
    }

    /// The exact log tables of a discrete naive Bayes model: every
    /// interval is a point, so region statuses computed here agree with
    /// `NaiveBayes::predict` bit-for-bit.
    pub fn from_naive_bayes(nb: &NaiveBayes) -> ScoreModel {
        use mpq_models::Classifier as _;
        let k = nb.n_classes();
        let prior: Vec<f64> = (0..k).map(|c| nb.log_prior(ClassId(c as u16))).collect();
        let tie_rank = tie_rank_by_prior(&prior);
        let dims = nb
            .schema()
            .iter()
            .map(|(d, a)| {
                let card = a.domain.cardinality();
                let mut lo = Vec::with_capacity(card as usize * k);
                for m in 0..card {
                    for c in 0..k {
                        lo.push(nb.log_cond(d.index(), m, ClassId(c as u16)));
                    }
                }
                DimTable { k, hi: lo.clone(), lo }
            })
            .collect();
        ScoreModel { n_classes: k, prior, tie_rank, dims, quads: Vec::new(), point_model: true }
    }

    /// Interval tables for centroid-based clustering: on ordered
    /// dimensions the contribution of bin `m` to cluster `k` is
    /// `−w (x − c)²` for `x` in the bin, whose extrema over the interval
    /// are attained at the closest / farthest endpoint from the centroid;
    /// on categorical dimensions the k-prototypes mismatch term
    /// contributes the *point* value `0` (member equals the cluster's
    /// mode) or `−w`.
    pub fn from_kmeans(km: &KMeans) -> ScoreModel {
        use mpq_models::Classifier as _;
        let k = km.n_classes();
        let prior = vec![0.0; k];
        let tie_rank = (0..k as u16).collect();
        let mut quads = Vec::with_capacity(km.schema().len());
        let mut point_model = true;
        let dims = km
            .schema()
            .iter()
            .map(|(d, a)| {
                let card = a.domain.cardinality();
                let mut lo = Vec::with_capacity(card as usize * k);
                let mut hi = Vec::with_capacity(card as usize * k);
                if km.is_categorical_dim(d.index()) {
                    for m in 0..card {
                        for c in 0..k {
                            let mode = km.centroids()[c][d.index()];
                            let w = km.weights()[c][d.index()];
                            let v = if (m as f64) == mode { 0.0 } else { -w };
                            lo.push(v);
                            hi.push(v);
                        }
                    }
                    quads.push(None);
                } else {
                    point_model = false;
                    let mut bins = Vec::with_capacity(card as usize);
                    for m in 0..card {
                        let (a_lo, a_hi) = a.domain.bin_interval(m).expect("ordered attr");
                        bins.push((a_lo, a_hi));
                        for c in 0..k {
                            let center = km.centroids()[c][d.index()];
                            let w = km.weights()[c][d.index()];
                            let (qlo, qhi) = neg_quad_extrema(a_lo, a_hi, center, w);
                            lo.push(qlo);
                            hi.push(qhi);
                        }
                    }
                    let terms = (0..k)
                        .map(|c| QuadTerm {
                            k0: 0.0,
                            w: km.weights()[c][d.index()],
                            c: km.centroids()[c][d.index()],
                        })
                        .collect();
                    quads.push(Some(QuadDim { terms, bins }));
                }
                DimTable { k, lo, hi }
            })
            .collect();
        ScoreModel { n_classes: k, prior, tie_rank, dims, quads, point_model }
    }

    /// Point tables for centroid clustering **at the discretized
    /// inputs**: member `m`'s contribution is the score at the bin
    /// representative (what applying the model to an encoded row
    /// computes — §3.3's "expressed exactly as naive Bayes"). Exact for
    /// encoded-row prediction; not a bound over raw in-bin points (use
    /// [`ScoreModel::from_kmeans`] for that).
    pub fn from_kmeans_discretized(km: &KMeans) -> ScoreModel {
        use mpq_models::Classifier as _;
        let k = km.n_classes();
        let prior = vec![0.0; k];
        let tie_rank = (0..k as u16).collect();
        let dims = km
            .schema()
            .iter()
            .map(|(d, a)| {
                let card = a.domain.cardinality();
                let mut lo = Vec::with_capacity(card as usize * k);
                for m in 0..card {
                    let x = if km.is_categorical_dim(d.index()) {
                        m as f64
                    } else {
                        a.domain.bin_representative(m).expect("ordered attr")
                    };
                    for c in 0..k {
                        let center = km.centroids()[c][d.index()];
                        let w = km.weights()[c][d.index()];
                        let v = if km.is_categorical_dim(d.index()) {
                            if x == center {
                                0.0
                            } else {
                                -w
                            }
                        } else {
                            -w * (x - center) * (x - center)
                        };
                        lo.push(v);
                    }
                }
                DimTable { k, hi: lo.clone(), lo }
            })
            .collect();
        ScoreModel { n_classes: k, prior, tie_rank, dims, quads: Vec::new(), point_model: true }
    }

    /// Point tables for a diagonal Gaussian mixture at the discretized
    /// inputs (see [`ScoreModel::from_kmeans_discretized`]).
    pub fn from_gmm_discretized(gmm: &Gmm) -> ScoreModel {
        use mpq_models::Classifier as _;
        const LOG_2PI: f64 = 1.8378770664093453;
        let k = gmm.n_classes();
        let prior: Vec<f64> = (0..k).map(|c| gmm.log_tau(ClassId(c as u16))).collect();
        let tie_rank = (0..k as u16).collect();
        let dims = gmm
            .schema()
            .iter()
            .map(|(d, a)| {
                let card = a.domain.cardinality();
                let mut lo = Vec::with_capacity(card as usize * k);
                for m in 0..card {
                    let x = a.domain.bin_representative(m).expect("ordered attr");
                    for c in 0..k {
                        let mu = gmm.means()[c][d.index()];
                        let var = gmm.vars()[c][d.index()];
                        lo.push(
                            -0.5 * (LOG_2PI + var.ln()) - (x - mu) * (x - mu) / (2.0 * var),
                        );
                    }
                }
                DimTable { k, hi: lo.clone(), lo }
            })
            .collect();
        ScoreModel { n_classes: k, prior, tie_rank, dims, quads: Vec::new(), point_model: true }
    }

    /// Interval tables for a diagonal-covariance Gaussian mixture: the
    /// per-dimension log density `−½ln(2πσ²) − (x−μ)²/2σ²` is again a
    /// negated quadratic over each bin.
    pub fn from_gmm(gmm: &Gmm) -> ScoreModel {
        use mpq_models::Classifier as _;
        const LOG_2PI: f64 = 1.8378770664093453;
        let k = gmm.n_classes();
        let prior: Vec<f64> = (0..k).map(|c| gmm.log_tau(ClassId(c as u16))).collect();
        let tie_rank = (0..k as u16).collect();
        let mut quads = Vec::with_capacity(gmm.schema().len());
        let dims = gmm
            .schema()
            .iter()
            .map(|(d, a)| {
                let card = a.domain.cardinality();
                let mut lo = Vec::with_capacity(card as usize * k);
                let mut hi = Vec::with_capacity(card as usize * k);
                let mut bins = Vec::with_capacity(card as usize);
                for m in 0..card {
                    let (a_lo, a_hi) = a.domain.bin_interval(m).expect("ordered attr");
                    bins.push((a_lo, a_hi));
                    for c in 0..k {
                        let mu = gmm.means()[c][d.index()];
                        let var = gmm.vars()[c][d.index()];
                        let constant = -0.5 * (LOG_2PI + var.ln());
                        let (qlo, qhi) = neg_quad_extrema(a_lo, a_hi, mu, 1.0 / (2.0 * var));
                        lo.push(constant + qlo);
                        hi.push(constant + qhi);
                    }
                }
                let terms = (0..k)
                    .map(|c| {
                        let var = gmm.vars()[c][d.index()];
                        QuadTerm {
                            k0: -0.5 * (LOG_2PI + var.ln()),
                            w: 1.0 / (2.0 * var),
                            c: gmm.means()[c][d.index()],
                        }
                    })
                    .collect();
                quads.push(QuadDim { terms, bins });
                DimTable { k, lo, hi }
            })
            .collect();
        ScoreModel { n_classes: k, prior, tie_rank, dims, quads: quads.into_iter().map(Some).collect(), point_model: false }
    }

    /// Number of classes `K`.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// The per-dimension table for dimension `d`.
    pub fn dim(&self, d: usize) -> &DimTable {
        &self.dims[d]
    }

    /// The additive per-class constant.
    pub fn prior(&self, k: usize) -> f64 {
        self.prior[k]
    }

    /// True when all intervals are points (naive Bayes).
    pub fn is_point_model(&self) -> bool {
        self.point_model
    }

    /// True if class `a` beats class `b` on a tied score.
    #[inline]
    pub fn tie_beats(&self, a: usize, b: usize) -> bool {
        self.tie_rank[a] < self.tie_rank[b]
    }

    /// Exact winner of a cell — only meaningful for point models, where
    /// the score of each class at the cell is a single number.
    pub fn cell_winner(&self, cell: &Row) -> ClassId {
        debug_assert!(self.point_model);
        let mut best = 0usize;
        let mut best_score = self.cell_score_lo(cell, 0);
        for k in 1..self.n_classes {
            let s = self.cell_score_lo(cell, k);
            if s > best_score || (s == best_score && self.tie_beats(k, best)) {
                best = k;
                best_score = s;
            }
        }
        ClassId(best as u16)
    }

    /// Lower bound of class `k`'s score at `cell` (exact for point
    /// models). Summed in fixed dimension order, prior first — the same
    /// order the model predictors use.
    pub fn cell_score_lo(&self, cell: &Row, k: usize) -> f64 {
        let mut s = self.prior[k];
        for (d, &m) in cell.iter().enumerate() {
            s += self.dims[d].lo(m, k);
        }
        s
    }

    /// Upper bound of class `k`'s score at `cell`.
    pub fn cell_score_hi(&self, cell: &Row, k: usize) -> f64 {
        let mut s = self.prior[k];
        for (d, &m) in cell.iter().enumerate() {
            s += self.dims[d].hi(m, k);
        }
        s
    }

    // ------------------------------------------------------------------
    // Region bounds (paper §3.2.2 / §3.2.3)
    // ------------------------------------------------------------------

    /// `minProb`-style lower bound of class `k`'s score over `region`
    /// (log domain).
    pub fn region_score_min(&self, region: &Region, k: usize) -> f64 {
        let mut s = self.prior[k];
        for (d, table) in self.dims.iter().enumerate() {
            s += region
                .dim(d)
                .iter()
                .map(|m| table.lo(m, k))
                .fold(f64::INFINITY, f64::min);
        }
        s
    }

    /// `maxProb`-style upper bound of class `k`'s score over `region`.
    pub fn region_score_max(&self, region: &Region, k: usize) -> f64 {
        let mut s = self.prior[k];
        for (d, table) in self.dims.iter().enumerate() {
            s += region
                .dim(d)
                .iter()
                .map(|m| table.hi(m, k))
                .fold(f64::NEG_INFINITY, f64::max);
        }
        s
    }

    /// Range of the per-member difference `contrib_k(m) − contrib_j(m)`
    /// on dimension `d`: exact for point models and quadratic models,
    /// the independent-interval bound otherwise.
    #[inline]
    fn member_diff_range(&self, d: usize, m: Member, k: usize, j: usize) -> (f64, f64) {
        if let Some(qd) = self.quads.get(d).and_then(|q| q.as_ref()) {
            return qd.diff_range(m, k, j);
        }
        let table = &self.dims[d];
        (table.lo(m, k) - table.hi(m, j), table.hi(m, k) - table.lo(m, j))
    }

    /// Public access to the per-member difference bounds (used by the
    /// rival-targeted split heuristic and ablation benches).
    pub fn member_diff_bounds(&self, d: usize, m: Member, k: usize, j: usize) -> (f64, f64) {
        self.member_diff_range(d, m, k, j)
    }

    /// Lower bound on `score_k − score_j` over the region, decomposed per
    /// dimension (the Lemma 3.2 ratio bound, in the log domain and
    /// generalized to any pair). Exact per pair for point models (naive
    /// Bayes) *and* for quadratic models (k-means, GMM), where the
    /// per-dimension difference of two quadratics is minimized
    /// analytically over each bin.
    pub fn region_diff_min(&self, region: &Region, k: usize, j: usize) -> f64 {
        let mut s = self.prior[k] - self.prior[j];
        for d in 0..self.dims.len() {
            s += region
                .dim(d)
                .iter()
                .map(|m| self.member_diff_range(d, m, k, j).0)
                .fold(f64::INFINITY, f64::min);
        }
        s
    }

    /// Upper bound on `score_k − score_j` over the region.
    pub fn region_diff_max(&self, region: &Region, k: usize, j: usize) -> f64 {
        let mut s = self.prior[k] - self.prior[j];
        for d in 0..self.dims.len() {
            s += region
                .dim(d)
                .iter()
                .map(|m| self.member_diff_range(d, m, k, j).1)
                .fold(f64::NEG_INFINITY, f64::max);
        }
        s
    }

    /// Classifies `region` with respect to target class `k`.
    ///
    /// Soundness contract: `MustLose` is returned only when **no** point
    /// of the region can be predicted `k` (ties included); `MustWin` only
    /// when **every** point is. `Ambiguous` is always safe.
    pub fn region_status(&self, region: &Region, k: usize, mode: BoundMode) -> RegionStatus {
        match mode {
            BoundMode::Basic => self.status_basic(region, k),
            BoundMode::PairwiseRatio => self.status_pairwise(region, k),
        }
    }

    fn status_basic(&self, region: &Region, k: usize) -> RegionStatus {
        let min_k = self.region_score_min(region, k);
        let max_k = self.region_score_max(region, k);
        let mut win = true;
        for j in 0..self.n_classes {
            if j == k {
                continue;
            }
            let min_j = self.region_score_min(region, j);
            let max_j = self.region_score_max(region, j);
            // MUST-LOSE: j's floor beats k's ceiling everywhere.
            if min_j > max_k || (min_j == max_k && self.tie_beats(j, k)) {
                return RegionStatus::MustLose;
            }
            // Win against j requires k's floor to beat j's ceiling.
            if !(min_k > max_j || (min_k == max_j && self.tie_beats(k, j))) {
                win = false;
            }
        }
        if win {
            RegionStatus::MustWin
        } else {
            RegionStatus::Ambiguous
        }
    }

    fn status_pairwise(&self, region: &Region, k: usize) -> RegionStatus {
        let mut win = true;
        for j in 0..self.n_classes {
            if j == k {
                continue;
            }
            let dmax = self.region_diff_max(region, k, j);
            if dmax < 0.0 || (dmax == 0.0 && self.tie_beats(j, k)) {
                return RegionStatus::MustLose;
            }
            let dmin = self.region_diff_min(region, k, j);
            if !(dmin > 0.0 || (dmin == 0.0 && self.tie_beats(k, j))) {
                win = false;
            }
        }
        if win {
            RegionStatus::MustWin
        } else {
            RegionStatus::Ambiguous
        }
    }

    /// Whether member `m` of dimension `d` can be removed from `region`
    /// when deriving class `k`'s envelope: the paper's *shrink* test —
    /// MUST-LOSE of the pinned slice `region ∩ (dim d = m)` using
    /// per-member revised bounds.
    pub fn pinned_must_lose(
        &self,
        region: &Region,
        k: usize,
        d: usize,
        m: Member,
        mode: BoundMode,
    ) -> bool {
        match mode {
            BoundMode::Basic => {
                // maxProb(c_k, d, m) vs minProb(c_j, d, m), paper §3.2.2.
                let max_k = self.pinned_score_max(region, k, d, m);
                for j in 0..self.n_classes {
                    if j == k {
                        continue;
                    }
                    let min_j = self.pinned_score_min(region, j, d, m);
                    if min_j > max_k || (min_j == max_k && self.tie_beats(j, k)) {
                        return true;
                    }
                }
                false
            }
            BoundMode::PairwiseRatio => {
                for j in 0..self.n_classes {
                    if j == k {
                        continue;
                    }
                    let mut dmax = self.prior[k] - self.prior[j];
                    for e in 0..self.dims.len() {
                        if e == d {
                            dmax += self.member_diff_range(e, m, k, j).1;
                        } else {
                            dmax += region
                                .dim(e)
                                .iter()
                                .map(|mm| self.member_diff_range(e, mm, k, j).1)
                                .fold(f64::NEG_INFINITY, f64::max);
                        }
                    }
                    if dmax < 0.0 || (dmax == 0.0 && self.tie_beats(j, k)) {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Batched shrink (the paper's shrink step, computed with per-pass
    /// precomputed bounds): repeatedly removes members whose pinned slice
    /// must lose — arbitrary members on unordered dimensions, end members
    /// only on ordered ones — until a fixpoint. Returns the shrunk region
    /// (`None` when it empties) and the removed `(dim, member)` pairs.
    ///
    /// A small epsilon guards the strict comparisons: the per-member
    /// bound is formed as `sum − dim_contribution + member_value`, whose
    /// rounding could otherwise dip below the directly-summed bound.
    pub fn shrink_region(
        &self,
        region: &Region,
        k: usize,
        mode: BoundMode,
    ) -> (Option<Region>, Vec<(usize, Member)>) {
        const EPS: f64 = 1e-9;
        let kk = self.n_classes;
        let n = self.dims.len();
        let mut region = region.clone();
        let mut removed = Vec::new();
        loop {
            // Precompute per-(class-or-rival, dim) aggregates.
            // For Basic: per class, max of hi and min of lo per dim.
            // For Pairwise: per rival, max of member diff-hi per dim.
            let mut changed = false;
            // Infinity discipline: per-dimension maxima (of hi / of the
            // pairwise diff-hi) are finite or +inf (unbounded end bins of
            // quadratic models); per-dimension minima (of lo) are finite
            // or −inf. Sums therefore carry a finite part plus a count of
            // infinite dims, and "sum excluding dim d" stays well-defined
            // (a plain `sum − v + x` would produce inf − inf = NaN and
            // silently disable shrinking).
            let removable: Vec<Vec<Member>> = match mode {
                BoundMode::Basic => {
                    let mut dim_hi = vec![vec![f64::NEG_INFINITY; n]; kk];
                    let mut dim_lo = vec![vec![f64::INFINITY; n]; kk];
                    for d in 0..n {
                        for m in region.dim(d).iter() {
                            for j in 0..kk {
                                dim_hi[j][d] = dim_hi[j][d].max(self.dims[d].hi(m, j));
                                dim_lo[j][d] = dim_lo[j][d].min(self.dims[d].lo(m, j));
                            }
                        }
                    }
                    // (finite part, count of +inf dims) / (finite, −inf).
                    let agg = |per_dim: &[f64]| -> (f64, u32) {
                        let mut finite = 0.0;
                        let mut infs = 0;
                        for &v in per_dim {
                            if v.is_infinite() {
                                infs += 1;
                            } else {
                                finite += v;
                            }
                        }
                        (finite, infs)
                    };
                    let sum_hi: Vec<(f64, u32)> = (0..kk).map(|j| agg(&dim_hi[j])).collect();
                    let sum_lo: Vec<(f64, u32)> = (0..kk).map(|j| agg(&dim_lo[j])).collect();
                    let excl = |(finite, infs): (f64, u32), v: f64, sign: f64| -> f64 {
                        let rem = infs - u32::from(v.is_infinite());
                        if rem > 0 {
                            sign * f64::INFINITY
                        } else if v.is_infinite() {
                            finite
                        } else {
                            finite - v
                        }
                    };
                    (0..n)
                        .map(|d| {
                            region
                                .dim(d)
                                .iter()
                                .filter(|&m| {
                                    let max_k = self.prior[k]
                                        + excl(sum_hi[k], dim_hi[k][d], 1.0)
                                        + self.dims[d].hi(m, k);
                                    (0..kk).any(|j| {
                                        j != k
                                            && self.prior[j]
                                                + excl(sum_lo[j], dim_lo[j][d], -1.0)
                                                + self.dims[d].lo(m, j)
                                                > max_k + EPS
                                    })
                                })
                                .collect()
                        })
                        .collect()
                }
                BoundMode::PairwiseRatio => {
                    let mut dim_dmax = vec![vec![f64::NEG_INFINITY; n]; kk];
                    for (j, row) in dim_dmax.iter_mut().enumerate() {
                        if j == k {
                            continue;
                        }
                        for (d, cell) in row.iter_mut().enumerate() {
                            for m in region.dim(d).iter() {
                                *cell = cell.max(self.member_diff_range(d, m, k, j).1);
                            }
                        }
                    }
                    // (finite part, +inf dim count) per rival.
                    let sums: Vec<(f64, u32)> = (0..kk)
                        .map(|j| {
                            let mut finite = self.prior[k] - self.prior[j];
                            let mut infs = 0;
                            for &v in &dim_dmax[j] {
                                if v == f64::INFINITY {
                                    infs += 1;
                                } else {
                                    finite += v;
                                }
                            }
                            (finite, infs)
                        })
                        .collect();
                    (0..n)
                        .map(|d| {
                            region
                                .dim(d)
                                .iter()
                                .filter(|&m| {
                                    (0..kk).any(|j| {
                                        if j == k {
                                            return false;
                                        }
                                        let (finite, infs) = sums[j];
                                        let v = dim_dmax[j][d];
                                        let rem = infs - u32::from(v == f64::INFINITY);
                                        if rem > 0 {
                                            return false; // dmax = +inf
                                        }
                                        let base =
                                            if v == f64::INFINITY { finite } else { finite - v };
                                        base + self.member_diff_range(d, m, k, j).1 < -EPS
                                    })
                                })
                                .collect()
                        })
                        .collect()
                }
            };
            // Apply removals, respecting ordered-dim contiguity.
            for (d, mems) in removable.into_iter().enumerate() {
                if mems.is_empty() {
                    continue;
                }
                match region.dim(d).clone() {
                    crate::region::DimSet::Range { mut lo, mut hi } => {
                        let gone: std::collections::HashSet<Member> =
                            mems.iter().copied().collect();
                        while lo <= hi && gone.contains(&lo) {
                            removed.push((d, lo));
                            changed = true;
                            if lo == hi {
                                return (None, removed);
                            }
                            lo += 1;
                        }
                        while hi >= lo && gone.contains(&hi) {
                            removed.push((d, hi));
                            changed = true;
                            if hi == lo {
                                return (None, removed);
                            }
                            hi -= 1;
                        }
                        region = region
                            .with_dim(d, crate::region::DimSet::Range { lo, hi });
                    }
                    crate::region::DimSet::Set(mut s) => {
                        for m in mems {
                            s.remove(m);
                            removed.push((d, m));
                            changed = true;
                        }
                        if s.is_empty() {
                            return (None, removed);
                        }
                        region = region.with_dim(d, crate::region::DimSet::Set(s));
                    }
                }
            }
            if !changed {
                return (Some(region), removed);
            }
        }
    }

    fn pinned_score_min(&self, region: &Region, k: usize, d: usize, m: Member) -> f64 {
        let mut s = self.prior[k];
        for (e, table) in self.dims.iter().enumerate() {
            if e == d {
                s += table.lo(m, k);
            } else {
                s += region.dim(e).iter().map(|mm| table.lo(mm, k)).fold(f64::INFINITY, f64::min);
            }
        }
        s
    }

    fn pinned_score_max(&self, region: &Region, k: usize, d: usize, m: Member) -> f64 {
        let mut s = self.prior[k];
        for (e, table) in self.dims.iter().enumerate() {
            if e == d {
                s += table.hi(m, k);
            } else {
                s += region
                    .dim(e)
                    .iter()
                    .map(|mm| table.hi(mm, k))
                    .fold(f64::NEG_INFINITY, f64::max);
            }
        }
        s
    }
}

/// Ranks classes by descending prior (ties by class id): the paper's
/// naive-Bayes tie resolution.
fn tie_rank_by_prior(prior: &[f64]) -> Vec<u16> {
    let mut order: Vec<usize> = (0..prior.len()).collect();
    order.sort_by(|&a, &b| {
        prior[b].partial_cmp(&prior[a]).expect("finite priors").then(a.cmp(&b))
    });
    let mut rank = vec![0u16; prior.len()];
    for (r, &cls) in order.iter().enumerate() {
        rank[cls] = r as u16;
    }
    rank
}

/// Extrema of `−w (x − c)²` over the interval `(lo, hi]`, allowing
/// infinite endpoints. Returns `(min, max)`.
fn neg_quad_extrema(lo: f64, hi: f64, c: f64, w: f64) -> (f64, f64) {
    // Max is at the point of the interval closest to c.
    let closest = c.clamp(lo, hi);
    let max = if closest.is_finite() { -w * (closest - c) * (closest - c) } else { 0.0 };
    // Min is at the farther endpoint; an infinite endpoint gives −inf
    // (the bin is unbounded, so the score is unboundedly negative).
    let d_lo = if lo.is_finite() { (lo - c).abs() } else { f64::INFINITY };
    let d_hi = if hi.is_finite() { (hi - c).abs() } else { f64::INFINITY };
    let far = d_lo.max(d_hi);
    let min = if far.is_finite() { -w * far * far } else { f64::NEG_INFINITY };
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{DimSet, Region};
    use mpq_types::{AttrDomain, Attribute, Schema};
    use mpq_models::Classifier as _;

    /// The paper's Table 1 naive Bayes model.
    fn table1() -> NaiveBayes {
        let schema = Schema::new(vec![
            Attribute::new("d0", AttrDomain::categorical(["m0", "m1", "m2", "m3"])),
            Attribute::new("d1", AttrDomain::categorical(["m0", "m1", "m2"])),
        ])
        .unwrap();
        let d0 = vec![
            vec![0.4, 0.1, 0.05],
            vec![0.4, 0.1, 0.05],
            vec![0.05, 0.4, 0.4],
            vec![0.05, 0.4, 0.4],
        ];
        // m21's c2 value is .01 (the paper prints .1, contradicted by its
        // own internal cells and Figure 2 bounds).
        let d1 = vec![
            vec![0.01, 0.7, 0.05],
            vec![0.5, 0.29, 0.05],
            vec![0.49, 0.01, 0.9],
        ];
        NaiveBayes::from_probabilities(
            schema,
            vec!["c1".into(), "c2".into(), "c3".into()],
            &[0.33, 0.5, 0.17],
            &[d0, d1],
        )
        .unwrap()
    }

    #[test]
    fn figure2a_bounds_match_paper() {
        // Starting region [0..3],[0..2]: the paper's Figure 2(a) prints
        // MinProb (.0002, .0005, .0005) and MaxProb (.07, .1, .07),
        // rounded to one significant digit.
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let schema = nb.schema();
        let r = Region::full(schema);
        let min: Vec<f64> = (0..3).map(|k| sm.region_score_min(&r, k).exp()).collect();
        let max: Vec<f64> = (0..3).map(|k| sm.region_score_max(&r, k).exp()).collect();
        let expect_min = [0.33 * 0.05 * 0.01, 0.5 * 0.1 * 0.01, 0.17 * 0.05 * 0.05];
        let expect_max = [0.33 * 0.4 * 0.5, 0.5 * 0.4 * 0.7, 0.17 * 0.4 * 0.9];
        for k in 0..3 {
            assert!((min[k] - expect_min[k]).abs() < 1e-12, "min[{k}] = {}", min[k]);
            assert!((max[k] - expect_max[k]).abs() < 1e-12, "max[{k}] = {}", max[k]);
        }
        // Paper: status for c1 on the starting region is AMBIGUOUS.
        assert_eq!(sm.region_status(&r, 0, BoundMode::Basic), RegionStatus::Ambiguous);
    }

    #[test]
    fn figure2b_pinned_bounds_flag_d1_m0_as_must_lose() {
        // Figure 2(b): pinning d1 to its first member gives c1 revised
        // bounds max = .33·.4·.01 ≈ .0014 while c2's floor is
        // .5·.1·.7 = .035 ≈ .03 — MUST-LOSE, so shrink drops the member.
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let r = Region::full(nb.schema());
        let max_c1 = sm.pinned_score_max(&r, 0, 1, 0).exp();
        let min_c2 = sm.pinned_score_min(&r, 1, 1, 0).exp();
        assert!((max_c1 - 0.33 * 0.4 * 0.01).abs() < 1e-12);
        assert!((min_c2 - 0.5 * 0.1 * 0.7).abs() < 1e-12);
        assert!(sm.pinned_must_lose(&r, 0, 1, 0, BoundMode::Basic));
        // The other two members of d1 host winning cells for c1 and must
        // survive the shrink test.
        assert!(!sm.pinned_must_lose(&r, 0, 1, 1, BoundMode::Basic));
        assert!(!sm.pinned_must_lose(&r, 0, 1, 2, BoundMode::Basic));
    }

    #[test]
    fn figure2c_shrunk_region_is_ambiguous() {
        // Figure 2(c): after dropping d1's first member the region
        // [0..3] × {m1, m2} has c1 bounds (.009, .07) vs c2 (.0005, .06):
        // still AMBIGUOUS.
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let r = Region::full(nb.schema()).with_dim(1, DimSet::Set(mpq_types::MemberSet::of(3, [1, 2])));
        assert!((sm.region_score_min(&r, 0).exp() - 0.33 * 0.05 * 0.49).abs() < 1e-12);
        assert!((sm.region_score_max(&r, 1).exp() - 0.5 * 0.4 * 0.29).abs() < 1e-12);
        assert_eq!(sm.region_status(&r, 0, BoundMode::Basic), RegionStatus::Ambiguous);
    }

    #[test]
    fn figure2d_first_child_is_must_win() {
        // Figure 2(d): splitting d0 into [0..1] / [2..3], the first child
        // {m0,m1} × {m1,m2} is MUST-WIN for c1: its floor .33·.4·.49 ≈ .065
        // beats c2's ceiling .5·.1·.29 ≈ .015 and c3's .17·.05·.9 ≈ .008.
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let r = Region::full(nb.schema())
            .with_dim(0, DimSet::Set(mpq_types::MemberSet::of(4, [0, 1])))
            .with_dim(1, DimSet::Set(mpq_types::MemberSet::of(3, [1, 2])));
        assert!((sm.region_score_min(&r, 0).exp() - 0.33 * 0.4 * 0.49).abs() < 1e-12);
        assert!((sm.region_score_max(&r, 1).exp() - 0.5 * 0.1 * 0.29).abs() < 1e-12);
        assert_eq!(sm.region_status(&r, 0, BoundMode::Basic), RegionStatus::MustWin);
    }

    #[test]
    fn figure2e_second_child_is_ambiguous_then_shrinks_empty() {
        // Figure 2(e): the second child {m2,m3} × {m1,m2} is AMBIGUOUS,
        // and a second shrink pass along d1 empties it (no c1 cells).
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let r = Region::full(nb.schema())
            .with_dim(0, DimSet::Set(mpq_types::MemberSet::of(4, [2, 3])))
            .with_dim(1, DimSet::Set(mpq_types::MemberSet::of(3, [1, 2])));
        assert_eq!(sm.region_status(&r, 0, BoundMode::Basic), RegionStatus::Ambiguous);
        // Both remaining members of d1 fail for c1 in this region.
        assert!(sm.pinned_must_lose(&r, 0, 1, 1, BoundMode::Basic));
        assert!(sm.pinned_must_lose(&r, 0, 1, 2, BoundMode::Basic));
    }

    #[test]
    fn shrink_test_is_sound_everywhere() {
        // No member whose slice contains a winning cell for the target
        // class may ever be reported MUST-LOSE, under either bound mode.
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let r = Region::full(nb.schema());
        for k in 0..3usize {
            for d in 0..2usize {
                let card = if d == 0 { 4u16 } else { 3u16 };
                for m in 0..card {
                    let slice_has_win = r
                        .cells()
                        .filter(|cell| cell[d] == m)
                        .any(|cell| sm.cell_winner(&cell) == ClassId(k as u16));
                    for mode in [BoundMode::Basic, BoundMode::PairwiseRatio] {
                        if sm.pinned_must_lose(&r, k, d, m, mode) {
                            assert!(
                                !slice_has_win,
                                "unsound shrink: class {k} dim {d} member {m} under {mode:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cell_winner_matches_predictor_on_every_cell() {
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                assert_eq!(sm.cell_winner(&[m0, m1]), nb.predict(&[m0, m1]), "cell ({m0},{m1})");
            }
        }
    }

    #[test]
    fn single_cell_region_status_is_decided_for_point_models() {
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let schema = nb.schema();
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                let cell = [m0, m1];
                let r = Region::cell(schema, &cell);
                let winner = sm.cell_winner(&cell);
                for k in 0..3usize {
                    // Pairwise bounds are exact per pair on point cells,
                    // so the status must be fully decided.
                    let st = sm.region_status(&r, k, BoundMode::PairwiseRatio);
                    if winner.index() == k {
                        assert_eq!(st, RegionStatus::MustWin, "cell {cell:?} class {k}");
                    } else {
                        assert_eq!(st, RegionStatus::MustLose, "cell {cell:?} class {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn pairwise_is_at_least_as_decisive_as_basic() {
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let schema = nb.schema();
        // Over a sample of subregions, whenever Basic decides, Pairwise
        // must agree (both are sound, Pairwise is tighter).
        let sets0 = [vec![0u16, 1], vec![2, 3], vec![0, 1, 2, 3], vec![1, 2]];
        let sets1 = [vec![0u16], vec![0, 1], vec![2], vec![0, 1, 2]];
        for s0 in &sets0 {
            for s1 in &sets1 {
                let r = Region::full(schema)
                    .with_dim(0, DimSet::Set(mpq_types::MemberSet::of(4, s0.iter().copied())))
                    .with_dim(1, DimSet::Set(mpq_types::MemberSet::of(3, s1.iter().copied())));
                for k in 0..3usize {
                    let b = sm.region_status(&r, k, BoundMode::Basic);
                    let p = sm.region_status(&r, k, BoundMode::PairwiseRatio);
                    match b {
                        RegionStatus::MustWin => assert_eq!(p, RegionStatus::MustWin),
                        RegionStatus::MustLose => assert_eq!(p, RegionStatus::MustLose),
                        RegionStatus::Ambiguous => {} // pairwise may decide
                    }
                }
            }
        }
    }

    #[test]
    fn kmeans_intervals_bound_raw_scores() {
        let schema = Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
            Attribute::new("y", AttrDomain::binned(vec![3.0]).unwrap()),
        ])
        .unwrap();
        let km = KMeans::from_parts(
            schema,
            vec![vec![1.0, 1.0], vec![5.0, 4.0]],
            vec![vec![1.0, 0.5], vec![2.0, 1.0]],
        )
        .unwrap();
        let sm = ScoreModel::from_kmeans(&km);
        // Sample raw points in the *bounded* bins and check the cell
        // interval brackets the true score.
        for &x in &[2.5, 3.0, 3.9] {
            for &y in &[0.0, 1.5, 2.9] {
                let cell = [1u16, 0u16]; // x in (2,4], y in (-inf,3]
                // y bin is unbounded below; lo bound must be -inf.
                for k in 0..2usize {
                    let truth = km.score_raw(&[x, y], ClassId(k as u16));
                    let lo = sm.cell_score_lo(&cell, k);
                    let hi = sm.cell_score_hi(&cell, k);
                    assert!(lo <= truth && truth <= hi, "k={k} x={x} y={y}: {lo} <= {truth} <= {hi}");
                }
            }
        }
    }

    #[test]
    fn unbounded_bins_get_infinite_lower_bounds() {
        let (lo, hi) = neg_quad_extrema(f64::NEG_INFINITY, 5.0, 3.0, 1.0);
        assert_eq!(lo, f64::NEG_INFINITY);
        assert_eq!(hi, 0.0, "centroid inside interval: max contribution 0");
        let (lo2, hi2) = neg_quad_extrema(6.0, 8.0, 3.0, 2.0);
        assert!((hi2 - (-2.0 * 9.0)).abs() < 1e-12, "closest endpoint 6");
        assert!((lo2 - (-2.0 * 25.0)).abs() < 1e-12, "farthest endpoint 8");
    }

    #[test]
    fn tie_rank_orders_by_prior() {
        assert_eq!(tie_rank_by_prior(&[0.2, 0.5, 0.3]), vec![2, 0, 1]);
        // Equal priors: lower class id wins.
        assert_eq!(tie_rank_by_prior(&[0.5, 0.5]), vec![0, 1]);
    }

    #[test]
    fn quad_range_handles_all_shapes() {
        // Upward parabola x² on [-1, 2]: min 0 at vertex, max 4 at x=2.
        assert_eq!(quad_range(1.0, 0.0, 0.0, -1.0, 2.0), (0.0, 4.0));
        // Downward parabola −x² on [1, 3]: vertex outside, max at 1.
        assert_eq!(quad_range(-1.0, 0.0, 0.0, 1.0, 3.0), (-9.0, -1.0));
        // Linear 2x + 1 on (−inf, 5]: min −inf, max 11.
        assert_eq!(quad_range(0.0, 2.0, 1.0, f64::NEG_INFINITY, 5.0), (f64::NEG_INFINITY, 11.0));
        // Linear −x on (−inf, 0]: min 0... no: −x at 0 is 0, at −inf is +inf.
        assert_eq!(quad_range(0.0, -1.0, 0.0, f64::NEG_INFINITY, 0.0), (0.0, f64::INFINITY));
        // Constant on an unbounded interval.
        assert_eq!(quad_range(0.0, 0.0, 3.0, f64::NEG_INFINITY, f64::INFINITY), (3.0, 3.0));
        // Upward parabola on (−inf, +inf): min at vertex, max +inf.
        let (lo, hi) = quad_range(1.0, -2.0, 0.0, f64::NEG_INFINITY, f64::INFINITY);
        assert_eq!(hi, f64::INFINITY);
        assert_eq!(lo, -1.0, "vertex at x=1 gives 1-2=-1");
    }

    #[test]
    fn quad_diff_range_brackets_sampled_differences() {
        // Two k-means-style terms on a bin; sample densely and check the
        // analytic range brackets every sample and is attained.
        let qd = QuadDim {
            terms: vec![
                QuadTerm { k0: 0.0, w: 1.0, c: 1.0 },
                QuadTerm { k0: 0.5, w: 2.0, c: 4.0 },
            ],
            bins: vec![(0.0, 3.0)],
        };
        let (lo, hi) = qd.diff_range(0, 0, 1);
        let f = |x: f64| qd.terms[0].eval(x) - qd.terms[1].eval(x);
        let mut seen_lo = f64::INFINITY;
        let mut seen_hi = f64::NEG_INFINITY;
        for i in 0..=300 {
            let x = 0.0 + 3.0 * i as f64 / 300.0;
            let v = f(x);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "sample {v} outside [{lo}, {hi}]");
            seen_lo = seen_lo.min(v);
            seen_hi = seen_hi.max(v);
        }
        assert!((seen_lo - lo).abs() < 1e-2 && (seen_hi - hi).abs() < 1e-2, "range is tight");
    }

    #[test]
    fn kmeans_pairwise_bound_decides_unbounded_bins() {
        // With equal weights the score difference is linear, so even the
        // unbounded end bins are decidable — the independent-interval
        // bound could never do this.
        let schema = Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0, 6.0]).unwrap()),
        ])
        .unwrap();
        let km = KMeans::from_parts(
            schema.clone(),
            vec![vec![1.0], vec![7.0]],
            vec![vec![1.0], vec![1.0]],
        )
        .unwrap();
        let sm = ScoreModel::from_kmeans(&km);
        // Bin 0 = (-inf, 2]: every point is closer to centroid 1.0.
        let r = Region::full(&schema).with_dim(0, DimSet::Range { lo: 0, hi: 0 });
        assert_eq!(sm.region_status(&r, 0, BoundMode::PairwiseRatio), RegionStatus::MustWin);
        assert_eq!(sm.region_status(&r, 1, BoundMode::PairwiseRatio), RegionStatus::MustLose);
        // Bin 3 = (6, inf): cluster 1 wins.
        let r = Region::full(&schema).with_dim(0, DimSet::Range { lo: 3, hi: 3 });
        assert_eq!(sm.region_status(&r, 1, BoundMode::PairwiseRatio), RegionStatus::MustWin);
        assert_eq!(sm.region_status(&r, 0, BoundMode::PairwiseRatio), RegionStatus::MustLose);
    }

    #[test]
    fn gmm_intervals_bound_raw_scores() {
        let schema = Schema::new(vec![Attribute::new(
            "x",
            AttrDomain::binned(vec![0.0, 2.0, 4.0]).unwrap(),
        )])
        .unwrap();
        let gmm = Gmm::from_parts(
            schema,
            vec![0.6, 0.4],
            vec![vec![1.0], vec![3.0]],
            vec![vec![0.5], vec![2.0]],
        )
        .unwrap();
        let sm = ScoreModel::from_gmm(&gmm);
        for &x in &[0.5, 1.0, 1.99] {
            let cell = [1u16]; // (0, 2]
            for k in 0..2usize {
                let truth = gmm.score_raw(&[x], ClassId(k as u16));
                assert!(sm.cell_score_lo(&cell, k) <= truth);
                assert!(truth <= sm.cell_score_hi(&cell, k));
            }
        }
    }
}
