//! The naive enumeration baseline (§3.2.2's "simple way").
//!
//! Enumerates every cell of the attribute grid, determines the winning
//! class per cell, and covers each class's cells with rectangles. The
//! paper reports this approach took more than 24 hours on a medium data
//! set — it exists here as the correctness oracle and the baseline leg of
//! the derivation benchmarks. Grids above a configurable cell budget are
//! refused rather than silently attempted.

use crate::covering::cover_cells;
use crate::envelope::{DeriveStats, Envelope};
use crate::region::Region;
use crate::score_model::ScoreModel;
use crate::CoreError;
use mpq_types::{ClassId, Schema};

/// Default refusal threshold for grid enumeration.
pub const DEFAULT_CELL_LIMIT: u64 = 4_000_000;

/// Derives the envelope of `class` by full enumeration. Exact for point
/// models (naive Bayes); for interval models (clustering) a cell is
/// covered iff the class *can* win somewhere in it, which is the
/// tightest rectangle-expressible envelope.
pub fn derive_enumerate(
    model: &ScoreModel,
    schema: &Schema,
    class: ClassId,
    cell_limit: u64,
) -> Result<Envelope, CoreError> {
    let cells_total = schema.grid_cells();
    if cells_total > cell_limit {
        return Err(CoreError::GridTooLarge { cells: cells_total, limit: cell_limit });
    }
    let k = class.index();
    let mut mine = Vec::new();
    for cell in Region::full(schema).cells() {
        let winnable = if model.is_point_model() {
            model.cell_winner(&cell) == class
        } else {
            cell_can_win(model, &cell, k)
        };
        if winnable {
            mine.push(cell);
        }
    }
    let regions = cover_cells(schema, &mine);
    Ok(Envelope {
        class,
        exact: model.is_point_model(),
        regions,
        stats: DeriveStats::default(),
        trace: Vec::new(),
    })
}

/// Whether class `k` can win (or tie-win) somewhere in `cell`, judged
/// from the cell's per-class score intervals: `k` is excluded only if
/// some rival's floor beats `k`'s ceiling.
fn cell_can_win(model: &ScoreModel, cell: &[u16], k: usize) -> bool {
    let hi_k = model.cell_score_hi(cell, k);
    for j in 0..model.n_classes() {
        if j == k {
            continue;
        }
        let lo_j = model.cell_score_lo(cell, j);
        if lo_j > hi_k || (lo_j == hi_k && model.tie_beats(j, k)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::DeriveOptions;
    use crate::score_model::BoundMode;
    use crate::topdown::derive_topdown;
    use mpq_models::{Classifier as _, NaiveBayes};
    use mpq_types::{AttrDomain, Attribute};

    fn table1() -> NaiveBayes {
        let schema = Schema::new(vec![
            Attribute::new("d0", AttrDomain::categorical(["m0", "m1", "m2", "m3"])),
            Attribute::new("d1", AttrDomain::categorical(["m0", "m1", "m2"])),
        ])
        .unwrap();
        let d0 = vec![
            vec![0.4, 0.1, 0.05],
            vec![0.4, 0.1, 0.05],
            vec![0.05, 0.4, 0.4],
            vec![0.05, 0.4, 0.4],
        ];
        let d1 = vec![
            vec![0.01, 0.7, 0.05],
            vec![0.5, 0.29, 0.05],
            vec![0.49, 0.01, 0.9],
        ];
        NaiveBayes::from_probabilities(
            schema,
            vec!["c1".into(), "c2".into(), "c3".into()],
            &[0.33, 0.5, 0.17],
            &[d0, d1],
        )
        .unwrap()
    }

    #[test]
    fn enumeration_is_exact_for_naive_bayes() {
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        for k in 0..3u16 {
            let env = derive_enumerate(&sm, nb.schema(), ClassId(k), DEFAULT_CELL_LIMIT).unwrap();
            assert!(env.exact);
            for cell in Region::full(nb.schema()).cells() {
                assert_eq!(
                    env.matches(&cell),
                    nb.predict(&cell) == ClassId(k),
                    "class {k} cell {cell:?}"
                );
            }
        }
    }

    #[test]
    fn topdown_envelope_contains_enumerated_truth() {
        // The top-down envelope may be looser than enumeration but must
        // cover everything enumeration marks as the class's.
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        for mode in [BoundMode::Basic, BoundMode::PairwiseRatio] {
            for k in 0..3u16 {
                let exact = derive_enumerate(&sm, nb.schema(), ClassId(k), DEFAULT_CELL_LIMIT).unwrap();
                let td = derive_topdown(
                    &sm,
                    nb.schema(),
                    ClassId(k),
                    &DeriveOptions { bound_mode: mode, ..Default::default() },
                );
                for cell in Region::full(nb.schema()).cells() {
                    if exact.matches(&cell) {
                        assert!(td.matches(&cell), "mode {mode:?} class {k} cell {cell:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_grids_are_refused() {
        let nb = table1();
        let sm = ScoreModel::from_naive_bayes(&nb);
        let err = derive_enumerate(&sm, nb.schema(), ClassId(0), 5).unwrap_err();
        assert!(matches!(err, CoreError::GridTooLarge { cells: 12, limit: 5 }));
    }
}
