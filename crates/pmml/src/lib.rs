//! # mpq-pmml
//!
//! PMML-flavoured XML import/export for the workspace's mining models,
//! mirroring the IBM Intelligent Miner Scoring path of the paper's §2.3:
//! a model trained elsewhere is imported into the database and immediately
//! usable in mining predicates (envelopes are derived at registration
//! regardless of where the model came from).
//!
//! The document subset follows PMML 2.0 element names (`TreeModel`,
//! `NaiveBayesModel`, `ClusteringModel`) with documented deviations:
//! probabilities are stored directly instead of PMML's raw counts, bin
//! cut points ride in `Extension` elements, and diagonal Gaussian
//! mixtures — absent from PMML 2.0 — use a `MixtureModel` element of the
//! same style.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod models;
mod schema;
pub mod xml;

pub use error::PmmlError;
pub use models::{export, import, PmmlModel};
pub use schema::{schema_from_xml, schema_to_xml};
