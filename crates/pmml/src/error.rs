//! PMML error type.

/// Errors raised while reading or building PMML documents.
#[derive(Debug, Clone, PartialEq)]
pub enum PmmlError {
    /// XML-level syntax error.
    Xml {
        /// Byte offset.
        at: usize,
        /// Explanation.
        detail: String,
    },
    /// Document is well-formed XML but not the expected PMML shape.
    Structure {
        /// Explanation.
        detail: String,
    },
    /// A numeric or enumerated value failed to parse/validate.
    Value {
        /// Explanation.
        detail: String,
    },
}

impl std::fmt::Display for PmmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmmlError::Xml { at, detail } => write!(f, "xml error at byte {at}: {detail}"),
            PmmlError::Structure { detail } => write!(f, "pmml structure error: {detail}"),
            PmmlError::Value { detail } => write!(f, "pmml value error: {detail}"),
        }
    }
}

impl std::error::Error for PmmlError {}

impl From<mpq_types::TypesError> for PmmlError {
    fn from(e: mpq_types::TypesError) -> Self {
        PmmlError::Value { detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_location() {
        let e = PmmlError::Xml { at: 12, detail: "boom".into() };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn types_errors_convert() {
        let t = mpq_types::TypesError::UnknownMember { member: "x".into() };
        let p: PmmlError = t.into();
        assert!(matches!(p, PmmlError::Value { .. }));
    }
}
