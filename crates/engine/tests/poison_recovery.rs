//! Poison-recovery coverage: a worker thread that panics mid-DDL while
//! holding the catalog write lock (or the plan-cache mutex) must not
//! wedge the engine. Every lock accessor recovers from poisoning, so
//! subsequent sessions — reads, writes, DDL — keep working and the
//! catalog is exactly as consistent as before the panic.

use mpq_core::{DeriveOptions, Envelope, EnvelopeProvider};
use mpq_engine::{Engine, SessionState, StatementOutcome, Table};
use mpq_models::Classifier;
use mpq_types::{AttrDomain, Attribute, ClassId, Dataset, Row, Schema};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("grade", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap()
}

fn demo_table(name: &str) -> Table {
    let mut ds = Dataset::new(demo_schema());
    for i in 0..12u16 {
        ds.push_encoded(&[i % 3, u16::from(i % 3 == 2)]).unwrap();
    }
    Table::from_dataset(name, &ds)
}

/// A model whose metadata accessor panics: envelope derivation is
/// caught (degraded path), but the fallback to trivial envelopes asks
/// for `n_classes` again while the registration still holds the
/// catalog write lock — so the panic unwinds through the write guard,
/// poisoning the `RwLock`. Exactly the shape of a library bug striking
/// mid-DDL.
struct PanicModel {
    schema: Schema,
}

impl Classifier for PanicModel {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn n_classes(&self) -> usize {
        panic!("model metadata panicked mid-DDL")
    }
    fn class_name(&self, _c: ClassId) -> &str {
        "never"
    }
    fn predict(&self, _row: &Row) -> ClassId {
        ClassId(0)
    }
}

impl EnvelopeProvider for PanicModel {
    fn envelope(&self, class: ClassId, _opts: &DeriveOptions) -> Envelope {
        Envelope::trivial(class, &self.schema)
    }
}

#[test]
fn panic_mid_ddl_does_not_wedge_subsequent_sessions() {
    let dir = std::env::temp_dir().join(format!("mpq-poison-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    let rows_before = e.catalog().table(0).table.n_rows();

    // The registration panics while holding the catalog write lock.
    let panicked = catch_unwind(AssertUnwindSafe(|| {
        e.register_model(
            "doomed",
            Arc::new(PanicModel { schema: demo_schema() }),
            DeriveOptions::default(),
        )
    }));
    assert!(panicked.is_err(), "the metadata panic must propagate to the caller");

    // The half-registered model must not exist; nothing was logged.
    assert_eq!(e.catalog().n_models(), 0, "panic before the push leaves no ghost");
    assert_eq!(e.catalog().n_tables(), 1);

    // Subsequent sessions see a healthy engine: reads, writes, and DDL
    // all acquire the (previously poisoned) locks without error.
    let mut s1 = SessionState::new();
    let mut s2 = SessionState::new();
    e.execute_sql_in("SELECT * FROM t WHERE x <= 2", &mut s1).expect("read after poison");
    let out = e
        .execute_sql_in("INSERT INTO t VALUES (1, 'lo')", &mut s2)
        .expect("write lock recovered");
    assert!(matches!(out, StatementOutcome::Inserted { rows_inserted: 1, .. }));
    let out = e
        .execute_sql_in(
            "CREATE MINING MODEL m ON t PREDICT grade USING decision_tree",
            &mut s1,
        )
        .expect("DDL after poison");
    assert!(matches!(out, StatementOutcome::ModelCreated { .. }));
    e.execute_sql_in("SELECT * FROM t WHERE PREDICT(m) = 'hi'", &mut s2)
        .expect("mining query on the post-poison model");

    // And the recovered state is durable: a crash replays the insert
    // and the successful CREATE, with no trace of the panicked one.
    e.simulate_crash();
    let e = Engine::open(&dir).unwrap();
    assert_eq!(e.catalog().table(0).table.n_rows(), rows_before + 1);
    assert_eq!(e.catalog().n_models(), 1);
    assert!(e.catalog().model_by_name("m").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

/// The plan-cache mutex is the other shared-state lock on the DDL
/// path. A scorer panic inside a cached-plan query unwinds through the
/// executor; the dispatch wrapper converts it to a typed error and
/// clears the cache — later sessions must be able to plan, cache, and
/// execute as if nothing happened.
#[test]
fn scorer_panic_does_not_wedge_the_plan_cache() {
    let e = Engine::open(std::env::temp_dir().join(format!(
        "mpq-poison-cache-{}",
        std::process::id()
    )))
    .unwrap();
    e.create_table(demo_table("t")).unwrap();
    let mut s = SessionState::new();
    e.execute_sql_in("CREATE MINING MODEL m ON t PREDICT grade USING decision_tree", &mut s)
        .unwrap();
    const Q: &str = "SELECT * FROM t WHERE PREDICT(m) = 'hi'";
    let healthy = e.query(Q).expect("baseline").rows;

    e.fault_injector().set_scorer_panic(true);
    // Envelope-exact plans can answer without scoring; force residual
    // scoring off the envelope path so the fault actually fires.
    e.set_use_envelopes(false);
    let err = e.query(Q).expect_err("armed scorer must fail the query");
    assert!(err.to_string().contains("panic"), "typed, not a crash: {err}");

    e.fault_injector().set_scorer_panic(false);
    e.set_use_envelopes(true);
    for _ in 0..2 {
        // Twice: once to repopulate the cache, once to hit it.
        assert_eq!(e.query(Q).expect("query after panic").rows, healthy);
    }
}
