//! Model-to-predicate compilation: exact envelope compilation and proxy
//! cascade assembly.
//!
//! The paper derives *upper* envelopes — `predict = c ⇒ u_c` — so the
//! mining predicate must stay in the residual as the final filter. But
//! two situations let the engine go further and compile the model out of
//! the query entirely:
//!
//! 1. **Exact envelopes.** Tree and rule extraction (and often the
//!    top-down derivation on small grids) yields envelopes marked
//!    [`Envelope::exact`]: `u_c ⇔ predict = c`. An exact envelope *is*
//!    the mining predicate as a pure data-column DNF, so the rewrite can
//!    drop the mining conjunct — `model_invocations == 0` by
//!    construction ([`exactly_compiled`], consumed by
//!    `rewrite::augment`).
//! 2. **Proxy cascades.** Additive-score models (NB/k-means/GMM) carry
//!    a tabulated [`ProxyScore`] whose per-class sums reproduce the
//!    scorer bit-for-bit; a unique argmax decides the predicate without
//!    the scorer, and only tied rows (the *uncertainty band*) fall
//!    through ([`build_cascades`], consumed by the executors through
//!    `MemoScorer`).
//!
//! Both directions are verified defensively: exactness is a per-envelope
//! flag the derivation proves, and cascade tables are compared against a
//! fresh rebuild before every execution trusts them — a mismatch (e.g.
//! the injected cascade-band fault) disables the cascade for that model
//! and records a typed health note, degrading to the sound
//! envelope+residual path instead of risking a wrong row set.

use crate::catalog::Catalog;
use crate::expr::{Expr, MiningPred, ModelId};
use crate::stats::TableStats;
use mpq_core::{ProxyDecision, ProxyScore};
use std::sync::Arc;

/// Whether `mp` can be compiled away entirely: every envelope the
/// rewrite would AND in is exact, so the envelope expression alone is
/// equivalent to the mining predicate.
///
/// `ModelsAgree` is never compiled: its runtime evaluation compares the
/// two models' class *ids*, while the envelope disjunction pairs classes
/// by *label* — the two only coincide when both models share an
/// id-to-label mapping, so the conservative envelope+residual form is
/// kept.
pub(crate) fn exactly_compiled(mp: &MiningPred, catalog: &Catalog) -> bool {
    match mp {
        MiningPred::ClassEq { model, class } => {
            catalog.model(*model).envelopes[class.index()].exact
        }
        MiningPred::ClassIn { model, classes } => {
            let entry = catalog.model(*model);
            classes.iter().all(|c| entry.envelopes[c.index()].exact)
        }
        MiningPred::ModelsAgree { .. } => false,
        MiningPred::ClassEqColumn { model, column } => {
            // The rewrite expands `⋁_m (col = m ∧ u_class(m))` over the
            // column's members; members without a class label contribute
            // no arm and evaluate to FALSE either way. Exact iff every
            // *mapped* class envelope is exact.
            let entry = catalog.model(*model);
            let schema = entry.model.schema();
            let card = schema.attr(*column).domain.cardinality();
            (0..card).all(|m| {
                let label = schema.attr(*column).domain.member_label(m);
                match entry.model.class_by_name(&label) {
                    Some(c) => entry.envelopes[c.index()].exact,
                    None => true,
                }
            })
        }
    }
}

/// The mining models referenced by `before` that no longer appear in
/// `after` — i.e. the models the rewrite compiled out of the query.
/// Sorted and deduplicated for stable plan annotations.
pub(crate) fn compiled_out_models(before: &Expr, after: &Expr) -> Vec<ModelId> {
    let mut remaining: Vec<ModelId> =
        after.mining_preds().iter().flat_map(|mp| mp.models()).collect();
    remaining.sort_unstable();
    let mut out: Vec<ModelId> = before
        .mining_preds()
        .iter()
        .flat_map(|mp| mp.models())
        .filter(|m| remaining.binary_search(m).is_err())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds the per-model cascade table for one execution: index = model
/// id, `Some(proxy)` = cascade verified and enabled.
///
/// Three gates apply, in order:
/// * **Scorer faults armed** → no cascades at all. An armed scorer
///   fault needs the real scorer path live to have a target, exactly
///   like index faults degrade to full scans.
/// * **Cascade-band fault armed** → the stored table is perturbed
///   first, modelling threshold drift.
/// * **Verification** — always on: the (possibly perturbed) stored
///   table must equal a fresh rebuild from the model. A mismatch
///   disables the cascade for that model and records a health note on
///   the catalog entry; a pass clears the note.
pub(crate) fn build_cascades(
    catalog: &Catalog,
    models: &[ModelId],
) -> Vec<Option<Arc<ProxyScore>>> {
    let mut out: Vec<Option<Arc<ProxyScore>>> = Vec::new();
    if catalog.faults().any_scorer_fault_armed() {
        return out;
    }
    for &model in models {
        let entry = catalog.model(model);
        let Some(stored) = entry.proxy.as_ref() else { continue };
        let active: Arc<ProxyScore> = if catalog.faults().cascade_band_perturb_armed() {
            let mut perturbed = (**stored).clone();
            perturbed.perturb_for_fault();
            Arc::new(perturbed)
        } else {
            Arc::clone(stored)
        };
        let verified = entry.model.proxy().is_some_and(|fresh| fresh == *active);
        let mut note = entry.cascade_note.lock().unwrap_or_else(|e| e.into_inner());
        if verified {
            *note = None;
            if out.len() <= model {
                out.resize_with(model + 1, || None);
            }
            out[model] = Some(active);
        } else {
            *note = Some(format!(
                "cascade disabled for model '{}': stored proxy table failed \
                 verification against a fresh rebuild; using the sound \
                 envelope+residual scorer path",
                entry.name
            ));
        }
    }
    out
}

/// Estimates the fraction of scanned rows that fall inside the proxy's
/// uncertainty band, by enumerating (or evenly striding, past 4096
/// cells) the attribute grid and weighting each cell by the per-column
/// member frequencies under the independence assumption the optimizer
/// already makes.
pub(crate) fn estimate_band_fraction(proxy: &ProxyScore, stats: &TableStats) -> f64 {
    const CELL_CAP: u128 = 4096;
    let dims: Vec<usize> = (0..proxy.n_dims()).map(|d| proxy.dim_cardinality(d)).collect();
    let total_cells = dims.iter().fold(1u128, |a, &c| a.saturating_mul(c as u128));
    if total_cells == 0 {
        return 0.0;
    }
    if total_cells > (1 << 40) {
        // A grid this size cannot be meaningfully strided; report the
        // conservative midpoint so costing does not assume a free ride.
        return 0.5;
    }
    let total_cells = total_cells as u64;
    let stride = total_cells.div_ceil(CELL_CAP as u64).max(1);
    let mut row = vec![0u16; dims.len()];
    let mut band_weight = 0.0f64;
    let mut total_weight = 0.0f64;
    let mut idx = 0u64;
    while idx < total_cells {
        let mut x = idx;
        for (d, &card) in dims.iter().enumerate() {
            row[d] = (x % card as u64) as u16;
            x /= card as u64;
        }
        let w: f64 =
            row.iter().enumerate().map(|(d, &m)| stats.column(d).eq_selectivity(m)).product();
        if w > 0.0 {
            total_weight += w;
            if proxy.decide(&row) == ProxyDecision::Band {
                band_weight += w;
            }
        }
        idx += stride;
    }
    if total_weight <= 0.0 {
        0.0
    } else {
        (band_weight / total_weight).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use mpq_core::{paper_table1_model, DeriveOptions};
    use mpq_models::Classifier as _;
    use mpq_types::{ClassId, Dataset};

    fn setup() -> (Catalog, ModelId) {
        let nb = paper_table1_model();
        let schema = nb.schema().clone();
        let mut cat = Catalog::new();
        let rows = (0..64u16).map(|i| vec![i % 4, (i / 4) % 3]);
        let ds = Dataset::from_rows(schema, rows).unwrap();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        let id = cat.add_model("m", Arc::new(nb), DeriveOptions::default()).unwrap();
        (cat, id)
    }

    #[test]
    fn exactness_follows_the_envelope_flags() {
        let (cat, id) = setup();
        for k in 0..3u16 {
            let mp = MiningPred::ClassEq { model: id, class: ClassId(k) };
            assert_eq!(
                exactly_compiled(&mp, &cat),
                cat.model(id).envelopes[k as usize].exact,
                "class {k}"
            );
        }
        // ModelsAgree is never compiled.
        assert!(!exactly_compiled(&MiningPred::ModelsAgree { m1: id, m2: id }, &cat));
    }

    #[test]
    fn compiled_out_models_is_the_set_difference() {
        let before = Expr::and(vec![
            Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(0) }),
            Expr::Mining(MiningPred::ClassEq { model: 1, class: ClassId(1) }),
        ]);
        let after = Expr::Mining(MiningPred::ClassEq { model: 1, class: ClassId(1) });
        assert_eq!(compiled_out_models(&before, &after), vec![0]);
        assert!(compiled_out_models(&before, &before).is_empty());
    }

    #[test]
    fn cascade_builds_and_verifies_for_additive_models() {
        let (cat, id) = setup();
        let cascades = build_cascades(&cat, &[id]);
        assert!(cascades.get(id).is_some_and(Option::is_some), "NB model must cascade");
        assert!(cat.model(id).cascade_note.lock().unwrap().is_none());
    }

    #[test]
    fn scorer_faults_disable_every_cascade() {
        let (cat, id) = setup();
        cat.faults().set_scorer_panic(true);
        assert!(build_cascades(&cat, &[id]).is_empty());
        cat.faults().reset();
    }

    #[test]
    fn perturbed_table_fails_verification_with_a_note() {
        let (cat, id) = setup();
        cat.faults().set_cascade_band_perturb(true);
        let cascades = build_cascades(&cat, &[id]);
        assert!(!cascades.get(id).is_some_and(Option::is_some), "perturbed cascade rejected");
        let note = cat.model(id).cascade_note.lock().unwrap().clone();
        assert!(note.is_some_and(|n| n.contains("failed")), "typed health note recorded");
        cat.faults().reset();
        // A clean rebuild re-enables the cascade and clears the note.
        let cascades = build_cascades(&cat, &[id]);
        assert!(cascades.get(id).is_some_and(Option::is_some));
        assert!(cat.model(id).cascade_note.lock().unwrap().is_none());
    }

    #[test]
    fn band_fraction_is_a_sane_probability() {
        let (cat, id) = setup();
        let proxy = cat.model(id).model.proxy().unwrap();
        let frac = estimate_band_fraction(&proxy, &cat.table(0).stats);
        assert!((0.0..=1.0).contains(&frac), "got {frac}");
    }
}
