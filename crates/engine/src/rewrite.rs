//! Mining-predicate rewriting (§4).
//!
//! Implements the optimization loop of §4.2: normalize, then for each
//! mining predicate `m_f` look up (or compose) its upper envelope `u_f`
//! and replace `m_f` with `m_f ∧ u_f`, then re-normalize; transitivity
//! between data-column predicates and prediction columns is applied
//! inside conjunctions. The §4.1 predicate types are all covered:
//!
//! * `PREDICT(M) = c` — AND in class `c`'s atomic envelope;
//! * `PREDICT(M) IN (c₁..)` — AND in the disjunction of their envelopes;
//! * `PREDICT(M1) = PREDICT(M2)` — `⋁_c (u1_c ∧ u2_c)` over common
//!   labels; identical models short-circuit to TRUE, label-disjoint
//!   models to FALSE (the tautology/contradiction observations);
//! * `PREDICT(M) = col` — `⋁_c (u_c ∧ col = c)` over labels present in
//!   the column's domain.

use crate::catalog::Catalog;
use crate::expr::{envelope_to_expr, Atom, AtomPred, Expr, MiningPred, ModelId};
use mpq_types::{ClassId, Schema};

/// Rewrites `expr` (a predicate over `schema`) by augmenting every mining
/// predicate with its upper envelope. The result is semantically
/// equivalent: envelopes only ever *add* implied conjuncts.
///
/// This is the classic §4.2 envelope+residual rewrite — the reference
/// form every compiled plan is checked against. Exact compilation is
/// opt-in through [`rewrite_mining_opts`].
pub fn rewrite_mining(expr: Expr, schema: &Schema, catalog: &Catalog) -> Expr {
    rewrite_mining_opts(expr, schema, catalog, false)
}

/// [`rewrite_mining`] with exact model compilation optionally enabled:
/// when `compile_models` is set, a mining predicate whose envelopes are
/// all [`mpq_core::Envelope::exact`] is replaced by its envelope
/// expression *alone* — the model is compiled out of the query and the
/// executor never invokes it for that predicate.
pub fn rewrite_mining_opts(
    expr: Expr,
    schema: &Schema,
    catalog: &Catalog,
    compile_models: bool,
) -> Expr {
    // §4.2 step 1: normalize first.
    let mut expr = expr.normalize(schema);
    // Steps 2-3 loop: augment + transitivity until fixpoint (bounded —
    // augmentation is idempotent because augmented predicates are marked
    // by wrapping, see `augment`).
    for _ in 0..3 {
        let before = expr.clone();
        // Transitivity first: it pattern-matches flattened conjunctions,
        // which `augment` would re-nest.
        expr = transitivity(expr, schema, catalog);
        expr = augment(expr, schema, catalog, compile_models);
        expr = expr.normalize(schema);
        if expr == before {
            break;
        }
    }
    expr
}

/// The envelope expression (`u_f`) for one mining predicate.
pub fn envelope_expr_for(mp: &MiningPred, schema: &Schema, catalog: &Catalog) -> Expr {
    match mp {
        MiningPred::ClassEq { model, class } => {
            envelope_to_expr(schema, &catalog.model(*model).envelopes[class.index()])
        }
        MiningPred::ClassIn { model, classes } => Expr::or(
            classes
                .iter()
                .map(|c| envelope_to_expr(schema, &catalog.model(*model).envelopes[c.index()]))
                .collect(),
        ),
        MiningPred::ModelsAgree { m1, m2 } => {
            if m1 == m2 {
                return Expr::Const(true);
            }
            let common = common_classes(catalog, *m1, *m2);
            Expr::or(
                common
                    .into_iter()
                    .map(|(c1, c2)| {
                        Expr::and(vec![
                            envelope_to_expr(schema, &catalog.model(*m1).envelopes[c1.index()]),
                            envelope_to_expr(schema, &catalog.model(*m2).envelopes[c2.index()]),
                        ])
                    })
                    .collect(),
            )
        }
        MiningPred::ClassEqColumn { model, column } => {
            let entry = catalog.model(*model);
            let card = schema.attr(*column).domain.cardinality();
            let mut arms = Vec::new();
            for m in 0..card {
                let Some(class) = catalog_class_for_member(catalog, *model, *column, m, schema)
                else {
                    continue;
                };
                arms.push(Expr::and(vec![
                    Expr::Atom(Atom { attr: *column, pred: AtomPred::Eq(m) }),
                    envelope_to_expr(schema, &entry.envelopes[class.index()]),
                ]));
            }
            Expr::or(arms)
        }
    }
}

fn catalog_class_for_member(
    catalog: &Catalog,
    model: ModelId,
    column: mpq_types::AttrId,
    m: u16,
    schema: &Schema,
) -> Option<ClassId> {
    let label = schema.attr(column).domain.member_label(m);
    catalog.model(model).model.class_by_name(&label)
}

/// Labels shared by two models, as id pairs.
fn common_classes(catalog: &Catalog, m1: ModelId, m2: ModelId) -> Vec<(ClassId, ClassId)> {
    let e1 = catalog.model(m1);
    let e2 = catalog.model(m2);
    let mut out = Vec::new();
    for k in 0..e1.model.n_classes() {
        let c1 = ClassId(k as u16);
        if let Some(c2) = e2.model.class_by_name(e1.model.class_name(c1)) {
            out.push((c1, c2));
        }
    }
    out
}

/// Replaces each mining predicate `m` with `m ∧ u` (or a constant when
/// the envelope decides the predicate outright). With `compile` set,
/// exactly-enveloped predicates become `u` alone — see
/// [`crate::compile::exactly_compiled`] for the per-variant soundness
/// conditions.
fn augment(expr: Expr, schema: &Schema, catalog: &Catalog, compile: bool) -> Expr {
    match expr {
        Expr::Mining(mp) => {
            let u = envelope_expr_for(&mp, schema, catalog).normalize(schema);
            match (&mp, &u) {
                // An identical-models agree predicate is a tautology: no
                // model invocation needed at all.
                (MiningPred::ModelsAgree { m1, m2 }, _) if m1 == m2 => Expr::Const(true),
                // Unsatisfiable envelope: the predicate can never hold.
                (_, Expr::Const(false)) => Expr::Const(false),
                // Exact envelopes: `u ⇔ m`, so `u` replaces the mining
                // predicate outright (this also upgrades a tautological
                // exact envelope to TRUE rather than a model call).
                _ if compile && crate::compile::exactly_compiled(&mp, catalog) => u,
                // Tautological envelope adds nothing: keep the bare
                // mining predicate (avoid bloating the expression).
                (_, Expr::Const(true)) => Expr::Mining(mp),
                _ => Expr::and(vec![Expr::Mining(mp), u]),
            }
        }
        Expr::And(ps) => {
            Expr::and(ps.into_iter().map(|p| augment(p, schema, catalog, compile)).collect())
        }
        Expr::Or(ps) => {
            Expr::or(ps.into_iter().map(|p| augment(p, schema, catalog, compile)).collect())
        }
        Expr::Not(p) => Expr::Not(Box::new(augment(*p, schema, catalog, compile))),
        other => other,
    }
}

/// §4.1's transitivity: inside a conjunction, a `PREDICT(M) = col`
/// predicate plus a data predicate on `col` implies an IN-restriction on
/// the prediction — AND in the envelope disjunction of the implied
/// classes. Also detects contradictory `PREDICT(M) = c` pairs.
fn transitivity(expr: Expr, schema: &Schema, catalog: &Catalog) -> Expr {
    match expr {
        Expr::And(ps) => {
            let ps: Vec<Expr> =
                ps.into_iter().map(|p| transitivity(p, schema, catalog)).collect();
            // Contradiction: two different required classes on one model.
            let mut required: Vec<(ModelId, ClassId)> = Vec::new();
            for p in &ps {
                if let Expr::Mining(MiningPred::ClassEq { model, class }) = p {
                    if required.iter().any(|(m, c)| m == model && c != class) {
                        return Expr::Const(false);
                    }
                    required.push((*model, *class));
                }
            }
            // Transitivity: ClassEqColumn + atom on that column.
            let mut extra = Vec::new();
            for p in &ps {
                let Expr::Mining(MiningPred::ClassEqColumn { model, column }) = p else {
                    continue;
                };
                for q in &ps {
                    let Expr::Atom(a) = q else { continue };
                    if a.attr != *column {
                        continue;
                    }
                    let card = schema.attr(*column).domain.cardinality();
                    let members: Vec<u16> = match &a.pred {
                        AtomPred::Eq(m) => vec![*m],
                        AtomPred::Range { lo, hi } => (*lo..=(*hi).min(card - 1)).collect(),
                        AtomPred::In(s) => s.iter().collect(),
                    };
                    let classes: Vec<ClassId> = members
                        .iter()
                        .filter_map(|&m| {
                            catalog_class_for_member(catalog, *model, *column, m, schema)
                        })
                        .collect();
                    if classes.is_empty() {
                        // The column can never hold any class label under
                        // this data predicate: the equality cannot hold.
                        return Expr::Const(false);
                    }
                    let u = envelope_expr_for(
                        &MiningPred::ClassIn { model: *model, classes },
                        schema,
                        catalog,
                    );
                    extra.push(u);
                }
            }
            let mut ps = ps;
            ps.extend(extra);
            Expr::and(ps)
        }
        Expr::Or(ps) => {
            Expr::or(ps.into_iter().map(|p| transitivity(p, schema, catalog)).collect())
        }
        Expr::Not(p) => Expr::Not(Box::new(transitivity(*p, schema, catalog))),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use mpq_core::{paper_table1_model, DeriveOptions};
    use mpq_types::MemberSet;
    use mpq_models::Classifier as _;
    use mpq_types::{AttrId, Dataset};
    use std::sync::Arc;

    fn setup() -> (Catalog, ModelId, Schema) {
        let nb = paper_table1_model();
        let schema = nb.schema().clone();
        let mut cat = Catalog::new();
        let ds = Dataset::from_rows(schema.clone(), vec![vec![0, 0]]).unwrap();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        let id = cat.add_model("m", Arc::new(nb), DeriveOptions::default()).unwrap();
        (cat, id, schema)
    }

    #[test]
    fn class_eq_gets_envelope_conjunct() {
        let (cat, id, schema) = setup();
        let e = Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(0) });
        let r = rewrite_mining(e, &schema, &cat);
        // c1's envelope is d0 IN {m0,m1} AND d1 IN {m1,m2}: the rewritten
        // expression must be an AND containing the original predicate
        // plus column atoms.
        match &r {
            Expr::And(parts) => {
                assert!(parts.iter().any(|p| matches!(p, Expr::Mining(_))));
                assert!(parts.iter().any(|p| matches!(p, Expr::Atom(_))));
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn rewrite_preserves_semantics_on_every_cell() {
        let (cat, id, schema) = setup();
        let exprs = vec![
            Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(1) }),
            Expr::Mining(MiningPred::ClassIn { model: id, classes: vec![ClassId(0), ClassId(2)] }),
            Expr::and(vec![
                Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(2) }),
                Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::In(MemberSet::of(4, [2, 3])) }),
            ]),
            Expr::Not(Box::new(Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(0) }))),
        ];
        for e in exprs {
            let r = rewrite_mining(e.clone(), &schema, &cat);
            for m0 in 0..4u16 {
                for m1 in 0..3u16 {
                    let row = [m0, m1];
                    let mut i1 = 0;
                    let mut i2 = 0;
                    assert_eq!(
                        e.eval(&row, &cat, &mut i1),
                        r.eval(&row, &cat, &mut i2),
                        "semantics changed for {e:?} at {row:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn identical_models_agree_is_tautology() {
        let (cat, id, schema) = setup();
        let e = Expr::Mining(MiningPred::ModelsAgree { m1: id, m2: id });
        assert_eq!(rewrite_mining(e, &schema, &cat), Expr::Const(true));
    }

    #[test]
    fn disjoint_label_models_agree_is_contradiction() {
        let (mut cat, id, schema) = setup();
        // Second model with disjoint class labels: relabel classes.
        let nb = paper_table1_model();
        let relabeled = mpq_models::NaiveBayes::from_probabilities(
            nb.schema().clone(),
            vec!["x1".into(), "x2".into(), "x3".into()],
            &[0.33, 0.5, 0.17],
            &{
                // Rebuild the probability tables from the canonical model.
                let d0 = vec![
                    vec![0.4, 0.1, 0.05],
                    vec![0.4, 0.1, 0.05],
                    vec![0.05, 0.4, 0.4],
                    vec![0.05, 0.4, 0.4],
                ];
                let d1 = vec![
                    vec![0.01, 0.7, 0.05],
                    vec![0.5, 0.29, 0.05],
                    vec![0.49, 0.01, 0.9],
                ];
                vec![d0, d1]
            },
        )
        .unwrap();
        let id2 = cat.add_model("m2", Arc::new(relabeled), DeriveOptions::default()).unwrap();
        let e = Expr::Mining(MiningPred::ModelsAgree { m1: id, m2: id2 });
        assert_eq!(rewrite_mining(e, &schema, &cat), Expr::Const(false));
    }

    #[test]
    fn contradictory_class_eqs_fold_to_false() {
        let (cat, id, schema) = setup();
        let e = Expr::and(vec![
            Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(0) }),
            Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(1) }),
        ]);
        assert_eq!(rewrite_mining(e, &schema, &cat), Expr::Const(false));
    }

    #[test]
    fn never_predicted_class_becomes_constant_false() {
        // Build a 2-attr model where one class is never the winner; its
        // envelope is empty, so the whole predicate folds to FALSE —
        // the paper's Constant Scan case.
        let schema = mpq_types::Schema::new(vec![
            mpq_types::Attribute::new("a", mpq_types::AttrDomain::categorical(["x", "y"])),
        ])
        .unwrap();
        let nb = mpq_models::NaiveBayes::from_probabilities(
            schema.clone(),
            vec!["win".into(), "never".into()],
            &[0.9, 0.1],
            &[vec![vec![0.5, 0.4], vec![0.5, 0.4]]],
        )
        .unwrap();
        let mut cat = Catalog::new();
        let id = cat.add_model("n", Arc::new(nb), DeriveOptions::default()).unwrap();
        let e = Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(1) });
        assert_eq!(rewrite_mining(e, &schema, &cat), Expr::Const(false));
    }

    #[test]
    fn exact_compilation_drops_the_model_from_the_query() {
        // A decision tree's extracted envelopes are exact, so the
        // compiled rewrite must emit the pure data predicate — same
        // semantics, zero model invocations by construction.
        let schema = mpq_types::Schema::new(vec![
            mpq_types::Attribute::new("a", mpq_types::AttrDomain::categorical(["f", "t"])),
            mpq_types::Attribute::new("b", mpq_types::AttrDomain::categorical(["f", "t"])),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema.clone());
        let mut labels = Vec::new();
        for a in 0..2u16 {
            for b in 0..2u16 {
                for _ in 0..10 {
                    ds.push_encoded(&[a, b]).unwrap();
                    labels.push(ClassId(a ^ b));
                }
            }
        }
        let data =
            mpq_types::LabeledDataset::new(ds, labels, vec!["zero".into(), "one".into()]).unwrap();
        let tree =
            mpq_models::DecisionTree::train(&data, mpq_models::TreeParams::default()).unwrap();
        let mut cat = Catalog::new();
        let id = cat.add_model("xor", Arc::new(tree), DeriveOptions::default()).unwrap();

        let e = Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(1) });
        let compiled = rewrite_mining_opts(e.clone(), &schema, &cat, true);
        assert!(compiled.mining_preds().is_empty(), "model must be compiled out: {compiled:?}");
        let reference = rewrite_mining(e.clone(), &schema, &cat);
        assert!(!reference.mining_preds().is_empty(), "reference keeps the residual");
        for a in 0..2u16 {
            for b in 0..2u16 {
                let row = [a, b];
                let (mut i1, mut i2) = (0, 0);
                assert_eq!(e.eval(&row, &cat, &mut i1), compiled.eval(&row, &cat, &mut i2));
                assert_eq!(i2, 0, "compiled predicate invoked the model at {row:?}");
            }
        }
    }

    #[test]
    fn class_eq_column_expands_over_labels() {
        // Model classes named after the column's members so the mapping
        // is nontrivial: build a small model over a 'risk' column.
        let schema = mpq_types::Schema::new(vec![
            mpq_types::Attribute::new("f", mpq_types::AttrDomain::categorical(["u", "v"])),
            mpq_types::Attribute::new("risk", mpq_types::AttrDomain::categorical(["low", "high"])),
        ])
        .unwrap();
        let nb = mpq_models::NaiveBayes::from_probabilities(
            schema.clone(),
            vec!["low".into(), "high".into()],
            &[0.5, 0.5],
            &[
                vec![vec![0.9, 0.1], vec![0.1, 0.9]],
                vec![vec![0.5, 0.5], vec![0.5, 0.5]],
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        let id = cat.add_model("r", Arc::new(nb), DeriveOptions::default()).unwrap();
        let e = Expr::Mining(MiningPred::ClassEqColumn { model: id, column: AttrId(1) });
        let r = rewrite_mining(e.clone(), &schema, &cat);
        // Semantics preserved.
        for f in 0..2u16 {
            for risk in 0..2u16 {
                let row = [f, risk];
                let (mut a, mut b) = (0, 0);
                assert_eq!(e.eval(&row, &cat, &mut a), r.eval(&row, &cat, &mut b), "{row:?}");
            }
        }
        // Transitivity: adding risk = 'low' must imply PREDICT IN (low),
        // whose envelope is f = 'u' — check the rewritten expr rejects
        // rows with f = 'v' without model help... semantically they still
        // match only if prediction agrees; just assert equivalence again
        // plus that rewrite did not degrade to the original.
        let e2 = Expr::and(vec![
            Expr::Mining(MiningPred::ClassEqColumn { model: id, column: AttrId(1) }),
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(0) }),
        ]);
        let r2 = rewrite_mining(e2.clone(), &schema, &cat);
        for f in 0..2u16 {
            for risk in 0..2u16 {
                let row = [f, risk];
                let (mut a, mut b) = (0, 0);
                assert_eq!(e2.eval(&row, &cat, &mut a), r2.eval(&row, &cat, &mut b), "{row:?}");
            }
        }
    }
}
