//! # mpq-bench
//!
//! The experiment harness: for every table and figure of the paper's §5,
//! a binary regenerates the corresponding numbers over the synthetic
//! Table-2 datasets (see `mpq-datagen`), and Criterion benches cover the
//! derivation/execution micro-costs plus the ablations DESIGN.md lists.
//!
//! Binaries (run with `--release`; `--scale 0.05` shrinks the 1M+-row
//! test tables proportionally, preserving all selectivities):
//!
//! * `exp_table1_nb_example` — Table 1 + the Figure 2 trace;
//! * `exp_table2_datasets`  — Table 2;
//! * `exp_runtime_reduction` — §5.2.1's average running-time reductions;
//! * `exp_plan_change` — §5.2.1's plan-change percentages + Figures 3–5;
//! * `exp_selectivity_buckets` — Figure 6;
//! * `exp_tightness` — Figure 7;
//! * `exp_envelope_time` — §5's experiment (iii);
//! * `experiments` — all of the above, writing `results/*.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod report;
pub mod setup;

pub use experiment::{run_dataset_experiment, run_full_sweep, ExperimentRow, ModelKind, TimingRow};
pub use setup::{ExperimentSetup, Scale};
