//! PMML interchange integration: models trained in this workspace
//! round-trip through their PMML documents with identical predictions
//! *and identical derived envelopes* — the property §2.3's import path
//! depends on (envelopes derive from imported content).

use mining_predicates::prelude::*;
use mpq_datagen::{generate_train, table2};
use mpq_pmml::{export, import, PmmlModel};

fn spec(name: &str) -> mpq_datagen::DatasetSpec {
    table2().into_iter().find(|s| s.name == name).expect("known dataset")
}

#[test]
fn tree_roundtrip_preserves_envelopes() {
    let train = generate_train(&spec("Anneal-U"), 7);
    let tree = DecisionTree::train(&train, mpq_models::TreeParams::default()).expect("data");
    let PmmlModel::Tree(back) = import(&export(&PmmlModel::Tree(tree.clone())).expect("export")).expect("roundtrip")
    else {
        panic!("wrong kind")
    };
    let opts = DeriveOptions::default();
    for k in 0..Classifier::n_classes(&tree) {
        let a = tree.envelope(ClassId(k as u16), &opts);
        let b = back.envelope(ClassId(k as u16), &opts);
        assert_eq!(a.regions, b.regions, "class {k}");
        assert_eq!(a.exact, b.exact);
    }
}

#[test]
fn naive_bayes_roundtrip_preserves_envelopes() {
    let train = generate_train(&spec("Diabetes"), 7);
    let nb = NaiveBayes::train(&train).expect("data");
    let PmmlModel::NaiveBayes(back) =
        import(&export(&PmmlModel::NaiveBayes(nb.clone())).expect("export")).expect("roundtrip")
    else {
        panic!("wrong kind")
    };
    let opts = DeriveOptions::default();
    for k in 0..Classifier::n_classes(&nb) {
        let a = nb.envelope(ClassId(k as u16), &opts);
        let b = back.envelope(ClassId(k as u16), &opts);
        assert_eq!(a.regions, b.regions, "class {k}");
    }
}

#[test]
fn kmeans_roundtrip_preserves_envelopes() {
    let train = generate_train(&spec("Balance-Scale"), 7);
    let km = KMeans::train_encoded(
        &train.data,
        mpq_models::KMeansParams { k: 5, ..Default::default() },
    )
    .expect("ordered schema");
    let PmmlModel::KMeans(back) =
        import(&export(&PmmlModel::KMeans(km.clone())).expect("export")).expect("roundtrip")
    else {
        panic!("wrong kind")
    };
    assert_eq!(km, back, "f64 Display is shortest-roundtrip: parameters identical");
    let opts = DeriveOptions::default();
    for k in 0..Classifier::n_classes(&km) {
        let a = km.envelope(ClassId(k as u16), &opts);
        let b = back.envelope(ClassId(k as u16), &opts);
        assert_eq!(a.regions, b.regions, "cluster {k}");
    }
}

#[test]
fn imported_models_predict_identically_everywhere() {
    let train = generate_train(&spec("Chess"), 7);
    let rules =
        RuleSet::train(&train, mpq_models::RuleSetParams::default()).expect("data");
    let PmmlModel::Rules(back) =
        import(&export(&PmmlModel::Rules(rules.clone())).expect("export")).expect("roundtrip")
    else {
        panic!("wrong kind")
    };
    for (row, _) in train.iter() {
        assert_eq!(rules.predict(row), back.predict(row));
    }
}
