//! Adaptive-DNF benchmark: the same vectorized executor run with
//! runtime adaptation off (compile-time clause order, no factoring)
//! and on (calibrate → rank-reorder scalar-free runs, factor shared
//! subexpressions once per selection vector), writing
//! `BENCH_adaptive_dnf.json`.
//!
//! Three buckets, each an adversarially *written* predicate whose
//! source order is pessimal but whose calibrated order is obvious:
//!
//! * `expensive_first` — a DNF whose first disjunct is an 8-atom
//!   conjunction accepting almost nothing, followed by a one-atom
//!   disjunct accepting 87.5% of rows. Rank ordering runs the broad
//!   cheap disjunct first, so the expensive conjunction only sees the
//!   12.5% remainder.
//! * `shared_subexpr` — 8 disjuncts each `(S AND u_i)` where `S` is
//!   the same 8-way inner disjunction. Factoring evaluates `S` once
//!   per selection vector instead of once per disjunct.
//! * `correlated` — a conjunction over two correlated columns written
//!   broad-clause-first. Calibration observes the true per-clause
//!   pass rates (no independence assumption) and swaps the rare cheap
//!   clause to the front.
//!
//! Every bucket double-checks itself: the scalar row-at-a-time
//! interpreter is the reference, and both vectorized legs must return
//! its exact row set — the run aborts otherwise. At full scale the
//! first two buckets must clear a 2x speedup; the smoke run (small
//! `n_rows`, CI) only checks parity and that the adaptive counters
//! actually fired.
//!
//! Usage: `bench_adaptive_dnf [out.json] [n_rows]` (defaults:
//! `BENCH_adaptive_dnf.json`, 1,000,000).

use mpq_engine::{execute_opts, Catalog, Engine, ExecOptions, Expr, QueryGuard, Table};
use mpq_engine::{Atom, AtomPred};
use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, MemberSet, Schema};
use std::time::Instant;

const RUNS: usize = 5;
const CARD: u16 = 128;
/// Row count below which the 2x assertions are skipped: calibration
/// (4096 rows) and fixed per-query overheads dominate tiny scans.
const FULL_SCALE: usize = 200_000;

fn atom(col: usize, members: std::ops::Range<u16>) -> Expr {
    Expr::Atom(Atom { attr: AttrId(col as u16), pred: AtomPred::In(MemberSet::of(CARD, members)) })
}

// Column layout: columns 0..8 (`h0`..`h7`) feed the expensive
// conjunction and the shared inner disjunction, `u` partitions the
// disjuncts, `cheap` is the broad one-atom disjunct, `ca`/`cb` are the
// correlated pair.
const U: usize = 8;
const CHEAP: usize = 9;
const CA: usize = 10;
const CB: usize = 11;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_adaptive_dnf.json".into());
    let n_rows: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("n_rows must be a number"))
        .unwrap_or(1_000_000);

    eprintln!("building {n_rows}-row table ...");
    let domain = || AttrDomain::binned((1..CARD as usize).map(|b| b as f64).collect()).unwrap();
    let mut attrs: Vec<Attribute> =
        (0..8).map(|k| Attribute::new(format!("h{k}"), domain())).collect();
    attrs.push(Attribute::new("u", domain()));
    attrs.push(Attribute::new("cheap", domain()));
    attrs.push(Attribute::new("ca", domain()));
    attrs.push(Attribute::new("cb", domain()));
    let mut ds = Dataset::new(Schema::new(attrs).expect("schema"));
    const PRIMES: [usize; 8] = [3, 5, 7, 11, 13, 17, 19, 23];
    for i in 0..n_rows {
        // Every column is interleaved (odd stride mod a power of two is
        // a bijection), so zone maps prune nothing and the legs measure
        // pure predicate-evaluation order. `cb` is derived from `ca`,
        // not drawn independently: per-clause pass rates are honest but
        // the joint distribution is exactly what static independence
        // costing gets wrong.
        let mut row = [0u16; 12];
        for (k, p) in PRIMES.iter().enumerate() {
            row[k] = ((i * p + k * 37) % CARD as usize) as u16;
        }
        row[U] = ((i * 31 + 5) % CARD as usize) as u16;
        row[CHEAP] = ((i * 45 + 17) % CARD as usize) as u16;
        row[CA] = ((i * 9 + 2) % CARD as usize) as u16;
        row[CB] = ((row[CA] as usize * 37 + i) % CARD as usize) as u16;
        ds.push_encoded(&row).expect("row");
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("events", &ds)).expect("table");
    let engine = Engine::new(cat);

    // (S AND u_i) with S the same 8-way inner disjunction in every
    // disjunct; each inner atom accepts 6.25%, each u_i slice 12.5%.
    let shared = || Expr::Or((0..8).map(|k| atom(k, 0..8)).collect());
    let buckets: Vec<(&str, Expr)> = vec![
        (
            "expensive_first",
            Expr::Or(vec![
                // 8 broad atoms (94.5% each) then a rare one: ~8 column
                // probes per row for a disjunct accepting ~4%.
                Expr::And(
                    (0..8).map(|k| atom(k, 0..121)).chain([atom(U, 0..8)]).collect(),
                ),
                atom(CHEAP, 0..112),
            ]),
        ),
        (
            "shared_subexpr",
            Expr::Or(
                (0..8)
                    .map(|d| Expr::And(vec![shared(), atom(U, d * 16..(d + 1) * 16)]))
                    .collect(),
            ),
        ),
        (
            "correlated",
            Expr::And(vec![atom(CA, 0..116), atom(CB, 0..8)]),
        ),
    ];

    let catalog = engine.catalog();
    let scalar_opts = ExecOptions { vectorized: false, adaptive: false, ..ExecOptions::default() };
    let fixed_opts = ExecOptions { adaptive: false, ..ExecOptions::default() };
    let adaptive_opts = ExecOptions::default();
    let mut results = Vec::new();
    for (name, expr) in buckets {
        let plan = engine.plan_predicate(0, expr);
        let median = |opts: &ExecOptions| {
            let mut times_ms = Vec::with_capacity(RUNS);
            let mut last = None;
            for _ in 0..RUNS {
                let t0 = Instant::now();
                let res = execute_opts(&plan, &catalog, QueryGuard::unlimited(), opts)
                    .expect("unlimited scan");
                times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(res);
            }
            times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (times_ms[times_ms.len() / 2], last.expect("ran"))
        };
        let (scalar_ms, scalar) = median(&scalar_opts);
        let (fixed_ms, fixed) = median(&fixed_opts);
        let (adaptive_ms, adaptive) = median(&adaptive_opts);

        // The scalar interpreter is the oracle: both vectorized legs
        // must reproduce its row set exactly, reordered or not.
        assert_eq!(scalar.rows, fixed.rows, "{name}: fixed-order row set diverged");
        assert_eq!(scalar.rows, adaptive.rows, "{name}: adaptive row set diverged");
        assert_eq!(fixed.metrics.clauses_reordered, 0, "{name}: fixed leg reordered");
        assert_eq!(fixed.metrics.factor_hits, 0, "{name}: fixed leg factored");
        let m = &adaptive.metrics;
        match name {
            "shared_subexpr" => {
                assert!(m.factor_hits > 0, "{name}: factoring never fired")
            }
            _ => assert!(m.clauses_reordered > 0, "{name}: reordering never fired"),
        }

        let speedup = fixed_ms / adaptive_ms;
        if n_rows >= FULL_SCALE && matches!(name, "expensive_first" | "shared_subexpr") {
            assert!(
                speedup >= 2.0,
                "{name}: adaptive speedup {speedup:.2}x below the 2x bar \
                 (fixed {fixed_ms:.1} ms, adaptive {adaptive_ms:.1} ms)"
            );
        }
        let selectivity = adaptive.rows.len() as f64 / n_rows as f64;
        eprintln!(
            "{name}: sel {selectivity:.4} scalar {scalar_ms:.1} ms, fixed {fixed_ms:.1} ms, \
             adaptive {adaptive_ms:.1} ms ({speedup:.2}x), {} clauses reordered, \
             {} factor hits, {} feedback clauses",
            m.clauses_reordered,
            m.factor_hits,
            adaptive.feedback.len(),
        );
        results.push(format!(
            "    {{\"bucket\": \"{name}\", \"selectivity\": {selectivity:.4}, \
             \"scalar_ms\": {scalar_ms:.3}, \"fixed_ms\": {fixed_ms:.3}, \
             \"adaptive_ms\": {adaptive_ms:.3}, \"speedup\": {speedup:.3}, \
             \"clauses_reordered\": {}, \"factor_hits\": {}, \"feedback_clauses\": {}}}",
            m.clauses_reordered,
            m.factor_hits,
            adaptive.feedback.len(),
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"adaptive_dnf\",\n  \"table_rows\": {n_rows},\n  \
         \"heap_pages\": {},\n  \"parallelism\": 1,\n  \"runs_per_bucket\": {RUNS},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        catalog.table(0).table.n_pages(),
        results.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
