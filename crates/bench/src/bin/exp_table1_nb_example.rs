//! Reproduces the paper's **Table 1** (the worked naive-Bayes example)
//! and the **Figure 2** derivation trace for class `c1`.

use mpq_core::{
    derive_topdown, envelope_to_sql, format_region, paper_table1_model, paper_table1_winners,
    BoundMode, DeriveOptions, Region, ScoreModel, TraceStep,
};
use mpq_models::Classifier as _;
use mpq_types::ClassId;

fn main() {
    let nb = paper_table1_model();
    let schema = nb.schema();
    let sm = ScoreModel::from_naive_bayes(&nb);

    println!("== Table 1: naive Bayes example (K=3, d0 has 4 members, d1 has 3) ==\n");
    println!("priors: p(c1)=0.33  p(c2)=0.50  p(c3)=0.17\n");
    print!("{:8}", "");
    for m0 in 0..4 {
        print!("{:>24}", format!("m{m0}0"));
    }
    println!();
    for m1 in 0..3u16 {
        print!("{:8}", format!("m{m1}1"));
        for m0 in 0..4u16 {
            let scores: Vec<String> = (0..3)
                .map(|k| format!("{:.4}", sm.cell_score_lo(&[m0, m1], k).exp()))
                .collect();
            let winner = nb.predict(&[m0, m1]);
            print!("{:>24}", format!("{} ({})", scores.join("/"), nb.class_name(winner)));
        }
        println!();
    }

    // Check against the winners printed in the paper.
    let expected = paper_table1_winners();
    let mut all_match = true;
    for (m0, row) in expected.iter().enumerate() {
        for (m1, &want) in row.iter().enumerate() {
            if nb.predict(&[m0 as u16, m1 as u16]) != ClassId(want) {
                all_match = false;
            }
        }
    }
    println!("\ncell winners match the paper's Table 1: {all_match}");

    println!("\n== Figure 2: top-down derivation trace for class c1 (Basic bounds) ==\n");
    let opts = DeriveOptions { bound_mode: BoundMode::Basic, trace: true, ..Default::default() };
    let env = derive_topdown(&sm, schema, ClassId(0), &opts);
    for step in &env.trace {
        match step {
            TraceStep::Evaluated { region, bounds, status } => {
                let min: Vec<String> = bounds.iter().map(|(lo, _)| format!("{:.4}", lo.exp())).collect();
                let max: Vec<String> = bounds.iter().map(|(_, hi)| format!("{:.4}", hi.exp())).collect();
                println!("region {region}");
                println!("  minProb: {}", min.join(", "));
                println!("  maxProb: {}", max.join(", "));
                println!("  status:  {status:?}");
            }
            TraceStep::Shrunk { dim, member } => {
                println!("  shrink: removed member {member} of d{dim} (MUST-LOSE slice)");
            }
            TraceStep::Split { dim, children } => {
                println!("  split along d{dim}: {} | {}", children.0, children.1);
            }
        }
    }

    println!("\n== Derived envelopes ==\n");
    for k in 0..3u16 {
        let env = derive_topdown(&sm, schema, ClassId(k), &DeriveOptions::default());
        let regions: Vec<String> =
            env.regions.iter().map(|r| format_region(schema, r)).collect();
        println!(
            "class {}: {} (exact: {})\n  SQL: WHERE {}",
            nb.class_name(ClassId(k)),
            regions.join(" OR "),
            env.exact,
            envelope_to_sql(schema, &env)
        );
    }

    // The paper works c1 by hand: (d0:[2..3], d1:[0..1]) ∨ (d1:[0..0]) in
    // its own indexing; with 0-based members and the corrected table it
    // is exactly d0 ∈ {m0,m1} ∧ d1 ∈ {m1,m2}.
    let env1 = derive_topdown(&sm, schema, ClassId(0), &DeriveOptions::default());
    let truth: Vec<Vec<u16>> =
        Region::full(schema).cells().filter(|c| nb.predict(c) == ClassId(0)).collect();
    let covered = truth.iter().all(|c| env1.matches(c));
    println!("\nc1 envelope covers exactly its cells: {}", covered && env1.exact);
}
