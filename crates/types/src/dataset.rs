//! Encoded datasets.

use crate::{ClassId, Member, Schema, TypesError, Value};

/// A dataset of encoded rows over a [`Schema`], stored as a flat row-major
/// `Vec<u16>` (the paper scales test tables past a million rows; per-row
/// `Vec` overhead would dominate memory).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Schema,
    cells: Vec<Member>,
    n_rows: usize,
}

impl Dataset {
    /// Creates an empty dataset over `schema`.
    pub fn new(schema: Schema) -> Self {
        Dataset { schema, cells: Vec::new(), n_rows: 0 }
    }

    /// Creates a dataset from pre-encoded rows, validating member bounds.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = Vec<Member>>) -> Result<Self, TypesError> {
        let mut ds = Dataset::new(schema);
        for r in rows {
            ds.push_encoded(&r)?;
        }
        Ok(ds)
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True if the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Appends an already-encoded row after validating arity and member
    /// bounds.
    pub fn push_encoded(&mut self, row: &[Member]) -> Result<(), TypesError> {
        if row.len() != self.schema.len() {
            return Err(TypesError::ArityMismatch { expected: self.schema.len(), got: row.len() });
        }
        for (m, a) in row.iter().zip(self.schema.attrs()) {
            if *m >= a.domain.cardinality() {
                return Err(TypesError::UnknownMember {
                    member: format!("index {} out of range for {}", m, a.name),
                });
            }
        }
        self.cells.extend_from_slice(row);
        self.n_rows += 1;
        Ok(())
    }

    /// Encodes and appends a raw row.
    pub fn push_raw(&mut self, raw: &[Value]) -> Result<(), TypesError> {
        let encoded = self.schema.encode_row(raw)?;
        // encode_row already validated arity and members.
        self.cells.extend_from_slice(&encoded);
        self.n_rows += 1;
        Ok(())
    }

    /// The `i`-th row as a slice of member indexes.
    #[inline]
    pub fn row(&self, i: usize) -> &[Member] {
        let n = self.schema.len();
        &self.cells[i * n..(i + 1) * n]
    }

    /// Iterates rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[Member]> {
        let n = self.schema.len().max(1);
        self.cells.chunks_exact(n).take(self.n_rows)
    }

    /// Duplicates the rows of this dataset until it holds at least
    /// `min_rows` rows — the paper's test-set construction: *"We generated
    /// the test data set by repeatedly doubling all available data until
    /// the total number of rows exceeded 1 million"*, which preserves every
    /// column's value distribution (and hence predicate selectivities).
    pub fn double_until(&mut self, min_rows: usize) {
        if self.n_rows == 0 {
            return;
        }
        while self.n_rows < min_rows {
            self.cells.extend_from_within(..);
            self.n_rows *= 2;
        }
    }
}

/// A dataset plus a class label per row; the training-side view.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDataset {
    /// The feature rows.
    pub data: Dataset,
    /// One label per row of `data`.
    pub labels: Vec<ClassId>,
    /// Human-readable class names; `labels` index into this.
    pub class_names: Vec<String>,
}

impl LabeledDataset {
    /// Creates a labeled dataset, validating that labels line up with rows
    /// and stay within the class-name table.
    pub fn new(data: Dataset, labels: Vec<ClassId>, class_names: Vec<String>) -> Result<Self, TypesError> {
        if data.len() != labels.len() {
            return Err(TypesError::ArityMismatch { expected: data.len(), got: labels.len() });
        }
        if let Some(bad) = labels.iter().find(|c| c.index() >= class_names.len()) {
            return Err(TypesError::UnknownMember { member: format!("label {bad} out of range") });
        }
        Ok(LabeledDataset { data, labels, class_names })
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for c in &self.labels {
            counts[c.index()] += 1;
        }
        counts
    }

    /// Iterates `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Member], ClassId)> + '_ {
        self.data.rows().zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrDomain, Attribute};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("a", AttrDomain::categorical(["x", "y"])),
            Attribute::new("b", AttrDomain::binned(vec![5.0]).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn push_and_read_back() {
        let mut ds = Dataset::new(schema());
        ds.push_encoded(&[0, 1]).unwrap();
        ds.push_raw(&[Value::from("y"), Value::from(2.0)]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(0), &[0, 1]);
        assert_eq!(ds.row(1), &[1, 0]);
        assert_eq!(ds.rows().count(), 2);
    }

    #[test]
    fn push_validates_bounds() {
        let mut ds = Dataset::new(schema());
        assert!(ds.push_encoded(&[2, 0]).is_err(), "member 2 out of range");
        assert!(ds.push_encoded(&[0]).is_err(), "arity");
        assert_eq!(ds.len(), 0, "failed pushes must not partially append");
    }

    #[test]
    fn double_until_preserves_distribution() {
        let mut ds = Dataset::from_rows(schema(), vec![vec![0, 0], vec![1, 1], vec![0, 1]]).unwrap();
        ds.double_until(10);
        assert!(ds.len() >= 10);
        assert_eq!(ds.len(), 12); // 3 -> 6 -> 12
        let zeros = ds.rows().filter(|r| r[0] == 0).count();
        assert_eq!(zeros * 3, ds.len() * 2, "2/3 of rows keep a=0");
        // Doubling an empty dataset must not loop forever.
        let mut empty = Dataset::new(schema());
        empty.double_until(10);
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn labeled_dataset_validation() {
        let ds = Dataset::from_rows(schema(), vec![vec![0, 0], vec![1, 1]]).unwrap();
        let ok = LabeledDataset::new(ds.clone(), vec![ClassId(0), ClassId(1)], vec!["n".into(), "p".into()]);
        assert!(ok.is_ok());
        let bad_len = LabeledDataset::new(ds.clone(), vec![ClassId(0)], vec!["n".into()]);
        assert!(bad_len.is_err());
        let bad_label = LabeledDataset::new(ds, vec![ClassId(0), ClassId(5)], vec!["n".into()]);
        assert!(bad_label.is_err());
    }

    #[test]
    fn class_counts_sum_to_len() {
        let ds = Dataset::from_rows(schema(), vec![vec![0, 0], vec![1, 1], vec![0, 1]]).unwrap();
        let lds = LabeledDataset::new(
            ds,
            vec![ClassId(1), ClassId(1), ClassId(0)],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        assert_eq!(lds.class_counts(), vec![1, 2]);
        assert_eq!(lds.iter().count(), 3);
    }
}
