//! Differential oracle for the vectorized executor: for
//! proptest-generated tables, models (all five algorithms) and query
//! predicates, the vectorized column-at-a-time path must agree with the
//! scalar row-at-a-time reference interpreter on row sets, rows
//! examined, page totals (heap reads plus zone-map skips), memoized
//! model-invocation counts, and guard-breach classification — serially
//! and at every degree of parallelism.

use mining_predicates::prelude::*;
use mpq_engine::{
    execute_opts, Atom, AtomPred, ExecMetrics, ExecOptions, StatementOutcome,
    DEFAULT_MEMO_CAPACITY,
};
use mpq_types::MemberSet;
use proptest::prelude::*;

const DOPS: [usize; 4] = [1, 2, 4, 8];

/// The scalar reference interpreter: serial, tree-walking `Expr::eval`
/// per row, memo cache on (the memo is shared semantics, not a
/// vectorized-only optimization).
fn reference_opts() -> ExecOptions {
    ExecOptions { parallelism: 1, vectorized: false, ..ExecOptions::default() }
}

/// Three-attribute schema: two feature columns plus a label column the
/// classification models train on.
fn schema() -> Schema {
    Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2", "a3"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1", "b2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .unwrap()
}

/// All-ordered companion schema for the Gaussian-mixture model.
fn numeric_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()),
        Attribute::new("y", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
    ])
    .unwrap()
}

/// Builds an engine over the generated rows with tiny (256-byte) pages
/// — so even small tables span many pages and zone maps have something
/// to prune — plus single-column indexes, and trains one model per
/// algorithm (tree / bayes / rules / k-means on `t`, GMM on `tn`).
fn engine_with_models(extra: &[(u16, u16)]) -> Engine {
    let mut ds = Dataset::new(schema());
    let mut dsn = Dataset::new(numeric_schema());
    for a in 0..4u16 {
        for b in 0..3u16 {
            for label in 0..2u16 {
                ds.push_encoded(&[a, b, label]).unwrap();
            }
            dsn.push_encoded(&[a, b]).unwrap();
        }
    }
    for &(a, b) in extra {
        let label = u16::from(a >= 2 && b != 1);
        ds.push_encoded(&[a, b, label]).unwrap();
        dsn.push_encoded(&[a, b]).unwrap();
    }

    let mut cat = Catalog::new();
    let t = cat.add_table(Table::with_page_bytes("t", &ds, 256)).unwrap();
    cat.create_index(t, &[AttrId(0)]);
    cat.create_index(t, &[AttrId(1)]);
    let tn = cat.add_table(Table::with_page_bytes("tn", &dsn, 256)).unwrap();
    cat.create_index(tn, &[AttrId(0)]);
    let e = Engine::new(cat);

    for ddl in [
        "CREATE MINING MODEL m_tree ON t PREDICT label USING decision_tree",
        "CREATE MINING MODEL m_bayes ON t PREDICT label USING bayes",
        "CREATE MINING MODEL m_rules ON t PREDICT label USING rules",
        "CREATE MINING MODEL m_km ON t WITH 2 CLUSTERS USING kmeans",
        "CREATE MINING MODEL m_gmm ON tn WITH 2 CLUSTERS USING gmm",
    ] {
        let out = e.execute_sql(ddl).expect(ddl);
        assert!(matches!(out, StatementOutcome::ModelCreated { .. }), "{ddl}");
    }
    e
}

/// The query corpus: for each of the five models, mining predicates
/// alone and mixed with column atoms — exercising constant scans,
/// zone-pruned full scans, index seeks, index unions, disjunctions with
/// scalar residual legs, and pure column predicates.
fn query_corpus() -> Vec<(usize, Expr)> {
    let mut exprs = Vec::new();
    for model in 0..5usize {
        let table = usize::from(model == 4);
        for class in 0..2u16 {
            exprs.push((table, Expr::Mining(MiningPred::ClassEq { model, class: ClassId(class) })));
        }
        exprs.push((
            table,
            Expr::And(vec![
                Expr::Mining(MiningPred::ClassEq { model, class: ClassId(1) }),
                Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(2) }),
            ]),
        ));
        exprs.push((
            table,
            Expr::Or(vec![
                Expr::Mining(MiningPred::ClassEq { model, class: ClassId(0) }),
                Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(1) }),
            ]),
        ));
    }
    exprs.push((0, Expr::Const(true)));
    exprs.push((0, Expr::Const(false)));
    exprs.push((0, Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 1, hi: 2 } })));
    exprs.push((
        0,
        Expr::Or(vec![
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::In(MemberSet::of(3, [0, 2])) }),
        ]),
    ));
    exprs.push((0, Expr::Not(Box::new(Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(3) })))));
    exprs
}

/// Asserts the vectorized result is indistinguishable from the scalar
/// reference: identical rows and identical deterministic metrics —
/// including the zone-map skip count and the memo hit count, which both
/// paths must agree on page for page and tuple for tuple.
fn assert_matches_reference(
    reference: &mpq_engine::ExecResult,
    vectorized: &mpq_engine::ExecResult,
    ctx: &str,
) {
    assert_eq!(vectorized.rows, reference.rows, "row set diverged: {ctx}");
    let (s, v): (&ExecMetrics, &ExecMetrics) = (&reference.metrics, &vectorized.metrics);
    assert_eq!(v.heap_pages_read, s.heap_pages_read, "heap pages: {ctx}");
    assert_eq!(v.index_pages_read, s.index_pages_read, "index pages: {ctx}");
    assert_eq!(v.pages_skipped, s.pages_skipped, "zone skips: {ctx}");
    assert_eq!(v.rows_examined, s.rows_examined, "rows examined: {ctx}");
    assert_eq!(v.model_invocations, s.model_invocations, "invocations: {ctx}");
    assert_eq!(v.memo_hits, s.memo_hits, "memo hits: {ctx}");
    assert_eq!(v.output_rows, s.output_rows, "output rows: {ctx}");
    assert_eq!(v.index_fallback, s.index_fallback, "fallback flag: {ctx}");
    assert_eq!(v.guard.rows_remaining, s.guard.rows_remaining, "rows headroom: {ctx}");
    assert_eq!(v.guard.pages_remaining, s.guard.pages_remaining, "pages headroom: {ctx}");
    assert_eq!(
        v.guard.model_invocations_remaining, s.guard.model_invocations_remaining,
        "invocation headroom: {ctx}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole guarantee: every query in the corpus, over all five
    /// model algorithms, returns the same rows and metrics under the
    /// vectorized executor at parallelism 1, 2, 4 and 8 as the scalar
    /// row-at-a-time reference — with envelope optimization both on and
    /// off, and with the memo cache both enabled and disabled.
    #[test]
    fn vectorized_execution_matches_scalar_reference(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..120),
    ) {
        let e = engine_with_models(&extra);
        for use_envelopes in [true, false] {
            e.set_use_envelopes(use_envelopes);
            for (table, expr) in query_corpus() {
                let plan = e.plan_predicate(table, expr.clone());
                let catalog = e.catalog();
                let reference =
                    execute_opts(&plan, &catalog, QueryGuard::unlimited(), &reference_opts())
                        .expect("unlimited reference run cannot fail");
                for dop in DOPS {
                    let vec = execute_opts(
                        &plan,
                        &catalog,
                        QueryGuard::unlimited(),
                        &ExecOptions::with_parallelism(dop),
                    )
                    .expect("unlimited vectorized run cannot fail");
                    assert_matches_reference(
                        &reference,
                        &vec,
                        &format!("dop {dop}, envelopes {use_envelopes}, expr {expr:?}"),
                    );
                }
                // Memo off: the row set is unchanged, hits drop to
                // zero, and every scalar evaluation hits the real
                // scorer — so invocations can only grow.
                let no_memo = execute_opts(
                    &plan,
                    &catalog,
                    QueryGuard::unlimited(),
                    &ExecOptions { memo_capacity: 0, ..ExecOptions::default() },
                )
                .expect("memo-free run cannot fail");
                prop_assert_eq!(&no_memo.rows, &reference.rows, "memo off changed rows");
                prop_assert_eq!(no_memo.metrics.memo_hits, 0, "disabled memo reported hits");
                prop_assert!(
                    no_memo.metrics.model_invocations
                        >= reference.metrics.model_invocations,
                    "memo must only ever reduce scorer calls: {} < {}",
                    no_memo.metrics.model_invocations,
                    reference.metrics.model_invocations
                );
            }
        }
    }

    /// Guard parity under a generated single-resource budget: at dop 1
    /// the vectorized executor must breach with the same resource,
    /// limit *and* spent as the scalar reference (batched charging
    /// emulates the per-row trip point); at dop > 1 the classification
    /// and limit still match and spent may only overshoot.
    #[test]
    fn guard_breach_classification_matches_reference(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..100),
        rows_limit in 1u64..200,
        inv_limit in 1u64..200,
        pages_limit in 0u64..80,
    ) {
        let e = engine_with_models(&extra);
        e.set_use_envelopes(false); // full scan + black-box residual
        let expr = Expr::Mining(MiningPred::ClassEq { model: 1, class: ClassId(1) });
        let plan = e.plan_predicate(0, expr);
        let catalog = e.catalog();

        let guards = [
            QueryGuard::default().with_max_rows_examined(rows_limit),
            QueryGuard::default().with_max_model_invocations(inv_limit),
            QueryGuard::default().with_max_pages(pages_limit),
        ];
        for guard in guards {
            let reference = execute_opts(&plan, &catalog, guard, &reference_opts());
            for dop in DOPS {
                let vec = execute_opts(
                    &plan,
                    &catalog,
                    guard,
                    &ExecOptions::with_parallelism(dop),
                );
                match (&reference, &vec) {
                    (Ok(s), Ok(v)) => assert_matches_reference(s, v, &format!("dop {dop}")),
                    (
                        Err(EngineError::BudgetExceeded { resource: rs, limit: ls, spent: ss }),
                        Err(EngineError::BudgetExceeded { resource: rv, limit: lv, spent: sv }),
                    ) => {
                        prop_assert_eq!(rv, rs, "breach resource diverged at dop {}", dop);
                        prop_assert_eq!(lv, ls, "breach limit diverged at dop {}", dop);
                        if dop == 1 {
                            prop_assert_eq!(
                                sv, ss,
                                "serial vectorized breach must report the reference trip point"
                            );
                        } else {
                            prop_assert!(
                                sv > lv,
                                "breach must report spent {} > limit {}", sv, lv
                            );
                        }
                    }
                    (s, v) => {
                        return Err(TestCaseError::fail(format!(
                            "outcome diverged at dop {dop}: reference {s:?} vs vectorized {v:?}"
                        )));
                    }
                }
            }
        }
    }

    /// A capacity-bounded memo stays sound: a tiny cache (or none) must
    /// never change the row set, and its hit count can only shrink
    /// relative to the unbounded cache.
    #[test]
    fn bounded_memo_is_sound(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..100),
        capacity in 0usize..6,
    ) {
        let e = engine_with_models(&extra);
        e.set_use_envelopes(false);
        let expr = Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(1) });
        let plan = e.plan_predicate(0, expr);
        let catalog = e.catalog();
        let full = execute_opts(
            &plan,
            &catalog,
            QueryGuard::unlimited(),
            &ExecOptions { memo_capacity: DEFAULT_MEMO_CAPACITY, ..ExecOptions::default() },
        )
        .unwrap();
        let bounded = execute_opts(
            &plan,
            &catalog,
            QueryGuard::unlimited(),
            &ExecOptions { memo_capacity: capacity, ..ExecOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(&bounded.rows, &full.rows, "bounded memo changed the row set");
        prop_assert!(
            bounded.metrics.memo_hits <= full.metrics.memo_hits,
            "a smaller cache cannot hit more: {} > {}",
            bounded.metrics.memo_hits,
            full.metrics.memo_hits
        );
        prop_assert!(
            bounded.metrics.model_invocations >= full.metrics.model_invocations,
            "a smaller cache cannot call the scorer less"
        );
    }
}
