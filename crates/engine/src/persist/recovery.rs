//! Recovery: load the newest valid snapshot, replay the clean WAL
//! prefix, and leave the directory ready for appends.
//!
//! Guarantees, in order of priority:
//!
//! 1. **No panic, ever.** Every byte read from disk is validated before
//!    use; anything that fails validation surfaces as a typed error or a
//!    degraded-but-consistent state.
//! 2. **Prefix consistency.** The recovered catalog equals some prefix
//!    of the committed mutation history: the snapshot plus all WAL
//!    records up to (not through) the first torn, corrupt, or
//!    out-of-sequence record. Nothing after a bad byte is trusted, even
//!    if it checksums cleanly — a tear means the writer died mid-stream.
//! 3. **Nothing silent.** Skipped snapshots, dropped records, and
//!    dropped bytes are all counted in the [`RecoveryReport`].
//!
//! After replay the log is physically truncated to the kept prefix and
//! later segments are deleted, so the next append extends a verified
//! tail rather than interleaving with garbage.

use super::snapshot::{self, SnapshotState};
use super::wal::{self, SegmentData, WalWriter, HEADER_LEN};
use super::{LogOp, RecoveryReport};
use crate::catalog::Catalog;
use crate::dedup::{DedupCheck, DedupOutcome};
use crate::fault::FaultInjector;
use crate::table::Table;
use crate::EngineError;
use mpq_types::AttrId;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Result of recovering a durability directory.
pub(crate) struct Recovered {
    pub catalog: Catalog,
    pub wal: WalWriter,
    /// LSN the next logged mutation will take.
    pub next_lsn: u64,
    pub report: RecoveryReport,
}

/// Snapshot files in `dir`, newest (highest LSN) first.
pub(crate) fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, EngineError> {
    let mut out = list_by(dir, snapshot::parse_snapshot_file_name)?;
    out.sort_by_key(|(lsn, _)| std::cmp::Reverse(*lsn));
    Ok(out)
}

/// WAL segment files in `dir`, oldest (lowest start LSN) first.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, EngineError> {
    let mut out = list_by(dir, wal::parse_segment_file_name)?;
    out.sort_by_key(|(lsn, _)| *lsn);
    Ok(out)
}

fn list_by(
    dir: &Path,
    parse: impl Fn(&str) -> Option<u64>,
) -> Result<Vec<(u64, PathBuf)>, EngineError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(lsn) = parse(name) {
            out.push((lsn, entry.path()));
        }
    }
    Ok(out)
}

/// Deletes leftover `.tmp` files from a checkpoint that died before its
/// rename — they were never part of the durable state.
fn remove_stale_tmp(dir: &Path) -> Result<(), EngineError> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

/// Validates and applies one logged mutation to the catalog. Shared by
/// replay and the live durable-mutation path, so both stay in lockstep;
/// every reachable failure is a typed error, never a panic.
pub(crate) fn apply_op(catalog: &mut Catalog, op: &LogOp) -> Result<(), EngineError> {
    match op {
        LogOp::CreateTable { name, schema, rows_per_page, columns } => {
            let rpp = usize::try_from(*rows_per_page)
                .map_err(|_| EngineError::Corrupt { detail: "absurd page geometry".into() })?;
            let table =
                Table::from_encoded_parts(name.clone(), schema.clone(), columns.clone(), rpp)?;
            catalog.add_table(table)?;
            Ok(())
        }
        LogOp::Insert { table, rows } => {
            let id = catalog
                .table_by_name(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
            catalog.insert_rows(id, rows)
        }
        LogOp::CreateIndex { table, columns } => {
            let id = catalog
                .table_by_name(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
            let cols = checked_attr_ids(catalog, id, columns)?;
            catalog.create_index(id, &cols);
            Ok(())
        }
        LogOp::DropIndex { table, columns } => {
            let id = catalog
                .table_by_name(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
            let cols = checked_attr_ids(catalog, id, columns)?;
            catalog.drop_index(id, &cols);
            Ok(())
        }
        LogOp::CreateModel { name, stored, opts } => {
            let model = stored.instantiate()?;
            catalog.add_model_stored(name.clone(), model, *opts, Some(stored.clone()))?;
            Ok(())
        }
        LogOp::Retrain { name, stored, opts } => {
            let id = catalog
                .model_by_name(name)
                .ok_or_else(|| EngineError::UnknownModel(name.clone()))?;
            let model = stored.instantiate()?;
            catalog.retrain_model_stored(id, model, *opts, Some(stored.clone()))
        }
        LogOp::CleanShutdown => Ok(()),
        LogOp::Subscribe { id, sql } => {
            // Re-parse the verbatim query text against the replayed
            // catalog — the tables and models it references were logged
            // before it, so a clean prefix always resolves.
            let query = crate::sql::parse(sql, catalog)?;
            catalog.add_subscription(*id, sql.clone(), query)
        }
        LogOp::Unsubscribe { id } => catalog.remove_subscription(*id),
        LogOp::EpochBump { epoch } => {
            if *epoch <= catalog.epoch() {
                return Err(EngineError::Corrupt {
                    detail: format!(
                        "epoch bump to {epoch} does not exceed current epoch {}",
                        catalog.epoch()
                    ),
                });
            }
            catalog.set_epoch(*epoch);
            Ok(())
        }
        LogOp::Stamped { id, inner } => {
            match catalog.dedup().check(*id) {
                // Already applied (a retry raced a crash and both the
                // original and the retried record landed in the log, or
                // the snapshot already covers it): skip, exactly-once.
                DedupCheck::Replay(_) | DedupCheck::Evicted => Ok(()),
                DedupCheck::New => {
                    apply_op(catalog, inner)?;
                    let outcome = summarize_applied(catalog, inner);
                    catalog.dedup_mut().record(*id, outcome);
                    Ok(())
                }
            }
        }
    }
}

/// Builds the compact outcome summary recorded for a stamped mutation,
/// from the catalog state right after the inner op applied.
fn summarize_applied(catalog: &Catalog, inner: &LogOp) -> DedupOutcome {
    match inner {
        LogOp::Insert { table, rows } => DedupOutcome::Inserted {
            table: table.clone(),
            rows_inserted: rows.len() as u64,
            // Replay cannot re-derive (or re-deliver) subscription
            // matches; the live insert path overwrites these after
            // matching. A replayed ack reports zero counters, which is
            // truthful: the retry delivered nothing.
            subs_matched: 0,
            subs_index_pruned: 0,
        },
        LogOp::Subscribe { id, .. } => DedupOutcome::Subscribed { id: *id },
        LogOp::Unsubscribe { id } => DedupOutcome::Unsubscribed { id: *id },
        LogOp::CreateModel { name, .. } => {
            let (n_classes, degraded) = match catalog.model_by_name(name) {
                Some(id) => {
                    let e = catalog.model(id);
                    (e.model.n_classes() as u64, e.degraded.clone())
                }
                None => (0, None),
            };
            DedupOutcome::ModelCreated { name: name.clone(), n_classes, degraded }
        }
        _ => DedupOutcome::Applied,
    }
}

/// Bounds-checks logged column ids against the table schema — an
/// out-of-range id would panic inside `SecondaryIndex::build`.
fn checked_attr_ids(
    catalog: &Catalog,
    table_id: usize,
    columns: &[u16],
) -> Result<Vec<AttrId>, EngineError> {
    let n = catalog.table(table_id).table.schema().len();
    for &c in columns {
        if usize::from(c) >= n {
            return Err(EngineError::Corrupt {
                detail: format!("index column {c} out of range for {n} attributes"),
            });
        }
    }
    Ok(columns.iter().map(|&c| AttrId(c)).collect())
}

/// Rebuilds a catalog from a decoded snapshot, revalidating everything
/// (the decode only proved framing; this proves semantics).
pub(crate) fn build_catalog(
    state: SnapshotState,
    faults: Arc<FaultInjector>,
) -> Result<(Catalog, u64), EngineError> {
    let mut catalog = Catalog::with_faults(faults);
    for t in state.tables {
        let rpp = usize::try_from(t.rows_per_page)
            .map_err(|_| EngineError::Corrupt { detail: "absurd page geometry".into() })?;
        let table = Table::from_encoded_parts(t.name, t.schema, t.columns, rpp)?;
        let id = catalog.add_table(table)?;
        for ix in &t.indexes {
            let cols = checked_attr_ids(&catalog, id, ix)?;
            if cols.is_empty() {
                return Err(EngineError::Corrupt { detail: "empty index column set".into() });
            }
            catalog.create_index(id, &cols);
        }
    }
    for m in state.models {
        let model = m.stored.instantiate()?;
        catalog.add_model_stored(m.name, model, m.opts, Some(m.stored))?;
    }
    catalog.set_dedup(state.dedup);
    catalog.set_epoch(state.epoch);
    for (id, sql) in state.subscriptions {
        let query = crate::sql::parse(&sql, &catalog)?;
        catalog.add_subscription(id, sql, query)?;
    }
    catalog.clamp_next_subscription_id(state.next_sub_id);
    Ok((catalog, state.last_lsn))
}

/// Content of a segment that is being discarded wholesale.
fn whole_segment_drop(seg: &SegmentData) -> (u64, u64) {
    let frames = seg.records.len() as u64 + seg.dropped_frames;
    let bytes = seg.valid_len.saturating_sub(HEADER_LEN as u64) + seg.dropped_bytes;
    (frames, bytes)
}

/// Recovers the durability directory `dir`: returns the reconstructed
/// catalog, an open WAL writer positioned after the last kept record,
/// and a report of everything found along the way.
pub(crate) fn recover(
    dir: &Path,
    faults: Arc<FaultInjector>,
) -> Result<Recovered, EngineError> {
    std::fs::create_dir_all(dir)?;
    remove_stale_tmp(dir)?;
    let snapshots = list_snapshots(dir)?;
    let segments = list_segments(dir)?;
    let fresh = snapshots.is_empty() && segments.is_empty();

    let mut report = RecoveryReport::default();
    let note_corruption = |report: &mut RecoveryReport, detail: String| {
        if report.corruption.is_none() {
            report.corruption = Some(detail);
        }
    };

    // Newest snapshot that both checksums and rebuilds cleanly wins;
    // anything newer that fails is counted and skipped.
    let mut catalog: Option<Catalog> = None;
    let mut snap_lsn = 0u64;
    for (_, path) in &snapshots {
        match snapshot::load_snapshot(path).and_then(|s| build_catalog(s, Arc::clone(&faults))) {
            Ok((cat, lsn)) => {
                catalog = Some(cat);
                snap_lsn = lsn;
                break;
            }
            Err(e) => {
                report.snapshots_skipped += 1;
                note_corruption(&mut report, format!("snapshot {}: {e}", path.display()));
            }
        }
    }
    let mut catalog = catalog.unwrap_or_else(|| Catalog::with_faults(Arc::clone(&faults)));
    report.snapshot_lsn = snap_lsn;

    // The replay window starts at the last segment that can contain
    // record snap_lsn + 1; earlier segments are fully covered.
    let replay_from = segments.iter().rposition(|(lsn, _)| *lsn <= snap_lsn + 1);
    let mut halted = replay_from.is_none() && !segments.is_empty();
    if halted {
        note_corruption(
            &mut report,
            format!(
                "wal begins at lsn {} but snapshot covers only lsn {snap_lsn}",
                segments[0].0
            ),
        );
    }

    let mut last_applied = snap_lsn;
    let mut clean_tail = fresh;
    // Where the writer resumes: an existing segment truncated to its
    // kept prefix, or a brand-new segment when none survives.
    let mut writer_at: Option<(PathBuf, u64, u64)> = None; // (path, start_lsn, keep_len)

    for (i, (seg_start, path)) in segments.iter().enumerate() {
        if !halted && i < replay_from.unwrap_or(0) {
            continue; // fully covered by the snapshot
        }
        let seg = wal::read_segment(path, &faults)?;
        if halted {
            let (frames, bytes) = whole_segment_drop(&seg);
            report.records_dropped += frames;
            report.bytes_dropped += bytes;
            std::fs::remove_file(path)?;
            continue;
        }
        if !seg.header_valid || seg.start_lsn != *seg_start {
            note_corruption(
                &mut report,
                seg.corruption
                    .clone()
                    .unwrap_or_else(|| format!("segment header/name mismatch in {}", path.display())),
            );
            let (frames, bytes) = whole_segment_drop(&seg);
            report.records_dropped += frames;
            report.bytes_dropped += bytes;
            halted = true;
            std::fs::remove_file(path)?;
            continue;
        }
        if *seg_start > last_applied + 1 {
            note_corruption(
                &mut report,
                format!("lsn gap: segment starts at {seg_start}, expected {}", last_applied + 1),
            );
            let (frames, bytes) = whole_segment_drop(&seg);
            report.records_dropped += frames;
            report.bytes_dropped += bytes;
            halted = true;
            std::fs::remove_file(path)?;
            continue;
        }
        let mut keep_len = HEADER_LEN as u64;
        let mut stopped_at: Option<usize> = None;
        for (j, (lsn, op)) in seg.records.iter().enumerate() {
            if *lsn <= last_applied {
                // Physically present but covered by the snapshot; keep
                // the bytes, skip the application.
                keep_len = seg.ends[j];
                clean_tail = matches!(op, LogOp::CleanShutdown);
                continue;
            }
            if *lsn != last_applied + 1 {
                note_corruption(
                    &mut report,
                    format!("lsn gap inside segment: record {lsn}, expected {}", last_applied + 1),
                );
                stopped_at = Some(j);
                break;
            }
            match apply_op(&mut catalog, op) {
                Ok(()) => {
                    last_applied = *lsn;
                    keep_len = seg.ends[j];
                    if matches!(op, LogOp::CleanShutdown) {
                        clean_tail = true;
                    } else {
                        clean_tail = false;
                        report.wal_records_replayed += 1;
                    }
                }
                Err(e) => {
                    note_corruption(
                        &mut report,
                        format!("record lsn {lsn} failed to apply: {e}"),
                    );
                    stopped_at = Some(j);
                    break;
                }
            }
        }
        if let Some(j) = stopped_at {
            report.records_dropped += (seg.records.len() - j) as u64 + seg.dropped_frames;
            report.bytes_dropped += seg.valid_len.saturating_sub(keep_len) + seg.dropped_bytes;
            halted = true;
        } else if let Some(c) = &seg.corruption {
            note_corruption(&mut report, c.clone());
            report.records_dropped += seg.dropped_frames;
            report.bytes_dropped += seg.dropped_bytes;
            halted = true;
        }
        writer_at = Some((path.clone(), *seg_start, keep_len));
    }

    let next_lsn = last_applied + 1;
    let wal = match writer_at {
        Some((path, start, keep_len)) => {
            WalWriter::open_append(&path, start, keep_len, Arc::clone(&faults))?
        }
        None => WalWriter::create(dir, next_lsn, Arc::clone(&faults))?,
    };
    report.clean_shutdown = clean_tail;
    Ok(Recovered { catalog, wal, next_lsn, report })
}
