//! CSV ingestion: the path from a raw data file to an encoded, labeled
//! dataset ready for training and querying.
//!
//! The loader is deliberately small (comma separation, optional quoting,
//! a header row) but complete for the UCI-style files the paper's
//! evaluation uses: columns are type-inferred (numeric vs categorical),
//! numeric columns are discretized with a chosen method, and one column
//! may be designated the class label.

use crate::{
    discretize_column, AttrDomain, Attribute, ClassId, Dataset, DiscretizeMethod, LabeledDataset,
    Schema, TypesError, Value,
};

/// Options for [`load_csv`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Name of the label column, if the file is a training set.
    pub label_column: Option<String>,
    /// Discretization for numeric columns.
    pub discretize: DiscretizeMethod,
    /// Treat numeric columns with at most this many distinct values as
    /// categorical instead (UCI files encode many flags as 0/1).
    pub max_numeric_as_categorical: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            label_column: None,
            discretize: DiscretizeMethod::EqualFrequency { bins: 8 },
            max_numeric_as_categorical: 2,
        }
    }
}

/// Result of loading a CSV: the encoded dataset, plus labels when a
/// label column was designated.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvData {
    /// No label column: a plain dataset.
    Unlabeled(Dataset),
    /// Label column present: a labeled dataset.
    Labeled(LabeledDataset),
}

/// Parses one CSV line honoring double-quote quoting with `""` escapes.
fn split_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if field.is_empty() => quoted = true,
            ',' if !quoted => {
                out.push(std::mem::take(&mut field));
            }
            other => field.push(other),
        }
    }
    out.push(field);
    out
}

/// Loads CSV text (header row required) into an encoded dataset,
/// inferring column types and discretizing numeric columns.
pub fn load_csv(text: &str, opts: &CsvOptions) -> Result<CsvData, TypesError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<String> = match lines.next() {
        Some(h) => split_line(h).into_iter().map(|s| s.trim().to_string()).collect(),
        None => return Err(TypesError::ArityMismatch { expected: 1, got: 0 }),
    };
    let rows: Vec<Vec<String>> = lines
        .map(|l| split_line(l).into_iter().map(|s| s.trim().to_string()).collect())
        .collect();
    for r in &rows {
        if r.len() != header.len() {
            return Err(TypesError::ArityMismatch { expected: header.len(), got: r.len() });
        }
    }

    let label_idx = match &opts.label_column {
        Some(name) => Some(
            header
                .iter()
                .position(|h| h.eq_ignore_ascii_case(name))
                .ok_or_else(|| TypesError::UnknownMember { member: name.clone() })?,
        ),
        None => None,
    };

    // Labels (needed before discretization for supervised binning).
    let (labels, class_names) = match label_idx {
        Some(li) => {
            let mut names: Vec<String> = Vec::new();
            let mut labels = Vec::with_capacity(rows.len());
            for r in &rows {
                let v = &r[li];
                let id = match names.iter().position(|n| n == v) {
                    Some(i) => i,
                    None => {
                        names.push(v.clone());
                        names.len() - 1
                    }
                };
                labels.push(ClassId(id as u16));
            }
            (Some(labels), names)
        }
        None => (None, Vec::new()),
    };

    // Column typing + domains.
    let mut attrs = Vec::new();
    let mut col_kinds = Vec::new(); // true = numeric
    for (ci, name) in header.iter().enumerate() {
        if Some(ci) == label_idx {
            continue;
        }
        let parsed: Option<Vec<f64>> =
            rows.iter().map(|r| r[ci].parse::<f64>().ok()).collect();
        let domain = match parsed {
            Some(nums) => {
                let mut distinct: Vec<u64> = nums.iter().map(|x| x.to_bits()).collect();
                distinct.sort_unstable();
                distinct.dedup();
                if distinct.len() <= opts.max_numeric_as_categorical {
                    // Few distinct numerics: categorical by literal text.
                    let mut members: Vec<String> =
                        rows.iter().map(|r| r[ci].clone()).collect();
                    members.sort();
                    members.dedup();
                    col_kinds.push(false);
                    AttrDomain::categorical(members)
                } else {
                    let cuts = discretize_column(
                        &nums,
                        labels.as_deref(),
                        opts.discretize,
                    );
                    col_kinds.push(true);
                    AttrDomain::binned(cuts)?
                }
            }
            None => {
                let mut members: Vec<String> = rows.iter().map(|r| r[ci].clone()).collect();
                members.sort();
                members.dedup();
                col_kinds.push(false);
                AttrDomain::categorical(members)
            }
        };
        attrs.push(Attribute::new(name.clone(), domain));
    }
    let schema = Schema::new(attrs)?;

    // Encode rows.
    let mut ds = Dataset::new(schema);
    for r in &rows {
        let mut raw = Vec::with_capacity(header.len() - usize::from(label_idx.is_some()));
        let mut k = 0;
        for (ci, _) in header.iter().enumerate() {
            if Some(ci) == label_idx {
                continue;
            }
            raw.push(if col_kinds[k] {
                Value::Num(r[ci].parse::<f64>().expect("typed as numeric above"))
            } else {
                Value::Str(r[ci].clone())
            });
            k += 1;
        }
        ds.push_raw(&raw)?;
    }

    match labels {
        Some(labels) => Ok(CsvData::Labeled(LabeledDataset::new(ds, labels, class_names)?)),
        None => Ok(CsvData::Unlabeled(ds)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
age,city,spend,churn
23,oslo,10.5,no
41,lima,200.0,no
37,\"pu,ne\",99.9,yes
55,oslo,310.0,yes
29,lima,15.0,no
62,oslo,500.0,yes
44,lima,120.0,no
33,oslo,80.0,no
";

    #[test]
    fn loads_labeled_csv() {
        let opts = CsvOptions {
            label_column: Some("churn".into()),
            discretize: DiscretizeMethod::EqualFrequency { bins: 3 },
            ..Default::default()
        };
        let CsvData::Labeled(data) = load_csv(SAMPLE, &opts).unwrap() else {
            panic!("expected labeled data")
        };
        assert_eq!(data.len(), 8);
        assert_eq!(data.n_classes(), 2);
        assert_eq!(data.class_names, vec!["no".to_string(), "yes".to_string()]);
        let schema = data.data.schema();
        assert_eq!(schema.len(), 3);
        assert!(schema.attr(schema.attr_by_name("age").unwrap()).domain.is_ordered());
        assert!(!schema.attr(schema.attr_by_name("city").unwrap()).domain.is_ordered());
        // The quoted "pu,ne" member survives.
        assert!(matches!(
            &schema.attr(schema.attr_by_name("city").unwrap()).domain,
            AttrDomain::Categorical { members } if members.contains(&"pu,ne".to_string())
        ));
    }

    #[test]
    fn loads_unlabeled_csv() {
        let CsvData::Unlabeled(ds) = load_csv(SAMPLE, &CsvOptions::default()).unwrap() else {
            panic!("expected unlabeled")
        };
        assert_eq!(ds.len(), 8);
        assert_eq!(ds.schema().len(), 4, "churn becomes a data column");
    }

    #[test]
    fn binary_numeric_columns_become_categorical() {
        let text = "flag,x\n0,1.5\n1,2.5\n0,3.5\n1,4.5\n";
        let CsvData::Unlabeled(ds) = load_csv(text, &CsvOptions::default()).unwrap() else {
            panic!("unlabeled")
        };
        let flag = ds.schema().attr_by_name("flag").unwrap();
        assert!(!ds.schema().attr(flag).domain.is_ordered());
        assert_eq!(ds.schema().attr(flag).domain.cardinality(), 2);
    }

    #[test]
    fn rejects_ragged_rows_and_unknown_label() {
        assert!(load_csv("a,b\n1\n", &CsvOptions::default()).is_err());
        let opts = CsvOptions { label_column: Some("ghost".into()), ..Default::default() };
        assert!(load_csv(SAMPLE, &opts).is_err());
        assert!(load_csv("", &CsvOptions::default()).is_err());
    }

    #[test]
    fn quoting_and_escapes() {
        assert_eq!(split_line(r#"a,"b,c",d"#), vec!["a", "b,c", "d"]);
        assert_eq!(split_line(r#""he said ""hi""",x"#), vec![r#"he said "hi""#, "x"]);
        assert_eq!(split_line("plain"), vec!["plain"]);
        assert_eq!(split_line("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn supervised_discretization_path_works() {
        let opts = CsvOptions {
            label_column: Some("churn".into()),
            discretize: DiscretizeMethod::Entropy { max_bins: 4 },
            ..Default::default()
        };
        let CsvData::Labeled(data) = load_csv(SAMPLE, &opts).unwrap() else { panic!() };
        // spend separates churn well; its domain should have > 1 bin.
        let spend = data.data.schema().attr_by_name("spend").unwrap();
        assert!(data.data.schema().attr(spend).domain.cardinality() >= 2);
    }
}
