//! Property-based tests of the region algebra — the foundation every
//! derived envelope stands on. Regions are checked against brute-force
//! cell enumeration on small grids.

use mpq_core::{DimSet, Region};
use mpq_types::{AttrDomain, Attribute, MemberSet, Schema};
use proptest::prelude::*;
use std::collections::HashSet;

/// Fixed small schema: 2 ordered dims (4 and 3 members) + 1 categorical
/// (4 members) — 48 cells, exhaustively checkable.
fn schema() -> Schema {
    Schema::new(vec![
        Attribute::new("o1", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()),
        Attribute::new("o2", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
        Attribute::new("c", AttrDomain::categorical(["a", "b", "c", "d"])),
    ])
    .unwrap()
}

fn arb_region() -> impl Strategy<Value = Region> {
    (
        (0u16..4, 0u16..4),
        (0u16..3, 0u16..3),
        proptest::collection::vec(0u16..4, 1..4),
    )
        .prop_map(|((a1, b1), (a2, b2), members)| {
            let s = schema();
            Region::full(&s)
                .with_dim(0, DimSet::Range { lo: a1.min(b1), hi: a1.max(b1) })
                .with_dim(1, DimSet::Range { lo: a2.min(b2), hi: a2.max(b2) })
                .with_dim(2, DimSet::Set(MemberSet::of(4, members)))
        })
}

fn cells_of(r: &Region) -> HashSet<Vec<u16>> {
    r.cells().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cardinality_matches_enumeration(r in arb_region()) {
        prop_assert_eq!(r.cardinality(), cells_of(&r).len() as u64);
    }

    #[test]
    fn contains_matches_enumeration(r in arb_region()) {
        let cells = cells_of(&r);
        let s = schema();
        for cell in Region::full(&s).cells() {
            prop_assert_eq!(r.contains(&cell), cells.contains(&cell), "cell {:?}", cell);
        }
    }

    #[test]
    fn intersection_is_set_intersection(a in arb_region(), b in arb_region()) {
        let expected: HashSet<Vec<u16>> =
            cells_of(&a).intersection(&cells_of(&b)).cloned().collect();
        match a.intersect(&b) {
            Some(i) => prop_assert_eq!(cells_of(&i), expected),
            None => prop_assert!(expected.is_empty()),
        }
    }

    #[test]
    fn subtraction_partitions(a in arb_region(), b in arb_region()) {
        let parts = a.subtract(&b);
        // Every cell of `a` is in `b` XOR exactly one part; parts never
        // leak outside `a`.
        for cell in a.cells() {
            let hits = parts.iter().filter(|p| p.contains(&cell)).count();
            if b.contains(&cell) {
                prop_assert_eq!(hits, 0, "cell {:?} in b but also in parts", cell);
            } else {
                prop_assert_eq!(hits, 1, "cell {:?} covered {} times", cell, hits);
            }
        }
        for p in &parts {
            for cell in p.cells() {
                prop_assert!(a.contains(&cell), "part leaks {:?}", cell);
            }
        }
    }

    #[test]
    fn merge_is_exact_union_when_it_succeeds(a in arb_region(), b in arb_region()) {
        if let Some(m) = a.try_merge(&b) {
            let expected: HashSet<Vec<u16>> =
                cells_of(&a).union(&cells_of(&b)).cloned().collect();
            prop_assert_eq!(cells_of(&m), expected, "merge must be the exact union");
        }
    }

    #[test]
    fn subset_agrees_with_cells(a in arb_region(), b in arb_region()) {
        prop_assert_eq!(a.is_subset(&b), cells_of(&a).is_subset(&cells_of(&b)));
    }

    #[test]
    fn intersect_then_subtract_is_empty(a in arb_region(), b in arb_region()) {
        if let Some(i) = a.intersect(&b) {
            for part in i.subtract(&b) {
                prop_assert_eq!(part.cardinality(), 0, "i \\ b must be empty, got {:?}", part);
            }
        }
    }
}
