//! The catalog: tables, secondary indexes, and mining models as
//! first-class objects (§2.2's `CREATE MINING MODEL` world).
//!
//! Models are registered *trained*; registration precomputes the "atomic"
//! upper envelopes for every class (§4.2's training-time step) so that
//! query optimization only performs cheap lookups. Each model carries a
//! version; cached plans remember the versions they read and are
//! invalidated when a model is retrained (§4.2's correctness note).

use crate::expr::{ModelId, ModelOracle};
use crate::index::SecondaryIndex;
use crate::stats::TableStats;
use crate::table::Table;
use crate::EngineError;
use mpq_core::{DeriveOptions, Envelope, EnvelopeProvider};
use mpq_types::{AttrId, ClassId, Member, Row};
use std::sync::Arc;

/// A registered mining model with its precomputed envelopes.
pub struct ModelEntry {
    /// Model name (catalog key).
    pub name: String,
    /// The trained model.
    pub model: Arc<dyn EnvelopeProvider + Send + Sync>,
    /// Per-class upper envelopes, precomputed at registration.
    pub envelopes: Vec<Envelope>,
    /// Bumped on retraining; plans record the versions they depended on.
    pub version: u64,
    /// Derivation options the envelopes were computed with.
    pub derive_opts: DeriveOptions,
}

/// A registered table with statistics and any secondary indexes.
pub struct TableEntry {
    /// The table data.
    pub table: Table,
    /// Per-column statistics.
    pub stats: TableStats,
    /// Secondary indexes, keyed by column.
    pub indexes: Vec<SecondaryIndex>,
}

impl TableEntry {
    /// The single-column index on `attr`, if one exists.
    pub fn index_on(&self, attr: AttrId) -> Option<&SecondaryIndex> {
        self.indexes.iter().find(|ix| ix.is_over(&[attr]))
    }

    /// Position of the index over exactly the given (sorted) column set.
    pub fn index_over(&self, cols: &[AttrId]) -> Option<usize> {
        self.indexes.iter().position(|ix| ix.is_over(cols))
    }
}

/// The engine catalog.
#[derive(Default)]
pub struct Catalog {
    tables: Vec<TableEntry>,
    models: Vec<ModelEntry>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table, building statistics.
    pub fn add_table(&mut self, table: Table) -> Result<usize, EngineError> {
        if self.table_by_name(table.name()).is_some() {
            return Err(EngineError::Duplicate(table.name().to_string()));
        }
        let stats = TableStats::build(&table);
        self.tables.push(TableEntry { table, stats, indexes: Vec::new() });
        Ok(self.tables.len() - 1)
    }

    /// Registers a trained model under `name`, precomputing the per-class
    /// envelopes (§4.2 training-time step).
    pub fn add_model(
        &mut self,
        name: impl Into<String>,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
        opts: DeriveOptions,
    ) -> Result<ModelId, EngineError> {
        let name = name.into();
        if self.model_by_name(&name).is_some() {
            return Err(EngineError::Duplicate(name));
        }
        let envelopes = model.envelopes(&opts);
        self.models.push(ModelEntry { name, model, envelopes, version: 1, derive_opts: opts });
        Ok(self.models.len() - 1)
    }

    /// Replaces a model's contents (retraining): envelopes are recomputed
    /// and the version bumped, invalidating dependent cached plans.
    pub fn retrain_model(
        &mut self,
        id: ModelId,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
    ) -> Result<(), EngineError> {
        let entry = self
            .models
            .get_mut(id)
            .ok_or_else(|| EngineError::UnknownModel(format!("#{id}")))?;
        entry.envelopes = model.envelopes(&entry.derive_opts);
        entry.model = model;
        entry.version += 1;
        Ok(())
    }

    /// Looks up a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.table.name().eq_ignore_ascii_case(name))
    }

    /// Looks up a model by name.
    pub fn model_by_name(&self, name: &str) -> Option<ModelId> {
        self.models.iter().position(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// The table entry at `id`.
    pub fn table(&self, id: usize) -> &TableEntry {
        &self.tables[id]
    }

    /// Mutable table entry (index creation).
    pub fn table_mut(&mut self, id: usize) -> &mut TableEntry {
        &mut self.tables[id]
    }

    /// The model entry at `id`.
    pub fn model(&self, id: ModelId) -> &ModelEntry {
        &self.models[id]
    }

    /// Number of registered models.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// Number of registered tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Resolves a class label of a model.
    pub fn resolve_class(&self, model: ModelId, label: &str) -> Result<ClassId, EngineError> {
        let entry = self.model(model);
        entry.model.class_by_name(label).ok_or_else(|| EngineError::UnknownClass {
            model: entry.name.clone(),
            label: label.to_string(),
        })
    }

    /// Creates a secondary (possibly composite) index over `columns` of
    /// `table_id` if an identical one does not already exist.
    pub fn create_index(&mut self, table_id: usize, columns: &[AttrId]) {
        let mut cols = columns.to_vec();
        cols.sort_unstable();
        cols.dedup();
        let entry = &mut self.tables[table_id];
        if entry.index_over(&cols).is_none() {
            let ix = SecondaryIndex::build(&entry.table, &cols);
            entry.indexes.push(ix);
        }
    }

    /// Drops the index over exactly `columns`, if present.
    pub fn drop_index(&mut self, table_id: usize, columns: &[AttrId]) {
        let mut cols = columns.to_vec();
        cols.sort_unstable();
        cols.dedup();
        let entry = &mut self.tables[table_id];
        if let Some(i) = entry.index_over(&cols) {
            entry.indexes.remove(i);
        }
    }
}

impl ModelOracle for Catalog {
    fn predict(&self, model: ModelId, row: &Row) -> ClassId {
        self.models[model].model.predict(row)
    }

    fn class_for_member(&self, model: ModelId, column: AttrId, m: Member) -> Option<ClassId> {
        // Match by label: the column member's name against the model's
        // class names. Only meaningful for categorical columns.
        let entry = &self.models[model];
        let schema = entry.model.schema();
        let label = schema.attr(column).domain.member_label(m);
        entry.model.class_by_name(&label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_core::paper_table1_model;
    use mpq_types::{Dataset, Value};

    fn catalog_with_model() -> (Catalog, ModelId) {
        let mut cat = Catalog::new();
        let nb = paper_table1_model();
        use mpq_models::Classifier as _;
        let schema = nb.schema().clone();
        let mut ds = Dataset::new(schema);
        ds.push_raw(&[Value::from("m0"), Value::from("m1")]).unwrap();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        let id = cat.add_model("risk", Arc::new(nb), DeriveOptions::default()).unwrap();
        (cat, id)
    }

    #[test]
    fn registration_precomputes_envelopes() {
        let (cat, id) = catalog_with_model();
        let entry = cat.model(id);
        assert_eq!(entry.envelopes.len(), 3, "one envelope per class");
        assert_eq!(entry.version, 1);
        assert_eq!(cat.model_by_name("RISK"), Some(id), "case-insensitive lookup");
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut cat, _) = catalog_with_model();
        let nb = paper_table1_model();
        assert!(matches!(
            cat.add_model("risk", Arc::new(nb), DeriveOptions::default()),
            Err(EngineError::Duplicate(_))
        ));
        use mpq_models::Classifier as _;
        let ds = Dataset::new(paper_table1_model().schema().clone());
        assert!(matches!(
            cat.add_table(Table::from_dataset("T", &ds)),
            Err(EngineError::Duplicate(_))
        ));
    }

    #[test]
    fn retrain_bumps_version_and_recomputes() {
        let (mut cat, id) = catalog_with_model();
        let before = cat.model(id).envelopes.len();
        cat.retrain_model(id, Arc::new(paper_table1_model())).unwrap();
        assert_eq!(cat.model(id).version, 2);
        assert_eq!(cat.model(id).envelopes.len(), before);
        assert!(cat.retrain_model(99, Arc::new(paper_table1_model())).is_err());
    }

    #[test]
    fn class_resolution() {
        let (cat, id) = catalog_with_model();
        assert_eq!(cat.resolve_class(id, "c2").unwrap(), ClassId(1));
        assert!(cat.resolve_class(id, "nope").is_err());
    }

    #[test]
    fn oracle_predicts_and_maps_members() {
        let (cat, id) = catalog_with_model();
        // Table 1: cell (m0, m1) belongs to c1.
        assert_eq!(cat.predict(id, &[0, 1]), ClassId(0));
        // d0's members are named m0..m3; none matches a class name.
        assert_eq!(cat.class_for_member(id, AttrId(0), 0), None);
    }

    #[test]
    fn index_creation_is_idempotent() {
        let (mut cat, _) = catalog_with_model();
        cat.create_index(0, &[AttrId(0)]);
        cat.create_index(0, &[AttrId(0)]);
        assert_eq!(cat.table(0).indexes.len(), 1);
        assert!(cat.table(0).index_on(AttrId(0)).is_some());
        assert!(cat.table(0).index_on(AttrId(1)).is_none());
        // Composite indexes are distinct objects from their singletons.
        cat.create_index(0, &[AttrId(1), AttrId(0)]);
        assert_eq!(cat.table(0).indexes.len(), 2);
        assert!(cat.table(0).index_over(&[AttrId(0), AttrId(1)]).is_some());
        cat.drop_index(0, &[AttrId(0), AttrId(1)]);
        assert_eq!(cat.table(0).indexes.len(), 1);
        cat.drop_index(0, &[AttrId(0)]);
        assert!(cat.table(0).indexes.is_empty());
    }
}
