//! Reproduces **Figure 6**: average running-time reduction as a function
//! of class selectivity (both the original class selectivity and the
//! upper-envelope selectivity), over all models and datasets. The paper's
//! observation: reductions are most significant below ~10% selectivity,
//! because above that the optimizer rarely selects (nonclustered) indexes.

use mpq_bench::report::reduction_by_selectivity_bucket;
use mpq_bench::{run_full_sweep, Scale};

fn main() {
    let scale = Scale::from_args(0.02);
    eprintln!("running full sweep at scale {} ...", scale.0);
    let (rows, _) = run_full_sweep(scale, 7);

    println!("== Figure 6: running-time improvement vs selectivity ==\n");
    for (label, by_env) in [("original class selectivity", false), ("upper-envelope selectivity", true)]
    {
        println!("bucketed by {label}:");
        println!("  {:<12} {:>8} {:>14}", "bucket", "queries", "avg page red.");
        for (bucket, n, avg) in reduction_by_selectivity_bucket(&rows, by_env) {
            let bars = "#".repeat((avg / 5.0).round() as usize);
            println!("  {bucket:<12} {n:>8} {avg:>13.1}%  {bars}");
        }
        println!();
    }
    println!(
        "Expected shape (paper): large reductions in the low-selectivity\n\
         buckets, near zero above 10% — where even exact predicates cannot\n\
         beat a sequential scan."
    );
}
