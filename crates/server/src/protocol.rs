//! The wire protocol: CRC-framed request/response messages.
//!
//! Framing reuses the discipline of the engine's WAL (`persist/wal.rs`):
//! every message travels as one frame
//!
//! ```text
//! +---------+-----------+-------------+
//! | len u32 | crc32 u32 | payload ... |
//! +---------+-----------+-------------+
//! ```
//!
//! little-endian, with the CRC-32 (same polynomial as the WAL) covering
//! the whole payload. The payload is one tag byte followed by the
//! message body, encoded through the same validated
//! [`WireWriter`]/[`WireReader`] primitives durability uses — so a torn,
//! truncated or bit-flipped frame decodes to a typed [`FrameError`] /
//! [`mpq_types::wire::WireError`], never a panic and never a
//! half-trusted value.
//!
//! A connection opens with `Hello`/`Hello` (versioned), then runs any
//! number of request/response exchanges — exactly one response per
//! request, always on the connection the request arrived on. There is
//! no pipelining; the protocol is deliberately stop-and-wait, which
//! makes "drain in-flight queries" well-defined at shutdown.
//!
//! Message vocabulary (tag bytes in parentheses):
//!
//! | direction | message | body |
//! |---|---|---|
//! | C→S | `Hello` (1) | proto version `u32`, client name |
//! | C→S | `Statement` (2) | SQL text, optional statement id (nonce `u64`, seq `u64`) |
//! | C→S | `Health` (3) | — |
//! | C→S | `Shutdown` (4) | — |
//! | C→S | `Goodbye` (5) | — |
//! | C→S | `ReplState` (6) | — (v4; asks role/epoch/next LSN) |
//! | C→S | `ReplAppend` (7) | epoch `u64`, concatenated WAL frames (v4) |
//! | C→S | `ReplSnapshot` (8) | checksummed snapshot bytes (v4) |
//! | C→S | `Promote` (9) | — (v4; standby → primary) |
//! | S→C | `Hello` (128) | proto version `u32`, session id `u64`, server name |
//! | S→C | `Outcome` (129) | a [`StatementOutcome`]: rows + metrics + plan, model-created, parallelism-set, guard-set |
//! | S→C | `Health` (130) | an [`EngineHealth`], recovery report included |
//! | S→C | `ShutdownStarted` (131) | — |
//! | S→C | `Goodbye` (132) | — |
//! | S→C | `Error` (133) | a [`ServerError`] |
//! | S→C | `ReplState` (134) | role `u8`, epoch `u64`, next LSN `u64` (v4) |
//! | S→C | `ReplAck` (135) | next LSN `u64`, epoch `u64` (v4) |
//! | S→C | `Notify` (136) | a subscription push: match (sub id, row id, row, match metrics) or gap marker (v6) |
//!
//! Version compatibility: a v4 server accepts v3 hellos and answers
//! them with v3-shaped frames (the `Health` replication tail is
//! omitted, since a v3 peer rejects trailing bytes). A v4 client
//! falls back to a v3 hello when a v3 server refuses its version.
//!
//! Every engine type crossing the wire ([`QueryOutcome`],
//! [`ExecMetrics`], [`EngineHealth`], [`RecoveryReport`],
//! [`EngineError`], …) is encoded field-by-field and rebuilt on the
//! other side as the *same* Rust type, so the differential oracle can
//! compare wire results against in-process results with plain `==`.

use mpq_engine::{
    EngineError, EngineHealth, ExecMetrics, GuardHeadroom, GuardResource, MatchMetrics,
    ModelHealth, QueryGuard, QueryOutcome, RecoveryReport, ReplRole, RowId, StatementId,
    StatementOutcome,
};
use mpq_types::Member;
use mpq_types::wire::{crc32, WireError, WireReader, WireWriter};
use std::time::Duration;

/// Protocol version spoken by this build. Version 2 added the
/// `pages_skipped` and `memo_hits` metrics fields; version 3 added the
/// optional exactly-once statement id on `Statement` and the
/// `Inserted` outcome; version 4 added the replication channel
/// (`ReplState`/`ReplAppend`/`ReplSnapshot`/`Promote`), the
/// role/epoch/lag tail on `Health`, and the read-only/stale-epoch
/// errors; version 5 added the cascade metrics tail on query outcomes
/// (`cascade_accepts`/`cascade_rejects`/`band_rows`/`scorer_ns`) and
/// the per-model `cascade_note` tail on `Health`; version 6 added
/// standing subscriptions — the `SUBSCRIBE`/`UNSUBSCRIBE` outcomes,
/// the server-push `Notify` frame, the `subs_matched`/
/// `subs_index_pruned` tails on `Inserted` and on query metrics, the
/// subscriptions tail on `Health`, and the unknown-subscription error;
/// version 7 added the adaptive-evaluation counter tail on query
/// outcomes (`clauses_reordered`/`factor_hits`/`feedback_entries`) and
/// the `SET ADAPTIVE` outcome.
/// A v7 server still accepts [`PROTO_VERSION_V6`], [`PROTO_VERSION_V5`],
/// [`PROTO_VERSION_V4`] and [`PROTO_VERSION_V3`] hellos and answers
/// them with frames of the matching shape (`Notify` is never sent to a
/// pre-v6 peer).
pub const PROTO_VERSION: u32 = 7;

/// The previous protocol version, still accepted by the server's
/// handshake. A v6 peer understands the subscription channel but not
/// the adaptive-evaluation counter tail.
pub const PROTO_VERSION_V6: u32 = 6;

/// Still accepted by the server's handshake. A v5 peer understands the
/// cascade tails but not the subscription channel.
pub const PROTO_VERSION_V5: u32 = 5;

/// Still accepted by the server's handshake. A v4 peer understands the
/// replication channel but not the cascade tails.
pub const PROTO_VERSION_V4: u32 = 4;

/// The oldest protocol version still accepted by the server's
/// handshake and used by the client's fallback hello.
pub const PROTO_VERSION_V3: u32 = 3;

/// Default ceiling on one frame's payload length. Large enough for a
/// multi-million-row result (row ids are 4 bytes), small enough that a
/// hostile length prefix cannot make either side allocate the moon.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 64 << 20;

/// Frame header bytes: length + CRC.
pub const FRAME_HEADER_LEN: usize = 8;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Why a byte sequence does not (yet) parse as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// More bytes are needed. `needed` is the total frame length once
    /// known (i.e. once the 8-byte header has arrived).
    Incomplete {
        /// Total bytes of the frame, when the header has been read.
        needed: Option<usize>,
    },
    /// The length prefix exceeds the configured ceiling: the peer is
    /// broken or hostile; the connection cannot be resynchronized.
    TooLong {
        /// Claimed payload length.
        len: u64,
        /// The ceiling it exceeded.
        max: u64,
    },
    /// The payload failed its CRC: a torn or corrupted frame.
    BadCrc,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Incomplete { needed: Some(n) } => {
                write!(f, "incomplete frame (need {n} bytes)")
            }
            FrameError::Incomplete { needed: None } => write!(f, "incomplete frame header"),
            FrameError::TooLong { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            FrameError::BadCrc => write!(f, "frame payload failed its CRC"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Wraps a payload in its frame (length + CRC header).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Attempts to parse one frame from the front of `buf`.
///
/// Returns the payload and the number of bytes consumed. Total: every
/// possible input returns `Ok` or a typed [`FrameError`] — torn
/// prefixes are `Incomplete`, oversized length prefixes are `TooLong`
/// (checked *before* any allocation), corrupted payloads are `BadCrc`.
pub fn decode_frame(buf: &[u8], max_len: u32) -> Result<(Vec<u8>, usize), FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Incomplete { needed: None });
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > max_len {
        return Err(FrameError::TooLong { len: len as u64, max: max_len as u64 });
    }
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let total = FRAME_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(FrameError::Incomplete { needed: Some(total) });
    }
    let payload = &buf[FRAME_HEADER_LEN..total];
    if crc32(payload) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok((payload.to_vec(), total))
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

const REQ_HELLO: u8 = 1;
const REQ_STATEMENT: u8 = 2;
const REQ_HEALTH: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_GOODBYE: u8 = 5;
const REQ_REPL_STATE: u8 = 6;
const REQ_REPL_APPEND: u8 = 7;
const REQ_REPL_SNAPSHOT: u8 = 8;
const REQ_PROMOTE: u8 = 9;

const RESP_HELLO: u8 = 128;
const RESP_OUTCOME: u8 = 129;
const RESP_HEALTH: u8 = 130;
const RESP_SHUTDOWN_STARTED: u8 = 131;
const RESP_GOODBYE: u8 = 132;
const RESP_ERROR: u8 = 133;
const RESP_REPL_STATE: u8 = 134;
const RESP_REPL_ACK: u8 = 135;
const RESP_NOTIFY: u8 = 136;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the connection; must be the first frame sent.
    Hello {
        /// The client's protocol version (must equal [`PROTO_VERSION`]).
        proto_version: u32,
        /// Free-form client identification (shown in server logs).
        client: String,
    },
    /// One SQL statement (query, DDL, a session `SET`, or an INSERT).
    Statement {
        /// The SQL text.
        sql: String,
        /// Client-generated exactly-once id (session nonce + per-nonce
        /// sequence). When present, a retried mutation with the same id
        /// is deduplicated — the server replies with the original
        /// outcome instead of applying it twice. `None` means the
        /// client takes its chances on retry (the pre-v3 behaviour).
        stmt_id: Option<StatementId>,
    },
    /// Asks for the engine's health report.
    Health,
    /// Asks the server to begin a graceful shutdown.
    Shutdown,
    /// Announces the client is closing the connection.
    Goodbye,
    /// (v4) Asks for the node's replication state — the shipper's first
    /// message after connecting, to learn where the standby left off.
    ReplState,
    /// (v4) Ships a batch of WAL frames to a standby, stamped with the
    /// sender's epoch. A stale epoch is refused — that is the fence.
    ReplAppend {
        /// The sending primary's replication epoch.
        epoch: u64,
        /// Concatenated on-disk-format WAL frames.
        frames: Vec<u8>,
    },
    /// (v4) Ships a full checksummed snapshot for standby bootstrap
    /// (the snapshot payload carries the epoch internally).
    ReplSnapshot {
        /// Serialized snapshot bytes (`MPQSNAP1`-framed).
        snapshot: Vec<u8>,
    },
    /// (v4) Promotes a standby to primary, durably bumping the epoch.
    Promote,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Accepts the connection.
    Hello {
        /// The server's protocol version.
        proto_version: u32,
        /// Identifier of the session created for this connection.
        session_id: u64,
        /// Free-form server identification.
        server: String,
    },
    /// A statement executed; its outcome verbatim.
    Outcome(StatementOutcome),
    /// The health report.
    Health(EngineHealth),
    /// Graceful shutdown has begun; in-flight work drains, new queries
    /// are refused.
    ShutdownStarted,
    /// Acknowledges a client `Goodbye` (or an idle connection closed by
    /// server shutdown).
    Goodbye,
    /// The request failed with a typed error; the connection stays
    /// usable unless the error says otherwise.
    Error(ServerError),
    /// (v4) The node's replication state.
    ReplState {
        /// The node's role.
        role: ReplRole,
        /// The node's replication epoch.
        epoch: u64,
        /// The next LSN the node will log — a shipper resumes from
        /// `next_lsn - 1`.
        next_lsn: u64,
    },
    /// (v4) A replication batch or snapshot was applied.
    ReplAck {
        /// The standby's next LSN after applying.
        next_lsn: u64,
        /// The standby's epoch (lets a shipper detect it was deposed
        /// even on the success path).
        epoch: u64,
    },
    /// (v6) A server push on a subscriber's connection: an inserted row
    /// matched one of the session's standing subscriptions, or matches
    /// were dropped because the session's notification queue
    /// overflowed. Delivered between request/response exchanges (never
    /// splitting one), only to peers that negotiated v6.
    Notify(Notification),
}

/// The body of a (v6) `Notify` push frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notification {
    /// An inserted row matched a standing subscription.
    Match {
        /// The subscription that matched.
        subscription: u64,
        /// Name of the table the row landed in.
        table: String,
        /// Row id of the inserted row.
        row_id: RowId,
        /// The matched row (encoded members, schema order).
        row: Vec<Member>,
        /// How the matcher found it for the row that produced this
        /// match: candidacies the inverted index pruned, candidates
        /// whose rewritten predicate was evaluated, and rows the proxy
        /// cascade handed to the real scorer.
        metrics: MatchMetrics,
    },
    /// The session's bounded notification queue overflowed: `dropped`
    /// matches were discarded rather than blocking the write path. The
    /// subscriber knows its view has a hole and can re-run the standing
    /// query to resynchronize.
    Gap {
        /// Number of matches dropped since the last delivered frame.
        dropped: u64,
    },
}

/// A typed failure crossing the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The engine rejected or aborted the statement — the exact
    /// [`EngineError`], reconstructed on the client.
    Engine(EngineError),
    /// Admission control refused the query outright: the in-flight
    /// limit is reached and the wait queue is full. Retryable.
    Busy {
        /// Queries executing when the request was refused.
        in_flight: u64,
        /// Requests already waiting in the admission queue.
        queued: u64,
    },
    /// The query waited in the admission queue past the configured
    /// timeout without a slot opening. Retryable.
    QueueTimeout {
        /// How long the request waited, in milliseconds.
        waited_ms: u64,
    },
    /// The server is draining for shutdown; no new queries.
    ShuttingDown,
    /// The peer violated the protocol (bad handshake, undecodable
    /// frame, request timeout). The connection is closed after this.
    Protocol {
        /// Explanation.
        detail: String,
    },
    /// The server is serving read-only (a standby, or started with
    /// `--read-only`): mutations are refused. Retryable — a retrying
    /// client reconnects and may land on the new primary.
    ReadOnly {
        /// Explanation.
        detail: String,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Engine(e) => write!(f, "{e}"),
            ServerError::Busy { in_flight, queued } => write!(
                f,
                "server busy: {in_flight} queries in flight, {queued} queued"
            ),
            ServerError::QueueTimeout { waited_ms } => {
                write!(f, "queued past the admission timeout ({waited_ms} ms)")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            ServerError::ReadOnly { detail } => {
                write!(f, "server is read-only: {detail}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

// ---------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------

fn put_opt_u64(w: &mut WireWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.put_bool(true);
            w.put_u64(x);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_u64(r: &mut WireReader<'_>) -> Result<Option<u64>, WireError> {
    Ok(if r.get_bool()? { Some(r.get_u64()?) } else { None })
}

fn put_opt_str(w: &mut WireWriter, v: Option<&str>) {
    match v {
        Some(s) => {
            w.put_bool(true);
            w.put_str(s);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_str(r: &mut WireReader<'_>) -> Result<Option<String>, WireError> {
    Ok(if r.get_bool()? { Some(r.get_str()?) } else { None })
}

fn put_guard_resource(w: &mut WireWriter, g: GuardResource) {
    w.put_u8(match g {
        GuardResource::WallClock => 0,
        GuardResource::RowsExamined => 1,
        GuardResource::PagesRead => 2,
        GuardResource::ModelInvocations => 3,
    });
}

fn get_guard_resource(r: &mut WireReader<'_>) -> Result<GuardResource, WireError> {
    Ok(match r.get_u8()? {
        0 => GuardResource::WallClock,
        1 => GuardResource::RowsExamined,
        2 => GuardResource::PagesRead,
        3 => GuardResource::ModelInvocations,
        other => {
            return Err(WireError::Invalid { detail: format!("guard resource tag {other}") })
        }
    })
}

fn put_guard(w: &mut WireWriter, g: &QueryGuard) {
    put_opt_u64(w, g.deadline.map(|d| d.as_millis() as u64));
    put_opt_u64(w, g.max_rows_examined);
    put_opt_u64(w, g.max_pages);
    put_opt_u64(w, g.max_model_invocations);
}

fn get_guard(r: &mut WireReader<'_>) -> Result<QueryGuard, WireError> {
    Ok(QueryGuard {
        deadline: get_opt_u64(r)?.map(Duration::from_millis),
        max_rows_examined: get_opt_u64(r)?,
        max_pages: get_opt_u64(r)?,
        max_model_invocations: get_opt_u64(r)?,
    })
}

fn put_metrics(w: &mut WireWriter, m: &ExecMetrics) {
    w.put_u64(m.heap_pages_read);
    w.put_u64(m.index_pages_read);
    w.put_u64(m.pages_skipped);
    w.put_u64(m.rows_examined);
    w.put_u64(m.model_invocations);
    w.put_u64(m.memo_hits);
    w.put_u64(m.output_rows);
    w.put_u64(m.elapsed.as_nanos().min(u64::MAX as u128) as u64);
    put_opt_u64(w, m.guard.rows_remaining);
    put_opt_u64(w, m.guard.pages_remaining);
    put_opt_u64(w, m.guard.model_invocations_remaining);
    put_opt_u64(w, m.guard.time_remaining_ms);
    w.put_bool(m.index_fallback);
}

fn get_metrics(r: &mut WireReader<'_>) -> Result<ExecMetrics, WireError> {
    Ok(ExecMetrics {
        heap_pages_read: r.get_u64()?,
        index_pages_read: r.get_u64()?,
        pages_skipped: r.get_u64()?,
        rows_examined: r.get_u64()?,
        model_invocations: r.get_u64()?,
        memo_hits: r.get_u64()?,
        output_rows: r.get_u64()?,
        elapsed: Duration::from_nanos(r.get_u64()?),
        guard: GuardHeadroom {
            rows_remaining: get_opt_u64(r)?,
            pages_remaining: get_opt_u64(r)?,
            model_invocations_remaining: get_opt_u64(r)?,
            time_remaining_ms: get_opt_u64(r)?,
        },
        index_fallback: r.get_bool()?,
        // The cascade counters travel in the v5 tail of the query
        // outcome (after `cached_plan`), so a v4 decoder — which
        // rejects trailing bytes — keeps working against this layout.
        ..ExecMetrics::default()
    })
}

/// Encodes a query outcome. The cascade metrics
/// (`cascade_accepts`/`cascade_rejects`/`band_rows`/`scorer_ns`) ride
/// as a v5 tail after `cached_plan`, and the subscription counters
/// (`subs_matched`/`subs_index_pruned`) as a v6 tail after those; an
/// older peer's decoder rejects trailing bytes, so each tail is
/// omitted for peers below its version.
fn put_query_outcome(w: &mut WireWriter, q: &QueryOutcome, proto_version: u32) {
    w.put_u32(q.rows.len() as u32);
    for &row in &q.rows {
        w.put_u32(row);
    }
    put_metrics(w, &q.metrics);
    w.put_str(&q.plan);
    w.put_bool(q.plan_changed);
    w.put_bool(q.cached_plan);
    if proto_version >= PROTO_VERSION_V5 {
        w.put_u64(q.metrics.cascade_accepts);
        w.put_u64(q.metrics.cascade_rejects);
        w.put_u64(q.metrics.band_rows);
        w.put_u64(q.metrics.scorer_ns);
    }
    if proto_version >= PROTO_VERSION_V6 {
        w.put_u64(q.metrics.subs_matched);
        w.put_u64(q.metrics.subs_index_pruned);
    }
    if proto_version >= PROTO_VERSION {
        w.put_u64(q.metrics.clauses_reordered);
        w.put_u64(q.metrics.factor_hits);
        w.put_u64(q.metrics.feedback_entries);
    }
}

/// Decodes a query outcome from any shape: bytes remaining after
/// `cached_plan` are the v5 cascade tail, bytes remaining after that
/// are the v6 subscription tail; counters a shorter (older-server)
/// payload stops before keep their zero defaults.
fn get_query_outcome(r: &mut WireReader<'_>) -> Result<QueryOutcome, WireError> {
    let n = r.get_u32()? as usize;
    // Bound the allocation by what the buffer could actually hold.
    if n > r.remaining() / 4 {
        return Err(WireError::Truncated { at: r.position() });
    }
    let rows = (0..n).map(|_| r.get_u32()).collect::<Result<Vec<_>, _>>()?;
    let mut out = QueryOutcome {
        rows,
        metrics: get_metrics(r)?,
        plan: r.get_str()?,
        plan_changed: r.get_bool()?,
        cached_plan: r.get_bool()?,
    };
    if !r.is_exhausted() {
        out.metrics.cascade_accepts = r.get_u64()?;
        out.metrics.cascade_rejects = r.get_u64()?;
        out.metrics.band_rows = r.get_u64()?;
        out.metrics.scorer_ns = r.get_u64()?;
    }
    if !r.is_exhausted() {
        out.metrics.subs_matched = r.get_u64()?;
        out.metrics.subs_index_pruned = r.get_u64()?;
    }
    if !r.is_exhausted() {
        out.metrics.clauses_reordered = r.get_u64()?;
        out.metrics.factor_hits = r.get_u64()?;
        out.metrics.feedback_entries = r.get_u64()?;
    }
    Ok(out)
}

fn put_match_metrics(w: &mut WireWriter, m: &MatchMetrics) {
    w.put_u64(m.index_pruned);
    w.put_u64(m.residual_evaluated);
    w.put_u64(m.scorer_banded);
}

fn get_match_metrics(r: &mut WireReader<'_>) -> Result<MatchMetrics, WireError> {
    Ok(MatchMetrics {
        index_pruned: r.get_u64()?,
        residual_evaluated: r.get_u64()?,
        scorer_banded: r.get_u64()?,
    })
}

const NOTIFY_MATCH: u8 = 0;
const NOTIFY_GAP: u8 = 1;

fn put_notification(w: &mut WireWriter, n: &Notification) {
    match n {
        Notification::Match { subscription, table, row_id, row, metrics } => {
            w.put_u8(NOTIFY_MATCH);
            w.put_u64(*subscription);
            w.put_str(table);
            w.put_u32(*row_id);
            w.put_u16s(row);
            put_match_metrics(w, metrics);
        }
        Notification::Gap { dropped } => {
            w.put_u8(NOTIFY_GAP);
            w.put_u64(*dropped);
        }
    }
}

fn get_notification(r: &mut WireReader<'_>) -> Result<Notification, WireError> {
    Ok(match r.get_u8()? {
        NOTIFY_MATCH => {
            let subscription = r.get_u64()?;
            let table = r.get_str()?;
            let row_id = r.get_u32()?;
            let row = r.get_u16s()?;
            Notification::Match {
                subscription,
                table,
                row_id,
                row,
                metrics: get_match_metrics(r)?,
            }
        }
        NOTIFY_GAP => Notification::Gap { dropped: r.get_u64()? },
        other => {
            return Err(WireError::Invalid { detail: format!("notification tag {other}") })
        }
    })
}

fn put_recovery_report(w: &mut WireWriter, rep: &RecoveryReport) {
    w.put_u64(rep.snapshot_lsn);
    w.put_u64(rep.snapshots_skipped as u64);
    w.put_u64(rep.wal_records_replayed);
    w.put_u64(rep.records_dropped);
    w.put_u64(rep.bytes_dropped);
    put_opt_str(w, rep.corruption.as_deref());
    w.put_bool(rep.clean_shutdown);
}

fn get_recovery_report(r: &mut WireReader<'_>) -> Result<RecoveryReport, WireError> {
    Ok(RecoveryReport {
        snapshot_lsn: r.get_u64()?,
        snapshots_skipped: r.get_u64()? as usize,
        wal_records_replayed: r.get_u64()?,
        records_dropped: r.get_u64()?,
        bytes_dropped: r.get_u64()?,
        corruption: get_opt_str(r)?,
        clean_shutdown: r.get_bool()?,
    })
}

fn put_role(w: &mut WireWriter, role: ReplRole) {
    w.put_u8(match role {
        ReplRole::Primary => 0,
        ReplRole::Standby => 1,
    });
}

fn get_role(r: &mut WireReader<'_>) -> Result<ReplRole, WireError> {
    Ok(match r.get_u8()? {
        0 => ReplRole::Primary,
        1 => ReplRole::Standby,
        other => {
            return Err(WireError::Invalid { detail: format!("replication role tag {other}") })
        }
    })
}

/// Encodes a health report at the peer's negotiated version. A v3
/// peer's decoder rejects trailing bytes, so the v4 replication tail
/// (role, epoch, lag) is omitted for it; likewise the v5 per-model
/// `cascade_note` tail is omitted for v3 and v4 peers.
fn put_health(w: &mut WireWriter, h: &EngineHealth, proto_version: u32) {
    w.put_u32(h.models.len() as u32);
    for m in &h.models {
        w.put_str(&m.name);
        w.put_u64(m.version);
        put_opt_str(w, m.degraded.as_deref());
        w.put_u64(m.n_envelopes as u64);
        w.put_u64(m.exact_envelopes as u64);
    }
    w.put_u64(h.tables as u64);
    w.put_u64(h.cached_plans as u64);
    match &h.recovery {
        Some(rep) => {
            w.put_bool(true);
            put_recovery_report(w, rep);
        }
        None => w.put_bool(false),
    }
    if proto_version >= PROTO_VERSION_V4 {
        put_role(w, h.role);
        w.put_u64(h.epoch);
        put_opt_u64(w, h.replica_lag_records);
        put_opt_u64(w, h.replica_lag_bytes);
    }
    if proto_version >= PROTO_VERSION_V5 {
        for m in &h.models {
            put_opt_str(w, m.cascade_note.as_deref());
        }
    }
    if proto_version >= PROTO_VERSION_V6 {
        w.put_u64(h.subscriptions as u64);
        put_opt_str(w, h.sub_index_note.as_deref());
    }
}

/// Decodes a health report from either shape: when bytes remain after
/// the v3 fields, they are the v4 replication tail; when none do (a v3
/// server answered), the replication fields take their defaults —
/// which is how the repl's `.health` degrades gracefully against an
/// old server.
fn get_health(r: &mut WireReader<'_>) -> Result<EngineHealth, WireError> {
    let n = r.get_u32()? as usize;
    if n > r.remaining() {
        return Err(WireError::Truncated { at: r.position() });
    }
    let mut models = (0..n)
        .map(|_| {
            Ok(ModelHealth {
                name: r.get_str()?,
                version: r.get_u64()?,
                degraded: get_opt_str(r)?,
                n_envelopes: r.get_u64()? as usize,
                exact_envelopes: r.get_u64()? as usize,
                cascade_note: None,
            })
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let tables = r.get_u64()? as usize;
    let cached_plans = r.get_u64()? as usize;
    let recovery = if r.get_bool()? { Some(get_recovery_report(r)?) } else { None };
    let (role, epoch, lag_records, lag_bytes) = if r.is_exhausted() {
        (ReplRole::Primary, 0, None, None)
    } else {
        (get_role(r)?, r.get_u64()?, get_opt_u64(r)?, get_opt_u64(r)?)
    };
    // v5 appends one optional cascade note per model; a v4 or v3
    // server stops before them and the notes stay `None`.
    if !r.is_exhausted() {
        for m in &mut models {
            m.cascade_note = get_opt_str(r)?;
        }
    }
    // v6 appends the subscription count and the degraded-matcher note;
    // an older server stops before them and the defaults hold.
    let (subscriptions, sub_index_note) = if r.is_exhausted() {
        (0, None)
    } else {
        (r.get_u64()? as usize, get_opt_str(r)?)
    };
    Ok(EngineHealth {
        models,
        tables,
        cached_plans,
        recovery,
        role,
        epoch,
        replica_lag_records: lag_records,
        replica_lag_bytes: lag_bytes,
        subscriptions,
        sub_index_note,
    })
}

const ENGERR_UNKNOWN_TABLE: u8 = 0;
const ENGERR_UNKNOWN_MODEL: u8 = 1;
const ENGERR_UNKNOWN_COLUMN: u8 = 2;
const ENGERR_UNKNOWN_CLASS: u8 = 3;
const ENGERR_SCHEMA_MISMATCH: u8 = 4;
const ENGERR_PARSE: u8 = 5;
const ENGERR_BAD_VALUE: u8 = 6;
const ENGERR_DUPLICATE: u8 = 7;
const ENGERR_BUDGET: u8 = 8;
const ENGERR_INTERNAL: u8 = 9;
const ENGERR_IO: u8 = 10;
const ENGERR_CORRUPT: u8 = 11;
const ENGERR_READ_ONLY: u8 = 12;
const ENGERR_STALE_EPOCH: u8 = 13;
const ENGERR_UNKNOWN_SUBSCRIPTION: u8 = 14;

fn put_engine_error(w: &mut WireWriter, e: &EngineError) {
    match e {
        EngineError::UnknownTable(s) => {
            w.put_u8(ENGERR_UNKNOWN_TABLE);
            w.put_str(s);
        }
        EngineError::UnknownModel(s) => {
            w.put_u8(ENGERR_UNKNOWN_MODEL);
            w.put_str(s);
        }
        EngineError::UnknownColumn(s) => {
            w.put_u8(ENGERR_UNKNOWN_COLUMN);
            w.put_str(s);
        }
        EngineError::UnknownClass { model, label } => {
            w.put_u8(ENGERR_UNKNOWN_CLASS);
            w.put_str(model);
            w.put_str(label);
        }
        EngineError::SchemaMismatch { detail } => {
            w.put_u8(ENGERR_SCHEMA_MISMATCH);
            w.put_str(detail);
        }
        EngineError::Parse { at, detail } => {
            w.put_u8(ENGERR_PARSE);
            w.put_u64(*at as u64);
            w.put_str(detail);
        }
        EngineError::BadValue(s) => {
            w.put_u8(ENGERR_BAD_VALUE);
            w.put_str(s);
        }
        EngineError::Duplicate(s) => {
            w.put_u8(ENGERR_DUPLICATE);
            w.put_str(s);
        }
        EngineError::BudgetExceeded { resource, spent, limit } => {
            w.put_u8(ENGERR_BUDGET);
            put_guard_resource(w, *resource);
            w.put_u64(*spent);
            w.put_u64(*limit);
        }
        EngineError::Internal { detail } => {
            w.put_u8(ENGERR_INTERNAL);
            w.put_str(detail);
        }
        EngineError::Io { detail } => {
            w.put_u8(ENGERR_IO);
            w.put_str(detail);
        }
        EngineError::Corrupt { detail } => {
            w.put_u8(ENGERR_CORRUPT);
            w.put_str(detail);
        }
        EngineError::ReadOnly { detail } => {
            w.put_u8(ENGERR_READ_ONLY);
            w.put_str(detail);
        }
        EngineError::StaleEpoch { sent, have } => {
            w.put_u8(ENGERR_STALE_EPOCH);
            w.put_u64(*sent);
            w.put_u64(*have);
        }
        EngineError::UnknownSubscription(id) => {
            w.put_u8(ENGERR_UNKNOWN_SUBSCRIPTION);
            w.put_u64(*id);
        }
    }
}

fn get_engine_error(r: &mut WireReader<'_>) -> Result<EngineError, WireError> {
    Ok(match r.get_u8()? {
        ENGERR_UNKNOWN_TABLE => EngineError::UnknownTable(r.get_str()?),
        ENGERR_UNKNOWN_MODEL => EngineError::UnknownModel(r.get_str()?),
        ENGERR_UNKNOWN_COLUMN => EngineError::UnknownColumn(r.get_str()?),
        ENGERR_UNKNOWN_CLASS => {
            EngineError::UnknownClass { model: r.get_str()?, label: r.get_str()? }
        }
        ENGERR_SCHEMA_MISMATCH => EngineError::SchemaMismatch { detail: r.get_str()? },
        ENGERR_PARSE => {
            EngineError::Parse { at: r.get_u64()? as usize, detail: r.get_str()? }
        }
        ENGERR_BAD_VALUE => EngineError::BadValue(r.get_str()?),
        ENGERR_DUPLICATE => EngineError::Duplicate(r.get_str()?),
        ENGERR_BUDGET => EngineError::BudgetExceeded {
            resource: get_guard_resource(r)?,
            spent: r.get_u64()?,
            limit: r.get_u64()?,
        },
        ENGERR_INTERNAL => EngineError::Internal { detail: r.get_str()? },
        ENGERR_IO => EngineError::Io { detail: r.get_str()? },
        ENGERR_CORRUPT => EngineError::Corrupt { detail: r.get_str()? },
        ENGERR_READ_ONLY => EngineError::ReadOnly { detail: r.get_str()? },
        ENGERR_STALE_EPOCH => {
            EngineError::StaleEpoch { sent: r.get_u64()?, have: r.get_u64()? }
        }
        ENGERR_UNKNOWN_SUBSCRIPTION => EngineError::UnknownSubscription(r.get_u64()?),
        other => {
            return Err(WireError::Invalid { detail: format!("engine error tag {other}") })
        }
    })
}

const SRVERR_ENGINE: u8 = 0;
const SRVERR_BUSY: u8 = 1;
const SRVERR_QUEUE_TIMEOUT: u8 = 2;
const SRVERR_SHUTTING_DOWN: u8 = 3;
const SRVERR_PROTOCOL: u8 = 4;
const SRVERR_READ_ONLY: u8 = 5;

fn put_server_error(w: &mut WireWriter, e: &ServerError) {
    match e {
        ServerError::Engine(inner) => {
            w.put_u8(SRVERR_ENGINE);
            put_engine_error(w, inner);
        }
        ServerError::Busy { in_flight, queued } => {
            w.put_u8(SRVERR_BUSY);
            w.put_u64(*in_flight);
            w.put_u64(*queued);
        }
        ServerError::QueueTimeout { waited_ms } => {
            w.put_u8(SRVERR_QUEUE_TIMEOUT);
            w.put_u64(*waited_ms);
        }
        ServerError::ShuttingDown => w.put_u8(SRVERR_SHUTTING_DOWN),
        ServerError::Protocol { detail } => {
            w.put_u8(SRVERR_PROTOCOL);
            w.put_str(detail);
        }
        ServerError::ReadOnly { detail } => {
            w.put_u8(SRVERR_READ_ONLY);
            w.put_str(detail);
        }
    }
}

fn get_server_error(r: &mut WireReader<'_>) -> Result<ServerError, WireError> {
    Ok(match r.get_u8()? {
        SRVERR_ENGINE => ServerError::Engine(get_engine_error(r)?),
        SRVERR_BUSY => ServerError::Busy { in_flight: r.get_u64()?, queued: r.get_u64()? },
        SRVERR_QUEUE_TIMEOUT => ServerError::QueueTimeout { waited_ms: r.get_u64()? },
        SRVERR_SHUTTING_DOWN => ServerError::ShuttingDown,
        SRVERR_PROTOCOL => ServerError::Protocol { detail: r.get_str()? },
        SRVERR_READ_ONLY => ServerError::ReadOnly { detail: r.get_str()? },
        other => {
            return Err(WireError::Invalid { detail: format!("server error tag {other}") })
        }
    })
}

const OUTCOME_QUERY: u8 = 0;
const OUTCOME_MODEL_CREATED: u8 = 1;
const OUTCOME_PARALLELISM_SET: u8 = 2;
const OUTCOME_GUARD_SET: u8 = 3;
const OUTCOME_INSERTED: u8 = 4;
const OUTCOME_SUBSCRIBED: u8 = 5;
const OUTCOME_UNSUBSCRIBED: u8 = 6;
const OUTCOME_ADAPTIVE_SET: u8 = 7;

fn put_outcome(w: &mut WireWriter, o: &StatementOutcome, proto_version: u32) {
    match o {
        StatementOutcome::Query(q) => {
            w.put_u8(OUTCOME_QUERY);
            put_query_outcome(w, q, proto_version);
        }
        StatementOutcome::ModelCreated { name, model, n_classes, degraded } => {
            w.put_u8(OUTCOME_MODEL_CREATED);
            w.put_str(name);
            w.put_u64(*model as u64);
            w.put_u64(*n_classes as u64);
            put_opt_str(w, degraded.as_deref());
        }
        StatementOutcome::ParallelismSet { dop } => {
            w.put_u8(OUTCOME_PARALLELISM_SET);
            w.put_u64(*dop as u64);
        }
        StatementOutcome::GuardSet { guard } => {
            w.put_u8(OUTCOME_GUARD_SET);
            put_guard(w, guard);
        }
        StatementOutcome::Inserted { table, rows_inserted, subs_matched, subs_index_pruned } => {
            w.put_u8(OUTCOME_INSERTED);
            w.put_str(table);
            w.put_u64(*rows_inserted);
            // The subscription counters ride as a v6 tail; a pre-v6
            // peer's decoder rejects trailing bytes.
            if proto_version >= PROTO_VERSION_V6 {
                w.put_u64(*subs_matched);
                w.put_u64(*subs_index_pruned);
            }
        }
        StatementOutcome::Subscribed { id } => {
            w.put_u8(OUTCOME_SUBSCRIBED);
            w.put_u64(*id);
        }
        StatementOutcome::Unsubscribed { id } => {
            w.put_u8(OUTCOME_UNSUBSCRIBED);
            w.put_u64(*id);
        }
        StatementOutcome::AdaptiveSet { on } => {
            w.put_u8(OUTCOME_ADAPTIVE_SET);
            w.put_bool(*on);
        }
    }
}

fn get_outcome(r: &mut WireReader<'_>) -> Result<StatementOutcome, WireError> {
    Ok(match r.get_u8()? {
        OUTCOME_QUERY => StatementOutcome::Query(get_query_outcome(r)?),
        OUTCOME_MODEL_CREATED => StatementOutcome::ModelCreated {
            name: r.get_str()?,
            model: r.get_u64()? as usize,
            n_classes: r.get_u64()? as usize,
            degraded: get_opt_str(r)?,
        },
        OUTCOME_PARALLELISM_SET => {
            StatementOutcome::ParallelismSet { dop: r.get_u64()? as usize }
        }
        OUTCOME_GUARD_SET => StatementOutcome::GuardSet { guard: get_guard(r)? },
        OUTCOME_INSERTED => {
            let table = r.get_str()?;
            let rows_inserted = r.get_u64()?;
            // Remaining bytes are the v6 subscription-counter tail; a
            // pre-v6 server stops here and the counters stay zero.
            let (subs_matched, subs_index_pruned) = if r.is_exhausted() {
                (0, 0)
            } else {
                (r.get_u64()?, r.get_u64()?)
            };
            StatementOutcome::Inserted {
                table,
                rows_inserted,
                subs_matched,
                subs_index_pruned,
            }
        }
        OUTCOME_SUBSCRIBED => StatementOutcome::Subscribed { id: r.get_u64()? },
        OUTCOME_UNSUBSCRIBED => StatementOutcome::Unsubscribed { id: r.get_u64()? },
        OUTCOME_ADAPTIVE_SET => StatementOutcome::AdaptiveSet { on: r.get_bool()? },
        other => {
            return Err(WireError::Invalid { detail: format!("outcome tag {other}") })
        }
    })
}

// ---------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------

impl Request {
    /// Serializes this request to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Request::Hello { proto_version, client } => {
                w.put_u8(REQ_HELLO);
                w.put_u32(*proto_version);
                w.put_str(client);
            }
            Request::Statement { sql, stmt_id } => {
                w.put_u8(REQ_STATEMENT);
                w.put_str(sql);
                match stmt_id {
                    Some(id) => {
                        w.put_bool(true);
                        w.put_u64(id.nonce);
                        w.put_u64(id.seq);
                    }
                    None => w.put_bool(false),
                }
            }
            Request::Health => w.put_u8(REQ_HEALTH),
            Request::Shutdown => w.put_u8(REQ_SHUTDOWN),
            Request::Goodbye => w.put_u8(REQ_GOODBYE),
            Request::ReplState => w.put_u8(REQ_REPL_STATE),
            Request::ReplAppend { epoch, frames } => {
                w.put_u8(REQ_REPL_APPEND);
                w.put_u64(*epoch);
                w.put_bytes(frames);
            }
            Request::ReplSnapshot { snapshot } => {
                w.put_u8(REQ_REPL_SNAPSHOT);
                w.put_bytes(snapshot);
            }
            Request::Promote => w.put_u8(REQ_PROMOTE),
        }
        w.into_bytes()
    }

    /// Decodes a frame payload; every byte must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = WireReader::new(payload);
        let req = match r.get_u8()? {
            REQ_HELLO => {
                Request::Hello { proto_version: r.get_u32()?, client: r.get_str()? }
            }
            REQ_STATEMENT => Request::Statement {
                sql: r.get_str()?,
                stmt_id: if r.get_bool()? {
                    Some(StatementId { nonce: r.get_u64()?, seq: r.get_u64()? })
                } else {
                    None
                },
            },
            REQ_HEALTH => Request::Health,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_GOODBYE => Request::Goodbye,
            REQ_REPL_STATE => Request::ReplState,
            REQ_REPL_APPEND => Request::ReplAppend {
                epoch: r.get_u64()?,
                frames: r.get_bytes()?.to_vec(),
            },
            REQ_REPL_SNAPSHOT => Request::ReplSnapshot { snapshot: r.get_bytes()?.to_vec() },
            REQ_PROMOTE => Request::Promote,
            other => {
                return Err(WireError::Invalid { detail: format!("request tag {other}") })
            }
        };
        if !r.is_exhausted() {
            return Err(WireError::Invalid {
                detail: format!("{} trailing bytes after request", r.remaining()),
            });
        }
        Ok(req)
    }
}

impl Response {
    /// Serializes this response to a frame payload at the current
    /// protocol version.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_versioned(PROTO_VERSION)
    }

    /// Serializes this response for a peer that negotiated
    /// `proto_version`. Older peers' decoders reject trailing bytes,
    /// so the `Health` replication tail is only written for v4+ peers
    /// and the cascade tails (query-outcome counters, per-model
    /// `cascade_note`) only for v5+ peers; all other responses are
    /// shape-identical across versions.
    pub fn encode_versioned(&self, proto_version: u32) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Response::Hello { proto_version, session_id, server } => {
                w.put_u8(RESP_HELLO);
                w.put_u32(*proto_version);
                w.put_u64(*session_id);
                w.put_str(server);
            }
            Response::Outcome(o) => {
                w.put_u8(RESP_OUTCOME);
                put_outcome(&mut w, o, proto_version);
            }
            Response::Health(h) => {
                w.put_u8(RESP_HEALTH);
                put_health(&mut w, h, proto_version);
            }
            Response::ShutdownStarted => w.put_u8(RESP_SHUTDOWN_STARTED),
            Response::Goodbye => w.put_u8(RESP_GOODBYE),
            Response::Error(e) => {
                w.put_u8(RESP_ERROR);
                put_server_error(&mut w, e);
            }
            Response::ReplState { role, epoch, next_lsn } => {
                w.put_u8(RESP_REPL_STATE);
                put_role(&mut w, *role);
                w.put_u64(*epoch);
                w.put_u64(*next_lsn);
            }
            Response::ReplAck { next_lsn, epoch } => {
                w.put_u8(RESP_REPL_ACK);
                w.put_u64(*next_lsn);
                w.put_u64(*epoch);
            }
            Response::Notify(n) => {
                w.put_u8(RESP_NOTIFY);
                put_notification(&mut w, n);
            }
        }
        w.into_bytes()
    }

    /// Decodes a frame payload; every byte must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = WireReader::new(payload);
        let resp = match r.get_u8()? {
            RESP_HELLO => Response::Hello {
                proto_version: r.get_u32()?,
                session_id: r.get_u64()?,
                server: r.get_str()?,
            },
            RESP_OUTCOME => Response::Outcome(get_outcome(&mut r)?),
            RESP_HEALTH => Response::Health(get_health(&mut r)?),
            RESP_SHUTDOWN_STARTED => Response::ShutdownStarted,
            RESP_GOODBYE => Response::Goodbye,
            RESP_ERROR => Response::Error(get_server_error(&mut r)?),
            RESP_REPL_STATE => Response::ReplState {
                role: get_role(&mut r)?,
                epoch: r.get_u64()?,
                next_lsn: r.get_u64()?,
            },
            RESP_REPL_ACK => Response::ReplAck { next_lsn: r.get_u64()?, epoch: r.get_u64()? },
            RESP_NOTIFY => Response::Notify(get_notification(&mut r)?),
            other => {
                return Err(WireError::Invalid { detail: format!("response tag {other}") })
            }
        };
        if !r.is_exhausted() {
            return Err(WireError::Invalid {
                detail: format!("{} trailing bytes after response", r.remaining()),
            });
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_boundaries() {
        let payload = b"hello, frames".to_vec();
        let frame = encode_frame(&payload);
        let (back, consumed) = decode_frame(&frame, DEFAULT_MAX_FRAME_LEN).unwrap();
        assert_eq!(back, payload);
        assert_eq!(consumed, frame.len());
        // Every strict prefix is Incomplete, never an error of another
        // kind and never a panic.
        for cut in 0..frame.len() {
            assert!(matches!(
                decode_frame(&frame[..cut], DEFAULT_MAX_FRAME_LEN),
                Err(FrameError::Incomplete { .. })
            ));
        }
        // A flipped payload byte fails the CRC.
        let mut torn = frame.clone();
        *torn.last_mut().unwrap() ^= 0x01;
        assert_eq!(decode_frame(&torn, DEFAULT_MAX_FRAME_LEN), Err(FrameError::BadCrc));
        // A hostile length prefix is refused before any allocation.
        let mut hostile = frame;
        hostile[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&hostile, DEFAULT_MAX_FRAME_LEN),
            Err(FrameError::TooLong { .. })
        ));
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Hello { proto_version: PROTO_VERSION, client: "repl".into() },
            Request::Statement {
                sql: "SELECT * FROM t WHERE PREDICT(m) = 'c1'".into(),
                stmt_id: None,
            },
            Request::Statement {
                sql: "INSERT INTO t VALUES ('a0', 'b1')".into(),
                stmt_id: Some(StatementId { nonce: 0xfeed_f00d, seq: 7 }),
            },
            Request::Health,
            Request::Shutdown,
            Request::Goodbye,
            Request::ReplState,
            Request::ReplAppend { epoch: 2, frames: vec![0xde, 0xad, 0xbe, 0xef] },
            Request::ReplAppend { epoch: 0, frames: Vec::new() },
            Request::ReplSnapshot { snapshot: vec![7; 64] },
            Request::Promote,
        ];
        for req in &reqs {
            assert_eq!(&Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip_including_rich_outcomes() {
        let outcome = StatementOutcome::Query(QueryOutcome {
            rows: vec![1, 5, 9, 1000],
            metrics: ExecMetrics {
                heap_pages_read: 3,
                index_pages_read: 2,
                pages_skipped: 7,
                rows_examined: 40,
                model_invocations: 12,
                memo_hits: 28,
                cascade_accepts: 9,
                cascade_rejects: 13,
                band_rows: 3,
                scorer_ns: 4_200,
                output_rows: 4,
                elapsed: Duration::from_micros(1234),
                guard: GuardHeadroom {
                    rows_remaining: Some(60),
                    pages_remaining: None,
                    model_invocations_remaining: Some(0),
                    time_remaining_ms: Some(17),
                },
                index_fallback: true,
                subs_matched: 0,
                subs_index_pruned: 0,
                clauses_reordered: 2,
                factor_hits: 6,
                feedback_entries: 1,
            },
            plan: "index seek ...".into(),
            plan_changed: true,
            cached_plan: false,
        });
        let health = EngineHealth {
            models: vec![ModelHealth {
                name: "m".into(),
                version: 3,
                degraded: Some("derivation timeout".into()),
                n_envelopes: 4,
                exact_envelopes: 2,
                cascade_note: Some("cascade disabled for model 'm': stored proxy table failed verification".into()),
            }],
            tables: 2,
            cached_plans: 5,
            recovery: Some(RecoveryReport {
                snapshot_lsn: 17,
                snapshots_skipped: 1,
                wal_records_replayed: 4,
                records_dropped: 2,
                bytes_dropped: 99,
                corruption: Some("crc mismatch at byte 123".into()),
                clean_shutdown: false,
            }),
            role: ReplRole::Primary,
            epoch: 2,
            replica_lag_records: Some(3),
            replica_lag_bytes: Some(412),
            subscriptions: 4,
            sub_index_note: Some("matching naively (corruption fault armed)".into()),
        };
        let resps = [
            Response::Hello { proto_version: 1, session_id: 42, server: "mpq".into() },
            Response::Outcome(outcome),
            Response::Outcome(StatementOutcome::ModelCreated {
                name: "m2".into(),
                model: 1,
                n_classes: 3,
                degraded: None,
            }),
            Response::Outcome(StatementOutcome::Inserted {
                table: "t".into(),
                rows_inserted: 3,
                subs_matched: 7,
                subs_index_pruned: 1893,
            }),
            Response::Outcome(StatementOutcome::Subscribed { id: 12 }),
            Response::Outcome(StatementOutcome::Unsubscribed { id: 12 }),
            Response::Notify(Notification::Match {
                subscription: 12,
                table: "t".into(),
                row_id: 41,
                row: vec![0, 3, 1],
                metrics: MatchMetrics {
                    index_pruned: 98,
                    residual_evaluated: 2,
                    scorer_banded: 1,
                },
            }),
            Response::Notify(Notification::Gap { dropped: 17 }),
            Response::Outcome(StatementOutcome::ParallelismSet { dop: 8 }),
            Response::Outcome(StatementOutcome::GuardSet {
                guard: QueryGuard::default()
                    .with_deadline(Duration::from_millis(250))
                    .with_max_pages(100),
            }),
            Response::Health(health),
            Response::ShutdownStarted,
            Response::Goodbye,
            Response::Error(ServerError::Engine(EngineError::BudgetExceeded {
                resource: GuardResource::PagesRead,
                spent: 11,
                limit: 10,
            })),
            Response::Error(ServerError::Busy { in_flight: 8, queued: 64 }),
            Response::Error(ServerError::QueueTimeout { waited_ms: 2000 }),
            Response::Error(ServerError::ShuttingDown),
            Response::Error(ServerError::Protocol { detail: "bad hello".into() }),
            Response::Error(ServerError::ReadOnly { detail: "standby".into() }),
            Response::Error(ServerError::Engine(EngineError::ReadOnly {
                detail: "standby refuses mutations".into(),
            })),
            Response::Error(ServerError::Engine(EngineError::StaleEpoch {
                sent: 1,
                have: 2,
            })),
            Response::Error(ServerError::Engine(EngineError::UnknownSubscription(99))),
            Response::ReplState { role: ReplRole::Standby, epoch: 4, next_lsn: 99 },
            Response::ReplAck { next_lsn: 100, epoch: 4 },
        ];
        for resp in &resps {
            assert_eq!(&Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn health_downgrades_to_v3_shape_and_decodes_both_ways() {
        let health = EngineHealth {
            models: Vec::new(),
            tables: 1,
            cached_plans: 0,
            recovery: None,
            role: ReplRole::Standby,
            epoch: 7,
            replica_lag_records: Some(5),
            replica_lag_bytes: Some(333),
            subscriptions: 0,
            sub_index_note: None,
        };
        let resp = Response::Health(health);
        // v4 encoding carries the replication tail verbatim.
        assert_eq!(Response::decode(&resp.encode_versioned(PROTO_VERSION)).unwrap(), resp);
        // v3 encoding omits the tail (a v3 decoder rejects trailing
        // bytes); our decoder fills the defaults back in.
        let v3 = Response::decode(&resp.encode_versioned(PROTO_VERSION_V3)).unwrap();
        let Response::Health(h) = v3 else { panic!("not a health response") };
        assert_eq!(h.tables, 1);
        assert_eq!(h.role, ReplRole::Primary);
        assert_eq!(h.epoch, 0);
        assert_eq!(h.replica_lag_records, None);
        assert_eq!(h.replica_lag_bytes, None);
        // And the v3 payload is strictly shorter.
        assert!(
            resp.encode_versioned(PROTO_VERSION_V3).len()
                < resp.encode_versioned(PROTO_VERSION).len()
        );
    }

    #[test]
    fn outcome_downgrades_to_v4_shape_and_decodes_both_ways() {
        let resp = Response::Outcome(StatementOutcome::Query(QueryOutcome {
            rows: vec![2, 4],
            metrics: ExecMetrics {
                rows_examined: 10,
                output_rows: 2,
                cascade_accepts: 6,
                cascade_rejects: 2,
                band_rows: 2,
                scorer_ns: 777,
                ..ExecMetrics::default()
            },
            plan: "full scan".into(),
            plan_changed: false,
            cached_plan: false,
        }));
        // v5 encoding carries the cascade tail verbatim.
        assert_eq!(Response::decode(&resp.encode_versioned(PROTO_VERSION)).unwrap(), resp);
        // v4 encoding omits the tail (a v4 decoder rejects trailing
        // bytes); our decoder fills the zero defaults back in.
        let v4 = Response::decode(&resp.encode_versioned(PROTO_VERSION_V4)).unwrap();
        let Response::Outcome(StatementOutcome::Query(q)) = v4 else {
            panic!("not a query outcome")
        };
        assert_eq!(q.rows, vec![2, 4]);
        assert_eq!(q.metrics.rows_examined, 10);
        assert_eq!(q.metrics.cascade_accepts, 0);
        assert_eq!(q.metrics.cascade_rejects, 0);
        assert_eq!(q.metrics.band_rows, 0);
        assert_eq!(q.metrics.scorer_ns, 0);
        // And the v4 payload is strictly shorter.
        assert!(
            resp.encode_versioned(PROTO_VERSION_V4).len()
                < resp.encode_versioned(PROTO_VERSION).len()
        );
        // A health report with models downgrades the same way: the v4
        // shape keeps the replication tail but drops the notes.
        let health = Response::Health(EngineHealth {
            models: vec![ModelHealth {
                name: "m".into(),
                version: 1,
                degraded: None,
                n_envelopes: 2,
                exact_envelopes: 2,
                cascade_note: Some("disabled".into()),
            }],
            tables: 1,
            cached_plans: 0,
            recovery: None,
            role: ReplRole::Standby,
            epoch: 3,
            replica_lag_records: None,
            replica_lag_bytes: None,
            subscriptions: 2,
            sub_index_note: None,
        });
        assert_eq!(Response::decode(&health.encode_versioned(PROTO_VERSION)).unwrap(), health);
        let v4 = Response::decode(&health.encode_versioned(PROTO_VERSION_V4)).unwrap();
        let Response::Health(h) = v4 else { panic!("not a health response") };
        assert_eq!(h.role, ReplRole::Standby, "v4 keeps the replication tail");
        assert_eq!(h.models[0].cascade_note, None, "v4 drops the cascade notes");
        assert_eq!(h.subscriptions, 0, "v4 drops the subscription tail");
    }

    #[test]
    fn subscription_fields_downgrade_to_v5_shape() {
        // The Inserted counters ride a v6 tail: a v5 encoding drops
        // them and the decoder restores zeros.
        let inserted = Response::Outcome(StatementOutcome::Inserted {
            table: "t".into(),
            rows_inserted: 2,
            subs_matched: 5,
            subs_index_pruned: 40,
        });
        assert_eq!(
            Response::decode(&inserted.encode_versioned(PROTO_VERSION)).unwrap(),
            inserted
        );
        let v5 = Response::decode(&inserted.encode_versioned(PROTO_VERSION_V5)).unwrap();
        let Response::Outcome(StatementOutcome::Inserted {
            subs_matched, subs_index_pruned, rows_inserted, ..
        }) = v5
        else {
            panic!("not an inserted outcome")
        };
        assert_eq!(rows_inserted, 2);
        assert_eq!(subs_matched, 0);
        assert_eq!(subs_index_pruned, 0);
        assert!(
            inserted.encode_versioned(PROTO_VERSION_V5).len()
                < inserted.encode_versioned(PROTO_VERSION).len()
        );
        // Same for the query-metrics tail...
        let query = Response::Outcome(StatementOutcome::Query(QueryOutcome {
            rows: vec![1],
            metrics: ExecMetrics {
                rows_examined: 4,
                cascade_accepts: 2,
                subs_matched: 3,
                subs_index_pruned: 9,
                clauses_reordered: 5,
                factor_hits: 17,
                feedback_entries: 2,
                ..ExecMetrics::default()
            },
            plan: "full scan".into(),
            plan_changed: false,
            cached_plan: false,
        }));
        assert_eq!(Response::decode(&query.encode_versioned(PROTO_VERSION)).unwrap(), query);
        let v6 = Response::decode(&query.encode_versioned(PROTO_VERSION_V6)).unwrap();
        let Response::Outcome(StatementOutcome::Query(q)) = v6 else {
            panic!("not a query outcome")
        };
        assert_eq!(q.metrics.subs_matched, 3, "v6 keeps the subscription tail");
        assert_eq!(q.metrics.clauses_reordered, 0, "v6 drops the adaptive tail");
        assert_eq!(q.metrics.factor_hits, 0);
        assert_eq!(q.metrics.feedback_entries, 0);
        let v5 = Response::decode(&query.encode_versioned(PROTO_VERSION_V5)).unwrap();
        let Response::Outcome(StatementOutcome::Query(q)) = v5 else {
            panic!("not a query outcome")
        };
        assert_eq!(q.metrics.cascade_accepts, 2, "v5 keeps the cascade tail");
        assert_eq!(q.metrics.subs_matched, 0, "v5 drops the subscription tail");
        assert_eq!(q.metrics.subs_index_pruned, 0);
        // The SET ADAPTIVE outcome round-trips.
        for on in [true, false] {
            let resp = Response::Outcome(StatementOutcome::AdaptiveSet { on });
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
        // ...and for the health subscriptions tail.
        let health = Response::Health(EngineHealth {
            models: Vec::new(),
            tables: 0,
            cached_plans: 0,
            recovery: None,
            role: ReplRole::Primary,
            epoch: 0,
            replica_lag_records: None,
            replica_lag_bytes: None,
            subscriptions: 11,
            sub_index_note: Some("degraded".into()),
        });
        assert_eq!(Response::decode(&health.encode_versioned(PROTO_VERSION)).unwrap(), health);
        let v5 = Response::decode(&health.encode_versioned(PROTO_VERSION_V5)).unwrap();
        let Response::Health(h) = v5 else { panic!("not a health response") };
        assert_eq!(h.subscriptions, 0);
        assert_eq!(h.sub_index_note, None);
    }

    #[test]
    fn truncated_payloads_fail_cleanly() {
        let resp = Response::Outcome(StatementOutcome::Query(QueryOutcome {
            rows: vec![3, 4, 5],
            metrics: ExecMetrics::default(),
            plan: "full scan".into(),
            plan_changed: false,
            cached_plan: true,
        }));
        let payload = resp.encode();
        // The prefixes that are exactly an older version's shape
        // (cascade tail absent, subscription tail absent, adaptive tail
        // absent) decode by design — those are the downgrade paths.
        // Every other strict prefix must fail cleanly.
        let v4_len = resp.encode_versioned(PROTO_VERSION_V4).len();
        let v5_len = resp.encode_versioned(PROTO_VERSION_V5).len();
        let v6_len = resp.encode_versioned(PROTO_VERSION_V6).len();
        for cut in 0..payload.len() {
            if cut == v4_len || cut == v5_len || cut == v6_len {
                assert!(
                    Response::decode(&payload[..cut]).is_ok(),
                    "version-shaped cut at {cut}"
                );
            } else {
                assert!(Response::decode(&payload[..cut]).is_err(), "cut at {cut}");
            }
        }
        // A torn Notify frame fails cleanly too (no downgrade shapes:
        // the frame itself is v6-only).
        let notify = Response::Notify(Notification::Match {
            subscription: 3,
            table: "t".into(),
            row_id: 9,
            row: vec![1, 2],
            metrics: MatchMetrics::default(),
        });
        let payload = notify.encode();
        for cut in 0..payload.len() {
            assert!(Response::decode(&payload[..cut]).is_err(), "notify cut at {cut}");
        }
    }
}
