//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`,
//! range and tuple strategies, [`collection::vec`], [`arbitrary::any`],
//! `Just`, `prop_oneof!`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` generated inputs
//! from a deterministic per-test RNG (seeded by hashing the test name),
//! so failures reproduce run-to-run. There is **no shrinking** — a
//! failing case reports the case number and assertion message only.

pub mod test_runner {
    /// Deterministic RNG driving all strategies (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator by hashing `name` (FNV-1a), so each test
        /// gets an independent but reproducible stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next pseudo-random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `0..n` (`n` must be nonzero).
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// A failed property-test case (assertion message).
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `msg`.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError { msg }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Runner configuration (subset: number of cases).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking;
    /// `generate` directly produces a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: `self` is the leaf; `f` wraps an inner
        /// strategy into a composite one. Nesting is bounded by `depth`
        /// (the `_desired_size` / `_expected_branch` hints are accepted
        /// for API compatibility and ignored).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = f(cur).boxed();
                let l = leaf.clone();
                cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    // Mix leaves back in so shapes vary at every depth.
                    if rng.index(4) == 0 {
                        l.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }));
            }
            cur
        }

        /// Type-erases this strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be nonempty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical whole-domain strategy for `T`.
    pub struct Any<T>(PhantomData<T>);

    /// Canonical strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! arb_via {
        ($($t:ty => $gen:expr;)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(PhantomData)
                }
            }
        )*};
    }
    arb_via! {
        bool => |rng| rng.next_u64() & 1 == 1;
        u8 => |rng| rng.next_u64() as u8;
        u16 => |rng| rng.next_u64() as u16;
        u32 => |rng| rng.next_u64() as u32;
        u64 => |rng| rng.next_u64();
        usize => |rng| rng.next_u64() as usize;
        i8 => |rng| rng.next_u64() as i8;
        i16 => |rng| rng.next_u64() as i16;
        i32 => |rng| rng.next_u64() as i32;
        i64 => |rng| rng.next_u64() as i64;
        isize => |rng| rng.next_u64() as isize;
        f64 => |rng| rng.unit_f64();
        f32 => |rng| rng.unit_f64() as f32;
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted sizes for [`vec`]: a fixed length or a length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Generates `Vec`s of elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors with elements from `element` and length in
    /// `size` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.index(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!("proptest {} failed at case {}/{}: {}", stringify!($name), __case + 1, __cfg.cases, e);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert_eq!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 1u16..5, v in crate::collection::vec(0i32..10, 2..6), b in any::<bool>()) {
            prop_assert!((1..5).contains(&x));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..10).contains(&e)));
            let _ = b;
        }

        #[test]
        fn combinators(pair in (0u16..4, 0.5f64..1.5).prop_map(|(a, f)| (a, f * 2.0)),
                       nested in crate::collection::vec(0u8..3, 3).prop_flat_map(|v| Just(v.len()))) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1.0..3.0).contains(&pair.1));
            prop_assert_eq!(nested, 3);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u16),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn recursion_is_bounded(t in (0u16..7).prop_map(Tree::Leaf).prop_recursive(3, 24, 3, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        })) {
            prop_assert!(depth(&t) <= 4, "tree too deep: {:?}", t);
        }

        #[test]
        fn oneof_hits_all_branches(v in crate::collection::vec(prop_oneof![Just(0u8), Just(1u8), Just(2u8)], 64)) {
            for branch in 0..3u8 {
                prop_assert!(v.contains(&branch), "branch {} never generated", branch);
            }
        }
    }
}
