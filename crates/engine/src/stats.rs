//! Column statistics for selectivity estimation.
//!
//! Domains are discretized and small, so the engine keeps an *exact*
//! per-member frequency histogram per column — the best case of the
//! equi-depth histograms a commercial optimizer would maintain. AND/OR
//! selectivities combine under the usual independence assumption.

use crate::table::Table;

/// Exact per-member histogram of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// `counts[m]` = rows with member `m`.
    counts: Vec<u64>,
    total: u64,
}

impl ColumnStats {
    /// Builds the histogram of column `d` of `table`.
    pub fn build(table: &Table, d: usize) -> ColumnStats {
        let card = table.schema().attrs()[d].domain.cardinality() as usize;
        let mut counts = vec![0u64; card];
        for &m in table.column(d) {
            counts[m as usize] += 1;
        }
        ColumnStats { counts, total: table.n_rows() as u64 }
    }

    /// Total rows sampled.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rows holding member `m`.
    pub fn count(&self, m: u16) -> u64 {
        self.counts.get(m as usize).copied().unwrap_or(0)
    }

    /// Selectivity of `member = m`.
    pub fn eq_selectivity(&self, m: u16) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(m) as f64 / self.total as f64
        }
    }

    /// Selectivity of `lo <= member <= hi`.
    pub fn range_selectivity(&self, lo: u16, hi: u16) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = (lo..=hi.min(self.counts.len().saturating_sub(1) as u16))
            .map(|m| self.count(m))
            .sum();
        sum as f64 / self.total as f64
    }

    /// Selectivity of `member ∈ set`.
    pub fn set_selectivity(&self, members: impl Iterator<Item = u16>) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = members.map(|m| self.count(m)).sum();
        sum as f64 / self.total as f64
    }

    /// Number of distinct members actually present.
    pub fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

/// Statistics for every column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Builds statistics for all columns.
    pub fn build(table: &Table) -> TableStats {
        let columns = (0..table.schema().len()).map(|d| ColumnStats::build(table, d)).collect();
        TableStats { columns }
    }

    /// Stats of column `d`.
    pub fn column(&self, d: usize) -> &ColumnStats {
        &self.columns[d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute, Dataset, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![Attribute::new(
            "c",
            AttrDomain::categorical(["a", "b", "c", "d"]),
        )])
        .unwrap();
        // 40 a, 30 b, 20 c, 10 d.
        let rows = std::iter::repeat_n(vec![0u16], 40)
            .chain(std::iter::repeat_n(vec![1u16], 30))
            .chain(std::iter::repeat_n(vec![2u16], 20))
            .chain(std::iter::repeat_n(vec![3u16], 10));
        Table::from_dataset("t", &Dataset::from_rows(schema, rows).unwrap())
    }

    #[test]
    fn histogram_is_exact() {
        let s = TableStats::build(&table());
        let c = s.column(0);
        assert_eq!(c.total(), 100);
        assert_eq!(c.count(0), 40);
        assert_eq!(c.eq_selectivity(3), 0.1);
        assert_eq!(c.distinct(), 4);
    }

    #[test]
    fn range_and_set_selectivity() {
        let s = TableStats::build(&table());
        let c = s.column(0);
        assert_eq!(c.range_selectivity(1, 2), 0.5);
        assert_eq!(c.range_selectivity(0, 3), 1.0);
        assert_eq!(c.range_selectivity(2, 9), 0.3, "clamped to domain");
        assert_eq!(c.set_selectivity([0u16, 3].into_iter()), 0.5);
    }

    #[test]
    fn empty_table_yields_zero_selectivity() {
        let schema = Schema::new(vec![Attribute::new("c", AttrDomain::categorical(["a"]))]).unwrap();
        let t = Table::from_dataset("t", &Dataset::new(schema));
        let s = TableStats::build(&t);
        assert_eq!(s.column(0).eq_selectivity(0), 0.0);
        assert_eq!(s.column(0).range_selectivity(0, 0), 0.0);
    }
}
