//! End-to-end integration: the full §5 pipeline on real (synthetic)
//! datasets — generate, train, derive, tune, optimize, execute — with
//! the optimized path checked row-for-row against the black-box
//! baseline, across all model families and all §4.1 predicate shapes.

use mining_predicates::prelude::*;
use mpq_bench::{run_dataset_experiment, ModelKind, Scale};
use mpq_datagen::{generate_test, generate_train, table2};
use std::sync::Arc;

/// Builds an engine over a dataset with both a tree and an NB model.
fn engine_for(dataset: &str, scale: f64) -> (Engine, usize) {
    let spec = table2().into_iter().find(|s| s.name == dataset).expect("known dataset");
    let train = generate_train(&spec, 7);
    let test = generate_test(&spec, 7, scale);
    let n_rows = test.len();
    let tree = DecisionTree::train(&train, mpq_models::TreeParams::default()).expect("data");
    let nb = NaiveBayes::train(&train).expect("data");
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("t", &test)).expect("fresh");
    cat.add_model("tree", Arc::new(tree), DeriveOptions::default()).expect("fresh");
    cat.add_model("nb", Arc::new(nb), DeriveOptions::default()).expect("fresh");
    (Engine::new(cat), n_rows)
}

/// Runs `sql` optimized and baseline; asserts identical rows; returns
/// the optimized outcome.
fn check(engine: &mut Engine, sql: &str) -> mpq_engine::QueryOutcome {
    let optimized = engine.query(sql).expect("valid SQL");
    engine.set_use_envelopes(false);
    let baseline = engine.query(sql).expect("valid SQL");
    engine.set_use_envelopes(true);
    assert_eq!(optimized.rows, baseline.rows, "result mismatch for {sql}");
    optimized
}

#[test]
fn all_predicate_shapes_agree_with_baseline() {
    let (mut engine, _) = engine_for("Diabetes", 0.002);
    let queries = [
        "SELECT * FROM t WHERE PREDICT(tree) = 'k0'",
        "SELECT * FROM t WHERE PREDICT(nb) = 'k1'",
        "SELECT * FROM t WHERE PREDICT(nb) IN ('k0', 'k1')",
        "SELECT * FROM t WHERE PREDICT(tree) = PREDICT(nb)",
        "SELECT * FROM t WHERE PREDICT(nb) <> 'k0'",
        "SELECT * FROM t WHERE PREDICT(nb) = 'k1' AND x0 <= 3",
        "SELECT * FROM t WHERE PREDICT(tree) = 'k1' OR x1 > 6",
        "SELECT * FROM t WHERE NOT (PREDICT(nb) = 'k0' AND x2 BETWEEN 2 AND 5)",
    ];
    for sql in queries {
        check(&mut engine, sql);
    }
}

#[test]
fn mixed_schema_dataset_works_end_to_end() {
    let (mut engine, n_rows) = engine_for("Anneal-U", 0.002);
    let out = check(&mut engine, "SELECT COUNT(*) FROM t WHERE PREDICT(tree) IN ('k0', 'k2')");
    assert!(out.metrics.output_rows > 0);
    assert!((out.metrics.output_rows as usize) < n_rows);
    // Categorical + binned predicates together.
    check(&mut engine, "SELECT * FROM t WHERE PREDICT(nb) = 'k3' AND c0 = 'v1' AND x4 > 2");
}

#[test]
fn experiment_pipeline_produces_consistent_rows() {
    let spec = table2().into_iter().find(|s| s.name == "Shuttle").expect("known");
    for kind in [ModelKind::Tree, ModelKind::NaiveBayes, ModelKind::Clustering] {
        let (setup, rows) =
            run_dataset_experiment(&spec, kind, Scale(0.002), 7, &DeriveOptions::default());
        assert_eq!(rows.len(), setup.n_classes);
        let sel_sum: f64 = rows.iter().map(|r| r.orig_selectivity).sum();
        assert!((sel_sum - 1.0).abs() < 1e-9, "{kind:?} selectivities sum to {sel_sum}");
        for r in &rows {
            assert!(r.env_selectivity >= r.orig_selectivity - 1e-12, "{kind:?} soundness");
            assert!(r.env_time.as_nanos() > 0);
        }
        // Skewed Shuttle: exact tree envelopes must benefit at least one
        // class (NB/clustering envelopes are approximate and their plan
        // changes depend on table scale, so only trees are asserted).
        if kind == ModelKind::Tree {
            assert!(
                rows.iter().any(|r| r.plan_changed),
                "{kind:?}: no plan changed on a 7-class skewed dataset"
            );
        }
    }
}

#[test]
fn never_predicted_class_is_answered_without_data_access() {
    // Train a model where one registered class label never wins, then
    // query it: the §4.2 machinery should produce a constant scan.
    let schema = Schema::new(vec![Attribute::new(
        "x",
        AttrDomain::categorical(["a", "b"]),
    )])
    .expect("valid");
    let nb = NaiveBayes::from_probabilities(
        schema.clone(),
        vec!["always".into(), "never".into()],
        &[0.95, 0.05],
        &[vec![vec![0.6, 0.5], vec![0.4, 0.5]]],
    )
    .expect("valid parameters");
    let ds = Dataset::from_rows(schema, (0..1000).map(|i| vec![(i % 2) as u16])).expect("rows");
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("t", &ds)).expect("fresh");
    cat.add_model("m", Arc::new(nb), DeriveOptions::default()).expect("fresh");
    let engine = Engine::new(cat);
    let out = engine.query("SELECT * FROM t WHERE PREDICT(m) = 'never'").expect("valid");
    assert_eq!(out.metrics.output_rows, 0);
    assert_eq!(out.metrics.total_pages(), 0, "constant scan expected: {}", out.plan);
    assert_eq!(out.metrics.model_invocations, 0);
    assert!(out.plan_changed);
}

#[test]
fn retraining_invalidates_plans_but_keeps_correctness() {
    let (engine, _) = engine_for("Diabetes", 0.001);
    let sql = "SELECT * FROM t WHERE PREDICT(nb) = 'k1'";
    let before = engine.query(sql).expect("valid");
    // Retrain NB on a different seed: predictions (and envelopes) shift.
    let spec = table2().into_iter().find(|s| s.name == "Diabetes").expect("known");
    let train2 = generate_train(&spec, 99);
    let nb2 = NaiveBayes::train(&train2).expect("data");
    engine.retrain_model(1, Arc::new(nb2)).expect("model exists");
    let after = engine.query(sql).expect("valid");
    assert!(!after.cached_plan, "retraining must invalidate the cached plan");
    // And the new results still agree with the black-box baseline.
    engine.set_use_envelopes(false);
    let baseline = engine.query(sql).expect("valid");
    assert_eq!(after.rows, baseline.rows);
    let _ = before;
}

#[test]
fn parity_is_the_designed_worst_case() {
    // Parity is not axis-separable, so no model predicts it well and —
    // crucially for the paper's framework — both classes keep ~50%
    // selectivity, above the indexing crossover: envelopes (exact or
    // not) cannot change any plan. This mirrors the paper's Figures 3–5,
    // where Parity5+5 shows the lowest plan-change rates.
    let spec = table2().into_iter().find(|s| s.name == "Parity5+5").expect("known");
    let train = generate_train(&spec, 7);
    let tree = DecisionTree::train(&train, mpq_models::TreeParams::default()).expect("data");
    // The exact tree envelope of the majority class covers ~half the
    // grid: correct but useless for access paths.
    let (_, rows) = run_dataset_experiment(
        &spec,
        ModelKind::Tree,
        Scale(0.002),
        7,
        &DeriveOptions::default(),
    );
    for r in &rows {
        assert!(
            !r.plan_changed || r.orig_selectivity < 0.05,
            "no index plan should pay off at ~50% selectivity (class {} sel {})",
            r.class,
            r.orig_selectivity
        );
    }
    let _ = tree;
}
