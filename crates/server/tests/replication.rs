//! Wire-level replication tests: a read-only server's typed refusals,
//! the primary→standby shipping pipeline end to end (including the
//! divergence oracle across all five model algorithms), replication
//! fault injection, supervised promotion, and epoch fencing of a
//! zombie primary.

use mpq_client::{Client, ClientError};
use mpq_engine::{Catalog, Engine, EngineError, ReplRole, StatementOutcome, Table};
use mpq_server::{
    start_shipper, start_supervisor, write_peer_file, ReplPeer, Server, ServerConfig,
    ServerError, ShipperConfig, SupervisorConfig,
};
use mpq_types::{AttrDomain, Attribute, Dataset, Schema};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mpq-srvrepl-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("y", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("grade", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap()
}

fn demo_table(name: &str) -> Table {
    let mut ds = Dataset::new(demo_schema());
    for i in 0..24u16 {
        let x = i % 3;
        let y = (i / 3) % 3;
        ds.push_encoded(&[x, y, u16::from(x == 2 && y >= 1)]).unwrap();
    }
    Table::from_dataset(name, &ds)
}

/// All-ordered companion table: the clustering algorithms refuse
/// categorical attributes, so kmeans/gmm train here.
fn demo_points(name: &str) -> Table {
    let schema = Schema::new(vec![
        Attribute::new("px", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
        Attribute::new("py", AttrDomain::binned(vec![1.0]).unwrap()),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for i in 0..24u16 {
        ds.push_encoded(&[i % 3, (i / 3) % 2]).unwrap();
    }
    Table::from_dataset(name, &ds)
}

/// One durable node with a server in front of it. Standbys rely on the
/// server's role-based mutation refusal (not static `read_only`), so
/// promotion makes them writable with no restart.
fn start_node(dir: &Path, standby: bool) -> (Arc<Engine>, Server) {
    let engine = Arc::new(Engine::open(dir).expect("open node dir"));
    if standby {
        engine.set_standby();
    }
    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).expect("bind node");
    (engine, server)
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A protocol-v3 session against a v4 server: the server downgrades
/// its `Health` response to the v3 shape (no replication tail), and
/// the decoder fills the documented defaults — this is the mechanism
/// behind `mpq-repl`'s graceful `.health` degradation against old
/// servers, proven here over a real socket.
#[test]
fn v3_sessions_decode_health_without_replication_fields() {
    use mpq_server::protocol::{
        decode_frame, encode_frame, Request, Response, DEFAULT_MAX_FRAME_LEN,
    };
    use std::io::{Read, Write};

    fn roundtrip(stream: &mut std::net::TcpStream, req: &Request) -> Response {
        stream.write_all(&encode_frame(&req.encode())).unwrap();
        let mut buf = Vec::new();
        let mut tmp = [0u8; 4096];
        loop {
            if let Ok((payload, _)) = decode_frame(&buf, DEFAULT_MAX_FRAME_LEN) {
                return Response::decode(&payload).expect("decode response");
            }
            let n = stream.read(&mut tmp).expect("read frame bytes");
            assert!(n > 0, "server closed mid-response");
            buf.extend_from_slice(&tmp[..n]);
        }
    }

    let engine = Arc::new(Engine::new(Catalog::new()));
    engine.create_table(demo_table("t")).unwrap();
    // Live replication state a v4 Health would report...
    engine.set_standby();
    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).unwrap();

    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let hello = roundtrip(
        &mut stream,
        &Request::Hello { proto_version: mpq_server::PROTO_VERSION_V3, client: "old".into() },
    );
    let Response::Hello { proto_version, .. } = hello else { panic!("got {hello:?}") };
    assert_eq!(proto_version, mpq_server::PROTO_VERSION_V3, "server echoes the old version");

    let Response::Health(h) = roundtrip(&mut stream, &Request::Health) else {
        panic!("expected Health")
    };
    assert_eq!(h.tables, 1);
    // ...but the v3-shaped response omits the tail, so the decoder's
    // defaults come back: no role, no epoch, no lag.
    assert_eq!(h.role, ReplRole::Primary);
    assert_eq!(h.epoch, 0);
    assert_eq!(h.replica_lag_records, None);
    assert_eq!(h.replica_lag_bytes, None);
    server.shutdown();
}

/// Satellite: a `--read-only` server refuses every mutation with the
/// typed server-level error before the engine sees it, while reads and
/// session statements work normally.
#[test]
fn read_only_server_refuses_mutations_with_a_typed_error() {
    let engine = Arc::new(Engine::new(Catalog::new()));
    engine.create_table(demo_table("t")).unwrap();
    let cfg = ServerConfig { read_only: true, ..ServerConfig::default() };
    let server = Server::start(Arc::clone(&engine), cfg).unwrap();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    for sql in [
        "INSERT INTO t VALUES (1, 1, 'lo')",
        "CREATE MINING MODEL m ON t PREDICT grade USING decision_tree",
        "create mining model m2 on t with 2 clusters using kmeans",
    ] {
        let err = client.statement(sql).expect_err("mutation on read-only server");
        assert!(
            matches!(err, ClientError::Remote(ServerError::ReadOnly { .. })),
            "{sql}: got {err:?}"
        );
        // The refusal is retryable: after a failover promotes this
        // node, the same statement becomes valid.
        assert!(err.is_retryable(), "{sql}: ReadOnly must be retryable");
    }
    // Reads and session SETs are unaffected.
    assert!(!client.query("SELECT * FROM t WHERE x <= 2").unwrap().rows.is_empty());
    assert!(matches!(
        client.statement("SET PARALLELISM 2").unwrap(),
        StatementOutcome::ParallelismSet { dop: 2 }
    ));
    // Nothing reached the engine.
    assert_eq!(engine.catalog().table(0).table.n_rows(), 24);
    server.shutdown();
}

/// The tentpole divergence oracle: a primary serving live SQL ships its
/// WAL to a standby; after every statement has acknowledged, both nodes
/// answer every probe query — covering all five model algorithms —
/// with byte-identical rows over the wire. Health reports the roles and
/// a drained lag.
#[test]
fn divergence_oracle_standby_matches_primary_across_all_five_algorithms() {
    let (da, db) = (temp_path("div-a"), temp_path("div-b"));
    let (primary, server_a) = start_node(&da, false);
    let (standby, server_b) = start_node(&db, true);
    let peer_file = temp_path("div-peer");
    write_peer_file(&peer_file, &server_b.local_addr().to_string()).unwrap();

    primary.enable_sync_replication();
    let shipper = start_shipper(
        Arc::clone(&primary),
        ShipperConfig { peer_file: peer_file.clone(), ..ShipperConfig::default() },
    );

    // Table DDL through the engine API (tables carry their data set),
    // everything else as live SQL through the wire.
    primary.create_table(demo_table("t")).unwrap();
    primary.create_table(demo_points("pts")).unwrap();
    let mut client_a = Client::connect(server_a.local_addr()).expect("connect primary");
    for sql in [
        "INSERT INTO t VALUES (1, 1, 'lo'), (5, 5, 'hi')",
        "INSERT INTO t VALUES (3, 1, 'hi')",
        "INSERT INTO pts VALUES (0, 0), (5, 5)",
        "CREATE MINING MODEL m_tree ON t PREDICT grade USING decision_tree",
        "CREATE MINING MODEL m_bayes ON t PREDICT grade USING bayes",
        "CREATE MINING MODEL m_rules ON t PREDICT grade USING rules",
        "CREATE MINING MODEL m_km ON pts WITH 2 CLUSTERS USING kmeans",
        "CREATE MINING MODEL m_gm ON pts WITH 2 CLUSTERS USING gmm",
    ] {
        // Synchronous acks: success here *means* the standby has it.
        client_a.statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    }
    wait_until("standby to catch up", Duration::from_secs(10), || {
        standby.last_lsn() == primary.last_lsn()
    });

    let mut client_b = Client::connect(server_b.local_addr()).expect("connect standby");
    for q in [
        "SELECT * FROM t WHERE PREDICT(m_tree) = 'hi'",
        "SELECT * FROM t WHERE PREDICT(m_bayes) = 'lo'",
        "SELECT * FROM t WHERE PREDICT(m_rules) = 'hi'",
        "SELECT * FROM pts WHERE PREDICT(m_km) = 'cluster_0'",
        "SELECT * FROM pts WHERE PREDICT(m_gm) = 'cluster_1'",
        "SELECT * FROM t WHERE x <= 2 AND y > 2",
        "SELECT * FROM t WHERE grade = 'hi'",
    ] {
        let on_primary = client_a.query(q).unwrap_or_else(|e| panic!("primary {q}: {e}"));
        let on_standby = client_b.query(q).unwrap_or_else(|e| panic!("standby {q}: {e}"));
        assert_eq!(on_primary.rows, on_standby.rows, "divergent rows for {q}");
    }

    // Health over the wire: roles, epochs, and a drained lag.
    let ha = client_a.health().unwrap();
    assert_eq!(ha.role, ReplRole::Primary);
    assert_eq!(ha.replica_lag_records, Some(0), "primary lag after full ack");
    let hb = client_b.health().unwrap();
    assert_eq!(hb.role, ReplRole::Standby);
    assert_eq!(hb.replica_lag_records, None, "a standby measures no shipping lag");

    // And the standby still refuses wire mutations.
    let err = client_b.statement("INSERT INTO t VALUES (1, 1, 'lo')").expect_err("standby");
    assert!(matches!(err, ClientError::Remote(ServerError::ReadOnly { .. })), "{err:?}");

    shipper.stop();
    server_a.shutdown();
    server_b.shutdown();
}

/// Satellite: replication faults — a stream severed mid-session, a
/// duplicated batch delivery, and a stalled shipper — all converge to
/// the same standby state; the stall is visible as reported lag while
/// it lasts.
#[test]
fn replication_faults_converge_and_stall_surfaces_as_lag() {
    let (da, db) = (temp_path("fault-a"), temp_path("fault-b"));
    let (primary, server_a) = start_node(&da, false);
    let (standby, server_b) = start_node(&db, true);
    let peer_file = temp_path("fault-peer");
    write_peer_file(&peer_file, &server_b.local_addr().to_string()).unwrap();
    let faults = primary.fault_injector();

    primary.enable_sync_replication();
    let shipper = start_shipper(
        Arc::clone(&primary),
        ShipperConfig { peer_file: peer_file.clone(), ..ShipperConfig::default() },
    );
    primary.create_table(demo_table("t")).unwrap();
    let mut client_a = Client::connect(server_a.local_addr()).expect("connect primary");

    // Severed stream: the shipper drops the connection instead of
    // shipping, reconnects, re-asks the standby's position, and the
    // write still acknowledges within its timeout.
    faults.set_repl_drop_stream(true);
    client_a.statement("INSERT INTO t VALUES (1, 1, 'lo')").expect("write across a drop");

    // Duplicate delivery: the same batch is shipped twice; the standby
    // deduplicates by LSN, so the ack (and the state) are unchanged.
    faults.set_repl_duplicate(true);
    client_a.statement("INSERT INTO t VALUES (5, 5, 'hi')").expect("write across a dup");
    wait_until("standby to catch up", Duration::from_secs(10), || {
        standby.last_lsn() == primary.last_lsn()
    });
    assert_eq!(
        primary.query("SELECT COUNT(*) FROM t WHERE x <= 2").unwrap().rows,
        standby.query("SELECT COUNT(*) FROM t WHERE x <= 2").unwrap().rows,
        "divergence after injected faults"
    );

    // Stall: shipping pauses, so an unshipped append shows up as lag on
    // the primary's health report while a writer is blocked on the ack.
    faults.set_repl_stall(true);
    let writer = std::thread::spawn({
        let addr = server_a.local_addr();
        move || {
            let mut c = Client::connect(addr).expect("stalled writer connects");
            c.statement("INSERT INTO t VALUES (3, 3, 'lo')")
        }
    });
    wait_until("lag to surface", Duration::from_secs(3), || {
        primary.health().replica_lag_records.unwrap_or(0) > 0
    });
    faults.set_repl_stall(false);
    writer.join().unwrap().expect("stalled write completes after the stall lifts");
    wait_until("lag to drain", Duration::from_secs(5), || {
        primary.health().replica_lag_records == Some(0)
    });

    shipper.stop();
    server_a.shutdown();
    server_b.shutdown();
}

/// Supervised failover in-process: the supervisor's probes fail once
/// the primary's server is gone, the standby is promoted (epoch bump),
/// and the writers' shared address handle now points at it.
#[test]
fn supervisor_promotes_the_standby_when_the_primary_dies() {
    let (da, db) = (temp_path("sup-a"), temp_path("sup-b"));
    let (primary, server_a) = start_node(&da, false);
    let (standby, server_b) = start_node(&db, true);
    let peer_file = temp_path("sup-peer");
    write_peer_file(&peer_file, &server_b.local_addr().to_string()).unwrap();

    primary.enable_sync_replication();
    let shipper = start_shipper(
        Arc::clone(&primary),
        ShipperConfig { peer_file: peer_file.clone(), ..ShipperConfig::default() },
    );
    primary.create_table(demo_table("t")).unwrap();
    let mut client_a = Client::connect(server_a.local_addr()).expect("connect primary");
    client_a.statement("INSERT INTO t VALUES (1, 1, 'lo')").unwrap();

    let primary_handle = Arc::new(RwLock::new(server_a.local_addr().to_string()));
    let standby_handle = Arc::new(RwLock::new(server_b.local_addr().to_string()));
    let sup = start_supervisor(
        Arc::clone(&primary_handle),
        Arc::clone(&standby_handle),
        SupervisorConfig {
            check_interval: Duration::from_millis(20),
            fail_threshold: 3,
            io_timeout: Duration::from_millis(200),
            peer_file: peer_file.clone(),
        },
    );
    // Healthy primary: no promotion however long we watch.
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(sup.promotions(), 0, "no failover while the primary answers");

    // Kill the primary's server (the engine object stays alive, but
    // nothing answers probes any more).
    server_a.shutdown();
    wait_until("supervised promotion", Duration::from_secs(10), || sup.promotions() == 1);
    assert_eq!(standby.role(), ReplRole::Primary, "standby was promoted");
    assert_eq!(standby.epoch(), 1, "promotion bumped the epoch");
    assert_eq!(
        *primary_handle.read().unwrap(),
        server_b.local_addr().to_string(),
        "writers were repointed at the new primary"
    );
    // The role-based refusal lifted with the promotion: the same server
    // that refused mutations as a standby now accepts them, no restart.
    let mut client_b = Client::connect(server_b.local_addr()).expect("connect new primary");
    client_b
        .statement("INSERT INTO t VALUES (5, 5, 'hi')")
        .expect("promoted node accepts writes over the wire");

    sup.stop();
    shipper.stop();
    server_b.shutdown();
}

/// The acceptance bar: a fenced zombie's writes are provably rejected.
/// A is deposed while it still thinks it is primary; the moment its
/// shipper talks to anything from the new epoch it is fenced, and both
/// its replication stream and its client writes fail typed.
#[test]
fn zombie_primary_is_fenced_and_its_writes_are_rejected() {
    let (da, db, dc) = (temp_path("fence-a"), temp_path("fence-b"), temp_path("fence-c"));
    let (node_a, server_a) = start_node(&da, false);
    let (node_b, server_b) = start_node(&db, true);
    let peer_a = temp_path("fence-peer-a");
    write_peer_file(&peer_a, &server_b.local_addr().to_string()).unwrap();

    node_a.enable_sync_replication();
    let shipper_a = start_shipper(
        Arc::clone(&node_a),
        ShipperConfig { peer_file: peer_a.clone(), ..ShipperConfig::default() },
    );
    node_a.create_table(demo_table("t")).unwrap();
    let mut client_a = Client::connect(server_a.local_addr()).expect("connect A");
    client_a.statement("INSERT INTO t VALUES (1, 1, 'lo')").unwrap();
    wait_until("B to catch up", Duration::from_secs(10), || {
        node_b.last_lsn() == node_a.last_lsn()
    });

    // Failover: B is promoted (epoch 0 → 1). A is *not* told — it is
    // the zombie half of a partition.
    let mut to_b = ReplPeer::connect(&server_b.local_addr().to_string(), Duration::from_secs(2))
        .expect("reach B");
    let promoted = to_b.promote().expect("promote B");
    assert_eq!(promoted.role, ReplRole::Primary);
    assert_eq!(promoted.epoch, 1);

    // B replicates onward to a fresh standby C (snapshot bootstrap
    // carries the epoch-1 history).
    let (node_c, server_c) = start_node(&dc, true);
    let peer_b = temp_path("fence-peer-b");
    write_peer_file(&peer_b, &server_c.local_addr().to_string()).unwrap();
    let shipper_b = start_shipper(
        Arc::clone(&node_b),
        ShipperConfig { peer_file: peer_b.clone(), ..ShipperConfig::default() },
    );
    wait_until("C to bootstrap from B", Duration::from_secs(10), || {
        node_c.last_lsn() == node_b.last_lsn() && node_c.epoch() == 1
    });

    // Direct wire proof: an epoch-0 stream is refused typed by C.
    let frames = node_a.replication_frames_after(0).unwrap().expect("A's log");
    let mut zombie_stream =
        ReplPeer::connect(&server_c.local_addr().to_string(), Duration::from_secs(2))
            .expect("reach C");
    match zombie_stream.append(0, frames.bytes) {
        Err(mpq_server::PeerError::Remote(ServerError::Engine(
            EngineError::StaleEpoch { sent: 0, have: 1 },
        ))) => {}
        other => panic!("zombie stream must be StaleEpoch-refused, got {other:?}"),
    }

    // Repoint A's shipper at C: its next batch is refused, and the
    // refusal fences A itself.
    write_peer_file(&peer_a, &server_c.local_addr().to_string()).unwrap();
    let zombie_write = client_a.statement("INSERT INTO t VALUES (5, 5, 'hi')");
    match zombie_write {
        Err(ClientError::Remote(ServerError::Engine(
            EngineError::StaleEpoch { .. } | EngineError::Io { .. },
        ))) => {}
        other => panic!("zombie write must fail typed, got {other:?}"),
    }
    wait_until("A to fence itself", Duration::from_secs(10), || {
        node_a.execute_sql("INSERT INTO t VALUES (3, 3, 'lo')").is_err()
            && matches!(
                node_a.execute_sql("INSERT INTO t VALUES (3, 3, 'lo')"),
                Err(EngineError::StaleEpoch { sent: 0, have: 1 })
            )
    });
    // No ghost rows: the fenced writes never landed on the new
    // lineage's nodes.
    assert_eq!(
        node_b.query("SELECT COUNT(*) FROM t WHERE x <= 5").unwrap().rows,
        node_c.query("SELECT COUNT(*) FROM t WHERE x <= 5").unwrap().rows,
    );

    shipper_a.stop();
    shipper_b.stop();
    server_a.shutdown();
    server_b.shutdown();
    server_c.shutdown();
}
