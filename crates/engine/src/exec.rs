//! Plan execution with honest cost accounting.
//!
//! Two executors share one cost model and one semantics:
//!
//! * the **serial** executor ([`execute_guarded`]) — the reference
//!   implementation every other path is differentially tested against;
//! * the **partition-parallel** executor ([`execute_opts`] with
//!   [`ExecOptions::parallelism`] > 1) — splits the scan into
//!   page-aligned morsels dispatched over a [`std::thread::scope`]
//!   worker pool, evaluates the residual (including black-box mining
//!   predicates) per morsel, and merges per-morsel metrics through
//!   shared atomics so budget breaches are detected cooperatively
//!   across workers.
//!
//! On success both executors report byte-identical row sets and
//! identical `rows_examined` / page / `model_invocations` totals (and
//! therefore identical [`GuardHeadroom`]); wall-clock fields are the
//! only legitimate divergence. `tests/parallel_oracle.rs` holds the
//! differential property tests backing that claim.

use crate::catalog::Catalog;
use crate::error::{panic_message, EngineError};
use crate::expr::Expr;
use crate::guard::{GuardHeadroom, GuardState, QueryGuard};
use crate::optimizer::{AccessPath, Plan};
use crate::table::{RowId, Table};
use std::collections::HashSet;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Metrics observed while executing a plan — the quantities the paper's
/// experiments compare (pages touched drive the running-time reductions;
/// model invocations measure the black-box "extract and mine" overhead).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecMetrics {
    /// Heap pages read.
    pub heap_pages_read: u64,
    /// Index pages read (postings traffic).
    pub index_pages_read: u64,
    /// Rows fetched and tested against the residual predicate.
    pub rows_examined: u64,
    /// Black-box model applications performed.
    pub model_invocations: u64,
    /// Rows in the result.
    pub output_rows: u64,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
    /// Budget headroom left when execution finished (all `None` when
    /// the query ran with an unlimited [`QueryGuard`]).
    pub guard: GuardHeadroom,
    /// True when an index fault forced the executor to abandon the
    /// chosen index path and fall back to a full scan with the complete
    /// residual predicate (same row set, more pages).
    pub index_fallback: bool,
}

impl ExecMetrics {
    /// Total pages of any kind.
    pub fn total_pages(&self) -> u64 {
        self.heap_pages_read + self.index_pages_read
    }
}

/// Result of executing a plan: matching row ids plus metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Row ids satisfying the predicate, ascending.
    pub rows: Vec<RowId>,
    /// Observed metrics.
    pub metrics: ExecMetrics,
}

/// Tuning knobs for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for partition-parallel execution. `1` (the
    /// default) runs the serial reference executor; higher values split
    /// the scan into page-aligned morsels over a scoped worker pool.
    /// Clamped to `1..=256`.
    pub parallelism: usize,
    /// Simulated I/O stall charged per page read. The engine's cost
    /// model is I/O-bound like the paper's environment, but the heaps
    /// here are CPU-resident — benchmarks set a per-page stall (e.g.
    /// the ~50µs of an NVMe random 8K read) so scan times track the
    /// page counts the cost model predicts and parallel scans overlap
    /// the stalls. `None` (the default, and what the engine uses for
    /// queries) charges nothing.
    pub io_stall: Option<Duration>,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions { parallelism: 1, io_stall: None }
    }
}

impl ExecOptions {
    /// Options running `n` workers (clamped to `1..=256`) with no
    /// simulated I/O.
    pub fn with_parallelism(n: usize) -> ExecOptions {
        ExecOptions { parallelism: n.clamp(1, 256), ..ExecOptions::default() }
    }
}

/// Executes `plan` against the catalog with no resource limits.
///
/// Equivalent to [`execute_guarded`] with [`QueryGuard::unlimited`]; an
/// unlimited guard can never trip, so this cannot fail.
pub fn execute(plan: &Plan, catalog: &Catalog) -> ExecResult {
    execute_guarded(plan, catalog, QueryGuard::unlimited())
        .expect("unlimited guard cannot trip")
}

/// Executes `plan` against the catalog under `guard`, serially.
///
/// The guard is checked cooperatively: after every row examined and
/// after every page accounted. A breach aborts with
/// [`EngineError::BudgetExceeded`]; no partial row set is returned.
///
/// If the catalog's [`crate::FaultInjector`] has index-probe failure
/// armed, index plans degrade to a full scan evaluating the complete
/// residual predicate — the row set is identical (the residual is the
/// whole predicate; index seeks only pre-filter), only the page counts
/// grow. The fallback is flagged in [`ExecMetrics::index_fallback`].
pub fn execute_guarded(
    plan: &Plan,
    catalog: &Catalog,
    guard: QueryGuard,
) -> Result<ExecResult, EngineError> {
    execute_opts(plan, catalog, guard, &ExecOptions::default())
}

/// Executes `plan` under `guard` with explicit [`ExecOptions`] —
/// the entry point that selects between the serial and the
/// partition-parallel executor.
///
/// With `opts.parallelism > 1` and a parallelizable access path, the
/// scan is split into page-aligned morsels dispatched over scoped
/// worker threads. Semantics are identical to the serial executor: the
/// same row set (in the same ascending order), the same page / row /
/// model-invocation totals on success, and a typed
/// [`EngineError::BudgetExceeded`] carrying the same tripped resource
/// on a breach. A panic inside a worker (model code or an injected
/// scorer fault) cancels the remaining morsels and surfaces as
/// [`EngineError::Internal`] — it never aborts the process or poisons
/// engine state.
pub fn execute_opts(
    plan: &Plan,
    catalog: &Catalog,
    guard: QueryGuard,
    opts: &ExecOptions,
) -> Result<ExecResult, EngineError> {
    if opts.parallelism <= 1 || !plan.access.is_parallelizable() {
        execute_serial(plan, catalog, guard, opts.io_stall)
    } else {
        execute_parallel(plan, catalog, guard, opts)
    }
}

/// Resolves the effective access path: injected index failures degrade
/// index plans to a full scan with the complete residual — sound
/// because `plan.residual` is the whole predicate. Returns the path and
/// whether the fallback fired.
fn effective_access<'p>(plan: &'p Plan, catalog: &Catalog) -> (&'p AccessPath, bool) {
    let fallback = catalog.faults().index_probe_failure_armed()
        && matches!(plan.access, AccessPath::IndexSeek(_) | AccessPath::IndexUnion(_));
    if fallback {
        (&AccessPath::FullScan, true)
    } else {
        (&plan.access, false)
    }
}

/// Sleeps `pages × stall` when a simulated I/O stall is configured.
fn stall_pages(stall: Option<Duration>, pages: u64) {
    if let Some(d) = stall {
        if pages > 0 {
            std::thread::sleep(d * pages.min(u32::MAX as u64) as u32);
        }
    }
}

fn execute_serial(
    plan: &Plan,
    catalog: &Catalog,
    guard: QueryGuard,
    io_stall: Option<Duration>,
) -> Result<ExecResult, EngineError> {
    let start = Instant::now();
    let gs = GuardState::new(guard);
    let entry = catalog.table(plan.table);
    let table = &entry.table;
    let mut m = ExecMetrics::default();
    let mut out = Vec::new();
    let mut row_buf = vec![0u16; table.schema().len()];

    let mut test_pred = |row: RowId,
                         pred: &Expr,
                         m: &mut ExecMetrics,
                         out: &mut Vec<RowId>|
     -> Result<(), EngineError> {
        for (d, cell) in row_buf.iter_mut().enumerate() {
            *cell = table.cell(row, d);
        }
        m.rows_examined += 1;
        if pred.eval(&row_buf, catalog, &mut m.model_invocations) {
            out.push(row);
        }
        gs.check(m)
    };
    let residual = &plan.residual;

    let (access, index_fallback) = effective_access(plan, catalog);
    m.index_fallback = index_fallback;

    match access {
        AccessPath::ConstantScan => {}
        AccessPath::FullScan => {
            let mut stalled_pages = 0u64;
            for row in 0..table.n_rows() as RowId {
                // Progressive page accounting so a pages budget trips
                // mid-scan instead of after reading the whole heap.
                m.heap_pages_read = table.page_of(row) as u64 + 1;
                if m.heap_pages_read > stalled_pages {
                    stall_pages(io_stall, m.heap_pages_read - stalled_pages);
                    stalled_pages = m.heap_pages_read;
                }
                test_pred(row, residual, &mut m, &mut out)?;
            }
            m.heap_pages_read = table.n_pages() as u64;
        }
        AccessPath::IndexSeek(seek) => {
            let ix = &entry.indexes[seek.index];
            let rows = ix.probe(&seek.preds);
            m.index_pages_read = index_pages(rows.len(), table.rows_per_page());
            m.heap_pages_read = distinct_pages(&rows, table);
            gs.check(&m)?;
            stall_pages(io_stall, m.total_pages());
            for row in rows {
                test_pred(row, residual, &mut m, &mut out)?;
            }
        }
        AccessPath::IndexUnion(seeks) => {
            // Tag each fetched row with whether *some* exact seek
            // produced it: those rows already satisfy the union's OR and
            // only need the `skip_or` residual (other conjuncts) — the
            // covering-index fast path that makes big-DNF envelopes
            // cheap to verify.
            let mut union: Vec<(RowId, bool)> = Vec::new();
            for seek in seeks {
                let ix = &entry.indexes[seek.index];
                let rows = ix.probe(&seek.preds);
                m.index_pages_read += index_pages(rows.len(), table.rows_per_page());
                gs.check(&m)?;
                union.extend(rows.into_iter().map(|r| (r, seek.exact)));
            }
            union.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            union.dedup_by_key(|(r, _)| *r); // keeps the exact=true copy
            m.heap_pages_read =
                distinct_pages_iter(union.iter().map(|(r, _)| *r), table);
            gs.check(&m)?;
            stall_pages(io_stall, m.total_pages());
            let skip_or = plan.skip_or.as_ref();
            for (row, exact) in union {
                match (exact, skip_or) {
                    (true, Some(rest)) => test_pred(row, rest, &mut m, &mut out)?,
                    _ => test_pred(row, residual, &mut m, &mut out)?,
                }
            }
        }
    }

    // Final check covers paths that examined nothing (e.g. constant
    // scans past the deadline).
    gs.check(&m)?;
    m.output_rows = out.len() as u64;
    m.elapsed = start.elapsed();
    m.guard = gs.headroom(&m);
    Ok(ExecResult { rows: out, metrics: m })
}

// ---------------------------------------------------------------------
// Partition-parallel executor
// ---------------------------------------------------------------------

/// Worker deadline-check interval, in rows. Row/page/invocation budgets
/// are charged exactly through shared atomics; only the wall-clock
/// probe is amortized (the serial executor probes per row, but a
/// deadline breach is timing-dependent either way).
const DEADLINE_CHECK_ROWS: u32 = 128;

/// One unit of dispatchable work.
enum Job<'a> {
    /// A page-aligned heap range (full scan).
    Scan(Range<RowId>),
    /// A slice of pre-fetched index rows; the flag selects the
    /// `skip_or` residual (exact-seek fast path) over the full one.
    Fetch(&'a [(RowId, bool)]),
}

/// Budget and cancellation state shared by all workers of one query.
struct SharedProgress {
    guard: QueryGuard,
    /// Next job index to dispatch.
    next: AtomicUsize,
    rows: AtomicU64,
    /// Total pages charged so far (index pages pre-charged by the
    /// coordinator; heap pages charged progressively by scan workers).
    pages: AtomicU64,
    invocations: AtomicU64,
    /// Cooperative stop: set after a breach or panic; workers poll it
    /// per row, so no worker does more than O(1) work past a breach.
    cancel: AtomicBool,
    /// First error wins; later ones are dropped.
    failure: Mutex<Option<EngineError>>,
}

impl SharedProgress {
    fn new(guard: QueryGuard, pre_charged_pages: u64) -> SharedProgress {
        SharedProgress {
            guard,
            next: AtomicUsize::new(0),
            rows: AtomicU64::new(0),
            pages: AtomicU64::new(pre_charged_pages),
            invocations: AtomicU64::new(0),
            cancel: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    /// Records an error (first one wins) and cancels remaining work.
    fn fail(&self, err: EngineError) {
        let mut slot = self.failure.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(err);
        }
        self.cancel.store(true, Ordering::Relaxed);
    }

    fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    fn charge_row(&self) -> Result<(), EngineError> {
        let spent = self.rows.fetch_add(1, Ordering::Relaxed) + 1;
        match self.guard.max_rows_examined {
            Some(limit) if spent > limit => Err(EngineError::BudgetExceeded {
                resource: crate::error::GuardResource::RowsExamined,
                spent,
                limit,
            }),
            _ => Ok(()),
        }
    }

    fn charge_pages(&self, n: u64) -> Result<(), EngineError> {
        let spent = self.pages.fetch_add(n, Ordering::Relaxed) + n;
        match self.guard.max_pages {
            Some(limit) if spent > limit => Err(EngineError::BudgetExceeded {
                resource: crate::error::GuardResource::PagesRead,
                spent,
                limit,
            }),
            _ => Ok(()),
        }
    }

    fn charge_invocations(&self, n: u64) -> Result<(), EngineError> {
        if n == 0 {
            return Ok(());
        }
        let spent = self.invocations.fetch_add(n, Ordering::Relaxed) + n;
        match self.guard.max_model_invocations {
            Some(limit) if spent > limit => Err(EngineError::BudgetExceeded {
                resource: crate::error::GuardResource::ModelInvocations,
                spent,
                limit,
            }),
            _ => Ok(()),
        }
    }
}

fn execute_parallel(
    plan: &Plan,
    catalog: &Catalog,
    guard: QueryGuard,
    opts: &ExecOptions,
) -> Result<ExecResult, EngineError> {
    let start = Instant::now();
    let gs = GuardState::new(guard);
    let entry = catalog.table(plan.table);
    let table = &entry.table;
    let mut m = ExecMetrics::default();
    let io_stall = opts.io_stall;

    let (access, index_fallback) = effective_access(plan, catalog);
    m.index_fallback = index_fallback;

    // Phase 1 (coordinator, serial): index probes and page accounting
    // for index paths — byte-identical to the serial executor, so page
    // budget breaches classify identically. Produces the job list.
    let mut fetched: Vec<(RowId, bool)> = Vec::new();
    let jobs: Vec<Job<'_>> = match access {
        AccessPath::ConstantScan => Vec::new(),
        AccessPath::FullScan => {
            table.morsels(opts.parallelism).into_iter().map(Job::Scan).collect()
        }
        AccessPath::IndexSeek(seek) => {
            let ix = &entry.indexes[seek.index];
            let rows = ix.probe(&seek.preds);
            m.index_pages_read = index_pages(rows.len(), table.rows_per_page());
            m.heap_pages_read = distinct_pages(&rows, table);
            gs.check(&m)?;
            stall_pages(io_stall, m.total_pages());
            fetched.extend(rows.into_iter().map(|r| (r, false)));
            chunk_jobs(&fetched, opts.parallelism)
        }
        AccessPath::IndexUnion(seeks) => {
            let mut union: Vec<(RowId, bool)> = Vec::new();
            for seek in seeks {
                let ix = &entry.indexes[seek.index];
                let rows = ix.probe(&seek.preds);
                m.index_pages_read += index_pages(rows.len(), table.rows_per_page());
                gs.check(&m)?;
                union.extend(rows.into_iter().map(|r| (r, seek.exact)));
            }
            union.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            union.dedup_by_key(|(r, _)| *r);
            m.heap_pages_read =
                distinct_pages_iter(union.iter().map(|(r, _)| *r), table);
            gs.check(&m)?;
            stall_pages(io_stall, m.total_pages());
            // A row from an exact seek only needs `skip_or` — but only
            // when the plan actually carries one.
            let has_skip = plan.skip_or.is_some();
            fetched.extend(union.into_iter().map(|(r, e)| (r, e && has_skip)));
            chunk_jobs(&fetched, opts.parallelism)
        }
    };

    // Index pages (and index-path heap pages) were checked above;
    // pre-charge them so scan-phase page breaches see the true total.
    let shared = SharedProgress::new(guard, m.total_pages());
    let trivial_residual = matches!(plan.residual, Expr::Const(true));
    let workers = opts.parallelism.clamp(1, 256).min(jobs.len().max(1));
    let collected: Mutex<Vec<(usize, Vec<RowId>)>> = Mutex::new(Vec::new());
    let faults = catalog.faults();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_worker(&jobs, plan, catalog, table, &shared, &gs, io_stall, faults)
                }));
                match outcome {
                    Ok(segments) => {
                        let mut all =
                            collected.lock().unwrap_or_else(|e| e.into_inner());
                        all.extend(segments);
                    }
                    Err(payload) => {
                        shared.fail(EngineError::Internal {
                            detail: panic_message(&*payload),
                        });
                    }
                }
            });
        }
    });

    if let Some(err) = shared.failure.lock().unwrap_or_else(|e| e.into_inner()).take() {
        return Err(err);
    }

    // Morsels are row-ordered and each worker's hits are ascending, so
    // sorting segments by job index reassembles the serial row order.
    let mut segments = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    segments.sort_unstable_by_key(|(i, _)| *i);
    let mut out: Vec<RowId> = Vec::new();
    for (_, mut hits) in segments {
        out.append(&mut hits);
    }

    m.rows_examined = shared.rows.load(Ordering::Relaxed);
    m.model_invocations = shared.invocations.load(Ordering::Relaxed);
    if matches!(access, AccessPath::FullScan) {
        m.heap_pages_read = table.n_pages() as u64;
    }
    // `trivial_residual` short-circuits nothing today, but asserting it
    // documents that even `WHERE TRUE` goes through the same charging.
    debug_assert!(!trivial_residual || out.len() as u64 == m.rows_examined);
    gs.check(&m)?;
    m.output_rows = out.len() as u64;
    m.elapsed = start.elapsed();
    m.guard = gs.headroom(&m);
    Ok(ExecResult { rows: out, metrics: m })
}

/// Splits the pre-fetched row list into `4 × workers` contiguous
/// chunks (ascending row order is preserved across chunk boundaries).
fn chunk_jobs<'a>(fetched: &'a [(RowId, bool)], workers: usize) -> Vec<Job<'a>> {
    if fetched.is_empty() {
        return Vec::new();
    }
    let chunk = fetched.len().div_ceil(workers.max(1) * 4).max(1);
    fetched.chunks(chunk).map(Job::Fetch).collect()
}

/// One worker: pulls jobs off the shared dispatcher until the list is
/// drained or the query is cancelled, returning `(job index, hits)`
/// segments. Budget breaches are recorded in `shared` and stop every
/// worker; panics are caught by the caller.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    jobs: &[Job<'_>],
    plan: &Plan,
    catalog: &Catalog,
    table: &Table,
    shared: &SharedProgress,
    gs: &GuardState,
    io_stall: Option<Duration>,
    faults: &crate::fault::FaultInjector,
) -> Vec<(usize, Vec<RowId>)> {
    let mut row_buf = vec![0u16; table.schema().len()];
    let mut segments = Vec::new();
    let mut rows_since_deadline_check: u32 = 0;
    let residual = &plan.residual;
    let skip_or = plan.skip_or.as_ref();

    'dispatch: loop {
        if shared.cancelled() {
            break;
        }
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= jobs.len() {
            break;
        }
        if let Err(e) = gs.check_deadline() {
            shared.fail(e);
            break;
        }
        if faults.scorer_panic_morsel() == Some(i) {
            // Injected fault: a scorer blowing up inside this worker.
            // The catch_unwind wrapping `run_worker` converts it to
            // `EngineError::Internal`, like any real model panic.
            panic!("injected fault: scorer panicked in worker on morsel {i}");
        }

        let mut hits: Vec<RowId> = Vec::new();
        let mut eval_row = |row: RowId,
                            pred: &Expr,
                            hits: &mut Vec<RowId>|
         -> Result<(), EngineError> {
            for (d, cell) in row_buf.iter_mut().enumerate() {
                *cell = table.cell(row, d);
            }
            let mut inv = 0u64;
            let hit = pred.eval(&row_buf, catalog, &mut inv);
            shared.charge_row()?;
            shared.charge_invocations(inv)?;
            if hit {
                hits.push(row);
            }
            rows_since_deadline_check += 1;
            if rows_since_deadline_check >= DEADLINE_CHECK_ROWS {
                rows_since_deadline_check = 0;
                gs.check_deadline()?;
            }
            Ok(())
        };

        match &jobs[i] {
            Job::Scan(range) => {
                // Page-aligned morsel: pages are exclusive to this
                // worker, so progressive per-page charging sums exactly.
                let mut page_done: Option<usize> = None;
                for row in range.clone() {
                    if shared.cancelled() {
                        break 'dispatch;
                    }
                    let page = table.page_of(row);
                    if page_done != Some(page) {
                        page_done = Some(page);
                        stall_pages(io_stall, 1);
                        if let Err(e) = shared.charge_pages(1) {
                            shared.fail(e);
                            break 'dispatch;
                        }
                    }
                    if let Err(e) = eval_row(row, residual, &mut hits) {
                        shared.fail(e);
                        break 'dispatch;
                    }
                }
            }
            Job::Fetch(slice) => {
                for &(row, use_skip) in *slice {
                    if shared.cancelled() {
                        break 'dispatch;
                    }
                    // `use_skip` is only ever set when the plan carries
                    // a `skip_or` residual (see the union phase above).
                    let pred = if use_skip {
                        skip_or.unwrap_or(residual)
                    } else {
                        residual
                    };
                    if let Err(e) = eval_row(row, pred, &mut hits) {
                        shared.fail(e);
                        break 'dispatch;
                    }
                }
            }
        }
        segments.push((i, hits));
    }
    segments
}

fn index_pages(postings: usize, rows_per_page: usize) -> u64 {
    // Postings are dense u32s; a page holds ~4x as many entries as rows.
    (postings.div_ceil((rows_per_page * 4).max(1)).max(1)) as u64
}

fn distinct_pages(rows: &[RowId], table: &Table) -> u64 {
    distinct_pages_iter(rows.iter().copied(), table)
}

fn distinct_pages_iter(rows: impl Iterator<Item = RowId>, table: &Table) -> u64 {
    let mut pages: HashSet<usize> = HashSet::new();
    for r in rows {
        pages.insert(table.page_of(r));
    }
    pages.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Atom, AtomPred};
    use crate::optimizer::{choose_plan, OptimizerOptions};
    use crate::table::Table;
    use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, Schema};

    /// 100k rows; the rare member (0.1%) occupies the first 100 rows so
    /// its heap pages are genuinely few.
    fn catalog() -> Catalog {
        let schema = Schema::new(vec![Attribute::new(
            "a",
            AttrDomain::categorical(["rare", "common"]),
        )])
        .unwrap();
        let rows = (0..100_000).map(|i| vec![u16::from(i >= 100)]);
        let ds = Dataset::from_rows(schema, rows).unwrap();
        let mut cat = Catalog::new();
        let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.create_index(t, &[AttrId(0)]);
        cat
    }

    fn run(e: Expr, cat: &Catalog) -> ExecResult {
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, cat, &OptimizerOptions::default());
        execute(&plan, cat)
    }

    #[test]
    fn full_scan_reads_all_pages_and_filters() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) }); // 99%
        let r = run(e, &cat);
        assert_eq!(r.rows.len(), 99_900);
        assert_eq!(r.metrics.rows_examined, 100_000);
        assert_eq!(r.metrics.heap_pages_read, cat.table(0).table.n_pages() as u64);
    }

    #[test]
    fn index_seek_touches_few_pages() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }); // 1%
        let r = run(e, &cat);
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.metrics.rows_examined, 100, "only matched rows fetched");
        assert!(
            r.metrics.heap_pages_read < cat.table(0).table.n_pages() as u64,
            "index fetch must touch fewer pages than a scan"
        );
        assert!(r.metrics.index_pages_read >= 1);
    }

    #[test]
    fn constant_scan_touches_nothing() {
        let cat = catalog();
        let r = run(Expr::Const(false), &cat);
        assert!(r.rows.is_empty());
        assert_eq!(r.metrics.total_pages(), 0);
        assert_eq!(r.metrics.rows_examined, 0);
    }

    #[test]
    fn index_union_dedupes_rows() {
        let cat = catalog();
        // a = rare OR a = rare (duplicate seeks) must not double-count.
        let e = Expr::Or(vec![
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
        ]);
        // Bypass normalize-dedup on purpose: hand the raw OR to the
        // optimizer.
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let r = execute(&plan, &cat);
        assert_eq!(r.rows.len(), 100);
        assert!(r.rows.windows(2).all(|w| w[0] < w[1]), "sorted, deduped row ids");
    }

    #[test]
    fn guard_trips_row_budget_without_partial_result() {
        use crate::error::GuardResource;
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        let guard = QueryGuard::default().with_max_rows_examined(10);
        match execute_guarded(&plan, &cat, guard) {
            Err(crate::EngineError::BudgetExceeded { resource, spent, limit }) => {
                assert_eq!(resource, GuardResource::RowsExamined);
                assert_eq!(limit, 10);
                assert_eq!(spent, 11, "detected on the first row past the limit");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn guard_headroom_recorded_on_success() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let guard = QueryGuard::default().with_max_rows_examined(1_000);
        let r = execute_guarded(&plan, &cat, guard).unwrap();
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.metrics.guard.rows_remaining, Some(900));
        assert_eq!(r.metrics.guard.pages_remaining, None, "pages unlimited");
    }

    #[test]
    fn index_fault_falls_back_to_scan_with_identical_rows() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        assert!(
            matches!(plan.access, AccessPath::IndexSeek(_) | AccessPath::IndexUnion(_)),
            "selective predicate should choose an index path"
        );
        let healthy = execute(&plan, &cat);
        cat.faults().set_index_probe_failure(true);
        let degraded = execute(&plan, &cat);
        cat.faults().reset();
        assert_eq!(healthy.rows, degraded.rows, "fallback must not change the row set");
        assert!(degraded.metrics.index_fallback);
        assert!(!healthy.metrics.index_fallback);
        assert!(degraded.metrics.heap_pages_read > healthy.metrics.heap_pages_read);
    }

    #[test]
    fn results_identical_across_access_paths() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let schema = cat.table(0).table.schema().clone();
        let seek_plan = choose_plan(e.clone(), 0, &schema, &cat, &OptimizerOptions::default());
        // Force a scan by disallowing union + pretending no indexes:
        let scan_plan = Plan {
            access: AccessPath::FullScan,
            ..seek_plan.clone()
        };
        assert_eq!(execute(&seek_plan, &cat).rows, execute(&scan_plan, &cat).rows);
    }

    // -- parallel executor unit tests (the heavyweight differential
    //    oracle lives in tests/parallel_oracle.rs) ---------------------

    /// Asserts the parallel executor matched the serial reference on
    /// everything that must be deterministic (all metrics except the
    /// wall-clock fields).
    fn assert_matches_serial(serial: &ExecResult, parallel: &ExecResult) {
        assert_eq!(serial.rows, parallel.rows, "row sets (and order) must match");
        let (s, p) = (&serial.metrics, &parallel.metrics);
        assert_eq!(s.rows_examined, p.rows_examined);
        assert_eq!(s.heap_pages_read, p.heap_pages_read);
        assert_eq!(s.index_pages_read, p.index_pages_read);
        assert_eq!(s.model_invocations, p.model_invocations);
        assert_eq!(s.output_rows, p.output_rows);
        assert_eq!(s.index_fallback, p.index_fallback);
        assert_eq!(s.guard.rows_remaining, p.guard.rows_remaining);
        assert_eq!(s.guard.pages_remaining, p.guard.pages_remaining);
        assert_eq!(
            s.guard.model_invocations_remaining,
            p.guard.model_invocations_remaining
        );
    }

    #[test]
    fn parallel_full_scan_matches_serial() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        let guard = QueryGuard::default().with_max_rows_examined(200_000);
        let serial = execute_guarded(&plan, &cat, guard).unwrap();
        for dop in [2usize, 4, 8] {
            let par =
                execute_opts(&plan, &cat, guard, &ExecOptions::with_parallelism(dop))
                    .unwrap();
            assert_matches_serial(&serial, &par);
        }
    }

    #[test]
    fn parallel_index_paths_match_serial() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let serial = execute(&plan, &cat);
        for dop in [2usize, 8] {
            let par = execute_opts(
                &plan,
                &cat,
                QueryGuard::unlimited(),
                &ExecOptions::with_parallelism(dop),
            )
            .unwrap();
            assert_matches_serial(&serial, &par);
        }
    }

    #[test]
    fn parallel_breach_classifies_like_serial() {
        use crate::error::GuardResource;
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        let guard = QueryGuard::default().with_max_rows_examined(1_000);
        for dop in [2usize, 4] {
            match execute_opts(&plan, &cat, guard, &ExecOptions::with_parallelism(dop)) {
                Err(crate::EngineError::BudgetExceeded { resource, spent, limit }) => {
                    assert_eq!(resource, GuardResource::RowsExamined);
                    assert_eq!(limit, 1_000);
                    assert!(spent > limit, "breach reports spent past the limit");
                }
                other => panic!("expected BudgetExceeded at dop {dop}, got {other:?}"),
            }
        }
    }

    #[test]
    fn parallel_worker_panic_surfaces_as_internal_error() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        cat.faults().set_scorer_panic_on_morsel(Some(1));
        let res = execute_opts(
            &plan,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions::with_parallelism(4),
        );
        cat.faults().reset();
        match res {
            Err(EngineError::Internal { detail }) => {
                assert!(detail.contains("morsel 1"), "detail: {detail}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        // The catalog is untouched and immediately usable again.
        let ok = execute_opts(
            &plan,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions::with_parallelism(4),
        )
        .unwrap();
        assert_eq!(ok.rows.len(), 99_900);
    }

    #[test]
    fn parallel_empty_table_and_constant_scan() {
        let schema = Schema::new(vec![Attribute::new(
            "a",
            AttrDomain::categorical(["x", "y"]),
        )])
        .unwrap();
        let ds = Dataset::new(schema.clone());
        let mut cat = Catalog::new();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        let plan = choose_plan(
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            0,
            &schema,
            &cat,
            &OptimizerOptions::default(),
        );
        let par = execute_opts(
            &plan,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions::with_parallelism(8),
        )
        .unwrap();
        assert!(par.rows.is_empty());
        let constant = choose_plan(
            Expr::Const(false),
            0,
            &schema,
            &cat,
            &OptimizerOptions::default(),
        );
        let par = execute_opts(
            &constant,
            &cat,
            QueryGuard::unlimited(),
            &ExecOptions::with_parallelism(8),
        )
        .unwrap();
        assert_eq!(par.metrics.total_pages(), 0);
    }
}
