//! Per-session statement-outcome deduplication: the engine half of
//! exactly-once statement execution.
//!
//! A client stamps every mutating statement with a [`StatementId`]
//! (session nonce + sequence number) and re-sends the *same* id when it
//! retries after an ambiguous failure (connection dropped before the
//! response arrived). The engine records applied ids together with a
//! compact outcome summary, so a retry is answered from this store
//! instead of re-applying the mutation. Because ids ride inside the WAL
//! record itself ([`crate::LogOp::Stamped`]) and this store is rebuilt
//! by replay and persisted in snapshots, the guarantee holds across
//! crash recovery: a retry that lands after a crash-and-restart still
//! deduplicates.
//!
//! Memory is bounded on both axes. Within a session, outcomes evict
//! oldest-acknowledged-first (lowest sequence number) past a cap, with a
//! watermark remembering that everything below it *was* applied — a
//! retry of an evicted statement gets a typed "already applied" error
//! rather than a silent duplicate. Whole sessions evict
//! least-recently-used past a session cap, retiring their watermark into
//! a small side table so even a retry from an evicted session cannot
//! re-apply.

use crate::persist::StatementId;
use mpq_types::wire::{WireReader, WireWriter};
use std::collections::{BTreeMap, VecDeque};

/// Capacity limits for a [`StatementDedup`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupLimits {
    /// Outcomes retained per session before oldest-first eviction.
    pub max_outcomes_per_session: usize,
    /// Sessions tracked before least-recently-used eviction.
    pub max_sessions: usize,
    /// Watermarks of evicted sessions retained before the oldest-retired
    /// watermark is forgotten.
    pub max_retired: usize,
}

impl Default for DedupLimits {
    fn default() -> DedupLimits {
        DedupLimits { max_outcomes_per_session: 256, max_sessions: 1024, max_retired: 4096 }
    }
}

/// Compact summary of a mutation's outcome, enough to answer a retry
/// without re-running the statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DedupOutcome {
    /// An `INSERT` applied.
    Inserted {
        /// Target table name.
        table: String,
        /// Rows the statement appended.
        rows_inserted: u64,
        /// Standing-subscription matches the insert produced (the
        /// notifications were delivered once, when the statement first
        /// applied — a replayed ack only reports the count).
        subs_matched: u64,
        /// Subscription candidates the inverted index pruned.
        subs_index_pruned: u64,
    },
    /// A `CREATE MINING MODEL` applied.
    ModelCreated {
        /// The model's catalog name.
        name: String,
        /// Number of output classes/clusters.
        n_classes: u64,
        /// Degradation reason, if envelope derivation failed.
        degraded: Option<String>,
    },
    /// Some other stamped mutation applied (replay-only; the SQL surface
    /// stamps only inserts, model DDL and subscription changes).
    Applied,
    /// A `SUBSCRIBE` applied.
    Subscribed {
        /// The stable subscription id that was assigned.
        id: u64,
    },
    /// An `UNSUBSCRIBE` applied.
    Unsubscribed {
        /// The removed subscription id.
        id: u64,
    },
}

const OUT_INSERTED: u8 = 0;
const OUT_MODEL_CREATED: u8 = 1;
const OUT_APPLIED: u8 = 2;
const OUT_SUBSCRIBED: u8 = 3;
const OUT_UNSUBSCRIBED: u8 = 4;
const OUT_INSERTED_SUBS: u8 = 5;

impl DedupOutcome {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            DedupOutcome::Inserted { table, rows_inserted, subs_matched, subs_index_pruned } => {
                // Inserts that matched no standing subscription keep the
                // original compact shape (and stay decodable by it).
                if *subs_matched == 0 && *subs_index_pruned == 0 {
                    w.put_u8(OUT_INSERTED);
                    w.put_str(table);
                    w.put_u64(*rows_inserted);
                } else {
                    w.put_u8(OUT_INSERTED_SUBS);
                    w.put_str(table);
                    w.put_u64(*rows_inserted);
                    w.put_u64(*subs_matched);
                    w.put_u64(*subs_index_pruned);
                }
            }
            DedupOutcome::ModelCreated { name, n_classes, degraded } => {
                w.put_u8(OUT_MODEL_CREATED);
                w.put_str(name);
                w.put_u64(*n_classes);
                match degraded {
                    Some(d) => {
                        w.put_bool(true);
                        w.put_str(d);
                    }
                    None => w.put_bool(false),
                }
            }
            DedupOutcome::Applied => w.put_u8(OUT_APPLIED),
            DedupOutcome::Subscribed { id } => {
                w.put_u8(OUT_SUBSCRIBED);
                w.put_u64(*id);
            }
            DedupOutcome::Unsubscribed { id } => {
                w.put_u8(OUT_UNSUBSCRIBED);
                w.put_u64(*id);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<DedupOutcome, crate::EngineError> {
        Ok(match r.get_u8()? {
            OUT_INSERTED => DedupOutcome::Inserted {
                table: r.get_str()?,
                rows_inserted: r.get_u64()?,
                subs_matched: 0,
                subs_index_pruned: 0,
            },
            OUT_INSERTED_SUBS => DedupOutcome::Inserted {
                table: r.get_str()?,
                rows_inserted: r.get_u64()?,
                subs_matched: r.get_u64()?,
                subs_index_pruned: r.get_u64()?,
            },
            OUT_MODEL_CREATED => DedupOutcome::ModelCreated {
                name: r.get_str()?,
                n_classes: r.get_u64()?,
                degraded: if r.get_bool()? { Some(r.get_str()?) } else { None },
            },
            OUT_APPLIED => DedupOutcome::Applied,
            OUT_SUBSCRIBED => DedupOutcome::Subscribed { id: r.get_u64()? },
            OUT_UNSUBSCRIBED => DedupOutcome::Unsubscribed { id: r.get_u64()? },
            other => {
                return Err(crate::EngineError::Corrupt {
                    detail: format!("unknown dedup outcome tag {other}"),
                })
            }
        })
    }
}

/// What the store knows about a statement id.
#[derive(Debug, Clone, PartialEq)]
pub enum DedupCheck {
    /// Never seen: apply and [`StatementDedup::record`].
    New,
    /// Already applied; here is the original outcome.
    Replay(DedupOutcome),
    /// Already applied, but the outcome aged out of the cache. The
    /// mutation must NOT re-apply; the caller reports a typed error.
    Evicted,
}

#[derive(Debug, Default)]
struct SessionOutcomes {
    outcomes: BTreeMap<u64, DedupOutcome>,
    /// Every recorded seq below this was applied and its outcome
    /// evicted (oldest-acknowledged-first).
    evicted_below: u64,
}

/// The bounded statement-outcome store. Lives inside the
/// [`crate::Catalog`] so it mutates under the same write lock as the
/// state it guards and rides in snapshots.
#[derive(Debug, Default)]
pub struct StatementDedup {
    limits: DedupLimits,
    sessions: BTreeMap<u64, SessionOutcomes>,
    /// Nonce recency, coldest first.
    lru: VecDeque<u64>,
    /// Watermarks of evicted sessions: nonce → first seq NOT known
    /// applied. Insertion order tracked for bounded forgetting.
    retired: BTreeMap<u64, u64>,
    retired_order: VecDeque<u64>,
}

impl StatementDedup {
    /// An empty store with the given capacity limits (tests use tiny
    /// ones to exercise eviction).
    pub fn with_limits(limits: DedupLimits) -> StatementDedup {
        StatementDedup { limits, ..StatementDedup::default() }
    }

    /// Looks up `id` without mutating anything.
    pub fn check(&self, id: StatementId) -> DedupCheck {
        if let Some(s) = self.sessions.get(&id.nonce) {
            if let Some(o) = s.outcomes.get(&id.seq) {
                return DedupCheck::Replay(o.clone());
            }
            if id.seq < s.evicted_below {
                return DedupCheck::Evicted;
            }
            return DedupCheck::New;
        }
        match self.retired.get(&id.nonce) {
            Some(&watermark) if id.seq < watermark => DedupCheck::Evicted,
            _ => DedupCheck::New,
        }
    }

    /// Records an applied statement's outcome, evicting per the limits.
    pub fn record(&mut self, id: StatementId, outcome: DedupOutcome) {
        let is_new_session = !self.sessions.contains_key(&id.nonce);
        let s = self.sessions.entry(id.nonce).or_default();
        s.outcomes.insert(id.seq, outcome);
        while s.outcomes.len() > self.limits.max_outcomes_per_session {
            if let Some((seq, _)) = s.outcomes.pop_first() {
                s.evicted_below = s.evicted_below.max(seq + 1);
            }
        }
        // Touch the nonce in the LRU (move to back).
        if !is_new_session {
            if let Some(i) = self.lru.iter().position(|&n| n == id.nonce) {
                self.lru.remove(i);
            }
        }
        self.lru.push_back(id.nonce);
        while self.sessions.len() > self.limits.max_sessions {
            let Some(cold) = self.lru.pop_front() else { break };
            if let Some(gone) = self.sessions.remove(&cold) {
                let watermark = gone
                    .outcomes
                    .last_key_value()
                    .map(|(&seq, _)| seq + 1)
                    .unwrap_or(0)
                    .max(gone.evicted_below);
                self.retire(cold, watermark);
            }
        }
    }

    fn retire(&mut self, nonce: u64, watermark: u64) {
        if self.retired.insert(nonce, watermark).is_none() {
            self.retired_order.push_back(nonce);
        }
        while self.retired.len() > self.limits.max_retired {
            if let Some(old) = self.retired_order.pop_front() {
                self.retired.remove(&old);
            } else {
                break;
            }
        }
    }

    /// Number of tracked (non-retired) sessions.
    pub fn n_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Outcomes currently retained for `nonce`.
    pub fn n_outcomes(&self, nonce: u64) -> usize {
        self.sessions.get(&nonce).map_or(0, |s| s.outcomes.len())
    }

    /// Total outcomes retained across every session.
    pub fn total_outcomes(&self) -> usize {
        self.sessions.values().map(|s| s.outcomes.len()).sum()
    }

    /// Serializes the store (snapshot section). LRU recency is not
    /// persisted — after recovery, recency restarts in nonce order,
    /// which only affects which session evicts first, never whether a
    /// retry deduplicates.
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.sessions.len() as u32);
        for (&nonce, s) in &self.sessions {
            w.put_u64(nonce);
            w.put_u64(s.evicted_below);
            w.put_u32(s.outcomes.len() as u32);
            for (&seq, o) in &s.outcomes {
                w.put_u64(seq);
                o.encode(w);
            }
        }
        w.put_u32(self.retired.len() as u32);
        for (&nonce, &watermark) in &self.retired {
            w.put_u64(nonce);
            w.put_u64(watermark);
        }
    }

    /// Decodes a store serialized by [`StatementDedup::encode`], with
    /// default limits.
    pub(crate) fn decode(r: &mut WireReader<'_>) -> Result<StatementDedup, crate::EngineError> {
        let mut store = StatementDedup::default();
        let n_sessions = r.get_u32()? as usize;
        if n_sessions > r.remaining() {
            return Err(crate::EngineError::Corrupt {
                detail: "dedup session count exceeds snapshot".into(),
            });
        }
        for _ in 0..n_sessions {
            let nonce = r.get_u64()?;
            let evicted_below = r.get_u64()?;
            let n_outcomes = r.get_u32()? as usize;
            if n_outcomes > r.remaining() {
                return Err(crate::EngineError::Corrupt {
                    detail: "dedup outcome count exceeds snapshot".into(),
                });
            }
            let mut outcomes = BTreeMap::new();
            for _ in 0..n_outcomes {
                let seq = r.get_u64()?;
                outcomes.insert(seq, DedupOutcome::decode(r)?);
            }
            store.sessions.insert(nonce, SessionOutcomes { outcomes, evicted_below });
            store.lru.push_back(nonce);
        }
        let n_retired = r.get_u32()? as usize;
        if n_retired > r.remaining() {
            return Err(crate::EngineError::Corrupt {
                detail: "dedup retired count exceeds snapshot".into(),
            });
        }
        for _ in 0..n_retired {
            let nonce = r.get_u64()?;
            let watermark = r.get_u64()?;
            if store.retired.insert(nonce, watermark).is_none() {
                store.retired_order.push_back(nonce);
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(nonce: u64, seq: u64) -> StatementId {
        StatementId { nonce, seq }
    }

    fn ins(n: u64) -> DedupOutcome {
        DedupOutcome::Inserted {
            table: "t".into(),
            rows_inserted: n,
            subs_matched: 0,
            subs_index_pruned: 0,
        }
    }

    #[test]
    fn new_then_replay() {
        let mut d = StatementDedup::default();
        assert_eq!(d.check(id(7, 0)), DedupCheck::New);
        d.record(id(7, 0), ins(3));
        assert_eq!(d.check(id(7, 0)), DedupCheck::Replay(ins(3)));
        assert_eq!(d.check(id(7, 1)), DedupCheck::New);
        assert_eq!(d.check(id(8, 0)), DedupCheck::New);
    }

    #[test]
    fn per_session_eviction_is_oldest_first_with_watermark() {
        let mut d = StatementDedup::with_limits(DedupLimits {
            max_outcomes_per_session: 3,
            ..DedupLimits::default()
        });
        for seq in 0..5 {
            d.record(id(1, seq), ins(seq));
        }
        assert_eq!(d.n_outcomes(1), 3);
        // Seqs 0 and 1 evicted: known-applied, outcome gone.
        assert_eq!(d.check(id(1, 0)), DedupCheck::Evicted);
        assert_eq!(d.check(id(1, 1)), DedupCheck::Evicted);
        // Newest three still replay.
        for seq in 2..5 {
            assert_eq!(d.check(id(1, seq)), DedupCheck::Replay(ins(seq)));
        }
        assert_eq!(d.check(id(1, 5)), DedupCheck::New);
    }

    #[test]
    fn session_eviction_is_lru_and_retires_watermark() {
        let mut d = StatementDedup::with_limits(DedupLimits {
            max_sessions: 2,
            ..DedupLimits::default()
        });
        d.record(id(1, 0), ins(1));
        d.record(id(2, 0), ins(1));
        // Touch session 1 so session 2 is the cold one.
        d.record(id(1, 1), ins(1));
        d.record(id(3, 0), ins(1));
        assert_eq!(d.n_sessions(), 2);
        assert_eq!(d.n_outcomes(2), 0, "session 2 evicted");
        // The retired watermark still refuses to re-apply session 2's
        // statement — exactly-once survives whole-session eviction.
        assert_eq!(d.check(id(2, 0)), DedupCheck::Evicted);
        assert_eq!(d.check(id(2, 1)), DedupCheck::New);
        assert_eq!(d.check(id(1, 1)), DedupCheck::Replay(ins(1)));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = StatementDedup::with_limits(DedupLimits {
            max_outcomes_per_session: 2,
            max_sessions: 2,
            ..DedupLimits::default()
        });
        for seq in 0..4 {
            d.record(id(10, seq), ins(seq));
        }
        d.record(
            id(11, 0),
            DedupOutcome::ModelCreated {
                name: "m".into(),
                n_classes: 3,
                degraded: Some("timeout".into()),
            },
        );
        d.record(id(12, 5), DedupOutcome::Applied);
        let mut w = WireWriter::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let back = StatementDedup::decode(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(back.check(id(10, 0)), DedupCheck::Evicted, "watermark survives");
        assert_eq!(back.check(id(10, 3)), d.check(id(10, 3)));
        assert_eq!(back.check(id(11, 0)), d.check(id(11, 0)));
        assert_eq!(back.check(id(12, 5)), DedupCheck::Replay(DedupOutcome::Applied));
        // Every strict prefix fails cleanly.
        for cut in 0..bytes.len() {
            assert!(StatementDedup::decode(&mut WireReader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn subscription_outcomes_roundtrip() {
        let mut d = StatementDedup::default();
        d.record(id(1, 0), DedupOutcome::Subscribed { id: 4 });
        d.record(id(1, 1), DedupOutcome::Unsubscribed { id: 4 });
        d.record(
            id(1, 2),
            DedupOutcome::Inserted {
                table: "t".into(),
                rows_inserted: 2,
                subs_matched: 5,
                subs_index_pruned: 9,
            },
        );
        let mut w = WireWriter::new();
        d.encode(&mut w);
        let bytes = w.into_bytes();
        let back = StatementDedup::decode(&mut WireReader::new(&bytes)).unwrap();
        for seq in 0..3 {
            assert_eq!(back.check(id(1, seq)), d.check(id(1, seq)));
        }
        assert!(matches!(
            back.check(id(1, 2)),
            DedupCheck::Replay(DedupOutcome::Inserted { subs_matched: 5, .. })
        ));
        for cut in 0..bytes.len() {
            assert!(StatementDedup::decode(&mut WireReader::new(&bytes[..cut])).is_err());
        }
    }
}
