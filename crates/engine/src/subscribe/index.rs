//! The inverted subscription index.
//!
//! Every registered subscription's predicate is rewritten against the
//! live catalog (envelopes + optional exact compilation, exactly the
//! pipeline queries go through) and then *over-approximated* as a
//! bounded DNF of member-set clauses — a disjunction of conjunctions of
//! `column ∈ mask` tests. Mining predicates that survive the rewrite
//! become TRUE in the guard (the guard is a necessary condition only),
//! so the guard never rules out a row the full predicate would accept.
//!
//! Clauses are deduplicated structurally across subscriptions — ten
//! thousand subscribers to `PREDICT(m) = 'churn'` share one clause
//! group — and each group is anchored on its most selective atom: the
//! group is posted under every member of that atom's mask, in a
//! per-(column, member) postings table. Matching a row probes one
//! postings list per column, verifies the few candidate groups' other
//! atoms, and only then evaluates the candidates' *full* rewritten
//! predicates through a shared memo scorer. Because candidates always
//! run the full predicate, the index is pure pruning: disabling it (the
//! `sub_index_corrupt` fault) changes cost, never the match set.

use std::collections::{BTreeSet, HashMap};

use mpq_types::{AttrId, Member, MemberSet, Row};

/// Structural identity of a guard clause — its atoms as sorted
/// `(column, members)` pairs — used to share clause groups across
/// subscriptions.
type ClauseKey = Vec<(u16, Vec<Member>)>;

use crate::catalog::Catalog;
use crate::expr::{Expr, ModelId};
use crate::rewrite::rewrite_mining_opts;
use crate::vectorized::MemoScorer;

/// Per-row match accounting, reported in `Notify` frames and summed
/// into the insert's `subs_*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchMetrics {
    /// Subscriptions on the row's table that the inverted index ruled
    /// out without evaluating their predicate at all.
    pub index_pruned: u64,
    /// Candidate subscriptions whose full rewritten predicate was
    /// evaluated against the row.
    pub residual_evaluated: u64,
    /// Proxy-score uncertainty-band hits during candidate evaluation —
    /// evaluations that had to fall through a cascade to the real
    /// scorer (or its memo).
    pub scorer_banded: u64,
}

/// Cap on the number of guard clauses one subscription may contribute.
/// Predicates whose DNF would blow past this collapse to an
/// always-check clause — still sound, just unindexed.
const CLAUSE_CAP: usize = 64;

/// One conjunction of member-set tests, atoms sorted by column.
#[derive(Debug, Clone)]
struct Clause {
    atoms: Vec<(AttrId, MemberSet)>,
}

impl Clause {
    fn always() -> Clause {
        Clause { atoms: Vec::new() }
    }

    /// Conjunction of two clauses: per-column mask intersection.
    /// `None` when some column's intersection is empty (the combined
    /// clause is unsatisfiable).
    fn intersect(&self, other: &Clause) -> Option<Clause> {
        let mut atoms = self.atoms.clone();
        for (attr, set) in &other.atoms {
            match atoms.binary_search_by_key(&attr.0, |(a, _)| a.0) {
                Ok(i) => {
                    atoms[i].1.intersect_with(set);
                    if atoms[i].1.is_empty() {
                        return None;
                    }
                }
                Err(i) => atoms.insert(i, (*attr, set.clone())),
            }
        }
        Some(Clause { atoms })
    }
}

/// Extracts a sound over-approximating guard DNF from a rewritten
/// predicate: `expr ⇒ OR(clauses)` over every storable row. An empty
/// result means `expr` is unsatisfiable over storable rows; a clause
/// with no atoms is TRUE (always a candidate).
fn guard_dnf(expr: &Expr, cards: &[u16]) -> Vec<Clause> {
    match expr {
        Expr::Const(true) => vec![Clause::always()],
        Expr::Const(false) => Vec::new(),
        // Residual mining predicates are opaque to the guard.
        Expr::Mining(_) => vec![Clause::always()],
        Expr::Not(inner) => match &**inner {
            Expr::Atom(a) => {
                let card = cards[a.attr.index()];
                atom_clause(a.attr, a.pred.member_set(card).complement())
            }
            _ => vec![Clause::always()],
        },
        Expr::Atom(a) => {
            let card = cards[a.attr.index()];
            atom_clause(a.attr, a.pred.member_set(card))
        }
        Expr::Or(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(guard_dnf(p, cards));
                if out.len() > CLAUSE_CAP {
                    return vec![Clause::always()];
                }
            }
            out
        }
        Expr::And(parts) => {
            // Each conjunct's DNF over-approximates the whole
            // conjunction on its own, so the product may stop early
            // (keeping what it has) when it would blow past the cap.
            let mut children: Vec<Vec<Clause>> = Vec::with_capacity(parts.len());
            for p in parts {
                let d = guard_dnf(p, cards);
                if d.is_empty() {
                    return Vec::new();
                }
                children.push(d);
            }
            children.sort_by_key(Vec::len);
            let mut acc = vec![Clause::always()];
            for d in children {
                if acc.len().saturating_mul(d.len()) > CLAUSE_CAP {
                    break;
                }
                let mut next = Vec::new();
                for a in &acc {
                    for b in &d {
                        if let Some(c) = a.intersect(b) {
                            next.push(c);
                        }
                    }
                }
                if next.is_empty() {
                    // No pair of disjuncts is jointly satisfiable, so
                    // the conjunction itself is unsatisfiable.
                    return Vec::new();
                }
                acc = next;
            }
            acc
        }
    }
}

fn atom_clause(attr: AttrId, set: MemberSet) -> Vec<Clause> {
    if set.is_empty() {
        Vec::new()
    } else if set.is_full() {
        vec![Clause::always()]
    } else {
        vec![Clause { atoms: vec![(attr, set)] }]
    }
}

/// One subscription, compiled against the catalog state the index was
/// built from.
struct CompiledSub {
    id: u64,
    /// Full rewritten predicate — what candidates actually evaluate.
    rewritten: Expr,
    /// Static verification cost: surviving mining predicates dominate
    /// (each weighs as much as a thousand plain nodes), then expression
    /// size. Candidates verify cheapest-first so model-free
    /// subscriptions populate the shared memo's row state before any
    /// model-invoking one runs.
    cost: u64,
    /// No mining predicate survived the rewrite: evaluation never
    /// touches a model. (Read by test assertions; production code gets
    /// the same guarantee for free from `Expr::eval` on a model-free
    /// expression.)
    #[cfg_attr(not(test), allow(dead_code))]
    exact: bool,
}

/// A deduplicated guard clause shared by every subscription that
/// contributed it.
struct ClauseGroup {
    atoms: Vec<(AttrId, MemberSet)>,
    /// Index into `atoms` of the anchor (most selective) atom, or
    /// `None` for the TRUE clause.
    anchor: Option<usize>,
    /// Slots into [`TableSubs::subs`].
    subs: Vec<u32>,
}

impl ClauseGroup {
    fn matches(&self, row: &Row) -> bool {
        self.atoms.iter().all(|(attr, set)| set.contains(row[attr.index()]))
    }
}

#[derive(Default)]
struct TableSubs {
    subs: Vec<CompiledSub>,
    groups: Vec<ClauseGroup>,
    /// `postings[col][member]` → ids of groups anchored on `(col,
    /// mask)` with `member ∈ mask`.
    postings: Vec<Vec<Vec<u32>>>,
    /// Groups with no anchor: checked against every row.
    always: Vec<u32>,
    /// Every model referenced by any subscription on this table, for
    /// sizing the shared memo scorer's cascades.
    models: Vec<ModelId>,
}

/// Identity of the catalog state a [`SubIndex`] was compiled from. The
/// engine rebuilds the cached index whenever this key changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct IndexKey {
    generation: u64,
    model_versions: Vec<u64>,
    compile: bool,
}

impl IndexKey {
    pub(crate) fn current(catalog: &Catalog, compile: bool) -> IndexKey {
        IndexKey {
            generation: catalog.subs_generation(),
            model_versions: (0..catalog.n_models()).map(|m| catalog.model(m).version).collect(),
            compile,
        }
    }
}

/// The inverted index over every registered subscription.
pub(crate) struct SubIndex {
    tables: Vec<TableSubs>,
    key: IndexKey,
}

impl SubIndex {
    /// Compiles every registered subscription against the live catalog.
    pub(crate) fn build(catalog: &Catalog, compile: bool) -> SubIndex {
        let key = IndexKey::current(catalog, compile);
        let mut tables: Vec<TableSubs> = Vec::new();
        tables.resize_with(catalog.n_tables(), TableSubs::default);
        let mut dedup: Vec<HashMap<ClauseKey, u32>> = vec![HashMap::new(); catalog.n_tables()];
        for sub in catalog.subscriptions() {
            let schema = catalog.table(sub.table).table.schema();
            let cards = schema.cardinalities();
            let rewritten = rewrite_mining_opts(sub.predicate.clone(), schema, catalog, compile);
            let exact = !rewritten.has_mining();
            let clauses = guard_dnf(&rewritten, &cards);
            let ts = &mut tables[sub.table];
            let slot = ts.subs.len() as u32;
            for mp in rewritten.mining_preds() {
                for m in mp.models() {
                    if !ts.models.contains(&m) {
                        ts.models.push(m);
                    }
                }
            }
            let mut nodes = 0u64;
            let mut mining = 0u64;
            rewritten.walk(&mut |e| {
                nodes += 1;
                if matches!(e, Expr::Mining(_)) {
                    mining += 1;
                }
            });
            let cost = mining * 1_000 + nodes;
            ts.subs.push(CompiledSub { id: sub.id, rewritten, cost, exact });
            for clause in clauses {
                let key: ClauseKey = clause
                    .atoms
                    .iter()
                    .map(|(a, s)| (a.0, s.iter().collect()))
                    .collect();
                match dedup[sub.table].get(&key) {
                    Some(&g) => {
                        let subs = &mut ts.groups[g as usize].subs;
                        if subs.last() != Some(&slot) {
                            subs.push(slot);
                        }
                    }
                    None => {
                        let g = ts.groups.len() as u32;
                        dedup[sub.table].insert(key, g);
                        let anchor = clause
                            .atoms
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, (_, s))| s.len())
                            .map(|(i, _)| i);
                        ts.groups.push(ClauseGroup {
                            atoms: clause.atoms,
                            anchor,
                            subs: vec![slot],
                        });
                    }
                }
            }
        }
        // Post every group under each member of its anchor mask.
        for (tid, ts) in tables.iter_mut().enumerate() {
            let cards = catalog.table(tid).table.schema().cardinalities();
            ts.postings = cards.iter().map(|&c| vec![Vec::new(); c as usize]).collect();
            for (g, group) in ts.groups.iter().enumerate() {
                match group.anchor {
                    Some(i) => {
                        let (attr, ref set) = group.atoms[i];
                        for m in set.iter() {
                            ts.postings[attr.index()][m as usize].push(g as u32);
                        }
                    }
                    None => ts.always.push(g as u32),
                }
            }
        }
        SubIndex { tables, key }
    }

    /// The catalog-state key this index was built from.
    pub(crate) fn key(&self) -> &IndexKey {
        &self.key
    }

    /// Number of registered subscriptions watching `table`.
    pub(crate) fn n_subs(&self, table: usize) -> usize {
        self.tables.get(table).map_or(0, |t| t.subs.len())
    }

    /// Every model any subscription on `table` references (for cascade
    /// construction).
    pub(crate) fn models(&self, table: usize) -> &[ModelId] {
        self.tables.get(table).map_or(&[], |t| &t.models)
    }

    /// True when some subscription on `table` evaluates without ever
    /// invoking a model (exactly compiled).
    #[cfg(test)]
    fn any_exact(&self, table: usize) -> bool {
        self.tables.get(table).is_some_and(|t| t.subs.iter().any(|s| s.exact))
    }

    /// Matches one inserted row against every subscription on its
    /// table. Returns the matching subscription ids (ascending slot
    /// order — registration order) plus per-row metrics. `naive`
    /// bypasses the index and evaluates every subscription's full
    /// predicate — the degraded path for the index-corruption fault,
    /// identical match set by construction.
    pub(crate) fn match_row(
        &self,
        table: usize,
        row: &Row,
        memo: &MemoScorer<'_>,
        naive: bool,
    ) -> (Vec<u64>, MatchMetrics) {
        let Some(ts) = self.tables.get(table) else {
            return (Vec::new(), MatchMetrics::default());
        };
        let n = ts.subs.len();
        if n == 0 {
            return (Vec::new(), MatchMetrics::default());
        }
        let mut candidates: BTreeSet<u32> = BTreeSet::new();
        if naive {
            candidates.extend(0..n as u32);
        } else {
            for &g in &ts.always {
                candidates.extend(ts.groups[g as usize].subs.iter().copied());
            }
            for (col, &m) in row.iter().enumerate() {
                let Some(per) = ts.postings.get(col) else { continue };
                let Some(list) = per.get(m as usize) else { continue };
                for &g in list {
                    let group = &ts.groups[g as usize];
                    if group.matches(row) {
                        candidates.extend(group.subs.iter().copied());
                    }
                }
            }
        }
        let banded0 = memo.band_rows();
        // Verify cheapest-first: model-free candidates run before any
        // model-invoking one, warming the shared memo's row entry at
        // the lowest possible price. The counters below only depend on
        // the candidate *set*, and the match list re-sorts, so the
        // order is pure cost — deterministic at any dop.
        let mut ordered: Vec<u32> = candidates.iter().copied().collect();
        ordered.sort_by_key(|&slot| (ts.subs[slot as usize].cost, slot));
        let mut matched = Vec::new();
        let mut invocations = 0u64;
        for &slot in &ordered {
            let sub = &ts.subs[slot as usize];
            if sub.rewritten.eval(row, memo, &mut invocations) {
                matched.push(sub.id);
            }
        }
        // Ids are assigned in registration (slot) order, so ascending
        // ids restores the documented registration-order contract.
        matched.sort_unstable();
        let metrics = MatchMetrics {
            index_pruned: n as u64 - candidates.len() as u64,
            residual_evaluated: candidates.len() as u64,
            scorer_banded: memo.band_rows().saturating_sub(banded0),
        };
        (matched, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::build_cascades;
    use crate::sql;
    use crate::table::Table;
    use mpq_types::{AttrDomain, Attribute, Schema};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Attribute::new("region", AttrDomain::categorical(["EU", "US", "APAC"])),
            Attribute::new("tier", AttrDomain::categorical(["free", "pro", "max"])),
            Attribute::new("active", AttrDomain::categorical(["no", "yes"])),
        ])
        .unwrap();
        let mut cat = Catalog::default();
        let data = mpq_types::Dataset::new(schema);
        cat.add_table(Table::from_dataset("people", &data)).unwrap();
        cat
    }

    fn subscribe(cat: &mut Catalog, sql_text: &str) -> u64 {
        let q = sql::parse(sql_text, cat).unwrap();
        let id = cat.next_subscription_id();
        cat.add_subscription(id, sql_text.to_string(), q).unwrap();
        id
    }

    fn all_rows() -> Vec<Vec<Member>> {
        let mut out = Vec::new();
        for a in 0..3u16 {
            for b in 0..3u16 {
                for c in 0..2u16 {
                    out.push(vec![a, b, c]);
                }
            }
        }
        out
    }

    #[test]
    fn index_and_naive_agree_on_every_row() {
        let mut cat = catalog();
        subscribe(&mut cat, "SELECT * FROM people WHERE region = 'EU'");
        subscribe(&mut cat, "SELECT * FROM people WHERE region = 'EU' AND tier = 'pro'");
        subscribe(&mut cat, "SELECT * FROM people WHERE tier = 'free' OR active = 'yes'");
        subscribe(&mut cat, "SELECT * FROM people WHERE NOT region = 'US'");
        subscribe(&mut cat, "SELECT * FROM people WHERE region IN ('US', 'APAC')");
        let idx = SubIndex::build(&cat, true);
        let memo = MemoScorer::with_cascades(&cat, 1024, build_cascades(&cat, &[]));
        for row in all_rows() {
            let (fast, fm) = idx.match_row(0, &row, &memo, false);
            let (slow, sm) = idx.match_row(0, &row, &memo, true);
            assert_eq!(fast, slow, "row {row:?}");
            assert_eq!(fm.index_pruned + fm.residual_evaluated, 5);
            assert_eq!(sm.index_pruned, 0);
            assert_eq!(sm.residual_evaluated, 5);
        }
    }

    #[test]
    fn index_prunes_non_candidates() {
        let mut cat = catalog();
        for _ in 0..10 {
            subscribe(&mut cat, "SELECT * FROM people WHERE region = 'EU'");
        }
        let idx = SubIndex::build(&cat, true);
        let memo = MemoScorer::with_cascades(&cat, 1024, build_cascades(&cat, &[]));
        // A US row is pruned by every group without any evaluation.
        let (matched, m) = idx.match_row(0, &[1, 0, 0], &memo, false);
        assert!(matched.is_empty());
        assert_eq!(m.index_pruned, 10);
        assert_eq!(m.residual_evaluated, 0);
        // Identical predicates share one clause group.
        assert_eq!(idx.tables[0].groups.len(), 1);
        assert_eq!(idx.tables[0].groups[0].subs.len(), 10);
        assert!(idx.any_exact(0));
    }

    #[test]
    fn unsatisfiable_and_always_clauses() {
        let mut cat = catalog();
        // Contradictory conjunction: no clause, never a candidate.
        subscribe(&mut cat, "SELECT * FROM people WHERE region = 'EU' AND region = 'US'");
        // Tautology-shaped: full-mask atom collapses to an always clause.
        subscribe(
            &mut cat,
            "SELECT * FROM people WHERE region IN ('EU', 'US', 'APAC')",
        );
        let idx = SubIndex::build(&cat, true);
        let memo = MemoScorer::with_cascades(&cat, 1024, build_cascades(&cat, &[]));
        for row in all_rows() {
            let (fast, _) = idx.match_row(0, &row, &memo, false);
            let (slow, _) = idx.match_row(0, &row, &memo, true);
            assert_eq!(fast, slow, "row {row:?}");
            assert_eq!(fast, vec![2], "only the tautology matches");
        }
    }

    #[test]
    fn guard_dnf_is_a_necessary_condition() {
        // Over every storable row, expr true ⇒ some guard clause true.
        let cat = catalog();
        let cards = vec![3u16, 3, 2];
        let texts = [
            "SELECT * FROM people WHERE region = 'EU' OR (tier = 'pro' AND active = 'yes')",
            "SELECT * FROM people WHERE NOT (region = 'EU' AND tier = 'free')",
            "SELECT * FROM people WHERE region IN ('EU', 'US') AND NOT tier = 'max'",
        ];
        struct NoModels;
        impl crate::expr::ModelOracle for NoModels {
            fn predict(&self, _: ModelId, _: &Row) -> mpq_types::ClassId {
                unreachable!("no mining predicates in these tests")
            }
            fn class_for_member(
                &self,
                _: ModelId,
                _: AttrId,
                _: Member,
            ) -> Option<mpq_types::ClassId> {
                None
            }
        }
        for t in texts {
            let q = sql::parse(t, &cat).unwrap();
            let clauses = guard_dnf(&q.predicate, &cards);
            for row in all_rows() {
                let mut inv = 0;
                if q.predicate.eval(&row, &NoModels, &mut inv) {
                    assert!(
                        clauses.iter().any(|c| {
                            c.atoms.iter().all(|(a, s)| s.contains(row[a.index()]))
                        }),
                        "guard dropped a matching row: {t} / {row:?}"
                    );
                }
            }
        }
    }
}
