//! Engine micro-benchmarks: index probes (single vs composite),
//! histogram selectivity estimation, expression normalization and model
//! training/prediction throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mpq_datagen::{generate_test, generate_train, table2};
use mpq_engine::{Atom, AtomPred, Expr, SecondaryIndex, Table, TableStats};
use mpq_models::{Classifier as _, NaiveBayes};
use mpq_types::AttrId;
use std::hint::black_box;

fn bench_index_probes(c: &mut Criterion) {
    let spec = table2().into_iter().find(|s| s.name == "Shuttle").expect("known dataset");
    let test = generate_test(&spec, 7, 0.01);
    let table = Table::from_dataset("t", &test);
    let single = SecondaryIndex::build(&table, &[AttrId(0)]);
    let composite = SecondaryIndex::build(&table, &[AttrId(0), AttrId(1), AttrId(2)]);

    let mut g = c.benchmark_group("index/probe");
    g.bench_function("single_eq", |b| {
        b.iter(|| black_box(single.probe(&[(AttrId(0), AtomPred::Eq(3))])))
    });
    g.bench_function("single_range", |b| {
        b.iter(|| black_box(single.probe(&[(AttrId(0), AtomPred::Range { lo: 2, hi: 5 })])))
    });
    g.bench_function("composite_conjunction", |b| {
        b.iter(|| {
            black_box(composite.probe(&[
                (AttrId(0), AtomPred::Eq(3)),
                (AttrId(1), AtomPred::Range { lo: 0, hi: 2 }),
                (AttrId(2), AtomPred::Eq(1)),
            ]))
        })
    });
    g.bench_function("composite_count_only", |b| {
        b.iter(|| {
            black_box(composite.probe_count(&[
                (AttrId(0), AtomPred::Eq(3)),
                (AttrId(2), AtomPred::Eq(1)),
            ]))
        })
    });
    g.finish();
}

fn bench_stats_and_normalize(c: &mut Criterion) {
    let spec = table2().into_iter().find(|s| s.name == "Vehicle").expect("known dataset");
    let test = generate_test(&spec, 7, 0.01);
    let table = Table::from_dataset("t", &test);
    let schema = table.schema().clone();

    let mut g = c.benchmark_group("engine/micro");
    g.bench_function("build_table_stats", |b| {
        b.iter(|| black_box(TableStats::build(&table)))
    });
    let messy = Expr::Not(Box::new(Expr::Or(vec![
        Expr::And(vec![
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 1, hi: 3 } }),
            Expr::Const(true),
            Expr::Not(Box::new(Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(2) }))),
        ]),
        Expr::Const(false),
        Expr::Atom(Atom { attr: AttrId(2), pred: AtomPred::Eq(0) }),
    ])));
    g.bench_function("normalize_expression", |b| {
        b.iter(|| black_box(messy.clone().normalize(&schema)))
    });
    g.finish();
}

fn bench_model_throughput(c: &mut Criterion) {
    let spec = table2().into_iter().find(|s| s.name == "Letter").expect("known dataset");
    let train = generate_train(&spec, 7);
    let mut g = c.benchmark_group("models");
    g.sample_size(10);
    g.bench_function("train_naive_bayes_letter", |b| {
        b.iter(|| black_box(NaiveBayes::train(&train).unwrap()))
    });
    let nb = NaiveBayes::train(&train).unwrap();
    let rows: Vec<Vec<u16>> = train.data.rows().take(1000).map(|r| r.to_vec()).collect();
    g.bench_function("predict_1k_rows", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for r in &rows {
                acc = acc.wrapping_add(nb.predict(r).0 as u32);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_index_probes, bench_stats_and_normalize, bench_model_throughput);
criterion_main!(benches);
