//! Discretization of continuous attributes.
//!
//! The paper (§3.2.1) assumes all attributes are discretized, citing
//! Dougherty/Kohavi/Sahami for method choices. We provide the two
//! unsupervised workhorses (equal-width, equal-frequency) and a supervised
//! entropy-based splitter, all of which produce the cut points consumed by
//! [`crate::AttrDomain::Binned`].

use crate::ClassId;

/// Which discretization method to apply to a raw numeric column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscretizeMethod {
    /// `bins` intervals of equal numeric width between the observed min
    /// and max.
    EqualWidth {
        /// Number of bins to produce.
        bins: u16,
    },
    /// `bins` intervals holding (approximately) equal row counts.
    EqualFrequency {
        /// Number of bins to produce.
        bins: u16,
    },
    /// Recursive supervised binary splitting maximizing information gain
    /// on the class label, to a depth yielding at most `max_bins` bins.
    Entropy {
        /// Upper bound on the number of bins produced.
        max_bins: u16,
    },
}

/// Computes cut points for `column` under `method`. `labels` is consulted
/// only by [`DiscretizeMethod::Entropy`] and must then be row-aligned with
/// `column`.
///
/// The returned cuts are strictly increasing and may number fewer than
/// requested when the data has too few distinct values. Non-finite inputs
/// are ignored.
pub fn discretize_column(column: &[f64], labels: Option<&[ClassId]>, method: DiscretizeMethod) -> Vec<f64> {
    match method {
        DiscretizeMethod::EqualWidth { bins } => equal_width(column, bins),
        DiscretizeMethod::EqualFrequency { bins } => equal_frequency(column, bins),
        DiscretizeMethod::Entropy { max_bins } => {
            let labels = labels.expect("entropy discretization requires labels");
            entropy_cuts(column, labels, max_bins)
        }
    }
}

fn finite_sorted(column: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = column.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v
}

fn equal_width(column: &[f64], bins: u16) -> Vec<f64> {
    let v = finite_sorted(column);
    if v.is_empty() || bins < 2 {
        return Vec::new();
    }
    let (lo, hi) = (v[0], v[v.len() - 1]);
    if lo == hi {
        return Vec::new();
    }
    let width = (hi - lo) / bins as f64;
    let mut cuts = Vec::with_capacity(bins as usize - 1);
    for i in 1..bins {
        let c = lo + width * i as f64;
        if cuts.last().is_none_or(|&p| c > p) {
            cuts.push(c);
        }
    }
    cuts
}

fn equal_frequency(column: &[f64], bins: u16) -> Vec<f64> {
    let v = finite_sorted(column);
    if v.is_empty() || bins < 2 {
        return Vec::new();
    }
    let mut cuts = Vec::with_capacity(bins as usize - 1);
    for i in 1..bins {
        let idx = (v.len() * i as usize) / bins as usize;
        let c = v[idx.min(v.len() - 1)];
        if cuts.last().is_none_or(|&p| c > p) {
            cuts.push(c);
        }
    }
    // A cut equal to the maximum would create an empty final bin.
    while cuts.last() == v.last() {
        cuts.pop();
    }
    cuts
}

/// Entropy (in nats) of a class-count vector.
fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

fn entropy_cuts(column: &[f64], labels: &[ClassId], max_bins: u16) -> Vec<f64> {
    assert_eq!(column.len(), labels.len(), "entropy discretization needs row-aligned labels");
    let n_classes = labels.iter().map(|c| c.index() + 1).max().unwrap_or(0);
    let mut pairs: Vec<(f64, ClassId)> = column
        .iter()
        .copied()
        .zip(labels.iter().copied())
        .filter(|(x, _)| x.is_finite())
        .collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let mut cuts = Vec::new();
    split_range(&pairs, n_classes, max_bins.saturating_sub(1), &mut cuts);
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cuts.dedup();
    cuts
}

/// Recursively split `pairs` (sorted by value) at the boundary with the
/// best information gain, spending at most `budget` further cuts.
fn split_range(pairs: &[(f64, ClassId)], n_classes: usize, budget: u16, out: &mut Vec<f64>) {
    if budget == 0 || pairs.len() < 4 {
        return;
    }
    let mut total = vec![0usize; n_classes];
    for (_, c) in pairs {
        total[c.index()] += 1;
    }
    let base = entropy(&total);
    if base == 0.0 {
        return; // pure — no reason to split
    }
    let mut left = vec![0usize; n_classes];
    let mut best: Option<(usize, f64)> = None; // (split index, weighted entropy)
    for i in 0..pairs.len() - 1 {
        left[pairs[i].1.index()] += 1;
        // Only split between distinct values.
        if pairs[i].0 == pairs[i + 1].0 {
            continue;
        }
        let right: Vec<usize> = total.iter().zip(&left).map(|(t, l)| t - l).collect();
        let nl = (i + 1) as f64;
        let nr = (pairs.len() - i - 1) as f64;
        let w = (nl * entropy(&left) + nr * entropy(&right)) / pairs.len() as f64;
        if best.is_none_or(|(_, bw)| w < bw) {
            best = Some((i, w));
        }
    }
    let Some((i, w)) = best else { return };
    if w >= base {
        return; // no gain
    }
    let cut = (pairs[i].0 + pairs[i + 1].0) / 2.0;
    out.push(cut);
    let half = budget / 2;
    split_range(&pairs[..=i], n_classes, half, out);
    split_range(&pairs[i + 1..], n_classes, budget - 1 - half, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_spans_range() {
        let col = [0.0, 10.0, 5.0, 2.5];
        let cuts = discretize_column(&col, None, DiscretizeMethod::EqualWidth { bins: 4 });
        assert_eq!(cuts, vec![2.5, 5.0, 7.5]);
    }

    #[test]
    fn equal_width_degenerate_cases() {
        assert!(discretize_column(&[], None, DiscretizeMethod::EqualWidth { bins: 4 }).is_empty());
        assert!(discretize_column(&[3.0, 3.0], None, DiscretizeMethod::EqualWidth { bins: 4 }).is_empty());
        assert!(discretize_column(&[1.0, 2.0], None, DiscretizeMethod::EqualWidth { bins: 1 }).is_empty());
        // Non-finite values are ignored rather than poisoning the range.
        let cuts = discretize_column(&[0.0, f64::NAN, 10.0, f64::INFINITY], None, DiscretizeMethod::EqualWidth { bins: 2 });
        assert_eq!(cuts, vec![5.0]);
    }

    #[test]
    fn equal_frequency_balances_counts() {
        let col: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cuts = discretize_column(&col, None, DiscretizeMethod::EqualFrequency { bins: 4 });
        assert_eq!(cuts.len(), 3);
        for w in cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Each quartile holds ~25 values.
        let c0 = col.iter().filter(|&&x| x <= cuts[0]).count();
        assert!((20..=30).contains(&c0), "first bin holds {c0}");
    }

    #[test]
    fn equal_frequency_with_heavy_duplicates_stays_strictly_increasing() {
        let col = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 3.0];
        let cuts = discretize_column(&col, None, DiscretizeMethod::EqualFrequency { bins: 4 });
        for w in cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(cuts.last().is_none_or(|&c| c < 3.0), "no empty final bin");
    }

    #[test]
    fn entropy_finds_the_class_boundary() {
        // Class 0 below 5, class 1 above: the first cut must land near 5.
        let col: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let labels: Vec<ClassId> = (0..20).map(|i| ClassId(u16::from(i >= 10))).collect();
        let cuts = discretize_column(&col, Some(&labels), DiscretizeMethod::Entropy { max_bins: 2 });
        assert_eq!(cuts.len(), 1);
        assert!((cuts[0] - 9.5).abs() < 1e-9, "cut at {}", cuts[0]);
    }

    #[test]
    fn entropy_pure_column_produces_no_cuts() {
        let col: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let labels = vec![ClassId(0); 10];
        let cuts = discretize_column(&col, Some(&labels), DiscretizeMethod::Entropy { max_bins: 8 });
        assert!(cuts.is_empty());
    }

    #[test]
    fn entropy_respects_max_bins() {
        // Alternating classes: every boundary is informative.
        let col: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let labels: Vec<ClassId> = (0..64).map(|i| ClassId((i / 4 % 2) as u16)).collect();
        let cuts = discretize_column(&col, Some(&labels), DiscretizeMethod::Entropy { max_bins: 4 });
        assert!(cuts.len() <= 3, "{} cuts exceed max_bins-1", cuts.len());
        assert!(!cuts.is_empty());
    }

    #[test]
    fn entropy_of_counts() {
        assert_eq!(entropy(&[0, 0]), 0.0);
        assert_eq!(entropy(&[5, 0]), 0.0);
        let h = entropy(&[5, 5]);
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
