//! Error type for the shared substrate.

/// Errors raised while building schemas or encoding data.
#[derive(Debug, Clone, PartialEq)]
pub enum TypesError {
    /// A raw value had the wrong type for its attribute domain.
    TypeMismatch {
        /// What the domain expected.
        expected: &'static str,
    },
    /// A categorical value not present in the domain.
    UnknownMember {
        /// The offending member name.
        member: String,
    },
    /// Cut points were not strictly increasing / finite.
    BadCuts {
        /// Explanation.
        detail: String,
    },
    /// Two attributes share a (case-insensitive) name.
    DuplicateAttribute {
        /// The duplicated name.
        name: String,
    },
    /// A row had the wrong number of values.
    ArityMismatch {
        /// Expected attribute count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
    /// More attributes than `AttrId` can address.
    TooManyAttributes {
        /// Provided attribute count.
        n: usize,
    },
}

impl std::fmt::Display for TypesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypesError::TypeMismatch { expected } => {
                write!(f, "value type mismatch: expected {expected}")
            }
            TypesError::UnknownMember { member } => {
                write!(f, "unknown categorical member {member:?}")
            }
            TypesError::BadCuts { detail } => write!(f, "invalid cut points: {detail}"),
            TypesError::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute name {name:?}")
            }
            TypesError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: schema has {expected} attributes, row has {got}")
            }
            TypesError::TooManyAttributes { n } => {
                write!(f, "{n} attributes exceed the u16 attribute-id space")
            }
        }
    }
}

impl std::error::Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = TypesError::UnknownMember { member: "zz".into() };
        assert!(e.to_string().contains("zz"));
        let e = TypesError::ArityMismatch { expected: 3, got: 1 };
        assert!(e.to_string().contains('3') && e.to_string().contains('1'));
    }
}
