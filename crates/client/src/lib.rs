//! # mpq-client
//!
//! A blocking TCP client for the mining-predicates wire protocol (see
//! the `mpq-server` crate and DESIGN.md §9).
//!
//! [`Client::connect`] performs the versioned handshake and returns a
//! connected session; [`Client::statement`] runs one SQL statement and
//! returns the engine's own [`StatementOutcome`], reconstructed from
//! the wire — so results compare `==` against in-process execution,
//! which is exactly what the differential oracle tests do.
//!
//! Failures are total and typed ([`ClientError`]): a server-side
//! refusal arrives as [`ClientError::Remote`] with the exact
//! [`ServerError`]; a torn or corrupted frame is [`ClientError::Frame`]
//! (never a panic, never a half-decoded value); a severed connection is
//! [`ClientError::Disconnected`].
//!
//! For tests, [`Client::connect_with`] takes a [`FaultInjector`]: with
//! `conn_slow_loris` armed the client dribbles its next request one
//! byte at a time — the misbehaving peer the server's request-read
//! timeout exists to defend against.
//!
//! For production-shaped callers there is [`ReliableClient`]: it stamps
//! every statement with an exactly-once id (session nonce + sequence),
//! retries retryable failures under a [`RetryPolicy`] (exponential
//! backoff with deterministic jitter, per-attempt timeout, total
//! budget), reconnects automatically, and replays the session's `SET`
//! statements on the fresh connection. Because mutations are stamped,
//! a blind retry after a dropped connection can never double-apply: the
//! server deduplicates and answers with the original outcome.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mpq_engine::{
    EngineError, EngineHealth, FaultInjector, QueryOutcome, StatementId, StatementOutcome,
};
use mpq_server::protocol::{
    decode_frame, encode_frame, FrameError, Request, Response, ServerError,
    DEFAULT_MAX_FRAME_LEN, PROTO_VERSION, PROTO_VERSION_V3,
};
pub use mpq_server::protocol::Notification;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// A socket-level failure.
    Io(String),
    /// The server closed the connection (EOF mid-exchange).
    Disconnected,
    /// A frame arrived torn, corrupted, or undecodable.
    Frame(String),
    /// The server answered with a typed error.
    Remote(ServerError),
    /// The server answered with a message that makes no sense for the
    /// request (protocol bug, not an I/O accident).
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Frame(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(e) => write!(f, "unexpected response: {e}"),
        }
    }
}

impl ClientError {
    /// Whether a retry can possibly succeed — and, for stamped
    /// statements, is guaranteed not to double-apply.
    ///
    /// Retryable: socket failures, disconnects, torn frames (the
    /// response was lost, not the statement's validity), admission
    /// refusals (`Busy`, `QueueTimeout`), a draining server
    /// (`ShuttingDown` — it may restart), transient engine I/O errors
    /// (disk full, or a synchronous-replication ack that timed out),
    /// and failover transients: a read-only refusal (the supervisor is
    /// about to repoint us at the new primary) and a stale-epoch
    /// refusal (we raced a promotion; the retry goes to the winner).
    /// Everything else — SQL errors, budget violations, internal
    /// errors, protocol violations — is fatal: the same statement
    /// would fail the same way again.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Disconnected
                | ClientError::Frame(_)
                | ClientError::Remote(ServerError::Busy { .. })
                | ClientError::Remote(ServerError::QueueTimeout { .. })
                | ClientError::Remote(ServerError::ShuttingDown)
                | ClientError::Remote(ServerError::ReadOnly { .. })
                | ClientError::Remote(ServerError::Engine(EngineError::Io { .. }))
                | ClientError::Remote(ServerError::Engine(EngineError::ReadOnly { .. }))
                | ClientError::Remote(ServerError::Engine(EngineError::StaleEpoch { .. }))
        )
    }

    /// Whether the failure invalidated the connection itself (reconnect
    /// before retrying) rather than just the request. Read-only and
    /// stale-epoch refusals sever on purpose: the node we are talking
    /// to is the wrong one, and the reconnect re-reads the shared
    /// address handle the supervisor repoints at the new primary.
    fn severs_connection(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_)
                | ClientError::Disconnected
                | ClientError::Frame(_)
                | ClientError::Remote(ServerError::ShuttingDown)
                | ClientError::Remote(ServerError::ReadOnly { .. })
                | ClientError::Remote(ServerError::Engine(EngineError::ReadOnly { .. }))
                | ClientError::Remote(ServerError::Engine(EngineError::StaleEpoch { .. }))
        )
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e.to_string())
    }
}

/// A connected, handshaken session with an `mpq-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    session_id: u64,
    faults: Option<Arc<FaultInjector>>,
    /// Server-push [`Notification`]s that arrived interleaved with (or
    /// between) request/response exchanges, in delivery order, waiting
    /// for the application to [`Client::poll_notification`] them.
    notifications: VecDeque<Notification>,
}

impl Client {
    /// Connects to `addr` and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_named(addr, "mpq-client")
    }

    /// Like [`Client::connect`] with a caller-chosen client name (shown
    /// in server-side diagnostics).
    pub fn connect_named(
        addr: impl ToSocketAddrs,
        name: &str,
    ) -> Result<Client, ClientError> {
        Client::connect_inner(addr, name, None)
    }

    /// Test hook: a client that honours connection-level fault
    /// injection (currently `conn_slow_loris`, which dribbles the next
    /// request one byte at a time to provoke the server's read
    /// timeout).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        faults: Arc<FaultInjector>,
    ) -> Result<Client, ClientError> {
        Client::connect_inner(addr, "mpq-client-faulty", Some(faults))
    }

    /// Like [`Client::connect_named`], additionally arming a read
    /// deadline that covers the handshake and every later exchange — a
    /// hung server surfaces as a typed [`ClientError::Io`] instead of a
    /// client that blocks forever.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        name: &str,
        read_timeout: Duration,
    ) -> Result<Client, ClientError> {
        Client::connect_full(addr, name, None, Some(read_timeout))
    }

    fn connect_inner(
        addr: impl ToSocketAddrs,
        name: &str,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Client, ClientError> {
        Client::connect_full(addr, name, faults, None)
    }

    fn connect_full(
        addr: impl ToSocketAddrs,
        name: &str,
        faults: Option<Arc<FaultInjector>>,
        read_timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        // Newest first: a v3 server refuses the v4 hello (and hangs up),
        // so the fallback dials again at v3. One extra round-trip, only
        // against old servers, only at connect time.
        match Client::connect_at(&addr, name, faults.clone(), read_timeout, PROTO_VERSION) {
            Err(ClientError::Remote(ServerError::Protocol { detail }))
                if detail.contains("protocol version") =>
            {
                Client::connect_at(&addr, name, faults, read_timeout, PROTO_VERSION_V3)
            }
            other => other,
        }
    }

    fn connect_at(
        addr: impl ToSocketAddrs,
        name: &str,
        faults: Option<Arc<FaultInjector>>,
        read_timeout: Option<Duration>,
        proto_version: u32,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        let mut client = Client {
            stream,
            buf: Vec::new(),
            session_id: 0,
            faults,
            notifications: VecDeque::new(),
        };
        let resp = client.exchange(&Request::Hello {
            proto_version,
            client: name.to_string(),
        })?;
        match resp {
            Response::Hello { session_id, .. } => {
                client.session_id = session_id;
                Ok(client)
            }
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Hello"))),
        }
    }

    /// The session id the server assigned at handshake.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Executes one SQL statement (query, DDL, INSERT, or session
    /// `SET`) without an exactly-once stamp.
    pub fn statement(&mut self, sql: &str) -> Result<StatementOutcome, ClientError> {
        self.statement_inner(sql, None)
    }

    /// Executes one SQL statement stamped with an exactly-once id: if a
    /// statement with the same id already applied on the server, the
    /// mutation is not re-applied and the original outcome comes back.
    /// This is the safe way to retry an INSERT or DDL whose response
    /// was lost. [`ReliableClient`] manages the ids automatically.
    pub fn statement_stamped(
        &mut self,
        sql: &str,
        id: StatementId,
    ) -> Result<StatementOutcome, ClientError> {
        self.statement_inner(sql, Some(id))
    }

    fn statement_inner(
        &mut self,
        sql: &str,
        stmt_id: Option<StatementId>,
    ) -> Result<StatementOutcome, ClientError> {
        let resp = self.exchange(&Request::Statement { sql: sql.to_string(), stmt_id })?;
        match resp {
            Response::Outcome(o) => Ok(o),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Statement"))),
        }
    }

    /// Executes a statement that must be a SELECT; returns its
    /// [`QueryOutcome`].
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome, ClientError> {
        match self.statement(sql)? {
            StatementOutcome::Query(q) => Ok(q),
            other => Err(ClientError::Unexpected(format!("{other:?} to a SELECT"))),
        }
    }

    /// Fetches the engine's health report (models, envelope state,
    /// recovery report).
    pub fn health(&mut self) -> Result<EngineHealth, ClientError> {
        let resp = self.exchange(&Request::Health)?;
        match resp {
            Response::Health(h) => Ok(h),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Health"))),
        }
    }

    /// Asks the server to begin its graceful shutdown (drain, then
    /// checkpoint). Returns once the server acknowledges.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let resp = self.exchange(&Request::Shutdown)?;
        match resp {
            Response::ShutdownStarted => Ok(()),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Shutdown"))),
        }
    }

    /// Closes the session politely.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        let resp = self.exchange(&Request::Goodbye)?;
        match resp {
            Response::Goodbye => Ok(()),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Goodbye"))),
        }
    }

    fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let frame = encode_frame(&req.encode());
        let slow = self
            .faults
            .as_ref()
            .is_some_and(|f| f.conn_slow_loris_armed());
        if slow {
            // One byte at a time with a pause between: the slow-loris
            // shape the server's request-read deadline cuts off.
            for &b in &frame {
                if self.stream.write_all(&[b]).is_err() {
                    // The server gave up on us — exactly what the fault
                    // is meant to provoke; surface it on the next recv.
                    return Ok(());
                }
                let _ = self.stream.flush();
                std::thread::sleep(Duration::from_millis(10));
            }
            return Ok(());
        }
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Returns the next server-push [`Notification`] if one is ready,
    /// without blocking. Drains whatever bytes the socket already holds
    /// (Notify frames pushed after acked inserts), then answers from
    /// the queue. `Ok(None)` means nothing is pending right now.
    ///
    /// Only meaningful after a `SUBSCRIBE` statement registered a
    /// standing query on this session; other sessions' clients never
    /// receive pushes.
    pub fn poll_notification(&mut self) -> Result<Option<Notification>, ClientError> {
        if let Some(n) = self.notifications.pop_front() {
            return Ok(Some(n));
        }
        // Drain without blocking: flip the socket to non-blocking for
        // the duration of the read loop, restore before returning.
        self.stream.set_nonblocking(true)?;
        let drained = self.drain_ready();
        self.stream.set_nonblocking(false)?;
        drained?;
        Ok(self.notifications.pop_front())
    }

    /// Reads every byte the kernel already buffered (non-blocking mode
    /// must be set by the caller) and files complete Notify frames into
    /// the queue. A non-Notify frame here is a protocol violation — no
    /// request is outstanding.
    fn drain_ready(&mut self) -> Result<(), ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            loop {
                match decode_frame(&self.buf, DEFAULT_MAX_FRAME_LEN) {
                    Ok((payload, consumed)) => {
                        self.buf.drain(..consumed);
                        let resp = Response::decode(&payload)
                            .map_err(|e| ClientError::Frame(e.to_string()))?;
                        match resp {
                            Response::Notify(n) => self.notifications.push_back(n),
                            other => {
                                return Err(ClientError::Unexpected(format!(
                                    "{other:?} with no request outstanding"
                                )))
                            }
                        }
                    }
                    Err(FrameError::Incomplete { .. }) => break,
                    Err(e) => return Err(ClientError::Frame(e.to_string())),
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match decode_frame(&self.buf, DEFAULT_MAX_FRAME_LEN) {
                Ok((payload, consumed)) => {
                    self.buf.drain(..consumed);
                    let resp = Response::decode(&payload)
                        .map_err(|e| ClientError::Frame(e.to_string()))?;
                    // A push frame racing our request/response exchange:
                    // queue it and keep waiting for the real answer.
                    if let Response::Notify(n) = resp {
                        self.notifications.push_back(n);
                        continue;
                    }
                    return Ok(resp);
                }
                Err(FrameError::Incomplete { .. }) => {}
                Err(e) => return Err(ClientError::Frame(e.to_string())),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Retrying client
// ---------------------------------------------------------------------

/// Retry tuning for [`ReliableClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts per statement, first try included.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles on each retry.
    pub initial_backoff: Duration,
    /// Ceiling on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Total wall-clock budget per statement across attempts and
    /// backoffs; when the next backoff would overrun it, the last error
    /// is returned instead.
    pub total_budget: Duration,
    /// Read deadline per attempt (covers the handshake too): a hung
    /// server becomes a failed — retryable — attempt, not a hung
    /// client.
    pub attempt_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            total_budget: Duration::from_secs(30),
            attempt_timeout: Duration::from_secs(10),
        }
    }
}

/// A client with exactly-once retries and automatic reconnection.
///
/// Every statement is stamped with `StatementId { nonce, seq }` — the
/// nonce names this client's logical session across reconnects, the
/// sequence increments per statement. On a retryable failure
/// ([`ClientError::is_retryable`]) the statement is re-sent *with the
/// same id*: the server (and its WAL, across crashes) deduplicates, so
/// an INSERT whose response was lost applies exactly once. On
/// reconnect, the session's accumulated `SET PARALLELISM` / `SET
/// GUARD` statements are replayed first, so session scope survives the
/// server restarting underneath us.
#[derive(Debug)]
pub struct ReliableClient {
    /// Where to (re)connect. Shared so a supervisor that restarts the
    /// server on a fresh port can repoint every writer mid-retry: each
    /// attempt re-reads the current address.
    addr: Arc<RwLock<String>>,
    name: String,
    policy: RetryPolicy,
    client: Option<Client>,
    nonce: u64,
    next_seq: u64,
    rng: u64,
    /// Successful `SET` statements, keyed for supersession, replayed in
    /// order on every reconnect.
    session_sets: Vec<(String, String)>,
    /// Reconnects performed over this client's lifetime (observability
    /// for tests and chaos oracles).
    reconnects: u64,
}

impl ReliableClient {
    /// Creates a client for `addr` with a process-entropy nonce. No
    /// connection is made until the first statement.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> ReliableClient {
        ReliableClient::with_nonce(addr, policy, entropy_nonce())
    }

    /// Like [`ReliableClient::new`] with a caller-chosen session nonce
    /// — deterministic tests and chaos writers pass distinct fixed
    /// nonces so runs are reproducible.
    pub fn with_nonce(
        addr: impl Into<String>,
        policy: RetryPolicy,
        nonce: u64,
    ) -> ReliableClient {
        ReliableClient::with_addr_handle(Arc::new(RwLock::new(addr.into())), policy, nonce)
    }

    /// Like [`ReliableClient::with_nonce`], but connecting to whatever
    /// address the shared handle currently holds. A chaos supervisor
    /// that kills and restarts the server (on a fresh port) writes the
    /// new address into the handle; every writer's in-flight retry loop
    /// picks it up on its next attempt, so a restart looks like one
    /// more retryable failure.
    pub fn with_addr_handle(
        addr: Arc<RwLock<String>>,
        policy: RetryPolicy,
        nonce: u64,
    ) -> ReliableClient {
        ReliableClient {
            addr,
            name: format!("mpq-reliable-{nonce:016x}"),
            policy,
            client: None,
            nonce,
            next_seq: 0,
            rng: nonce | 1,
            session_sets: Vec::new(),
            reconnects: 0,
        }
    }

    /// The session nonce stamped into every statement id.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// How many times this client has (re)connected.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Executes one statement with exactly-once retries. The statement
    /// gets a fresh id; every retry reuses it, so the server applies
    /// the mutation at most once no matter how many attempts it takes.
    pub fn statement(&mut self, sql: &str) -> Result<StatementOutcome, ClientError> {
        let id = StatementId { nonce: self.nonce, seq: self.next_seq };
        self.next_seq += 1;
        let started = Instant::now();
        let mut backoff = self.policy.initial_backoff;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let result = match self.ensure_connected() {
                Ok(c) => c.statement_stamped(sql, id),
                Err(e) => Err(e),
            };
            match result {
                Ok(outcome) => {
                    self.note_set(sql);
                    return Ok(outcome);
                }
                Err(e) => {
                    if e.severs_connection() {
                        self.client = None;
                    }
                    let sleep = self.jittered(backoff);
                    if !e.is_retryable()
                        || attempt >= self.policy.max_attempts
                        || started.elapsed() + sleep > self.policy.total_budget
                    {
                        return Err(e);
                    }
                    std::thread::sleep(sleep);
                    backoff = (backoff * 2).min(self.policy.max_backoff);
                }
            }
        }
    }

    /// Executes a statement that must be a SELECT; returns its
    /// [`QueryOutcome`].
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome, ClientError> {
        match self.statement(sql)? {
            StatementOutcome::Query(q) => Ok(q),
            other => Err(ClientError::Unexpected(format!("{other:?} to a SELECT"))),
        }
    }

    /// Closes the connection politely, if one is open.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.client.take() {
            Some(c) => c.goodbye(),
            None => Ok(()),
        }
    }

    fn ensure_connected(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            let addr =
                self.addr.read().unwrap_or_else(|e| e.into_inner()).clone();
            let mut c = Client::connect_with_timeout(
                addr.as_str(),
                &self.name,
                self.policy.attempt_timeout,
            )?;
            // Session resumption: the server's session died with the
            // old connection, so re-establish its SET state before the
            // caller's statement runs under it.
            for (_, sql) in &self.session_sets {
                c.statement(sql)?;
            }
            self.reconnects += 1;
            self.client = Some(c);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// Records a successful `SET` for replay on reconnect. Later
    /// statements supersede the earlier ones they fully overwrite
    /// (same knob, or any guard once `SET GUARD OFF` lands), keeping
    /// the replay list bounded by the number of distinct knobs.
    fn note_set(&mut self, sql: &str) {
        let up: Vec<String> =
            sql.split_whitespace().map(|t| t.to_ascii_uppercase()).collect();
        if up.first().map(String::as_str) != Some("SET") || up.len() < 2 {
            return;
        }
        let key = match up[1].as_str() {
            "PARALLELISM" => "PARALLELISM".to_string(),
            "ADAPTIVE" => "ADAPTIVE".to_string(),
            "GUARD" => match up.get(2).map(String::as_str) {
                Some("OFF") => {
                    // OFF wipes every budget: earlier guard entries are
                    // fully superseded.
                    self.session_sets.retain(|(k, _)| !k.starts_with("GUARD"));
                    "GUARD OFF".to_string()
                }
                Some(resource) => format!("GUARD {resource}"),
                None => return,
            },
            _ => return,
        };
        self.session_sets.retain(|(k, _)| *k != key);
        self.session_sets.push((key, sql.to_string()));
    }

    /// xorshift64: deterministic per-nonce jitter, so a fixed-seed
    /// chaos run replays the same backoff schedule.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Half the backoff fixed, half uniformly random — decorrelates
    /// competing retriers without ever sleeping longer than `d`.
    fn jittered(&mut self, d: Duration) -> Duration {
        let half = d / 2;
        let span = half.as_nanos().max(1) as u64;
        half + Duration::from_nanos(self.next_rand() % span)
    }
}

/// A nonce unlikely to collide across processes and restarts: wall
/// clock, pid, and a process-local counter, scrambled splitmix64-style.
fn entropy_nonce() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64;
    let mix = t
        ^ ((std::process::id() as u64) << 32)
        ^ COUNTER.fetch_add(1, Ordering::Relaxed).rotate_left(17);
    let mut z = mix.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_split_matches_the_taxonomy() {
        // Retryable: the response (or the server) was lost, or the
        // refusal is load-shaped.
        for e in [
            ClientError::Io("broken pipe".into()),
            ClientError::Disconnected,
            ClientError::Frame("crc".into()),
            ClientError::Remote(ServerError::Busy { in_flight: 8, queued: 64 }),
            ClientError::Remote(ServerError::QueueTimeout { waited_ms: 100 }),
            ClientError::Remote(ServerError::ShuttingDown),
            ClientError::Remote(ServerError::Engine(EngineError::Io {
                detail: "no space left on device".into(),
            })),
        ] {
            assert!(e.is_retryable(), "{e:?}");
        }
        // Fatal: the statement itself is the problem.
        for e in [
            ClientError::Remote(ServerError::Engine(EngineError::Parse {
                at: 0,
                detail: "nope".into(),
            })),
            ClientError::Remote(ServerError::Engine(EngineError::Internal {
                detail: "dedup outcome evicted".into(),
            })),
            ClientError::Remote(ServerError::Engine(EngineError::BudgetExceeded {
                resource: mpq_engine::GuardResource::RowsExamined,
                spent: 2,
                limit: 1,
            })),
            ClientError::Remote(ServerError::Protocol { detail: "bad hello".into() }),
            ClientError::Unexpected("goodbye to a SELECT".into()),
        ] {
            assert!(!e.is_retryable(), "{e:?}");
        }
    }

    #[test]
    fn set_replay_list_is_bounded_and_ordered() {
        let mut rc = ReliableClient::with_nonce("127.0.0.1:1", RetryPolicy::default(), 7);
        rc.note_set("SET PARALLELISM 2");
        rc.note_set("SET PARALLELISM 4");
        rc.note_set("SET GUARD ROWS 100");
        rc.note_set("SET GUARD PAGES 50");
        rc.note_set("SET GUARD ROWS 200");
        // Same-knob statements supersede; different knobs coexist.
        let sqls: Vec<&str> =
            rc.session_sets.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            sqls,
            ["SET PARALLELISM 4", "SET GUARD PAGES 50", "SET GUARD ROWS 200"]
        );
        // OFF wipes every guard entry and stands alone.
        rc.note_set("SET GUARD OFF");
        let sqls: Vec<&str> =
            rc.session_sets.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(sqls, ["SET PARALLELISM 4", "SET GUARD OFF"]);
        // A guard set after OFF replays after it.
        rc.note_set("SET GUARD TIME_MS 1000");
        let sqls: Vec<&str> =
            rc.session_sets.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(sqls, ["SET PARALLELISM 4", "SET GUARD OFF", "SET GUARD TIME_MS 1000"]);
        // Non-SET statements are ignored.
        rc.note_set("SELECT * FROM t");
        assert_eq!(rc.session_sets.len(), 3);
        // ADAPTIVE is its own knob and supersedes itself.
        rc.note_set("SET ADAPTIVE OFF");
        rc.note_set("SET ADAPTIVE ON");
        let sqls: Vec<&str> =
            rc.session_sets.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(
            sqls,
            ["SET PARALLELISM 4", "SET GUARD OFF", "SET GUARD TIME_MS 1000", "SET ADAPTIVE ON"]
        );
    }

    #[test]
    fn statement_ids_are_unique_and_monotonic() {
        let mut rc = ReliableClient::with_nonce("127.0.0.1:1", RetryPolicy::default(), 42);
        // The address points nowhere: every attempt fails with a
        // retryable connect error, consuming the budget, but each
        // statement still burns exactly one sequence number.
        let fast = RetryPolicy {
            max_attempts: 2,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            total_budget: Duration::from_millis(50),
            attempt_timeout: Duration::from_millis(50),
        };
        rc.policy = fast;
        assert!(rc.statement("SELECT 1").is_err());
        assert!(rc.statement("SELECT 2").is_err());
        assert_eq!(rc.next_seq, 2);
        assert_eq!(rc.nonce(), 42);
    }

    #[test]
    fn jitter_is_deterministic_per_nonce() {
        let p = RetryPolicy::default();
        let mut a = ReliableClient::with_nonce("x:1", p.clone(), 99);
        let mut b = ReliableClient::with_nonce("x:1", p, 99);
        let d = Duration::from_millis(100);
        for _ in 0..8 {
            assert_eq!(a.jittered(d), b.jittered(d));
        }
        // And bounded: in [d/2, d).
        for _ in 0..64 {
            let j = a.jittered(d);
            assert!(j >= d / 2 && j < d, "{j:?}");
        }
    }
}
