//! The SQL-first workflow (§2.2's world): load a CSV, register it as a
//! table, train a model with `CREATE MINING MODEL`, and query it with a
//! mining predicate — all through the engine's SQL surface.
//!
//! ```sh
//! cargo run --example sql_workflow
//! ```

use mining_predicates::prelude::*;
use mpq_engine::StatementOutcome;
use mpq_types::{load_csv, CsvData, CsvOptions, DiscretizeMethod};
use std::fmt::Write as _;

fn main() {
    // 1. A raw CSV (in-memory stand-in for a file): telecom churn.
    let mut csv = String::from("minutes,intl_plan,support_calls,churned\n");
    for i in 0..30_000u32 {
        let minutes = 50 + (i * 37) % 500;
        let intl = if i % 5 == 0 { "yes" } else { "no" };
        let calls = (i * 13) % 7;
        let churned = if calls >= 5 && minutes < 200 { "yes" } else { "no" };
        writeln!(csv, "{minutes},{intl},{calls},{churned}").expect("string write");
    }

    // 2. Load with supervised discretization on the label.
    let opts = CsvOptions {
        label_column: None, // keep churned as a data column; DDL will use it
        discretize: DiscretizeMethod::EqualFrequency { bins: 6 },
        ..Default::default()
    };
    let CsvData::Unlabeled(data) = load_csv(&csv, &opts).expect("valid csv") else {
        panic!("no label requested")
    };
    println!("loaded {} rows over {} columns", data.len(), data.schema().len());

    // 3. Register the table and train via DDL.
    let mut catalog = Catalog::new();
    catalog.add_table(Table::from_dataset("subscribers", &data)).expect("fresh");
    let engine = Engine::new(catalog);
    let out = engine
        .execute_sql(
            "CREATE MINING MODEL churn_risk ON subscribers PREDICT churned USING decision_tree",
        )
        .expect("training succeeds");
    if let StatementOutcome::ModelCreated { name, n_classes, .. } = out {
        println!("trained model {name:?} with {n_classes} classes");
    }

    // 4. Tune indexes for the envelope workload, then query.
    let schema = engine.catalog().table(0).table.schema().clone();
    let envs: Vec<Expr> = engine.catalog().model(0).envelopes
        .iter()
        .map(|e| mpq_engine::envelope_to_expr(&schema, e).normalize(&schema))
        .collect();
    let opt_opts = engine.options();
    tune_indexes(&mut engine.catalog_mut(), 0, &envs, 8, &opt_opts);

    let sql = "SELECT * FROM subscribers WHERE PREDICT(churn_risk) = 'yes' AND intl_plan = 'no'";
    println!("\nquery: {sql}\n");
    let optimized = engine.query(sql).expect("valid query");
    println!("{}", optimized.plan);
    println!(
        "at-risk subscribers: {} | pages: {} | model invocations: {}",
        optimized.metrics.output_rows,
        optimized.metrics.total_pages(),
        optimized.metrics.model_invocations
    );

    engine.set_use_envelopes(false);
    let baseline = engine.query(sql).expect("valid query");
    assert_eq!(optimized.rows, baseline.rows);
    println!(
        "\nblack-box baseline: {} pages, {} model invocations — the envelope cut \
         model invocations {:.0}x (and enables index plans when the class is rarer)",
        baseline.metrics.total_pages(),
        baseline.metrics.model_invocations,
        baseline.metrics.model_invocations as f64
            / optimized.metrics.model_invocations.max(1) as f64
    );
}
