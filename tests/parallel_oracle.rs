//! Differential oracle for the partition-parallel executor: for
//! proptest-generated tables, models (all five algorithms) and query
//! predicates, the parallel executor must agree with the serial
//! reference executor on row sets, deterministic metric totals, guard
//! headroom, and guard-breach classification — at every degree of
//! parallelism, and also under injected scorer panics and index faults.

use mining_predicates::prelude::*;
use mpq_engine::{execute_opts, Atom, AtomPred, ExecMetrics, ExecOptions, StatementOutcome};
use mpq_types::MemberSet;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const DOPS: [usize; 4] = [1, 2, 4, 8];

/// Three-attribute schema: two feature columns plus a label column the
/// classification models train on.
fn schema() -> Schema {
    Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2", "a3"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1", "b2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .unwrap()
}

/// All-ordered companion schema: Gaussian-mixture clustering requires
/// every attribute binned, which a categorical label column forbids —
/// so the GMM trains on its own numeric table.
fn numeric_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()),
        Attribute::new("y", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
    ])
    .unwrap()
}

/// Builds an engine over the generated rows with tiny (256-byte) pages
/// — so even small tables span many pages and split into many morsels —
/// plus single-column indexes, and trains one model per algorithm:
/// tree / bayes / rules / k-means on table 0 (`t`, categorical with a
/// label column), GMM on table 1 (`tn`, all binned).
///
/// A deterministic prefix covers the full attribute cross product so
/// every training set contains both labels and every member, whatever
/// proptest generates.
fn engine_with_models(extra: &[(u16, u16)]) -> Engine {
    let mut ds = Dataset::new(schema());
    let mut dsn = Dataset::new(numeric_schema());
    for a in 0..4u16 {
        for b in 0..3u16 {
            for label in 0..2u16 {
                ds.push_encoded(&[a, b, label]).unwrap();
            }
            dsn.push_encoded(&[a, b]).unwrap();
        }
    }
    for &(a, b) in extra {
        // Deterministic concept so classifiers learn something real.
        let label = u16::from(a >= 2 && b != 1);
        ds.push_encoded(&[a, b, label]).unwrap();
        dsn.push_encoded(&[a, b]).unwrap();
    }

    let mut cat = Catalog::new();
    let t = cat.add_table(Table::with_page_bytes("t", &ds, 256)).unwrap();
    cat.create_index(t, &[AttrId(0)]);
    cat.create_index(t, &[AttrId(1)]);
    let tn = cat.add_table(Table::with_page_bytes("tn", &dsn, 256)).unwrap();
    cat.create_index(tn, &[AttrId(0)]);
    let e = Engine::new(cat);

    for ddl in [
        "CREATE MINING MODEL m_tree ON t PREDICT label USING decision_tree",
        "CREATE MINING MODEL m_bayes ON t PREDICT label USING bayes",
        "CREATE MINING MODEL m_rules ON t PREDICT label USING rules",
        "CREATE MINING MODEL m_km ON t WITH 2 CLUSTERS USING kmeans",
        "CREATE MINING MODEL m_gmm ON tn WITH 2 CLUSTERS USING gmm",
    ] {
        let out = e.execute_sql(ddl).expect(ddl);
        assert!(matches!(out, StatementOutcome::ModelCreated { .. }), "{ddl}");
    }
    e
}

/// The query corpus: for each of the five models, mining predicates
/// alone and mixed with column atoms — exercising constant scans, index
/// seeks, index unions and full scans with black-box residuals.
fn query_corpus() -> Vec<(usize, Expr)> {
    let mut exprs = Vec::new();
    // Models 0..4 (tree, bayes, rules, k-means) live on table 0; the
    // GMM (model 4) lives on the all-binned table 1.
    for model in 0..5usize {
        let table = usize::from(model == 4);
        for class in 0..2u16 {
            exprs.push((table, Expr::Mining(MiningPred::ClassEq { model, class: ClassId(class) })));
        }
        exprs.push((
            table,
            Expr::And(vec![
                Expr::Mining(MiningPred::ClassEq { model, class: ClassId(1) }),
                Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(2) }),
            ]),
        ));
        exprs.push((
            table,
            Expr::Or(vec![
                Expr::Mining(MiningPred::ClassEq { model, class: ClassId(0) }),
                Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(1) }),
            ]),
        ));
    }
    exprs.push((0, Expr::Const(true)));
    exprs.push((0, Expr::Const(false)));
    exprs.push((0, Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 1, hi: 2 } })));
    exprs.push((
        0,
        Expr::Or(vec![
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::In(MemberSet::of(3, [0, 2])) }),
        ]),
    ));
    exprs.push((0, Expr::Not(Box::new(Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(3) })))));
    exprs
}

/// Asserts the parallel result is indistinguishable from the serial
/// one: identical rows and identical deterministic metrics. Wall-clock
/// fields (`elapsed`, `guard.time_remaining_ms`) are the only fields
/// allowed to differ, so the comparison is field-by-field.
fn assert_matches_serial(serial: &mpq_engine::ExecResult, parallel: &mpq_engine::ExecResult, ctx: &str) {
    assert_eq!(parallel.rows, serial.rows, "row set diverged: {ctx}");
    let (s, p): (&ExecMetrics, &ExecMetrics) = (&serial.metrics, &parallel.metrics);
    assert_eq!(p.heap_pages_read, s.heap_pages_read, "heap pages: {ctx}");
    assert_eq!(p.index_pages_read, s.index_pages_read, "index pages: {ctx}");
    assert_eq!(p.rows_examined, s.rows_examined, "rows examined: {ctx}");
    assert_eq!(p.model_invocations, s.model_invocations, "invocations: {ctx}");
    assert_eq!(p.output_rows, s.output_rows, "output rows: {ctx}");
    assert_eq!(p.index_fallback, s.index_fallback, "fallback flag: {ctx}");
    assert_eq!(p.guard.rows_remaining, s.guard.rows_remaining, "rows headroom: {ctx}");
    assert_eq!(p.guard.pages_remaining, s.guard.pages_remaining, "pages headroom: {ctx}");
    assert_eq!(
        p.guard.model_invocations_remaining, s.guard.model_invocations_remaining,
        "invocation headroom: {ctx}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole guarantee: every query in the corpus, over all five
    /// model algorithms, returns the same rows and metrics at
    /// parallelism 1, 2, 4 and 8 as the serial reference executor —
    /// with envelope optimization both on and off.
    #[test]
    fn parallel_execution_matches_serial(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..120),
    ) {
        let e = engine_with_models(&extra);
        for use_envelopes in [true, false] {
            e.set_use_envelopes(use_envelopes);
            for (table, expr) in query_corpus() {
                let plan = e.plan_predicate(table, expr.clone());
                let catalog = e.catalog();
                let serial = execute_guarded(&plan, &catalog, QueryGuard::unlimited())
                    .expect("unlimited serial run cannot fail");
                for dop in DOPS {
                    let par = execute_opts(
                        &plan,
                        &catalog,
                        QueryGuard::unlimited(),
                        &ExecOptions::with_parallelism(dop),
                    )
                    .expect("unlimited parallel run cannot fail");
                    assert_matches_serial(
                        &serial,
                        &par,
                        &format!("dop {dop}, envelopes {use_envelopes}, expr {expr:?}"),
                    );
                }
            }
        }
    }

    /// Guard parity under a generated single-resource budget: when the
    /// serial executor breaches, every parallel degree breaches with
    /// the *same* resource classification; when the serial executor
    /// succeeds, the parallel executors succeed with identical
    /// headroom. (Budgets are single-resource because two resources
    /// crossing their limits on the same row are classified in check
    /// order serially but in charge order in parallel.)
    #[test]
    fn guard_breach_classification_matches_serial(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 40..100),
        rows_limit in 1u64..200,
        inv_limit in 1u64..200,
        pages_limit in 0u64..80,
    ) {
        let e = engine_with_models(&extra);
        e.set_use_envelopes(false); // full scan + black-box residual
        let expr = Expr::Mining(MiningPred::ClassEq { model: 1, class: ClassId(1) });
        let plan = e.plan_predicate(0, expr);
        let catalog = e.catalog();

        let guards = [
            QueryGuard::default().with_max_rows_examined(rows_limit),
            QueryGuard::default().with_max_model_invocations(inv_limit),
            QueryGuard::default().with_max_pages(pages_limit),
        ];
        for guard in guards {
            let serial = execute_guarded(&plan, &catalog, guard);
            for dop in DOPS {
                let par = execute_opts(
                    &plan,
                    &catalog,
                    guard,
                    &ExecOptions::with_parallelism(dop),
                );
                match (&serial, &par) {
                    (Ok(s), Ok(p)) => assert_matches_serial(s, p, &format!("dop {dop}")),
                    (
                        Err(EngineError::BudgetExceeded { resource: rs, limit: ls, .. }),
                        Err(EngineError::BudgetExceeded { resource: rp, limit: lp, spent }),
                    ) => {
                        prop_assert_eq!(rp, rs, "breach resource diverged at dop {}", dop);
                        prop_assert_eq!(lp, ls, "breach limit diverged at dop {}", dop);
                        // Parallel charging may overshoot the limit by
                        // in-flight work, but never under-reports.
                        prop_assert!(spent > lp, "breach must report spent {} > limit {}", spent, lp);
                    }
                    (s, p) => {
                        return Err(TestCaseError::fail(format!(
                            "outcome diverged at dop {dop}: serial {s:?} vs parallel {p:?}"
                        )));
                    }
                }
            }
        }
    }

    /// Fault parity: with a scorer panic armed, both executors surface
    /// a typed internal error; with an index-probe fault armed, both
    /// fall back to the identical full-scan row set. The engine stays
    /// usable after each fault clears.
    #[test]
    fn fault_injection_parity(
        extra in proptest::collection::vec((0u16..4, 0u16..3), 30..80),
        dop in 2usize..9,
    ) {
        let e = engine_with_models(&extra);
        let sql = "SELECT * FROM t WHERE PREDICT(m_bayes) = 'pos'";
        let healthy = e.query(sql).expect("healthy query").rows;

        // Scorer panic: typed Internal from both executors.
        e.fault_injector().set_scorer_panic(true);
        for p in [1, dop] {
            e.set_parallelism(p);
            match e.query(sql) {
                Err(EngineError::Internal { detail }) => {
                    prop_assert!(detail.contains("scorer panicked"), "dop {}: {}", p, detail);
                }
                other => return Err(TestCaseError::fail(format!(
                    "dop {p}: expected Internal, got {other:?}"
                ))),
            }
        }
        e.fault_injector().reset();

        // Index fault: identical fallback row set from both executors.
        e.fault_injector().set_index_probe_failure(true);
        let mut fallback_rows = Vec::new();
        for p in [1, dop] {
            e.set_parallelism(p);
            let out = e.query(sql).expect("fallback must not error");
            fallback_rows.push(out.rows);
        }
        prop_assert_eq!(&fallback_rows[0], &fallback_rows[1], "fallback row sets diverged");
        e.fault_injector().reset();

        e.set_parallelism(dop);
        prop_assert_eq!(e.query(sql).expect("usable after faults").rows, healthy);
    }
}

/// A deterministic classifier that counts every `predict` call — the
/// probe for the no-stray-work guarantee.
struct CountingModel {
    schema: Schema,
    calls: AtomicU64,
}

impl Classifier for CountingModel {
    fn schema(&self) -> &Schema {
        &self.schema
    }
    fn n_classes(&self) -> usize {
        2
    }
    fn class_name(&self, c: ClassId) -> &str {
        if c.0 == 0 {
            "even"
        } else {
            "odd"
        }
    }
    fn predict(&self, row: &mpq_types::Row) -> ClassId {
        self.calls.fetch_add(1, Ordering::Relaxed);
        ClassId((row[0] + row[1]) % 2)
    }
}

impl EnvelopeProvider for CountingModel {
    fn envelope(&self, class: ClassId, _opts: &DeriveOptions) -> Envelope {
        Envelope::trivial(class, &self.schema)
    }
}

/// Satellite: a mid-scan invocation-budget breach must cancel the
/// remaining morsels promptly. The model counts its invocations; after
/// `BudgetExceeded` the count may exceed the limit only by in-flight
/// work bounded by the worker count — not by the rest of the table.
#[test]
fn breach_cancels_remaining_morsels_without_stray_work() {
    let extra: Vec<(u16, u16)> = (0..400u16).map(|i| (i % 4, (i / 4) % 3)).collect();
    let e = engine_with_models(&extra);
    let counter = Arc::new(CountingModel { schema: schema(), calls: AtomicU64::new(0) });
    e.register_model("counter", counter.clone(), DeriveOptions::default()).unwrap();
    e.set_use_envelopes(false); // every examined row invokes the model

    let n_rows = e.catalog().table(0).table.n_rows() as u64;
    let limit = 8u64;
    let dop = 4usize;
    assert!(n_rows > 4 * limit, "table must dwarf the budget for the test to bite");

    let plan = e.plan_predicate(0, Expr::Mining(MiningPred::ClassEq { model: 5, class: ClassId(0) }));
    let catalog = e.catalog();
    counter.calls.store(0, Ordering::Relaxed);
    let err = execute_opts(
        &plan,
        &catalog,
        QueryGuard::default().with_max_model_invocations(limit),
        &ExecOptions::with_parallelism(dop),
    )
    .expect_err("budget must trip");
    match err {
        EngineError::BudgetExceeded { resource, spent, .. } => {
            assert_eq!(resource, GuardResource::ModelInvocations);
            assert!(spent > limit);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    let calls = counter.calls.load(Ordering::Relaxed);
    // Each worker can have at most one evaluation in flight past the
    // breach, plus one racing the cancellation flag.
    let slack = 2 * dop as u64;
    assert!(
        calls <= limit + slack,
        "stray work after breach: {calls} invocations for a budget of {limit} (slack {slack}); \
         cancellation must stop the remaining morsels"
    );
    assert!(calls > 0, "the scan must have started");

    // Identical accounting on success: serial and parallel agree on
    // the headroom a generous budget leaves.
    let generous = QueryGuard::default()
        .with_max_rows_examined(10 * n_rows)
        .with_max_model_invocations(10 * n_rows)
        .with_max_pages(100_000);
    let serial = execute_guarded(&plan, &catalog, generous).unwrap();
    let par = execute_opts(&plan, &catalog, generous, &ExecOptions::with_parallelism(dop)).unwrap();
    assert_matches_serial(&serial, &par, "counting-model headroom");
}
