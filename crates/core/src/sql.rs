//! Rendering envelopes as SQL predicates (the model-to-SQL surface).
//!
//! Derived envelopes are AND/OR expressions of simple predicates on data
//! columns (§1); this module prints them in SQL against the *original*
//! value space: binned dimensions become range comparisons on the cut
//! points, categorical dimensions become `=` / `IN` lists.

use crate::envelope::Envelope;
use crate::region::{DimSet, Region};
use mpq_types::Schema;

/// Renders a region as a SQL conjunction, e.g.
/// `(lowerBP > 91 AND age <= 63 AND overweight IN ('no','yes'))`.
/// Unconstrained dimensions are omitted; a fully unconstrained region
/// renders as `1=1`.
pub fn region_to_sql(schema: &Schema, region: &Region) -> String {
    let mut conjuncts = Vec::new();
    for (id, attr) in schema.iter() {
        let ds = region.dim(id.index());
        let card = attr.domain.cardinality();
        if ds.is_full(card) {
            continue;
        }
        let name = quote_ident(&attr.name);
        match ds {
            DimSet::Range { lo, hi } => {
                let (lo_bound, _) = attr.domain.bin_interval(*lo).expect("ordered dim");
                let (_, hi_bound) = attr.domain.bin_interval(*hi).expect("ordered dim");
                let mut parts = Vec::new();
                if lo_bound.is_finite() {
                    parts.push(format!("{name} > {}", fmt_num(lo_bound)));
                }
                if hi_bound.is_finite() {
                    parts.push(format!("{name} <= {}", fmt_num(hi_bound)));
                }
                match parts.len() {
                    0 => {} // both ends unbounded: the range is full, but
                    // is_full already skipped that; a single unbounded bin
                    // domain lands here and constrains nothing.
                    1 => conjuncts.push(parts.pop().expect("one part")),
                    _ => conjuncts.push(parts.join(" AND ")),
                }
            }
            DimSet::Set(s) => {
                let members: Vec<String> =
                    s.iter().map(|m| quote_str(&attr.domain.member_label(m))).collect();
                if members.len() == 1 {
                    conjuncts.push(format!("{name} = {}", members[0]));
                } else {
                    conjuncts.push(format!("{name} IN ({})", members.join(", ")));
                }
            }
        }
    }
    if conjuncts.is_empty() {
        "1=1".to_string()
    } else {
        conjuncts.join(" AND ")
    }
}

/// Renders an envelope as a SQL disjunction; the empty envelope renders
/// as the unsatisfiable `1=0` (a well-behaved optimizer turns this into a
/// constant scan).
pub fn envelope_to_sql(schema: &Schema, env: &Envelope) -> String {
    if env.regions.is_empty() {
        return "1=0".to_string();
    }
    if env.regions.len() == 1 {
        return region_to_sql(schema, &env.regions[0]);
    }
    env.regions
        .iter()
        .map(|r| format!("({})", region_to_sql(schema, r)))
        .collect::<Vec<_>>()
        .join(" OR ")
}

fn quote_ident(name: &str) -> String {
    if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    {
        name.to_string()
    } else {
        format!("[{name}]")
    }
}

fn quote_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::DeriveStats;
    use crate::region::{range_region, DimSet};
    use mpq_types::{AttrDomain, AttrId, Attribute, ClassId, MemberSet};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("lowerBP", AttrDomain::binned(vec![91.0]).unwrap()),
            Attribute::new("age", AttrDomain::binned(vec![30.0, 63.0]).unwrap()),
            Attribute::new("overweight", AttrDomain::categorical(["no", "yes"])),
        ])
        .unwrap()
    }

    #[test]
    fn full_region_is_tautology() {
        let s = schema();
        assert_eq!(region_to_sql(&s, &Region::full(&s)), "1=1");
    }

    #[test]
    fn range_rendering_uses_cut_points() {
        let s = schema();
        // age in members 1..=1 = (30, 63]
        let r = range_region(&s, AttrId(1), 1, 1);
        assert_eq!(region_to_sql(&s, &r), "age > 30 AND age <= 63");
        // age in members 0..=1 = (-inf, 63]
        let r = range_region(&s, AttrId(1), 0, 1);
        assert_eq!(region_to_sql(&s, &r), "age <= 63");
        // age in members 2..=2 = (63, inf)
        let r = range_region(&s, AttrId(1), 2, 2);
        assert_eq!(region_to_sql(&s, &r), "age > 63");
    }

    #[test]
    fn categorical_rendering() {
        let s = schema();
        let one = Region::full(&s).with_dim(2, DimSet::Set(MemberSet::of(2, [1])));
        assert_eq!(region_to_sql(&s, &one), "overweight = 'yes'");
        let both_conj = Region::full(&s)
            .with_dim(0, DimSet::Range { lo: 1, hi: 1 })
            .with_dim(2, DimSet::Set(MemberSet::of(2, [0])));
        assert_eq!(region_to_sql(&s, &both_conj), "lowerBP > 91 AND overweight = 'no'");
    }

    #[test]
    fn paper_figure1_c1_envelope_sql() {
        // (lowerBP > 91 AND age > 63 AND overweight = 'yes') OR
        // (lowerBP <= 91 AND ...) — structure check with 2 disjuncts.
        let s = schema();
        let r1 = Region::full(&s)
            .with_dim(0, DimSet::Range { lo: 1, hi: 1 })
            .with_dim(1, DimSet::Range { lo: 2, hi: 2 })
            .with_dim(2, DimSet::Set(MemberSet::of(2, [1])));
        let r2 = Region::full(&s).with_dim(0, DimSet::Range { lo: 0, hi: 0 });
        let env = Envelope {
            class: ClassId(0),
            regions: vec![r1, r2],
            exact: true,
            stats: DeriveStats::default(),
            trace: Vec::new(),
        };
        assert_eq!(
            envelope_to_sql(&s, &env),
            "(lowerBP > 91 AND age > 63 AND overweight = 'yes') OR (lowerBP <= 91)"
        );
    }

    #[test]
    fn empty_envelope_is_false() {
        let s = schema();
        assert_eq!(envelope_to_sql(&s, &Envelope::never(ClassId(0))), "1=0");
    }

    #[test]
    fn single_region_envelope_has_no_outer_parens() {
        let s = schema();
        let env = Envelope {
            class: ClassId(0),
            regions: vec![range_region(&s, AttrId(0), 0, 0)],
            exact: true,
            stats: DeriveStats::default(),
            trace: Vec::new(),
        };
        assert_eq!(envelope_to_sql(&s, &env), "lowerBP <= 91");
    }

    #[test]
    fn identifiers_and_strings_are_quoted_when_needed() {
        assert_eq!(quote_ident("lower_bp2"), "lower_bp2");
        assert_eq!(quote_ident("weird col"), "[weird col]");
        assert_eq!(quote_ident("2fast"), "[2fast]");
        assert_eq!(quote_str("o'brien"), "'o''brien'");
        assert_eq!(fmt_num(63.0), "63");
        assert_eq!(fmt_num(63.5), "63.5");
    }
}
