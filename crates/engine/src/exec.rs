//! Plan execution with honest cost accounting.

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::expr::Expr;
use crate::guard::{GuardHeadroom, GuardState, QueryGuard};
use crate::optimizer::{AccessPath, Plan};
use crate::table::RowId;
use std::collections::HashSet;
use std::time::Instant;

/// Metrics observed while executing a plan — the quantities the paper's
/// experiments compare (pages touched drive the running-time reductions;
/// model invocations measure the black-box "extract and mine" overhead).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecMetrics {
    /// Heap pages read.
    pub heap_pages_read: u64,
    /// Index pages read (postings traffic).
    pub index_pages_read: u64,
    /// Rows fetched and tested against the residual predicate.
    pub rows_examined: u64,
    /// Black-box model applications performed.
    pub model_invocations: u64,
    /// Rows in the result.
    pub output_rows: u64,
    /// Wall-clock execution time.
    pub elapsed: std::time::Duration,
    /// Budget headroom left when execution finished (all `None` when
    /// the query ran with an unlimited [`QueryGuard`]).
    pub guard: GuardHeadroom,
    /// True when an index fault forced the executor to abandon the
    /// chosen index path and fall back to a full scan with the complete
    /// residual predicate (same row set, more pages).
    pub index_fallback: bool,
}

impl ExecMetrics {
    /// Total pages of any kind.
    pub fn total_pages(&self) -> u64 {
        self.heap_pages_read + self.index_pages_read
    }
}

/// Result of executing a plan: matching row ids plus metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Row ids satisfying the predicate, ascending.
    pub rows: Vec<RowId>,
    /// Observed metrics.
    pub metrics: ExecMetrics,
}

/// Executes `plan` against the catalog with no resource limits.
///
/// Equivalent to [`execute_guarded`] with [`QueryGuard::unlimited`]; an
/// unlimited guard can never trip, so this cannot fail.
pub fn execute(plan: &Plan, catalog: &Catalog) -> ExecResult {
    execute_guarded(plan, catalog, QueryGuard::unlimited())
        .expect("unlimited guard cannot trip")
}

/// Executes `plan` against the catalog under `guard`.
///
/// The guard is checked cooperatively: after every row examined and
/// after every page accounted. A breach aborts with
/// [`EngineError::BudgetExceeded`]; no partial row set is returned.
///
/// If the catalog's [`crate::FaultInjector`] has index-probe failure
/// armed, index plans degrade to a full scan evaluating the complete
/// residual predicate — the row set is identical (the residual is the
/// whole predicate; index seeks only pre-filter), only the page counts
/// grow. The fallback is flagged in [`ExecMetrics::index_fallback`].
pub fn execute_guarded(
    plan: &Plan,
    catalog: &Catalog,
    guard: QueryGuard,
) -> Result<ExecResult, EngineError> {
    let start = Instant::now();
    let gs = GuardState::new(guard);
    let entry = catalog.table(plan.table);
    let table = &entry.table;
    let mut m = ExecMetrics::default();
    let mut out = Vec::new();
    let mut row_buf = vec![0u16; table.schema().len()];

    let mut test_pred = |row: RowId,
                         pred: &Expr,
                         m: &mut ExecMetrics,
                         out: &mut Vec<RowId>|
     -> Result<(), EngineError> {
        for (d, cell) in row_buf.iter_mut().enumerate() {
            *cell = table.cell(row, d);
        }
        m.rows_examined += 1;
        if pred.eval(&row_buf, catalog, &mut m.model_invocations) {
            out.push(row);
        }
        gs.check(m)
    };
    let residual = &plan.residual;

    // Injected index failure: degrade to a full scan with the complete
    // residual — sound because `plan.residual` is the whole predicate.
    m.index_fallback = catalog.faults().index_probe_failure_armed()
        && matches!(plan.access, AccessPath::IndexSeek(_) | AccessPath::IndexUnion(_));
    let access = if m.index_fallback { &AccessPath::FullScan } else { &plan.access };

    match access {
        AccessPath::ConstantScan => {}
        AccessPath::FullScan => {
            for row in 0..table.n_rows() as RowId {
                // Progressive page accounting so a pages budget trips
                // mid-scan instead of after reading the whole heap.
                m.heap_pages_read = table.page_of(row) as u64 + 1;
                test_pred(row, residual, &mut m, &mut out)?;
            }
            m.heap_pages_read = table.n_pages() as u64;
        }
        AccessPath::IndexSeek(seek) => {
            let ix = &entry.indexes[seek.index];
            let rows = ix.probe(&seek.preds);
            m.index_pages_read = index_pages(rows.len(), table.rows_per_page());
            m.heap_pages_read = distinct_pages(&rows, table);
            gs.check(&m)?;
            for row in rows {
                test_pred(row, residual, &mut m, &mut out)?;
            }
        }
        AccessPath::IndexUnion(seeks) => {
            // Tag each fetched row with whether *some* exact seek
            // produced it: those rows already satisfy the union's OR and
            // only need the `skip_or` residual (other conjuncts) — the
            // covering-index fast path that makes big-DNF envelopes
            // cheap to verify.
            let mut union: Vec<(RowId, bool)> = Vec::new();
            for seek in seeks {
                let ix = &entry.indexes[seek.index];
                let rows = ix.probe(&seek.preds);
                m.index_pages_read += index_pages(rows.len(), table.rows_per_page());
                gs.check(&m)?;
                union.extend(rows.into_iter().map(|r| (r, seek.exact)));
            }
            union.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            union.dedup_by_key(|(r, _)| *r); // keeps the exact=true copy
            m.heap_pages_read =
                distinct_pages_iter(union.iter().map(|(r, _)| *r), table);
            gs.check(&m)?;
            let skip_or = plan.skip_or.as_ref();
            for (row, exact) in union {
                match (exact, skip_or) {
                    (true, Some(rest)) => test_pred(row, rest, &mut m, &mut out)?,
                    _ => test_pred(row, residual, &mut m, &mut out)?,
                }
            }
        }
    }

    // Final check covers paths that examined nothing (e.g. constant
    // scans past the deadline).
    gs.check(&m)?;
    m.output_rows = out.len() as u64;
    m.elapsed = start.elapsed();
    m.guard = gs.headroom(&m);
    Ok(ExecResult { rows: out, metrics: m })
}

fn index_pages(postings: usize, rows_per_page: usize) -> u64 {
    // Postings are dense u32s; a page holds ~4x as many entries as rows.
    (postings.div_ceil((rows_per_page * 4).max(1)).max(1)) as u64
}

fn distinct_pages(rows: &[RowId], table: &crate::table::Table) -> u64 {
    distinct_pages_iter(rows.iter().copied(), table)
}

fn distinct_pages_iter(rows: impl Iterator<Item = RowId>, table: &crate::table::Table) -> u64 {
    let mut pages: HashSet<usize> = HashSet::new();
    for r in rows {
        pages.insert(table.page_of(r));
    }
    pages.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Atom, AtomPred};
    use crate::optimizer::{choose_plan, OptimizerOptions};
    use crate::table::Table;
    use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, Schema};

    /// 100k rows; the rare member (0.1%) occupies the first 100 rows so
    /// its heap pages are genuinely few.
    fn catalog() -> Catalog {
        let schema = Schema::new(vec![Attribute::new(
            "a",
            AttrDomain::categorical(["rare", "common"]),
        )])
        .unwrap();
        let rows = (0..100_000).map(|i| vec![u16::from(i >= 100)]);
        let ds = Dataset::from_rows(schema, rows).unwrap();
        let mut cat = Catalog::new();
        let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.create_index(t, &[AttrId(0)]);
        cat
    }

    fn run(e: Expr, cat: &Catalog) -> ExecResult {
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, cat, &OptimizerOptions::default());
        execute(&plan, cat)
    }

    #[test]
    fn full_scan_reads_all_pages_and_filters() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) }); // 99%
        let r = run(e, &cat);
        assert_eq!(r.rows.len(), 99_900);
        assert_eq!(r.metrics.rows_examined, 100_000);
        assert_eq!(r.metrics.heap_pages_read, cat.table(0).table.n_pages() as u64);
    }

    #[test]
    fn index_seek_touches_few_pages() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }); // 1%
        let r = run(e, &cat);
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.metrics.rows_examined, 100, "only matched rows fetched");
        assert!(
            r.metrics.heap_pages_read < cat.table(0).table.n_pages() as u64,
            "index fetch must touch fewer pages than a scan"
        );
        assert!(r.metrics.index_pages_read >= 1);
    }

    #[test]
    fn constant_scan_touches_nothing() {
        let cat = catalog();
        let r = run(Expr::Const(false), &cat);
        assert!(r.rows.is_empty());
        assert_eq!(r.metrics.total_pages(), 0);
        assert_eq!(r.metrics.rows_examined, 0);
    }

    #[test]
    fn index_union_dedupes_rows() {
        let cat = catalog();
        // a = rare OR a = rare (duplicate seeks) must not double-count.
        let e = Expr::Or(vec![
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
        ]);
        // Bypass normalize-dedup on purpose: hand the raw OR to the
        // optimizer.
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let r = execute(&plan, &cat);
        assert_eq!(r.rows.len(), 100);
        assert!(r.rows.windows(2).all(|w| w[0] < w[1]), "sorted, deduped row ids");
    }

    #[test]
    fn guard_trips_row_budget_without_partial_result() {
        use crate::error::GuardResource;
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let plan = Plan { access: AccessPath::FullScan, ..plan };
        let guard = QueryGuard::default().with_max_rows_examined(10);
        match execute_guarded(&plan, &cat, guard) {
            Err(crate::EngineError::BudgetExceeded { resource, spent, limit }) => {
                assert_eq!(resource, GuardResource::RowsExamined);
                assert_eq!(limit, 10);
                assert_eq!(spent, 11, "detected on the first row past the limit");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn guard_headroom_recorded_on_success() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        let guard = QueryGuard::default().with_max_rows_examined(1_000);
        let r = execute_guarded(&plan, &cat, guard).unwrap();
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.metrics.guard.rows_remaining, Some(900));
        assert_eq!(r.metrics.guard.pages_remaining, None, "pages unlimited");
    }

    #[test]
    fn index_fault_falls_back_to_scan_with_identical_rows() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        assert!(
            matches!(plan.access, AccessPath::IndexSeek(_) | AccessPath::IndexUnion(_)),
            "selective predicate should choose an index path"
        );
        let healthy = execute(&plan, &cat);
        cat.faults().set_index_probe_failure(true);
        let degraded = execute(&plan, &cat);
        cat.faults().reset();
        assert_eq!(healthy.rows, degraded.rows, "fallback must not change the row set");
        assert!(degraded.metrics.index_fallback);
        assert!(!healthy.metrics.index_fallback);
        assert!(degraded.metrics.heap_pages_read > healthy.metrics.heap_pages_read);
    }

    #[test]
    fn results_identical_across_access_paths() {
        let cat = catalog();
        let e = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let schema = cat.table(0).table.schema().clone();
        let seek_plan = choose_plan(e.clone(), 0, &schema, &cat, &OptimizerOptions::default());
        // Force a scan by disallowing union + pretending no indexes:
        let scan_plan = Plan {
            access: AccessPath::FullScan,
            ..seek_plan.clone()
        };
        assert_eq!(execute(&seek_plan, &cat).rows, execute(&scan_plan, &cat).rows);
    }
}
