//! The engine facade: SQL in, rows + metrics out, with a plan cache that
//! is invalidated when a referenced mining model is retrained (§4.2's
//! correctness requirement for content-dependent plans).

use crate::catalog::Catalog;
use crate::display::plan_to_string;
use crate::exec::{execute, ExecMetrics};
use crate::expr::{Expr, ModelId};
use crate::optimizer::{choose_plan, OptimizerOptions, Plan};
use crate::rewrite::rewrite_mining;
use crate::sql::{parse, parse_statement, Statement};
use crate::table::RowId;
use crate::EngineError;
use mpq_core::{DeriveOptions, EnvelopeProvider};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of running one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matching row ids (empty for EXPLAIN).
    pub rows: Vec<RowId>,
    /// Execution metrics (zeroed for EXPLAIN).
    pub metrics: ExecMetrics,
    /// EXPLAIN text of the executed (or explained) plan.
    pub plan: String,
    /// Whether the physical plan differs from a plain full scan — the
    /// paper's "plan changed" criterion.
    pub plan_changed: bool,
    /// Whether the plan came from the cache.
    pub cached_plan: bool,
}

/// Result of [`Engine::execute_sql`].
#[derive(Debug)]
pub enum StatementOutcome {
    /// A SELECT ran (or was explained).
    Query(QueryOutcome),
    /// A mining model was trained and registered.
    ModelCreated {
        /// The model's catalog name.
        name: String,
        /// Its catalog id.
        model: ModelId,
        /// Number of output classes/clusters.
        n_classes: usize,
    },
}

/// A SQL-facing engine over a [`Catalog`].
pub struct Engine {
    catalog: Catalog,
    opts: OptimizerOptions,
    plan_cache: HashMap<String, Plan>,
}

impl Engine {
    /// Wraps a catalog with default optimizer options.
    pub fn new(catalog: Catalog) -> Engine {
        Engine { catalog, opts: OptimizerOptions::default(), plan_cache: HashMap::new() }
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (table/model registration, index
    /// creation). Clears the plan cache — DDL invalidates plans.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        self.plan_cache.clear();
        &mut self.catalog
    }

    /// Current optimizer options.
    pub fn options(&self) -> &OptimizerOptions {
        &self.opts
    }

    /// Replaces optimizer options (clears the plan cache).
    pub fn set_options(&mut self, opts: OptimizerOptions) {
        self.opts = opts;
        self.plan_cache.clear();
    }

    /// Enables/disables envelope rewriting — the experiments' switch
    /// between the optimized path and the black-box baseline.
    pub fn set_use_envelopes(&mut self, on: bool) {
        self.opts.use_envelopes = on;
        self.plan_cache.clear();
    }

    /// Registers a trained model (training-time envelope precomputation
    /// happens inside the catalog).
    pub fn register_model(
        &mut self,
        name: impl Into<String>,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
        opts: DeriveOptions,
    ) -> Result<ModelId, EngineError> {
        self.plan_cache.clear();
        self.catalog.add_model(name, model, opts)
    }

    /// Retrains a model in place; dependent cached plans become invalid
    /// via the version check.
    pub fn retrain_model(
        &mut self,
        id: ModelId,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
    ) -> Result<(), EngineError> {
        self.catalog.retrain_model(id, model)
    }

    /// Plans a predicate for a table (parse-free entry point used by the
    /// benchmark harness).
    pub fn plan_predicate(&mut self, table: usize, predicate: Expr) -> Plan {
        let schema = self.catalog.table(table).table.schema().clone();
        let rewritten = if self.opts.use_envelopes {
            rewrite_mining(predicate, &schema, &self.catalog)
        } else {
            predicate.normalize(&schema)
        };
        choose_plan(rewritten, table, &schema, &self.catalog, &self.opts)
    }

    /// Runs (or explains) one SQL query.
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome, EngineError> {
        let parsed = parse(sql, &self.catalog)?;
        let cache_key = format!("{}|env={}", sql.trim(), self.opts.use_envelopes);
        let (plan, cached) = match self.plan_cache.get(&cache_key) {
            Some(p) if self.plan_is_valid(p) => (p.clone(), true),
            _ => {
                let plan = self.plan_predicate(parsed.table, parsed.predicate.clone());
                self.plan_cache.insert(cache_key, plan.clone());
                (plan, false)
            }
        };
        let schema = self.catalog.table(parsed.table).table.schema().clone();
        let plan_text = plan_to_string(&plan, &schema, &self.catalog);
        let plan_changed = plan.access.changed_from_scan();
        if parsed.explain {
            return Ok(QueryOutcome {
                rows: Vec::new(),
                metrics: ExecMetrics::default(),
                plan: plan_text,
                plan_changed,
                cached_plan: cached,
            });
        }
        let result = execute(&plan, &self.catalog);
        Ok(QueryOutcome {
            rows: result.rows,
            metrics: result.metrics,
            plan: plan_text,
            plan_changed,
            cached_plan: cached,
        })
    }

    /// Runs one statement: a query, or DDL like `CREATE MINING MODEL m
    /// ON t PREDICT label USING decision_tree`. Training happens here;
    /// envelope precomputation happens at registration (§4.2).
    pub fn execute_sql(&mut self, sql: &str) -> Result<StatementOutcome, EngineError> {
        match parse_statement(sql, &self.catalog)? {
            Statement::Select(_) => Ok(StatementOutcome::Query(self.query(sql)?)),
            Statement::CreateModel { name, table, label, clusters, algorithm } => {
                self.plan_cache.clear();
                let (model, n_classes) = crate::ddl::create_model(
                    &mut self.catalog,
                    &name,
                    table,
                    label,
                    clusters,
                    algorithm,
                    DeriveOptions::default(),
                )?;
                Ok(StatementOutcome::ModelCreated { name, model, n_classes })
            }
        }
    }

    fn plan_is_valid(&self, plan: &Plan) -> bool {
        plan.model_versions
            .iter()
            .all(|(m, v)| self.catalog.model(*m).version == *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use mpq_core::paper_table1_model;
    use mpq_models::Classifier as _;
    use mpq_types::{AttrId, Dataset};

    /// Engine with the Table-1 model applied to a table whose rows are
    /// the 12 grid cells, each duplicated a skewed number of times.
    fn engine() -> Engine {
        let nb = paper_table1_model();
        let schema = nb.schema().clone();
        let mut ds = Dataset::new(schema);
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                let copies = 1 + (m0 as usize * 3 + m1 as usize) * 7;
                for _ in 0..copies {
                    ds.push_encoded(&[m0, m1]).unwrap();
                }
            }
        }
        let mut cat = Catalog::new();
        let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.create_index(t, &[AttrId(0)]);
        cat.create_index(t, &[AttrId(1)]);
        cat.add_model("m", Arc::new(nb), mpq_core::DeriveOptions::default()).unwrap();
        Engine::new(cat)
    }

    #[test]
    fn mining_query_matches_black_box_baseline() {
        let mut e = engine();
        for label in ["c1", "c2", "c3"] {
            let sql = format!("SELECT * FROM t WHERE PREDICT(m) = '{label}'");
            let optimized = e.query(&sql).unwrap();
            e.set_use_envelopes(false);
            let baseline = e.query(&sql).unwrap();
            e.set_use_envelopes(true);
            assert_eq!(optimized.rows, baseline.rows, "row sets must agree for {label}");
            assert!(
                optimized.metrics.model_invocations <= baseline.metrics.model_invocations,
                "envelopes must not increase model invocations"
            );
        }
    }

    #[test]
    fn explain_produces_plan_without_execution() {
        let mut e = engine();
        let out = e.query("EXPLAIN SELECT * FROM t WHERE PREDICT(m) = 'c1'").unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.metrics.rows_examined, 0);
        assert!(out.plan.contains("residual"), "plan text: {}", out.plan);
    }

    #[test]
    fn plan_cache_hits_and_invalidates_on_retrain() {
        let mut e = engine();
        let sql = "SELECT COUNT(*) FROM t WHERE PREDICT(m) = 'c1'";
        let first = e.query(sql).unwrap();
        assert!(!first.cached_plan);
        let second = e.query(sql).unwrap();
        assert!(second.cached_plan, "same SQL should hit the plan cache");
        // Retrain: version bump must invalidate.
        e.retrain_model(0, Arc::new(paper_table1_model())).unwrap();
        let third = e.query(sql).unwrap();
        assert!(!third.cached_plan, "retrained model must invalidate the cached plan");
        assert_eq!(first.rows, third.rows);
    }

    #[test]
    fn envelope_toggle_changes_plan_not_results() {
        let mut e = engine();
        let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c3'";
        let on = e.query(sql).unwrap();
        e.set_use_envelopes(false);
        let off = e.query(sql).unwrap();
        assert_eq!(on.rows, off.rows);
        // Without envelopes, a bare mining predicate can only full-scan.
        assert!(!off.plan_changed);
    }

    #[test]
    fn count_queries_work() {
        let mut e = engine();
        let out = e.query("SELECT COUNT(*) FROM t WHERE d0 = 'm0'").unwrap();
        let expected: u64 = (0..3).map(|m1| 1 + (m1 as u64) * 7).sum();
        assert_eq!(out.metrics.output_rows, expected);
    }

    #[test]
    fn ddl_clears_plan_cache() {
        let mut e = engine();
        let sql = "SELECT * FROM t WHERE d0 = 'm0'";
        e.query(sql).unwrap();
        let _ = e.catalog_mut(); // any DDL touch
        let out = e.query(sql).unwrap();
        assert!(!out.cached_plan);
    }
}
