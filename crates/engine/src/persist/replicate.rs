//! Primary→standby WAL shipping: the engine half of replication.
//!
//! The unit of shipping is the WAL frame exactly as it sits on disk
//! (`len u32 | crc32 u32 | payload(lsn + op)`, see [`super::wal`]): the
//! shipper reads committed frames from the primary's segment files and
//! streams them, re-framed but byte-identical in discipline, to the
//! standby, which replays each record through the same
//! [`super::recovery::apply_op`] used by live mutations and crash
//! recovery. One apply path, three consumers — live state, recovered
//! state, and replicated state cannot diverge.
//!
//! A stream batch is decoded *strictly*: unlike a segment file (where a
//! torn tail is an expected fact about a crash), a batch arrived
//! through a CRC-framed transport, so any torn or corrupt byte is a bug
//! or an attack and fails the whole batch with a typed error. Each
//! record's own CRC is still verified — defense in depth against a
//! shipper bug, and it makes the batch format self-contained.
//!
//! Delivery is at-least-once: the shipper may resend a batch it never
//! saw the ack for. The standby deduplicates by LSN — a record below
//! its next LSN is skipped, a record above it is a gap and a typed
//! error. Combined with the primary reading only fsync'd frames, the
//! standby's applied prefix is always a prefix of the primary's
//! durable history.

use super::recovery;
use super::wal;
use super::LogOp;
use crate::fault::FaultInjector;
use crate::EngineError;
use mpq_types::wire::crc32;
use std::path::Path;

/// Which side of the replication pair an engine is serving as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRole {
    /// Accepts mutations; ships its WAL to the standby.
    Primary,
    /// Read-only; applies the primary's shipped WAL. Promotable.
    Standby,
}

impl std::fmt::Display for ReplRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReplRole::Primary => "primary",
            ReplRole::Standby => "standby",
        })
    }
}

/// A batch of WAL frames read for shipping.
#[derive(Debug)]
pub struct ReplBatch {
    /// Concatenated on-disk-format frames, ready to stream.
    pub bytes: Vec<u8>,
    /// Number of records in the batch.
    pub records: u64,
    /// LSN of the last record in the batch (equals the requested
    /// starting point when the batch is empty).
    pub last_lsn: u64,
}

/// Serializes records into stream format (identical to the on-disk WAL
/// frame format, without the segment header).
pub fn encode_stream(records: &[(u64, LogOp)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (lsn, op) in records {
        out.extend_from_slice(&wal::encode_frame(*lsn, op));
    }
    out
}

/// Decodes a shipped batch strictly: every frame must parse, checksum,
/// and exhaust its payload, and the final frame must end exactly at the
/// end of the buffer. Anything less is a typed [`EngineError::Corrupt`]
/// — a batch travelled over a verified transport, so a torn tail is
/// never an expected state the way it is for a crashed segment file.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<(u64, LogOp)>, EngineError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let (Some(len), Some(crc)) = (wal::le_u32(bytes, pos), wal::le_u32(bytes, pos + 4))
        else {
            return Err(EngineError::Corrupt {
                detail: format!("torn replication frame header at byte {pos}"),
            });
        };
        let len = len as usize;
        let end = pos.checked_add(8 + len).filter(|&e| e <= bytes.len()).ok_or_else(|| {
            EngineError::Corrupt {
                detail: format!("replication frame length out of bounds at byte {pos}"),
            }
        })?;
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != crc {
            return Err(EngineError::Corrupt {
                detail: format!("replication frame crc mismatch at byte {pos}"),
            });
        }
        let mut r = mpq_types::wire::WireReader::new(payload);
        let lsn = r.get_u64()?;
        let op = LogOp::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(EngineError::Corrupt {
                detail: format!("trailing bytes inside replication record at byte {pos}"),
            });
        }
        records.push((lsn, op));
        pos = end;
    }
    Ok(records)
}

/// Reads every committed WAL frame with LSN > `from_lsn` from the
/// segment files in `dir`, in log order.
///
/// Returns `Ok(None)` when the records `from_lsn + 1 ..` are no longer
/// covered by the on-disk log (a checkpoint deleted the segments the
/// standby still needs, or the standby is fresh at LSN 0 while the log
/// starts later) — the caller must fall back to shipping a snapshot.
///
/// A torn segment tail is *not* an error here: the primary may be
/// appending concurrently, so only the clean prefix is shipped and the
/// rest is picked up by the next cycle.
pub(crate) fn read_frames_after(
    dir: &Path,
    from_lsn: u64,
    faults: &FaultInjector,
) -> Result<Option<ReplBatch>, EngineError> {
    let segments = recovery::list_segments(dir)?;
    // The shipping window starts in the last segment that can contain
    // record from_lsn + 1 (mirrors recovery's replay-window logic).
    let ship_from = segments.iter().rposition(|(lsn, _)| *lsn <= from_lsn + 1);
    let Some(first) = ship_from else {
        // No segment starts at or before the needed record: either the
        // directory is empty (nothing to ship yet) or the log begins
        // past the standby's position (coverage gap → snapshot).
        return if segments.is_empty() {
            Ok(Some(ReplBatch { bytes: Vec::new(), records: 0, last_lsn: from_lsn }))
        } else {
            Ok(None)
        };
    };
    let mut bytes = Vec::new();
    let mut records = 0u64;
    let mut last_lsn = from_lsn;
    for (seg_start, path) in &segments[first..] {
        let seg = wal::read_segment(path, faults)?;
        if !seg.header_valid || seg.start_lsn != *seg_start {
            // A damaged segment inside the shipping window: nothing
            // after it can be trusted to be contiguous. Ship what was
            // collected; recovery (not shipping) owns the cleanup.
            break;
        }
        for (i, (lsn, _)) in seg.records.iter().enumerate() {
            if *lsn <= last_lsn {
                continue;
            }
            if *lsn != last_lsn + 1 {
                // Gap between what the standby has and what remains on
                // disk — only a snapshot can re-establish coverage.
                return if records == 0 { Ok(None) } else { break_batch(bytes, records, last_lsn) };
            }
            bytes.extend_from_slice(&frame_slice(&seg, i, path)?);
            records += 1;
            last_lsn = *lsn;
        }
        if seg.corruption.is_some() {
            // Torn tail (likely a concurrent append): ship the clean
            // prefix, the next cycle re-reads the rest.
            break;
        }
    }
    Ok(Some(ReplBatch { bytes, records, last_lsn }))
}

/// Wraps a partial batch (used when a gap follows already-collected
/// records; the caller ships what it has and the gap is re-evaluated on
/// the next cycle, by which point a checkpoint may have changed things).
#[allow(clippy::unnecessary_wraps)]
fn break_batch(
    bytes: Vec<u8>,
    records: u64,
    last_lsn: u64,
) -> Result<Option<ReplBatch>, EngineError> {
    Ok(Some(ReplBatch { bytes, records, last_lsn }))
}

/// Re-frames record `i` of a read segment. The segment reader returns
/// decoded records plus per-record end offsets, so the frame is
/// re-encoded rather than sliced from the file (the re-encoding is
/// byte-identical by construction — same codec both ways — and avoids
/// holding the raw file bytes).
fn frame_slice(
    seg: &wal::SegmentData,
    i: usize,
    path: &Path,
) -> Result<Vec<u8>, EngineError> {
    let (lsn, op) = seg.records.get(i).ok_or_else(|| EngineError::Internal {
        detail: format!("record index {i} out of bounds in {}", path.display()),
    })?;
    Ok(wal::encode_frame(*lsn, op))
}

/// Point-in-time replication status, surfaced through
/// [`crate::EngineHealth`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplStatus {
    /// This node's role.
    pub role: ReplRole,
    /// This node's replication epoch.
    pub epoch: u64,
    /// Records appended but not yet acknowledged by the standby
    /// (`None` unless this node is a primary with sync replication).
    pub lag_records: Option<u64>,
    /// Bytes appended but not yet acknowledged by the standby.
    pub lag_bytes: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<(u64, LogOp)> {
        vec![
            (1, LogOp::CreateIndex { table: "t".into(), columns: vec![0] }),
            (2, LogOp::Insert { table: "t".into(), rows: vec![vec![1, 2], vec![0, 0]] }),
            (3, LogOp::EpochBump { epoch: 1 }),
        ]
    }

    #[test]
    fn stream_roundtrip() {
        let records = ops();
        let bytes = encode_stream(&records);
        assert_eq!(decode_stream(&bytes).unwrap(), records);
        assert!(decode_stream(&[]).unwrap().is_empty());
    }

    #[test]
    fn every_truncation_fails_typed_or_is_a_clean_prefix() {
        let records = ops();
        let bytes = encode_stream(&records);
        // Byte offsets where a frame ends: a cut exactly there is a
        // legal (shorter) stream and must decode to that prefix; a cut
        // anywhere else is torn and must fail typed.
        let mut boundaries = Vec::new();
        let mut end = 0usize;
        for r in &records {
            end += wal::encode_frame(r.0, &r.1).len();
            boundaries.push(end);
        }
        for cut in 1..bytes.len() {
            match decode_stream(&bytes[..cut]) {
                Ok(prefix) => {
                    let i = boundaries.iter().position(|&b| b == cut);
                    assert_eq!(
                        Some(prefix.len()),
                        i.map(|i| i + 1),
                        "cut at {cut} decoded but is not a frame boundary"
                    );
                    assert_eq!(prefix, records[..prefix.len()]);
                }
                Err(EngineError::Corrupt { .. }) => {
                    assert!(!boundaries.contains(&cut), "clean prefix at {cut} rejected");
                }
                Err(e) => panic!("cut at {cut}: wrong error type {e}"),
            }
        }
    }

    #[test]
    fn every_bit_flip_fails_typed() {
        let bytes = encode_stream(&ops());
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                // A flip may damage a length field (bounds error), a
                // CRC, or a payload (CRC mismatch); all must surface
                // as Corrupt, never as wrong records or a panic.
                if let Ok(records) = decode_stream(&evil) {
                    panic!("flip at byte {i} bit {bit} decoded as {records:?}");
                }
            }
        }
    }

    #[test]
    fn hostile_length_fails_typed() {
        let records = ops();
        let mut bytes = encode_stream(&records);
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_stream(&bytes), Err(EngineError::Corrupt { .. })));
    }

    #[test]
    fn roles_display() {
        assert_eq!(ReplRole::Primary.to_string(), "primary");
        assert_eq!(ReplRole::Standby.to_string(), "standby");
    }
}
