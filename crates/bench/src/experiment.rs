//! Running the paper's evaluation methodology (§5.1) on one dataset.
//!
//! For each class of the trained model: form the query `SELECT * FROM T
//! WHERE <upper envelope>`, feed the whole per-model workload to the
//! index tuner, execute each query, and compare against the `SELECT *
//! FROM T` full scan — recording plan changes, running times and the
//! original vs envelope selectivities.

use crate::setup::{build_setup, ExperimentSetup, ModelKindTag, Scale};
use mpq_core::DeriveOptions;
use mpq_datagen::DatasetSpec;
use mpq_engine::{envelope_to_expr, execute, tune_indexes, AccessPath, Expr};
use mpq_types::ClassId;
use std::time::Duration;

pub use crate::setup::ModelKindTag as ModelKind;

/// One (dataset, model, class) measurement — a row of the paper's
/// evaluation data.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRow {
    /// Dataset name.
    pub dataset: String,
    /// Model family.
    pub kind: ModelKindTag,
    /// Class index.
    pub class: u16,
    /// Fraction of test rows the model predicts into this class.
    pub orig_selectivity: f64,
    /// Fraction of test rows the envelope admits (≥ original).
    pub env_selectivity: f64,
    /// Number of disjuncts in the envelope.
    pub n_disjuncts: usize,
    /// Whether the envelope is provably exact.
    pub exact: bool,
    /// Whether the optimizer left the full-scan plan.
    pub plan_changed: bool,
    /// Whether the plan was a constant scan (empty envelope).
    pub constant_scan: bool,
    /// Full-scan baseline time for `SELECT *`.
    pub scan_time: Duration,
    /// Envelope-query time.
    pub env_time: Duration,
    /// Pages the full scan read.
    pub scan_pages: u64,
    /// Pages (heap + index) the envelope query read.
    pub env_pages: u64,
}

impl ExperimentRow {
    /// Relative running-time reduction vs the full scan (can be slightly
    /// negative when the plan did not change).
    pub fn reduction(&self) -> f64 {
        let scan = self.scan_time.as_secs_f64();
        if scan <= 0.0 {
            return 0.0;
        }
        1.0 - self.env_time.as_secs_f64() / scan
    }

    /// Relative page-count reduction vs the full scan — the scale-free
    /// analogue of [`ExperimentRow::reduction`] (wall times at small
    /// `--scale` are noise-dominated; page counts are not).
    pub fn page_reduction(&self) -> f64 {
        if self.scan_pages == 0 {
            return 0.0;
        }
        1.0 - self.env_pages as f64 / self.scan_pages as f64
    }
}

/// Runs the full §5.1 methodology for one (dataset, model-kind) pair.
pub fn run_dataset_experiment(
    spec: &DatasetSpec,
    kind: ModelKindTag,
    scale: Scale,
    seed: u64,
    derive_opts: &DeriveOptions,
) -> (ExperimentSetup, Vec<ExperimentRow>) {
    let setup = build_setup(spec, kind, scale, seed, derive_opts);
    let schema = setup.engine.catalog().table(0).table.schema().clone();

    // Workload: one envelope query per class.
    let workload: Vec<Expr> = (0..setup.n_classes)
        .map(|k| {
            envelope_to_expr(&schema, &setup.envelope(ClassId(k as u16))).normalize(&schema)
        })
        .collect();

    // Index tuning over the workload (the paper's Index Tuning Wizard
    // step). Envelope unions need one usable index per disjunct, so the
    // budget is generous — the drop-greedy removes anything useless.
    let opt_opts = setup.engine.options();
    tune_indexes(&mut setup.engine.catalog_mut(), 0, &workload, 48, &opt_opts);

    // Baseline: SELECT * FROM T (full scan).
    let scan_plan = setup.engine.plan_predicate(0, Expr::Const(true));
    let scan_exec = execute(&scan_plan, &setup.engine.catalog());
    let scan_time = scan_exec.metrics.elapsed;

    let mut rows = Vec::with_capacity(setup.n_classes);
    for (k, expr) in workload.into_iter().enumerate() {
        let class = ClassId(k as u16);
        let plan = setup.engine.plan_predicate(0, expr);
        let constant_scan = matches!(plan.access, AccessPath::ConstantScan);
        let plan_changed = plan.access.changed_from_scan();
        let exec = execute(&plan, &setup.engine.catalog());
        let env = setup.envelope(class);
        rows.push(ExperimentRow {
            dataset: spec.name.to_string(),
            kind,
            class: class.0,
            orig_selectivity: setup.class_selectivity[k],
            env_selectivity: exec.metrics.output_rows as f64 / setup.test_rows.max(1) as f64,
            n_disjuncts: env.n_disjuncts(),
            exact: env.exact,
            plan_changed,
            constant_scan,
            scan_time,
            env_time: exec.metrics.elapsed,
            scan_pages: scan_exec.metrics.total_pages(),
            env_pages: exec.metrics.total_pages(),
        });
    }
    (setup, rows)
}

/// Per-(dataset, kind) timing record for the paper's experiment (iii).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingRow {
    /// Dataset name.
    pub dataset: String,
    /// Model family.
    pub kind: ModelKindTag,
    /// Wall-clock training time.
    pub train_time: Duration,
    /// Wall-clock time to precompute all per-class envelopes.
    pub derive_time: Duration,
}

/// Runs the whole evaluation: every Table-2 dataset × the three model
/// families. Returns the per-class measurement rows plus the per-model
/// timing records. This is the single sweep every §5 table/figure is
/// derived from.
pub fn run_full_sweep(scale: Scale, seed: u64) -> (Vec<ExperimentRow>, Vec<TimingRow>) {
    let opts = DeriveOptions::default();
    let mut rows = Vec::new();
    let mut timings = Vec::new();
    for spec in mpq_datagen::table2() {
        for kind in [ModelKindTag::Tree, ModelKindTag::NaiveBayes, ModelKindTag::Clustering] {
            let (setup, mut rs) = run_dataset_experiment(&spec, kind, scale, seed, &opts);
            timings.push(TimingRow {
                dataset: spec.name.to_string(),
                kind,
                train_time: setup.train_time,
                derive_time: setup.derive_time,
            });
            rows.append(&mut rs);
        }
    }
    (rows, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_datagen::table2;

    #[test]
    fn envelope_selectivity_dominates_original() {
        // The defining soundness property at the experiment level: every
        // envelope admits at least the rows of its class.
        let spec = table2().into_iter().find(|s| s.name == "Diabetes").unwrap();
        for kind in [ModelKindTag::Tree, ModelKindTag::NaiveBayes, ModelKindTag::Clustering] {
            let (_, rows) =
                run_dataset_experiment(&spec, kind, Scale(0.002), 7, &DeriveOptions::default());
            for r in &rows {
                assert!(
                    r.env_selectivity >= r.orig_selectivity - 1e-12,
                    "{kind:?} class {}: envelope {} < original {}",
                    r.class,
                    r.env_selectivity,
                    r.orig_selectivity
                );
            }
        }
    }

    #[test]
    fn tree_envelopes_have_exactly_original_selectivity() {
        let spec = table2().into_iter().find(|s| s.name == "Balance-Scale").unwrap();
        let (_, rows) =
            run_dataset_experiment(&spec, ModelKindTag::Tree, Scale(0.002), 7, &DeriveOptions::default());
        for r in &rows {
            assert!(r.exact);
            assert!(
                (r.env_selectivity - r.orig_selectivity).abs() < 1e-12,
                "exact envelope must match original selectivity"
            );
        }
    }

    #[test]
    fn low_selectivity_classes_change_plans() {
        // Hypothyroid is heavily skewed: the minority class must get an
        // index plan (or constant scan).
        let spec = table2().into_iter().find(|s| s.name == "Hypothyroid").unwrap();
        let (_, rows) = run_dataset_experiment(
            &spec,
            ModelKindTag::Tree,
            Scale(0.005),
            7,
            &DeriveOptions::default(),
        );
        let minority = rows
            .iter()
            .min_by(|a, b| a.orig_selectivity.partial_cmp(&b.orig_selectivity).expect("finite"))
            .expect("has classes");
        assert!(
            minority.plan_changed,
            "minority class (sel {:.4}) should not full-scan",
            minority.orig_selectivity
        );
    }
}
