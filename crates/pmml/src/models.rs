//! Model ⇄ PMML document conversion.
//!
//! The subset follows PMML 2.0 element names where they exist
//! (`TreeModel`, `NaiveBayesModel`, `ClusteringModel`) with two
//! documented deviations: probabilities are stored directly (PMML's
//! `PairCounts` stores raw counts) and the diagonal Gaussian mixture —
//! which PMML 2.0 has no vocabulary for — uses a `MixtureModel` element
//! in the same style.

use crate::schema::{schema_from_xml, schema_to_xml};
use crate::xml::{parse, XmlNode};
use crate::PmmlError;
use mpq_models::{
    Classifier as _, DecisionTree, Gmm, KMeans, NaiveBayes, Node, Rule, RuleCond, RuleSet, Split,
};
use mpq_types::{AttrDomain, AttrId, ClassId, MemberSet, Schema};

/// Any model this crate can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum PmmlModel {
    /// A decision tree.
    Tree(DecisionTree),
    /// A discrete naive Bayes classifier.
    NaiveBayes(NaiveBayes),
    /// A centroid-based clustering model.
    KMeans(KMeans),
    /// A diagonal Gaussian mixture.
    Gmm(Gmm),
    /// A weighted rule set.
    Rules(RuleSet),
}

impl PmmlModel {
    /// The model's input schema.
    pub fn schema(&self) -> &Schema {
        match self {
            PmmlModel::Tree(m) => m.schema(),
            PmmlModel::NaiveBayes(m) => m.schema(),
            PmmlModel::KMeans(m) => m.schema(),
            PmmlModel::Gmm(m) => m.schema(),
            PmmlModel::Rules(m) => m.schema(),
        }
    }
}

/// Serializes a model as a PMML document.
///
/// Fails with [`PmmlError::Structure`] when the model is internally
/// inconsistent — e.g. a tree split or rule range over an attribute the
/// schema says is categorical. Such models cannot arise from this
/// workspace's trainers, but `export` is also on the engine's checkpoint
/// path, where aborting the whole checkpoint on one malformed model is
/// not acceptable.
pub fn export(model: &PmmlModel) -> Result<String, PmmlError> {
    let body = match model {
        PmmlModel::Tree(t) => tree_to_xml(t)?,
        PmmlModel::NaiveBayes(nb) => nb_to_xml(nb),
        PmmlModel::KMeans(km) => kmeans_to_xml(km),
        PmmlModel::Gmm(g) => gmm_to_xml(g),
        PmmlModel::Rules(rs) => rules_to_xml(rs)?,
    };
    let doc = XmlNode::new("PMML")
        .attr("version", "2.0")
        .child(XmlNode::new("Header").attr("copyright", "mpq"))
        .child(schema_to_xml(model.schema()))
        .child(body);
    Ok(format!("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n{}", doc.to_string_pretty()))
}

/// Parses a PMML document back into a model.
pub fn import(text: &str) -> Result<PmmlModel, PmmlError> {
    let doc = parse(text)?;
    if doc.name != "PMML" {
        return Err(PmmlError::Structure { detail: format!("expected <PMML>, got <{}>", doc.name) });
    }
    let schema = schema_from_xml(doc.req_child("DataDictionary")?)?;
    if let Some(n) = doc.find("TreeModel") {
        return Ok(PmmlModel::Tree(tree_from_xml(n, &schema)?));
    }
    if let Some(n) = doc.find("NaiveBayesModel") {
        return Ok(PmmlModel::NaiveBayes(nb_from_xml(n, &schema)?));
    }
    if let Some(n) = doc.find("ClusteringModel") {
        return Ok(PmmlModel::KMeans(kmeans_from_xml(n, &schema)?));
    }
    if let Some(n) = doc.find("MixtureModel") {
        return Ok(PmmlModel::Gmm(gmm_from_xml(n, &schema)?));
    }
    if let Some(n) = doc.find("RuleSetModel") {
        return Ok(PmmlModel::Rules(rules_from_xml(n, &schema)?));
    }
    Err(PmmlError::Structure { detail: "no supported model element found".into() })
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

fn parse_f64(s: &str) -> Result<f64, PmmlError> {
    s.trim().parse::<f64>().map_err(|_| PmmlError::Value { detail: format!("bad number {s:?}") })
}

fn float_list(values: &[f64]) -> String {
    values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ")
}

fn parse_float_list(s: &str) -> Result<Vec<f64>, PmmlError> {
    s.split_whitespace().map(parse_f64).collect()
}

fn class_of(names: &[String], label: &str) -> Result<ClassId, PmmlError> {
    names
        .iter()
        .position(|n| n == label)
        .map(|i| ClassId(i as u16))
        .ok_or_else(|| PmmlError::Value { detail: format!("unknown class {label:?}") })
}

// ---------------------------------------------------------------------
// Decision tree
// ---------------------------------------------------------------------

fn tree_to_xml(tree: &DecisionTree) -> Result<XmlNode, PmmlError> {
    let mut m = XmlNode::new("TreeModel").attr("functionName", "classification");
    let mut classes = XmlNode::new("Output");
    for k in 0..tree.n_classes() {
        classes = classes
            .child(XmlNode::new("OutputField").attr("name", tree.class_name(ClassId(k as u16))));
    }
    m = m.child(classes);
    Ok(m.child(node_to_xml(tree.root(), tree)?))
}

fn node_to_xml(node: &Node, tree: &DecisionTree) -> Result<XmlNode, PmmlError> {
    Ok(match node {
        Node::Leaf { class, support } => XmlNode::new("Node")
            .attr("score", tree.class_name(*class))
            .attr("recordCount", *support),
        Node::Internal { split, left, right } => {
            let attr_name = &tree.schema().attr(split.attr()).name;
            let pred = match split {
                Split::LeMember { attr, cut_member } => {
                    let domain = &tree.schema().attr(*attr).domain;
                    let (_, hi) =
                        domain.bin_interval(*cut_member).ok_or_else(|| PmmlError::Structure {
                            detail: format!(
                                "ordered split on unordered attribute {attr_name:?}"
                            ),
                        })?;
                    XmlNode::new("SimplePredicate")
                        .attr("field", attr_name)
                        .attr("operator", "lessOrEqual")
                        .attr("value", hi)
                }
                Split::InSet { attr, members } => {
                    let domain = &tree.schema().attr(*attr).domain;
                    let labels: Vec<String> =
                        members.iter().map(|m| domain.member_label(m)).collect();
                    XmlNode::new("SimpleSetPredicate")
                        .attr("field", attr_name)
                        .attr("booleanOperator", "isIn")
                        .child(
                            XmlNode::new("Array")
                                .attr("type", "string")
                                .with_text(labels.join(" ")),
                        )
                }
            };
            XmlNode::new("Node")
                .child(pred)
                .child(node_to_xml(left, tree)?)
                .child(node_to_xml(right, tree)?)
        }
    })
}

fn tree_from_xml(m: &XmlNode, schema: &Schema) -> Result<DecisionTree, PmmlError> {
    let class_names: Vec<String> = m
        .req_child("Output")?
        .find_all("OutputField")
        .map(|c| c.req_attr("name").map(str::to_owned))
        .collect::<Result<_, _>>()?;
    let root = node_from_xml(m.req_child("Node")?, schema, &class_names)?;
    DecisionTree::from_parts(schema.clone(), class_names, root)
        .map_err(|e| PmmlError::Value { detail: e.to_string() })
}

fn node_from_xml(n: &XmlNode, schema: &Schema, classes: &[String]) -> Result<Node, PmmlError> {
    if let Some(score) = n.get_attr("score") {
        let support = n
            .get_attr("recordCount")
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(0);
        return Ok(Node::Leaf { class: class_of(classes, score)?, support });
    }
    let kids: Vec<&XmlNode> = n.find_all("Node").collect();
    if kids.len() != 2 {
        return Err(PmmlError::Structure {
            detail: format!("internal <Node> must have 2 child Nodes, has {}", kids.len()),
        });
    }
    let split = if let Some(sp) = n.find("SimplePredicate") {
        let field = sp.req_attr("field")?;
        let attr = schema
            .attr_by_name(field)
            .ok_or_else(|| PmmlError::Value { detail: format!("unknown field {field:?}") })?;
        if sp.req_attr("operator")? != "lessOrEqual" {
            return Err(PmmlError::Structure {
                detail: "only lessOrEqual SimplePredicates are supported".into(),
            });
        }
        let value = parse_f64(sp.req_attr("value")?)?;
        let AttrDomain::Binned { cuts } = &schema.attr(attr).domain else {
            return Err(PmmlError::Structure {
                detail: format!("SimplePredicate on categorical field {field:?}"),
            });
        };
        let cut_member = cuts
            .iter()
            .position(|&c| c == value)
            .ok_or_else(|| PmmlError::Value {
                detail: format!("split value {value} is not a cut of {field:?}"),
            })? as u16;
        Split::LeMember { attr, cut_member }
    } else if let Some(sp) = n.find("SimpleSetPredicate") {
        let field = sp.req_attr("field")?;
        let attr = schema
            .attr_by_name(field)
            .ok_or_else(|| PmmlError::Value { detail: format!("unknown field {field:?}") })?;
        let domain = &schema.attr(attr).domain;
        let card = domain.cardinality();
        let mut members = MemberSet::empty(card);
        for label in sp.req_child("Array")?.text.split_whitespace() {
            let m = domain
                .encode(&mpq_types::Value::Str(label.to_string()))
                .map_err(|e| PmmlError::Value { detail: e.to_string() })?;
            members.insert(m);
        }
        Split::InSet { attr, members }
    } else {
        return Err(PmmlError::Structure { detail: "internal <Node> missing predicate".into() });
    };
    Ok(Node::Internal {
        split,
        left: Box::new(node_from_xml(kids[0], schema, classes)?),
        right: Box::new(node_from_xml(kids[1], schema, classes)?),
    })
}

// ---------------------------------------------------------------------
// Naive Bayes
// ---------------------------------------------------------------------

fn nb_to_xml(nb: &NaiveBayes) -> XmlNode {
    let k = nb.n_classes();
    let schema = nb.schema();
    let mut m = XmlNode::new("NaiveBayesModel").attr("functionName", "classification");
    let mut priors = XmlNode::new("ClassPriors");
    for c in 0..k {
        priors = priors.child(
            XmlNode::new("Prior")
                .attr("class", nb.class_name(ClassId(c as u16)))
                .attr("probability", nb.log_prior(ClassId(c as u16)).exp()),
        );
    }
    m = m.child(priors);
    let mut inputs = XmlNode::new("BayesInputs");
    for (d, attr) in schema.iter() {
        let mut input = XmlNode::new("BayesInput").attr("fieldName", &attr.name);
        for member in 0..attr.domain.cardinality() {
            let mut pair = XmlNode::new("PairProbabilities")
                .attr("value", attr.domain.member_label(member));
            for c in 0..k {
                pair = pair.child(
                    XmlNode::new("TargetValueProbability")
                        .attr("class", nb.class_name(ClassId(c as u16)))
                        .attr(
                            "probability",
                            nb.log_cond(d.index(), member, ClassId(c as u16)).exp(),
                        ),
                );
            }
            input = input.child(pair);
        }
        inputs = inputs.child(input);
    }
    m.child(inputs)
}

fn nb_from_xml(m: &XmlNode, schema: &Schema) -> Result<NaiveBayes, PmmlError> {
    let priors_node = m.req_child("ClassPriors")?;
    let mut class_names = Vec::new();
    let mut priors = Vec::new();
    for p in priors_node.find_all("Prior") {
        class_names.push(p.req_attr("class")?.to_string());
        priors.push(parse_f64(p.req_attr("probability")?)?);
    }
    let k = class_names.len();
    let mut cond: Vec<Vec<Vec<f64>>> = schema
        .attrs()
        .iter()
        .map(|a| vec![vec![0.0; k]; a.domain.cardinality() as usize])
        .collect();
    for input in m.req_child("BayesInputs")?.find_all("BayesInput") {
        let field = input.req_attr("fieldName")?;
        let attr = schema
            .attr_by_name(field)
            .ok_or_else(|| PmmlError::Value { detail: format!("unknown field {field:?}") })?;
        let domain = &schema.attr(attr).domain;
        for pair in input.find_all("PairProbabilities") {
            let label = pair.req_attr("value")?;
            // Categorical members resolve by name; binned members by
            // their "(lo, hi]" label.
            let member = (0..domain.cardinality())
                .find(|&mm| domain.member_label(mm) == label)
                .ok_or_else(|| PmmlError::Value {
                    detail: format!("unknown member {label:?} of {field:?}"),
                })?;
            for tv in pair.find_all("TargetValueProbability") {
                let c = class_of(&class_names, tv.req_attr("class")?)?;
                cond[attr.index()][member as usize][c.index()] =
                    parse_f64(tv.req_attr("probability")?)?;
            }
        }
    }
    NaiveBayes::from_probabilities(schema.clone(), class_names, &priors, &cond)
        .map_err(|e| PmmlError::Value { detail: e.to_string() })
}

// ---------------------------------------------------------------------
// Rule sets
// ---------------------------------------------------------------------

fn rules_to_xml(rs: &RuleSet) -> Result<XmlNode, PmmlError> {
    let schema = rs.schema();
    let mut m = XmlNode::new("RuleSetModel").attr("functionName", "classification");
    let mut classes = XmlNode::new("Output");
    for k in 0..rs.n_classes() {
        classes = classes
            .child(XmlNode::new("OutputField").attr("name", rs.class_name(ClassId(k as u16))));
    }
    m = m.child(classes);
    let mut set = XmlNode::new("RuleSet")
        .attr("defaultScore", rs.class_name(rs.default_class()));
    for (i, rule) in rs.rules().iter().enumerate() {
        let mut r = XmlNode::new("SimpleRule")
            .attr("id", i + 1)
            .attr("score", rs.class_name(rule.head))
            .attr("weight", rule.weight);
        let mut body = XmlNode::new("CompoundPredicate").attr("booleanOperator", "and");
        for cond in &rule.body {
            let attr = cond.attr();
            let name = &schema.attr(attr).name;
            let domain = &schema.attr(attr).domain;
            body = body.child(match cond {
                RuleCond::Range { lo, hi, .. } => {
                    let range_err = || PmmlError::Structure {
                        detail: format!("range condition on unordered attribute {name:?}"),
                    };
                    let (lo_bound, _) = domain.bin_interval(*lo).ok_or_else(range_err)?;
                    let (_, hi_bound) = domain.bin_interval(*hi).ok_or_else(range_err)?;
                    XmlNode::new("Interval")
                        .attr("field", name)
                        .attr("leftMargin", lo_bound)
                        .attr("rightMargin", hi_bound)
                }
                RuleCond::In { members, .. } => {
                    let labels: Vec<String> =
                        members.iter().map(|mm| domain.member_label(mm)).collect();
                    XmlNode::new("SimpleSetPredicate")
                        .attr("field", name)
                        .attr("booleanOperator", "isIn")
                        .child(
                            XmlNode::new("Array")
                                .attr("type", "string")
                                .with_text(labels.join(" ")),
                        )
                }
            });
        }
        r = r.child(body);
        set = set.child(r);
    }
    Ok(m.child(set))
}

fn rules_from_xml(m: &XmlNode, schema: &Schema) -> Result<RuleSet, PmmlError> {
    let class_names: Vec<String> = m
        .req_child("Output")?
        .find_all("OutputField")
        .map(|c| c.req_attr("name").map(str::to_owned))
        .collect::<Result<_, _>>()?;
    let set = m.req_child("RuleSet")?;
    let default_class = class_of(&class_names, set.req_attr("defaultScore")?)?;
    let mut rules = Vec::new();
    for r in set.find_all("SimpleRule") {
        let head = class_of(&class_names, r.req_attr("score")?)?;
        let weight = parse_f64(r.req_attr("weight")?)?;
        let mut body = Vec::new();
        for cond in &r.req_child("CompoundPredicate")?.children {
            let field = cond.req_attr("field")?;
            let attr: AttrId = schema
                .attr_by_name(field)
                .ok_or_else(|| PmmlError::Value { detail: format!("unknown field {field:?}") })?;
            let domain = &schema.attr(attr).domain;
            match cond.name.as_str() {
                "Interval" => {
                    let AttrDomain::Binned { cuts } = domain else {
                        return Err(PmmlError::Structure {
                            detail: format!("Interval on categorical field {field:?}"),
                        });
                    };
                    let left = parse_f64(cond.req_attr("leftMargin")?)?;
                    let right = parse_f64(cond.req_attr("rightMargin")?)?;
                    // Map margins back to member indexes: the lo member's
                    // lower bound is `left`, the hi member's upper bound
                    // is `right` (±inf encode the end bins).
                    let lo = if left == f64::NEG_INFINITY {
                        0
                    } else {
                        cuts.iter().position(|&c| c == left).ok_or_else(|| PmmlError::Value {
                            detail: format!("leftMargin {left} is not a cut of {field:?}"),
                        })? as u16
                            + 1
                    };
                    let hi = if right == f64::INFINITY {
                        domain.cardinality() - 1
                    } else {
                        cuts.iter().position(|&c| c == right).ok_or_else(|| PmmlError::Value {
                            detail: format!("rightMargin {right} is not a cut of {field:?}"),
                        })? as u16
                    };
                    body.push(RuleCond::Range { attr, lo, hi });
                }
                "SimpleSetPredicate" => {
                    let mut members = MemberSet::empty(domain.cardinality());
                    for label in cond.req_child("Array")?.text.split_whitespace() {
                        let mm = domain
                            .encode(&mpq_types::Value::Str(label.to_string()))
                            .map_err(|e| PmmlError::Value { detail: e.to_string() })?;
                        members.insert(mm);
                    }
                    body.push(RuleCond::In { attr, members });
                }
                other => {
                    return Err(PmmlError::Structure {
                        detail: format!("unsupported rule condition <{other}>"),
                    })
                }
            }
        }
        rules.push(Rule { body, head, weight });
    }
    RuleSet::from_parts(schema.clone(), class_names, rules, default_class)
        .map_err(|e| PmmlError::Value { detail: e.to_string() })
}

// ---------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------

fn kmeans_to_xml(km: &KMeans) -> XmlNode {
    let mut m = XmlNode::new("ClusteringModel")
        .attr("modelClass", "centerBased")
        .attr("numberOfClusters", km.n_classes());
    for (i, (c, w)) in km.centroids().iter().zip(km.weights()).enumerate() {
        m = m.child(
            XmlNode::new("Cluster")
                .attr("name", format!("cluster_{i}"))
                .child(XmlNode::new("Array").attr("type", "real").with_text(float_list(c)))
                .child(
                    XmlNode::new("Extension")
                        .attr("name", "weights")
                        .attr("value", float_list(w)),
                ),
        );
    }
    m
}

fn kmeans_from_xml(m: &XmlNode, schema: &Schema) -> Result<KMeans, PmmlError> {
    let mut centroids = Vec::new();
    let mut weights = Vec::new();
    for c in m.find_all("Cluster") {
        centroids.push(parse_float_list(&c.req_child("Array")?.text)?);
        let w = c
            .find_all("Extension")
            .find(|e| e.get_attr("name") == Some("weights"))
            .ok_or_else(|| PmmlError::Structure { detail: "Cluster missing weights".into() })?;
        weights.push(parse_float_list(w.req_attr("value")?)?);
    }
    KMeans::from_parts(schema.clone(), centroids, weights)
        .map_err(|e| PmmlError::Value { detail: e.to_string() })
}

fn gmm_to_xml(g: &Gmm) -> XmlNode {
    let mut m = XmlNode::new("MixtureModel").attr("numberOfComponents", g.n_classes());
    for k in 0..g.n_classes() {
        let c = ClassId(k as u16);
        m = m.child(
            XmlNode::new("Component")
                .attr("tau", g.log_tau(c).exp())
                .child(XmlNode::new("Mean").with_text(float_list(&g.means()[k])))
                .child(XmlNode::new("Variance").with_text(float_list(&g.vars()[k]))),
        );
    }
    m
}

fn gmm_from_xml(m: &XmlNode, schema: &Schema) -> Result<Gmm, PmmlError> {
    let mut taus = Vec::new();
    let mut means = Vec::new();
    let mut vars = Vec::new();
    for c in m.find_all("Component") {
        taus.push(parse_f64(c.req_attr("tau")?)?);
        means.push(parse_float_list(&c.req_child("Mean")?.text)?);
        vars.push(parse_float_list(&c.req_child("Variance")?.text)?);
    }
    Gmm::from_parts(schema.clone(), taus, means, vars)
        .map_err(|e| PmmlError::Value { detail: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_models::{Classifier, TreeParams};
    use mpq_types::{Attribute, Dataset, LabeledDataset};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("age", AttrDomain::binned(vec![30.0, 63.0]).unwrap()),
            Attribute::new("color", AttrDomain::categorical(["red", "green", "blue"])),
        ])
        .unwrap()
    }

    fn training_data() -> LabeledDataset {
        let mut ds = Dataset::new(schema());
        let mut labels = Vec::new();
        for age in 0..3u16 {
            for color in 0..3u16 {
                for _ in 0..5 {
                    ds.push_encoded(&[age, color]).unwrap();
                    labels.push(ClassId(u16::from(age == 2 || color == 0)));
                }
            }
        }
        LabeledDataset::new(ds, labels, vec!["no".into(), "yes".into()]).unwrap()
    }

    #[test]
    fn tree_roundtrips_with_identical_predictions() {
        let tree = DecisionTree::train(&training_data(), TreeParams::default()).unwrap();
        let text = export(&PmmlModel::Tree(tree.clone())).unwrap();
        let back = import(&text).unwrap();
        let PmmlModel::Tree(t2) = back else { panic!("wrong model kind") };
        for age in 0..3u16 {
            for color in 0..3u16 {
                assert_eq!(tree.predict(&[age, color]), t2.predict(&[age, color]));
            }
        }
    }

    #[test]
    fn naive_bayes_roundtrips_exactly() {
        let nb = NaiveBayes::train(&training_data()).unwrap();
        let text = export(&PmmlModel::NaiveBayes(nb.clone())).unwrap();
        let PmmlModel::NaiveBayes(nb2) = import(&text).unwrap() else { panic!("kind") };
        // f64 Display is shortest-roundtrip, so parameters are identical.
        for age in 0..3u16 {
            for color in 0..3u16 {
                assert_eq!(nb.predict(&[age, color]), nb2.predict(&[age, color]));
                for c in 0..2 {
                    let a = nb.log_score(&[age, color], ClassId(c));
                    let b = nb2.log_score(&[age, color], ClassId(c));
                    assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn kmeans_roundtrips_exactly() {
        let s = Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
            Attribute::new("y", AttrDomain::binned(vec![1.5]).unwrap()),
        ])
        .unwrap();
        let km = KMeans::from_parts(
            s,
            vec![vec![0.25, 1.75], vec![2.5, 0.5]],
            vec![vec![1.0, 0.5], vec![2.0, 1.0]],
        )
        .unwrap();
        let text = export(&PmmlModel::KMeans(km.clone())).unwrap();
        let PmmlModel::KMeans(km2) = import(&text).unwrap() else { panic!("kind") };
        assert_eq!(km, km2);
    }

    #[test]
    fn gmm_roundtrips_exactly() {
        let s = Schema::new(vec![Attribute::new("x", AttrDomain::binned(vec![1.0]).unwrap())]).unwrap();
        let g = Gmm::from_parts(s, vec![0.25, 0.75], vec![vec![0.5], vec![2.5]], vec![vec![0.7], vec![1.3]])
            .unwrap();
        let text = export(&PmmlModel::Gmm(g.clone())).unwrap();
        let PmmlModel::Gmm(g2) = import(&text).unwrap() else { panic!("kind") };
        for k in 0..2u16 {
            assert!((g.score_raw(&[1.0], ClassId(k)) - g2.score_raw(&[1.0], ClassId(k))).abs() < 1e-12);
        }
    }

    #[test]
    fn rule_set_roundtrips_exactly() {
        use mpq_types::AttrId;
        let s = schema();
        let rules = vec![
            Rule {
                body: vec![
                    RuleCond::Range { attr: AttrId(0), lo: 1, hi: 2 },
                    RuleCond::In { attr: AttrId(1), members: MemberSet::of(3, [0, 2]) },
                ],
                head: ClassId(1),
                weight: 0.9,
            },
            Rule {
                body: vec![RuleCond::Range { attr: AttrId(0), lo: 0, hi: 0 }],
                head: ClassId(0),
                weight: 0.7,
            },
        ];
        let rs = RuleSet::from_parts(s, vec!["no".into(), "yes".into()], rules, ClassId(0))
            .unwrap();
        let text = export(&PmmlModel::Rules(rs.clone())).unwrap();
        let PmmlModel::Rules(rs2) = import(&text).unwrap() else { panic!("kind") };
        assert_eq!(rs, rs2);
        for age in 0..3u16 {
            for color in 0..3u16 {
                assert_eq!(rs.predict(&[age, color]), rs2.predict(&[age, color]));
            }
        }
    }

    #[test]
    fn export_rejects_ordered_split_on_categorical() {
        use mpq_types::AttrId;
        // `from_parts` only bounds-checks the cut member, so a LeMember
        // split over a categorical attribute constructs fine — export must
        // surface it as a typed error, not a panic.
        let root = Node::Internal {
            split: Split::LeMember { attr: AttrId(1), cut_member: 0 },
            left: Box::new(Node::Leaf { class: ClassId(0), support: 1 }),
            right: Box::new(Node::Leaf { class: ClassId(1), support: 1 }),
        };
        let tree = DecisionTree::from_parts(schema(), vec!["n".into(), "y".into()], root).unwrap();
        assert!(matches!(
            export(&PmmlModel::Tree(tree)),
            Err(PmmlError::Structure { .. })
        ));
    }

    #[test]
    fn export_rejects_range_cond_on_categorical() {
        use mpq_types::AttrId;
        let rules = vec![Rule {
            body: vec![RuleCond::Range { attr: AttrId(1), lo: 0, hi: 1 }],
            head: ClassId(1),
            weight: 0.5,
        }];
        let rs = RuleSet::from_parts(schema(), vec!["n".into(), "y".into()], rules, ClassId(0))
            .unwrap();
        assert!(matches!(
            export(&PmmlModel::Rules(rs)),
            Err(PmmlError::Structure { .. })
        ));
    }

    #[test]
    fn import_rejects_garbage() {
        assert!(import("<PMML/>").is_err(), "no dictionary");
        assert!(import("not xml").is_err());
        let no_model = XmlNode::new("PMML")
            .child(crate::schema::schema_to_xml(&schema()))
            .to_string_pretty();
        assert!(matches!(import(&no_model), Err(PmmlError::Structure { .. })));
    }

    #[test]
    fn tree_with_set_split_roundtrips() {
        use mpq_types::AttrId;
        let s = schema();
        let root = Node::Internal {
            split: Split::InSet { attr: AttrId(1), members: MemberSet::of(3, [0, 2]) },
            left: Box::new(Node::Leaf { class: ClassId(1), support: 3 }),
            right: Box::new(Node::Leaf { class: ClassId(0), support: 4 }),
        };
        let tree = DecisionTree::from_parts(s, vec!["n".into(), "y".into()], root).unwrap();
        let text = export(&PmmlModel::Tree(tree.clone())).unwrap();
        let PmmlModel::Tree(t2) = import(&text).unwrap() else { panic!("kind") };
        assert_eq!(tree, t2);
    }
}
