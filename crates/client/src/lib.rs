//! # mpq-client
//!
//! A blocking TCP client for the mining-predicates wire protocol (see
//! the `mpq-server` crate and DESIGN.md §9).
//!
//! [`Client::connect`] performs the versioned handshake and returns a
//! connected session; [`Client::statement`] runs one SQL statement and
//! returns the engine's own [`StatementOutcome`], reconstructed from
//! the wire — so results compare `==` against in-process execution,
//! which is exactly what the differential oracle tests do.
//!
//! Failures are total and typed ([`ClientError`]): a server-side
//! refusal arrives as [`ClientError::Remote`] with the exact
//! [`ServerError`]; a torn or corrupted frame is [`ClientError::Frame`]
//! (never a panic, never a half-decoded value); a severed connection is
//! [`ClientError::Disconnected`].
//!
//! For tests, [`Client::connect_with`] takes a [`FaultInjector`]: with
//! `conn_slow_loris` armed the client dribbles its next request one
//! byte at a time — the misbehaving peer the server's request-read
//! timeout exists to defend against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mpq_engine::{EngineHealth, FaultInjector, QueryOutcome, StatementOutcome};
use mpq_server::protocol::{
    decode_frame, encode_frame, FrameError, Request, Response, ServerError,
    DEFAULT_MAX_FRAME_LEN, PROTO_VERSION,
};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// A socket-level failure.
    Io(String),
    /// The server closed the connection (EOF mid-exchange).
    Disconnected,
    /// A frame arrived torn, corrupted, or undecodable.
    Frame(String),
    /// The server answered with a typed error.
    Remote(ServerError),
    /// The server answered with a message that makes no sense for the
    /// request (protocol bug, not an I/O accident).
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Frame(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Unexpected(e) => write!(f, "unexpected response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e.to_string())
    }
}

/// A connected, handshaken session with an `mpq-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    session_id: u64,
    faults: Option<Arc<FaultInjector>>,
}

impl Client {
    /// Connects to `addr` and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_named(addr, "mpq-client")
    }

    /// Like [`Client::connect`] with a caller-chosen client name (shown
    /// in server-side diagnostics).
    pub fn connect_named(
        addr: impl ToSocketAddrs,
        name: &str,
    ) -> Result<Client, ClientError> {
        Client::connect_inner(addr, name, None)
    }

    /// Test hook: a client that honours connection-level fault
    /// injection (currently `conn_slow_loris`, which dribbles the next
    /// request one byte at a time to provoke the server's read
    /// timeout).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        faults: Arc<FaultInjector>,
    ) -> Result<Client, ClientError> {
        Client::connect_inner(addr, "mpq-client-faulty", Some(faults))
    }

    fn connect_inner(
        addr: impl ToSocketAddrs,
        name: &str,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client { stream, buf: Vec::new(), session_id: 0, faults };
        let resp = client.exchange(&Request::Hello {
            proto_version: PROTO_VERSION,
            client: name.to_string(),
        })?;
        match resp {
            Response::Hello { session_id, .. } => {
                client.session_id = session_id;
                Ok(client)
            }
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Hello"))),
        }
    }

    /// The session id the server assigned at handshake.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Executes one SQL statement (query, DDL, or session `SET`).
    pub fn statement(&mut self, sql: &str) -> Result<StatementOutcome, ClientError> {
        let resp = self.exchange(&Request::Statement { sql: sql.to_string() })?;
        match resp {
            Response::Outcome(o) => Ok(o),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Statement"))),
        }
    }

    /// Executes a statement that must be a SELECT; returns its
    /// [`QueryOutcome`].
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome, ClientError> {
        match self.statement(sql)? {
            StatementOutcome::Query(q) => Ok(q),
            other => Err(ClientError::Unexpected(format!("{other:?} to a SELECT"))),
        }
    }

    /// Fetches the engine's health report (models, envelope state,
    /// recovery report).
    pub fn health(&mut self) -> Result<EngineHealth, ClientError> {
        let resp = self.exchange(&Request::Health)?;
        match resp {
            Response::Health(h) => Ok(h),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Health"))),
        }
    }

    /// Asks the server to begin its graceful shutdown (drain, then
    /// checkpoint). Returns once the server acknowledges.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let resp = self.exchange(&Request::Shutdown)?;
        match resp {
            Response::ShutdownStarted => Ok(()),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Shutdown"))),
        }
    }

    /// Closes the session politely.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        let resp = self.exchange(&Request::Goodbye)?;
        match resp {
            Response::Goodbye => Ok(()),
            Response::Error(e) => Err(ClientError::Remote(e)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Goodbye"))),
        }
    }

    fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let frame = encode_frame(&req.encode());
        let slow = self
            .faults
            .as_ref()
            .is_some_and(|f| f.conn_slow_loris_armed());
        if slow {
            // One byte at a time with a pause between: the slow-loris
            // shape the server's request-read deadline cuts off.
            for &b in &frame {
                if self.stream.write_all(&[b]).is_err() {
                    // The server gave up on us — exactly what the fault
                    // is meant to provoke; surface it on the next recv.
                    return Ok(());
                }
                let _ = self.stream.flush();
                std::thread::sleep(Duration::from_millis(10));
            }
            return Ok(());
        }
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match decode_frame(&self.buf, DEFAULT_MAX_FRAME_LEN) {
                Ok((payload, consumed)) => {
                    self.buf.drain(..consumed);
                    return Response::decode(&payload)
                        .map_err(|e| ClientError::Frame(e.to_string()));
                }
                Err(FrameError::Incomplete { .. }) => {}
                Err(e) => return Err(ClientError::Frame(e.to_string())),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
    }
}
