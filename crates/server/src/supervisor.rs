//! Supervised failover: health-check the primary, promote the standby
//! when it dies, repoint writers.
//!
//! The supervisor owns three pieces of shared state and nothing else:
//!
//! * the **primary handle** (`Arc<RwLock<String>>`) — the address
//!   writers dial. `mpq_client::ReliableClient::with_addr_handle`
//!   re-reads it on every reconnect, so repointing writers is one
//!   write to this lock;
//! * the **standby handle** — the address of the current promotion
//!   candidate (empty = none; promotion is impossible until a standby
//!   exists). A harness that brings up a fresh standby after each
//!   failover writes its address here;
//! * the **peer file** — the file the primary's WAL shipper re-reads
//!   (see [`crate::replication`]). The supervisor rewrites it
//!   atomically (write-then-rename) after a promotion so the new
//!   primary ships to whatever standby appears next.
//!
//! The failure detector is deliberately simple: a `ReplState` ping per
//! tick, a consecutive-failure threshold, no quorum. What makes the
//! promotion *safe* is not the detector but the epoch fence — if the
//! detector fires on a slow-but-alive primary, the promotion bumps the
//! epoch and the old primary is fenced the moment it next talks to
//! anything newer, so a false positive costs availability of one node,
//! never divergence.

use crate::replication::{PeerError, ReplPeer};
use mpq_engine::ReplRole;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Supervisor tuning.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Interval between health probes of the primary.
    pub check_interval: Duration,
    /// Consecutive failed probes before the standby is promoted.
    pub fail_threshold: u32,
    /// Connect and per-read deadline for probes and the promote call.
    pub io_timeout: Duration,
    /// The WAL shipper's peer file, rewritten after a promotion so the
    /// new primary ships to the next standby that registers.
    pub peer_file: PathBuf,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            check_interval: Duration::from_millis(50),
            fail_threshold: 3,
            io_timeout: Duration::from_millis(500),
            peer_file: PathBuf::from("standby.addr"),
        }
    }
}

/// A running supervisor thread.
pub struct SupervisorHandle {
    stop: Arc<AtomicBool>,
    promotions: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl SupervisorHandle {
    /// Signals the thread and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Failovers performed so far.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }
}

/// Atomically publishes `addr` into `path` (write a sibling temp file,
/// then rename): readers see the old address or the new one, never a
/// torn line.
pub fn write_peer_file(path: &Path, addr: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, addr)?;
    std::fs::rename(&tmp, path)
}

/// Starts the supervision loop. `primary` is the writers' shared
/// address handle; `standby` holds the current promotion candidate
/// (empty string = none).
pub fn start_supervisor(
    primary: Arc<RwLock<String>>,
    standby: Arc<RwLock<String>>,
    cfg: SupervisorConfig,
) -> SupervisorHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let promotions = Arc::new(AtomicU64::new(0));
    let t_stop = Arc::clone(&stop);
    let t_promotions = Arc::clone(&promotions);
    let thread = thread::Builder::new()
        .name("mpq-supervisor".to_string())
        .spawn(move || supervise_loop(&primary, &standby, &cfg, &t_stop, &t_promotions))
        .expect("spawn supervisor thread");
    SupervisorHandle { stop, promotions, thread: Some(thread) }
}

fn read_handle(h: &RwLock<String>) -> String {
    h.read().unwrap_or_else(|p| p.into_inner()).clone()
}

fn supervise_loop(
    primary: &RwLock<String>,
    standby: &RwLock<String>,
    cfg: &SupervisorConfig,
    stop: &AtomicBool,
    promotions: &AtomicU64,
) {
    let mut fails = 0u32;
    while !stop.load(Ordering::SeqCst) {
        thread::sleep(cfg.check_interval);
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let primary_addr = read_handle(primary);
        if probe(&primary_addr, cfg.io_timeout) {
            fails = 0;
            continue;
        }
        fails += 1;
        if fails < cfg.fail_threshold {
            continue;
        }
        fails = 0;
        let standby_addr = read_handle(standby);
        if standby_addr.is_empty() || standby_addr == primary_addr {
            continue; // nothing to promote onto
        }
        if promote(&standby_addr, cfg).is_ok() {
            // Repoint writers first (they start landing on the new
            // primary immediately), then clear the standby slot and the
            // shipper's peer file — the new primary has no standby
            // until the harness registers one.
            *primary.write().unwrap_or_else(|p| p.into_inner()) = standby_addr;
            *standby.write().unwrap_or_else(|p| p.into_inner()) = String::new();
            let _ = write_peer_file(&cfg.peer_file, "");
            promotions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One liveness probe: can we connect, shake hands, and get a
/// `ReplState` answer within the deadline?
fn probe(addr: &str, timeout: Duration) -> bool {
    match ReplPeer::connect(addr, timeout) {
        Ok(mut peer) => peer.repl_state().is_ok(),
        Err(_) => false,
    }
}

/// Promotes the standby at `addr`; succeeds only if the node confirms
/// it now serves as primary.
fn promote(addr: &str, cfg: &SupervisorConfig) -> Result<(), PeerError> {
    let mut peer = ReplPeer::connect(addr, cfg.io_timeout)?;
    let state = peer.promote()?;
    if state.role == ReplRole::Primary {
        Ok(())
    } else {
        Err(PeerError::Unexpected(format!("promotion left the node a {}", state.role)))
    }
}
