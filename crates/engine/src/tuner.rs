//! Index-tuning-wizard-lite.
//!
//! The paper generates a workload of envelope queries per (dataset,
//! model) and feeds it to the Index Tuning Wizard, implementing whatever
//! indexes it recommends. This module reproduces that step with the same
//! flavor of configuration search: candidate indexes are (a) single
//! columns referenced by sargable atoms and (b) composite column sets
//! taken from conjunctive disjuncts (the shape upper envelopes produce),
//! materialized all at once and then greedily *dropped* while the
//! estimated workload cost does not regress — drop-based search is what
//! lets multi-index union plans, which need several indexes simultaneously,
//! survive tuning.

use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::optimizer::{choose_plan, estimate_selectivity, OptimizerOptions};
use mpq_types::AttrId;

/// Maximum columns in a candidate composite index. Upper-envelope
/// disjuncts are conjunctions of many moderately selective atoms (tree
/// paths, region bounds); wide composites — effectively covering indexes
/// for a disjunct — are what make their *product* selectivity seekable.
const MAX_COMPOSITE_COLS: usize = 8;

/// Cap on materialized candidate indexes per tuning session (index
/// builds are an O(rows) pass each).
const MAX_CANDIDATES: usize = 128;

/// Outcome of a tuning session.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Indexes kept, as sorted column sets.
    pub created: Vec<Vec<AttrId>>,
    /// Estimated workload cost before tuning.
    pub cost_before: f64,
    /// Estimated workload cost after tuning.
    pub cost_after: f64,
}

/// Recommends and creates indexes on `table_id` for the workload of
/// predicates, mutating the catalog. `max_indexes` bounds the budget.
pub fn tune_indexes(
    catalog: &mut Catalog,
    table_id: usize,
    workload: &[Expr],
    max_indexes: usize,
    opts: &OptimizerOptions,
) -> TuningReport {
    let schema = catalog.table(table_id).table.schema().clone();
    let workload_cost = |cat: &Catalog| -> f64 {
        workload
            .iter()
            .map(|e| choose_plan(e.clone(), table_id, &schema, cat, opts).est_cost)
            .sum()
    };
    let cost_before = workload_cost(catalog);

    let mut candidates = candidate_column_sets(catalog, table_id, workload);
    candidates.retain(|c| catalog.table(table_id).index_over(c).is_none());
    candidates.truncate(MAX_CANDIDATES);
    if max_indexes == 0 || candidates.is_empty() {
        return TuningReport { created: Vec::new(), cost_before, cost_after: cost_before };
    }

    // Materialize all candidates (multi-index union plans need several
    // indexes at once, so add-one-at-a-time greedy would starve them),
    // plan the workload, and keep exactly the indexes the chosen plans
    // use. Iterate: dropping unused indexes can only re-route plans among
    // surviving indexes, so a couple of passes reach a fixpoint.
    for cand in &candidates {
        catalog.create_index(table_id, cand);
    }
    let mut kept = candidates;
    for _ in 0..3 {
        let mut used = vec![false; kept.len()];
        for e in workload {
            let plan = choose_plan(e.clone(), table_id, &schema, catalog, opts);
            let seeks: Vec<&crate::optimizer::Seek> = match &plan.access {
                crate::optimizer::AccessPath::IndexSeek(s) => vec![s],
                crate::optimizer::AccessPath::IndexUnion(ss) => ss.iter().collect(),
                _ => Vec::new(),
            };
            for s in seeks {
                let cols = catalog.table(table_id).indexes[s.index].columns().to_vec();
                if let Some(i) = kept.iter().position(|k| *k == cols) {
                    used[i] = true;
                }
            }
        }
        if used.iter().all(|&u| u) {
            break;
        }
        let mut i = 0;
        kept.retain(|cols| {
            let keep = used[i];
            i += 1;
            if !keep {
                catalog.drop_index(table_id, cols);
            }
            keep
        });
        if kept.is_empty() {
            break;
        }
    }
    // Enforce the budget: drop the widest (most expensive to maintain)
    // indexes first.
    while kept.len() > max_indexes {
        let widest = kept
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.len())
            .map(|(i, _)| i)
            .expect("nonempty");
        catalog.drop_index(table_id, &kept.remove(widest));
    }

    let cost_after = workload_cost(catalog);
    TuningReport { created: kept, cost_before, cost_after: cost_after.min(cost_before) }
}

/// Candidate column sets: every atom column alone, plus per-disjunct
/// composites of the (up to) `MAX_COMPOSITE_COLS` most selective atoms.
fn candidate_column_sets(catalog: &Catalog, table_id: usize, workload: &[Expr]) -> Vec<Vec<AttrId>> {
    let stats = &catalog.table(table_id).stats;
    let mut out: Vec<Vec<AttrId>> = Vec::new();
    let mut push = |mut cols: Vec<AttrId>| {
        cols.sort_unstable();
        cols.dedup();
        if !cols.is_empty() && !out.contains(&cols) {
            out.push(cols);
        }
    };

    // Conjunction groups: the expression itself, each AND conjunct, and
    // each disjunct of every OR encountered.
    fn groups<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        out.push(e);
        match e {
            Expr::And(ps) | Expr::Or(ps) => {
                for p in ps {
                    groups(p, out);
                }
            }
            Expr::Not(p) => groups(p, out),
            _ => {}
        }
    }

    // Per-query composites first: a single wide index over the columns a
    // query's envelope constrains most often serves *every* disjunct of
    // that query's union, which keeps the candidate count linear in
    // queries rather than disjuncts.
    for e in workload {
        let mut gs = Vec::new();
        groups(e, &mut gs);
        let mut freq: std::collections::HashMap<AttrId, (usize, f64)> =
            std::collections::HashMap::new();
        for g in &gs {
            if let Expr::And(ps) | Expr::Or(ps) = g {
                let _ = ps;
            }
            if let Expr::Atom(a) = g {
                let s = estimate_selectivity(&Expr::Atom(a.clone()), stats, catalog);
                let e = freq.entry(a.attr).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += s;
            }
        }
        if freq.len() > 1 {
            let mut cols: Vec<(AttrId, usize, f64)> =
                freq.into_iter().map(|(a, (n, s))| (a, n, s / n as f64)).collect();
            // Most frequently constrained first; ties toward selectivity.
            cols.sort_by(|x, y| y.1.cmp(&x.1).then(x.2.partial_cmp(&y.2).expect("finite")));
            push(cols.iter().take(MAX_COMPOSITE_COLS).map(|(a, _, _)| *a).collect());
        }
    }

    for e in workload {
        let mut gs = Vec::new();
        groups(e, &mut gs);
        for g in gs {
            let atoms: Vec<(AttrId, f64)> = match g {
                Expr::Atom(a) => vec![(
                    a.attr,
                    estimate_selectivity(&Expr::Atom(a.clone()), stats, catalog),
                )],
                Expr::And(ps) => ps
                    .iter()
                    .filter_map(|p| match p {
                        Expr::Atom(a) => Some((
                            a.attr,
                            estimate_selectivity(&Expr::Atom(a.clone()), stats, catalog),
                        )),
                        _ => None,
                    })
                    .collect(),
                _ => continue,
            };
            if atoms.is_empty() {
                continue;
            }
            // Singletons.
            for (a, _) in &atoms {
                push(vec![*a]);
            }
            // Composites of the most selective columns: a narrow (3-col)
            // and a wide (up to MAX_COMPOSITE_COLS) variant per group.
            if atoms.len() > 1 {
                let mut sorted = atoms.clone();
                sorted.sort_by(|x, y| x.1.partial_cmp(&y.1).expect("finite selectivity"));
                push(sorted.iter().take(3).map(|(a, _)| *a).collect());
                if sorted.len() > 3 {
                    push(sorted.iter().take(MAX_COMPOSITE_COLS).map(|(a, _)| *a).collect());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Atom, AtomPred};
    use crate::table::Table;
    use mpq_types::{AttrDomain, Attribute, Dataset, Schema};

    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Attribute::new("hot", AttrDomain::categorical(["rare", "common"])),
            Attribute::new("cold", AttrDomain::categorical(["x", "y"])),
            Attribute::new(
                "warm",
                AttrDomain::categorical((0..20).map(|i| format!("w{i}")).collect::<Vec<_>>()),
            ),
        ])
        .unwrap();
        let rows = (0..40_000).map(|i| {
            vec![u16::from(i % 200 != 0), (i % 2) as u16, (i % 20) as u16]
        });
        let ds = Dataset::from_rows(schema, rows).unwrap();
        let mut cat = Catalog::new();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat
    }

    fn atom(attr: u16, m: u16) -> Expr {
        Expr::Atom(Atom { attr: AttrId(attr), pred: AtomPred::Eq(m) })
    }

    #[test]
    fn tuner_creates_index_for_selective_workload() {
        let mut cat = catalog();
        let workload = vec![atom(0, 0), atom(0, 0), atom(0, 0)]; // 0.5% selectivity
        let report = tune_indexes(&mut cat, 0, &workload, 4, &OptimizerOptions::default());
        assert_eq!(report.created, vec![vec![AttrId(0)]]);
        assert!(report.cost_after < report.cost_before);
        assert!(cat.table(0).index_on(AttrId(0)).is_some());
    }

    #[test]
    fn tuner_builds_composite_for_conjunctions() {
        let mut cat = catalog();
        // cold=x AND warm=w0: 50% and 5% alone, 2.5% together — the
        // composite index is the only one that captures the conjunction.
        let workload = vec![Expr::and(vec![atom(1, 0), atom(2, 0)])];
        let report = tune_indexes(&mut cat, 0, &workload, 4, &OptimizerOptions::default());
        assert!(
            report.created.contains(&vec![AttrId(1), AttrId(2)]),
            "expected a composite index, got {:?}",
            report.created
        );
        assert!(report.cost_after < report.cost_before);
    }

    #[test]
    fn tuner_supports_union_workloads() {
        let mut cat = catalog();
        // OR of two conjunctive disjuncts: a union plan needs both
        // composites simultaneously, which add-one-at-a-time greedy
        // would never discover.
        let disj = Expr::or(vec![
            Expr::and(vec![atom(0, 0), atom(1, 0)]),
            Expr::and(vec![atom(0, 0), atom(1, 1)]),
        ]);
        let report =
            tune_indexes(&mut cat, 0, std::slice::from_ref(&disj), 4, &OptimizerOptions::default());
        assert!(report.cost_after < report.cost_before, "{report:?}");
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(disj, 0, &schema, &cat, &OptimizerOptions::default());
        assert!(plan.access.changed_from_scan(), "{plan:?}");
    }

    #[test]
    fn tuner_skips_useless_indexes() {
        let mut cat = catalog();
        // 50% selectivity on `cold`: an index would never be chosen.
        let workload = vec![atom(1, 0)];
        let report = tune_indexes(&mut cat, 0, &workload, 4, &OptimizerOptions::default());
        assert!(report.created.is_empty(), "{report:?}");
        assert_eq!(report.cost_before, report.cost_after);
        assert!(cat.table(0).index_on(AttrId(1)).is_none());
    }

    #[test]
    fn budget_limits_created_indexes() {
        let mut cat = catalog();
        let workload = vec![atom(0, 0), atom(1, 0)];
        let report = tune_indexes(&mut cat, 0, &workload, 0, &OptimizerOptions::default());
        assert!(report.created.is_empty());
        assert!(cat.table(0).indexes.is_empty());
    }

    #[test]
    fn empty_workload_is_a_noop() {
        let mut cat = catalog();
        let report = tune_indexes(&mut cat, 0, &[], 4, &OptimizerOptions::default());
        assert!(report.created.is_empty());
        assert_eq!(report.cost_before, 0.0);
    }

    #[test]
    fn candidates_include_singletons_and_composites() {
        let cat = catalog();
        let e = Expr::and(vec![atom(0, 0), atom(1, 0), atom(2, 0)]);
        let cands = candidate_column_sets(&cat, 0, &[e]);
        assert!(cands.contains(&vec![AttrId(0)]));
        assert!(cands.contains(&vec![AttrId(1)]));
        assert!(cands.contains(&vec![AttrId(0), AttrId(1), AttrId(2)]));
    }
}
