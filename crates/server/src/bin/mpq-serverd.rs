//! `mpq-serverd`: the mining-predicates SQL server daemon.
//!
//! ```text
//! mpq-serverd [--addr HOST:PORT] [--data-dir DIR | --demo]
//!             [--port-file FILE] [--max-in-flight N] [--max-queue N]
//!             [--queue-timeout-ms N]
//!             [--standby] [--read-only] [--peer-file FILE]
//!             [--chaos-seed SEED [--chaos-period-ms N]]
//! ```
//!
//! With `--data-dir` the engine opens (or creates) a durable catalog in
//! `DIR` — WAL, snapshots, crash recovery, the lot. With `--demo` (the
//! default) it serves an in-memory demo catalog: a table `t(a, b,
//! label)` with secondary indexes and two mining models (`m_tree`,
//! `m_bayes`) ready for `PREDICT(...)` queries. An empty durable
//! directory is seeded with the same demo content so the daemon is
//! immediately queryable either way.
//!
//! The daemon runs until a client sends the protocol `Shutdown` request
//! (the REPL's `.shutdown`), then drains in-flight queries, checkpoints,
//! prints the drain report and exits 0.
//!
//! Replication (DESIGN.md §12): `--standby` starts the node as a
//! read-only replica — it refuses mutations with a typed error, applies
//! the primary's shipped WAL, and is promotable by a supervisor.
//! `--read-only` refuses mutations without making the node a replica.
//! `--peer-file FILE` starts the WAL shipper with synchronous acks: the
//! node ships committed WAL to whatever standby address the file holds
//! (re-read on every reconnect, so a supervisor repoints it by
//! rewriting the file), and mutations acknowledge only after the
//! standby has them. A standby started with `--peer-file` ships only
//! after it is promoted.
//!
//! `--chaos-seed` arms a deterministic fault schedule: a background
//! thread steps a seeded xorshift generator once per period and arms
//! connection faults (responses dropped mid-frame, torn frames) and
//! WAL faults (ENOSPC pulses, torn writes, fsync failures) against the
//! engine's [`FaultInjector`]. The same seed produces the same fault
//! sequence, so a chaos run that finds a bug can be replayed. Strictly
//! a test harness — never set it on a server you care about.

use mpq_engine::{Catalog, Engine, FaultInjector, Table};
use mpq_server::{AdmissionConfig, Server, ServerConfig};
use mpq_types::{AttrDomain, AttrId, Attribute, Dataset, Schema};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    data_dir: Option<String>,
    port_file: Option<String>,
    max_in_flight: Option<usize>,
    max_queue: Option<usize>,
    queue_timeout_ms: Option<u64>,
    standby: bool,
    read_only: bool,
    peer_file: Option<String>,
    chaos_seed: Option<u64>,
    chaos_period_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        data_dir: None,
        port_file: None,
        max_in_flight: None,
        max_queue: None,
        queue_timeout_ms: None,
        standby: false,
        read_only: false,
        peer_file: None,
        chaos_seed: None,
        chaos_period_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--demo" => args.data_dir = None,
            "--port-file" => args.port_file = Some(value("--port-file")?),
            "--max-in-flight" => {
                args.max_in_flight =
                    Some(value("--max-in-flight")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--max-queue" => {
                args.max_queue =
                    Some(value("--max-queue")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--queue-timeout-ms" => {
                args.queue_timeout_ms =
                    Some(value("--queue-timeout-ms")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--standby" => args.standby = true,
            "--read-only" => args.read_only = true,
            "--peer-file" => args.peer_file = Some(value("--peer-file")?),
            "--chaos-seed" => {
                args.chaos_seed =
                    Some(value("--chaos-seed")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--chaos-period-ms" => {
                args.chaos_period_ms =
                    Some(value("--chaos-period-ms")?.parse().map_err(|e| format!("{e}"))?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1", "a2", "a3"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1", "b2"])),
        Attribute::new("label", AttrDomain::categorical(["neg", "pos"])),
    ])
    .expect("demo schema is valid")
}

/// Seeds the demo catalog: table `t`, two single-column indexes, and
/// two classifiers trained on a deterministic concept.
fn seed_demo(engine: &Engine) -> Result<(), String> {
    let mut ds = Dataset::new(demo_schema());
    for i in 0..600u16 {
        let (a, b) = (i % 4, (i / 4) % 3);
        let label = u16::from(a >= 2 && b != 1);
        ds.push_encoded(&[a, b, label]).map_err(|e| e.to_string())?;
    }
    engine
        .create_table(Table::with_page_bytes("t", &ds, 1024))
        .map_err(|e| e.to_string())?;
    engine.create_index("t", &[AttrId(0)]).map_err(|e| e.to_string())?;
    engine.create_index("t", &[AttrId(1)]).map_err(|e| e.to_string())?;
    for ddl in [
        "CREATE MINING MODEL m_tree ON t PREDICT label USING decision_tree",
        "CREATE MINING MODEL m_bayes ON t PREDICT label USING bayes",
    ] {
        engine.execute_sql(ddl).map_err(|e| format!("{ddl}: {e}"))?;
    }
    Ok(())
}

/// The deterministic fault schedule. Each tick draws once from a
/// seeded xorshift64 stream and arms at most one fault:
///
/// * ~25%: drop the next response mid-frame (one-shot);
/// * ~12%: flip a byte in the next response frame (one-shot);
/// * ~6%: an ENOSPC pulse — WAL appends fail typed for 1–3 ticks,
///   then the "disk" frees up again (level-triggered);
/// * ~2%: tear the next WAL append (one-shot, write path dead until
///   restart — the server degrades to read-only);
/// * ~2%: fail the next WAL fsync (one-shot, same degradation, but
///   the frame reaches the file: the crash-window case);
/// * otherwise: a quiet tick.
///
/// The thread is detached: it dies with the process, which under a
/// chaos supervisor is usually a SIGKILL anyway.
fn chaos_schedule(faults: Arc<FaultInjector>, seed: u64, period: Duration) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut enospc_until = 0u64;
    for tick in 0u64.. {
        std::thread::sleep(period);
        if tick >= enospc_until && faults.wal_enospc_armed() {
            faults.set_wal_enospc(false);
            eprintln!("mpq-serverd: chaos[{tick}]: enospc cleared");
        }
        let fault = match next() % 100 {
            0..=24 => {
                faults.set_conn_drop_mid_response(true);
                "conn_drop_mid_response"
            }
            25..=36 => {
                faults.set_conn_torn_frame(true);
                "conn_torn_frame"
            }
            37..=42 => {
                faults.set_wal_enospc(true);
                enospc_until = tick + 1 + next() % 3;
                "wal_enospc"
            }
            43..=44 => {
                faults.set_wal_torn_write(true);
                "wal_torn_write"
            }
            45..=46 => {
                faults.set_wal_fsync_fail(true);
                "wal_fsync_fail"
            }
            _ => continue,
        };
        eprintln!("mpq-serverd: chaos[{tick}]: {fault}");
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    if args.standby && args.data_dir.is_none() {
        return Err("--standby requires --data-dir (replica replay must be durable)".into());
    }
    let engine = match &args.data_dir {
        Some(dir) => Engine::open(dir).map_err(|e| format!("open {dir}: {e}"))?,
        None => Engine::new(Catalog::new()),
    };
    if args.standby {
        engine.set_standby();
        eprintln!("mpq-serverd: serving as standby (read-only, awaiting shipped WAL)");
    }
    // A standby's content comes from the primary; a read-only node must
    // not mutate at all. Only a writable primary self-seeds.
    if engine.health().tables == 0 && !args.standby && !args.read_only {
        seed_demo(&engine)?;
        eprintln!("mpq-serverd: seeded demo catalog (table t, models m_tree, m_bayes)");
    }
    if let Some(report) = engine.health().recovery {
        eprintln!(
            "mpq-serverd: recovered catalog (clean_shutdown={}, wal_records_replayed={})",
            report.clean_shutdown, report.wal_records_replayed
        );
    }

    if let Some(seed) = args.chaos_seed {
        let faults = engine.fault_injector();
        let period = Duration::from_millis(args.chaos_period_ms.unwrap_or(25));
        std::thread::Builder::new()
            .name("chaos".to_string())
            .spawn(move || chaos_schedule(faults, seed, period))
            .map_err(|e| format!("spawn chaos thread: {e}"))?;
        eprintln!(
            "mpq-serverd: CHAOS SCHEDULE ARMED (seed {seed}, period {}ms) — test harness only",
            period.as_millis()
        );
    }

    let mut admission = AdmissionConfig::default();
    if let Some(n) = args.max_in_flight {
        admission.max_in_flight = n.max(1);
    }
    if let Some(n) = args.max_queue {
        admission.max_queue = n;
    }
    if let Some(ms) = args.queue_timeout_ms {
        admission.queue_timeout = Duration::from_millis(ms);
    }

    let cfg = ServerConfig {
        addr: args.addr.clone(),
        admission,
        // `--standby` is *not* static read-only: the server refuses
        // mutations while the engine's role is Standby, and the refusal
        // lifts at promotion without a restart.
        read_only: args.read_only,
        ..ServerConfig::default()
    };
    let engine = Arc::new(engine);
    let shipper = args.peer_file.as_ref().map(|path| {
        // Shipping implies synchronous acks: a mutation acknowledges
        // only once the standby holds it, so a failover loses nothing.
        engine.enable_sync_replication();
        eprintln!("mpq-serverd: WAL shipper armed (peer file {path}, synchronous acks)");
        mpq_server::start_shipper(
            Arc::clone(&engine),
            mpq_server::ShipperConfig {
                peer_file: path.into(),
                ..mpq_server::ShipperConfig::default()
            },
        )
    });
    let server =
        Server::start(engine, cfg).map_err(|e| format!("bind {}: {e}", args.addr))?;
    let addr = server.local_addr();
    if let Some(path) = &args.port_file {
        // Write-then-rename so a watcher never reads a half-written
        // address.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, addr.to_string()).map_err(|e| format!("{tmp}: {e}"))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))?;
    }
    println!("mpq-serverd: listening on {addr}");

    server.wait_shutdown_requested();
    eprintln!("mpq-serverd: shutdown requested, draining");
    let report = server.shutdown();
    if let Some(s) = shipper {
        s.stop();
    }
    println!("mpq-serverd: {report}");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mpq-serverd: error: {e}");
            ExitCode::FAILURE
        }
    }
}
