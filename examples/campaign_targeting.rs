//! The paper's motivating scenario (§1): *"Find customers who visited
//! the MSNBC site last week and who are predicted to belong to the
//! category of baseball fans"* — a mail-campaign targeting query where
//! the predicted category is a small fraction of visitors.
//!
//! ```sh
//! cargo run --example campaign_targeting
//! ```

use mining_predicates::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

fn main() {
    // Customer profile schema.
    let schema = Schema::new(vec![
        Attribute::new("age", AttrDomain::binned(vec![25.0, 40.0, 60.0]).unwrap()),
        Attribute::new("region", AttrDomain::categorical(["west", "midwest", "south", "east"])),
        Attribute::new("sports_pages_viewed", AttrDomain::binned(vec![2.0, 10.0, 30.0]).unwrap()),
        Attribute::new("visited_last_week", AttrDomain::categorical(["no", "yes"])),
    ])
    .expect("valid schema");

    // Synthesize a customer population where baseball fans are rare
    // (~6%): young-ish, heavy sports readers, concentrated in two regions.
    let mut rng = StdRng::seed_from_u64(42);
    let mut customers = Dataset::new(schema.clone());
    let mut labels = Vec::new();
    for _ in 0..60_000 {
        let age = rng.random_range(0..4u16);
        let region = rng.random_range(0..4u16);
        let sports: u16 = if rng.random_bool(0.12) { 3 } else { rng.random_range(0..3u16) };
        let visited = u16::from(rng.random_bool(0.3));
        let fan = sports == 3 && age <= 1 && (region == 0 || region == 2);
        customers.push_encoded(&[age, region, sports, visited]).expect("members in range");
        labels.push(ClassId(u16::from(fan)));
    }
    let train = LabeledDataset::new(
        customers.clone(),
        labels,
        vec!["other".into(), "baseball_fan".into()],
    )
    .expect("aligned labels");

    // Train the category model on a sample; the campaign query runs on
    // the full customer table.
    let tree = DecisionTree::train(&train, mpq_models::TreeParams::default()).expect("nonempty");
    println!("category model: {} leaves, train accuracy {:.1}%", tree.n_leaves(), 100.0 * accuracy(&tree, &train));
    let fan_env = tree.envelope(ClassId(1), &DeriveOptions::default());
    println!(
        "derived predicate for 'baseball_fan' (exact: {}):\n  WHERE {}\n",
        fan_env.exact,
        envelope_to_sql(&schema, &fan_env)
    );

    let mut catalog = Catalog::new();
    catalog.add_table(Table::from_dataset("customers", &customers)).expect("fresh");
    catalog.add_model("fan_model", Arc::new(tree), DeriveOptions::default()).expect("fresh");
    let engine = Engine::new(catalog);

    // Tune indexes for the campaign workload.
    let schema2 = schema.clone();
    let envs: Vec<Expr> = engine.catalog().model(0).envelopes
        .iter()
        .map(|e| mpq_engine::envelope_to_expr(&schema2, e).normalize(&schema2))
        .collect();
    let opts = engine.options();
    tune_indexes(&mut engine.catalog_mut(), 0, &envs, 8, &opts);

    let sql = "SELECT * FROM customers \
               WHERE visited_last_week = 'yes' AND PREDICT(fan_model) = 'baseball_fan'";
    println!("campaign query:\n  {sql}\n");

    let optimized = engine.query(sql).expect("valid query");
    println!("-- optimized (envelope added for access-path selection) --");
    println!("{}", optimized.plan);
    println!(
        "target customers: {} | pages: {} | model invocations: {}\n",
        optimized.metrics.output_rows,
        optimized.metrics.total_pages(),
        optimized.metrics.model_invocations
    );

    engine.set_use_envelopes(false);
    let baseline = engine.query(sql).expect("valid query");
    println!("-- extract-and-mine baseline (§2.1) --");
    println!("{}", baseline.plan);
    println!(
        "target customers: {} | pages: {} | model invocations: {}",
        baseline.metrics.output_rows,
        baseline.metrics.total_pages(),
        baseline.metrics.model_invocations
    );

    assert_eq!(optimized.rows, baseline.rows);
    println!(
        "\nsame mailing list, {}x fewer model invocations.",
        baseline.metrics.model_invocations / optimized.metrics.model_invocations.max(1)
    );
}
