//! Fault-injection suite: every injected fault must surface as a typed
//! error or as a sound fallback whose row set equals the unoptimized
//! full-scan + residual plan. A panic must never escape `Engine::query`
//! or `Engine::execute_sql`, and the engine must stay usable afterwards.

use mpq_core::{paper_table1_model, DeriveOptions};
use mpq_engine::{
    choose_plan, execute_opts, AccessPath, Atom, AtomPred, Catalog, Engine, EngineError,
    ExecOptions, Expr, GuardResource, MiningPred, OptimizerOptions, QueryGuard, StatementOutcome,
    Table,
};
use mpq_models::Classifier as _;
use mpq_types::{AttrDomain, AttrId, Attribute, ClassId, Dataset, Schema};
use std::sync::Arc;
use std::time::Duration;

/// Engine with the paper's Table-1 naive-Bayes model over a skewed table
/// with single-column indexes — selective classes get index plans.
fn engine() -> Engine {
    let nb = paper_table1_model();
    let schema = nb.schema().clone();
    let mut ds = Dataset::new(schema);
    for m0 in 0..4u16 {
        for m1 in 0..3u16 {
            let copies = 1 + (m0 as usize * 3 + m1 as usize) * 7;
            for _ in 0..copies {
                ds.push_encoded(&[m0, m1]).unwrap();
            }
        }
    }
    let mut cat = Catalog::new();
    let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
    cat.create_index(t, &[AttrId(0)]);
    cat.create_index(t, &[AttrId(1)]);
    cat.add_model("m", Arc::new(nb), DeriveOptions::default()).unwrap();
    Engine::new(cat)
}

/// Engine with a training table for `CREATE MINING MODEL` DDL.
fn ddl_engine() -> Engine {
    let schema = Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![5.0]).unwrap()),
        Attribute::new("f", AttrDomain::categorical(["a", "b"])),
        Attribute::new("outcome", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for i in 0..400u16 {
        let x = i % 2;
        let f = (i / 2) % 2;
        let y = u16::from(x == 1 && f == 1);
        ds.push_encoded(&[x, f, y]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("t", &ds)).unwrap();
    Engine::new(cat)
}

/// Row set of the unoptimized black-box plan (envelopes off).
fn baseline_rows(e: &mut Engine, sql: &str) -> Vec<u32> {
    let was_on = e.options().use_envelopes;
    e.set_use_envelopes(false);
    let rows = e.query(sql).expect("baseline plan must run").rows;
    e.set_use_envelopes(was_on);
    rows
}

#[test]
fn scorer_panic_becomes_typed_internal_error() {
    let e = engine();
    let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c1'";
    let healthy = e.query(sql).unwrap().rows;

    e.fault_injector().set_scorer_panic(true);
    match e.query(sql) {
        Err(EngineError::Internal { detail }) => {
            assert!(detail.contains("injected fault"), "detail: {detail}");
            assert!(detail.contains("scorer panicked"), "detail: {detail}");
        }
        other => panic!("expected Internal error, got {other:?}"),
    }

    // The engine must remain usable once the fault clears.
    e.fault_injector().reset();
    assert_eq!(e.query(sql).unwrap().rows, healthy);
}

#[test]
fn scorer_nan_becomes_typed_internal_error() {
    let e = engine();
    let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c2'";
    e.fault_injector().set_scorer_nan(true);
    match e.query(sql) {
        Err(EngineError::Internal { detail }) => {
            assert!(detail.contains("NaN"), "detail: {detail}");
        }
        other => panic!("expected Internal error, got {other:?}"),
    }
    e.fault_injector().reset();
    assert!(e.query(sql).is_ok());
}

#[test]
fn index_failure_falls_back_to_equivalent_scan() {
    let mut e = engine();
    for label in ["c1", "c2", "c3"] {
        let sql = format!("SELECT * FROM t WHERE PREDICT(m) = '{label}'");
        let expected = baseline_rows(&mut e, &sql);

        e.fault_injector().set_index_probe_failure(true);
        let out = e.query(&sql).expect("fallback must not error");
        e.fault_injector().reset();

        assert_eq!(out.rows, expected, "fallback row set must equal full scan for {label}");
    }
}

#[test]
fn derivation_timeout_degrades_create_model_visibly() {
    let e = ddl_engine();
    e.fault_injector().set_derive_timeout(true);

    let out = e
        .execute_sql("CREATE MINING MODEL risk ON t PREDICT outcome USING decision_tree")
        .expect("CREATE MINING MODEL must survive derivation failure");
    let StatementOutcome::ModelCreated { model, degraded, .. } = out else {
        panic!("expected ModelCreated");
    };
    let reason = degraded.expect("derivation failure must be reported");
    assert!(reason.contains("time budget"), "reason: {reason}");
    e.fault_injector().reset();

    // EXPLAIN surfaces the degradation.
    let plan = e.query("EXPLAIN SELECT * FROM t WHERE PREDICT(risk) = 'hi'").unwrap().plan;
    assert!(plan.contains("degraded"), "plan text: {plan}");
    assert!(plan.contains("risk"), "plan text: {plan}");

    // health() reports it too.
    let health = e.health();
    assert!(!health.all_healthy());
    let mh = &health.models[model];
    assert_eq!(mh.name, "risk");
    assert!(mh.degraded.is_some());
    assert!(health.to_string().contains("DEGRADED"));

    // Degraded queries are still exact: the deterministic concept means
    // PREDICT agrees with the stored label.
    let q = e.query("SELECT * FROM t WHERE PREDICT(risk) = 'hi'").unwrap();
    let stored = e.query("SELECT * FROM t WHERE outcome = 'hi'").unwrap();
    assert_eq!(q.rows, stored.rows);

    // Retraining with a (generous) budget clears the flag.
    let trained = e.catalog().model(model).model.clone();
    let opts = DeriveOptions {
        time_budget: Some(Duration::from_secs(3600)),
        ..DeriveOptions::default()
    };
    e.retrain_model_with(model, trained, opts).unwrap();
    assert!(e.health().all_healthy(), "successful retrain must clear degradation");
    let plan = e.query("EXPLAIN SELECT * FROM t WHERE PREDICT(risk) = 'hi'").unwrap().plan;
    assert!(!plan.contains("degraded"), "plan text: {plan}");
}

#[test]
fn grid_too_large_fault_degrades_registration() {
    let mut e = engine(); // already has healthy model "m"
    e.fault_injector().set_derive_grid_too_large(true);
    let id = e
        .register_model("m2", Arc::new(paper_table1_model()), DeriveOptions::default())
        .expect("registration must survive grid failure");
    e.fault_injector().reset();

    let reason =
        e.catalog().model(id).degraded.clone().expect("grid fault must degrade");
    assert!(reason.contains("grid"), "reason: {reason}");

    // The degraded model still answers exactly.
    for label in ["c1", "c2", "c3"] {
        let sql = format!("SELECT * FROM t WHERE PREDICT(m2) = '{label}'");
        let expected = baseline_rows(&mut e, &sql);
        assert_eq!(e.query(&sql).unwrap().rows, expected, "label {label}");
    }
}

#[test]
fn morsel_targeted_scorer_panic_only_hits_parallel_workers() {
    let e = engine();
    e.set_use_envelopes(false); // full scan → the residual runs per morsel
    let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c1'";
    let healthy = e.query(sql).unwrap().rows;

    e.fault_injector().set_scorer_panic_on_morsel(Some(1));

    // The serial executor has no morsels: the targeted fault never fires.
    e.set_parallelism(1);
    assert_eq!(e.query(sql).unwrap().rows, healthy);

    // The worker that picks up morsel 1 panics; the panic surfaces as a
    // typed error naming the morsel — not a poisoned lock or an abort.
    e.set_parallelism(4);
    match e.query(sql) {
        Err(EngineError::Internal { detail }) => {
            assert!(detail.contains("injected fault"), "detail: {detail}");
            assert!(detail.contains("morsel 1"), "detail: {detail}");
        }
        other => panic!("expected Internal error, got {other:?}"),
    }

    // The engine stays usable once the fault clears — still parallel.
    e.fault_injector().reset();
    assert_eq!(e.query(sql).unwrap().rows, healthy);
}

/// Like [`engine`] but with 256-byte pages, so the table spans many
/// heap pages and page-targeted faults have real targets.
fn paged_engine() -> Engine {
    let nb = paper_table1_model();
    let schema = nb.schema().clone();
    let mut ds = Dataset::new(schema);
    for m0 in 0..4u16 {
        for m1 in 0..3u16 {
            let copies = 1 + (m0 as usize * 3 + m1 as usize) * 7;
            for _ in 0..copies {
                ds.push_encoded(&[m0, m1]).unwrap();
            }
        }
    }
    let mut cat = Catalog::new();
    let t = cat.add_table(Table::with_page_bytes("t", &ds, 256)).unwrap();
    cat.create_index(t, &[AttrId(0)]);
    cat.create_index(t, &[AttrId(1)]);
    cat.add_model("m", Arc::new(nb), DeriveOptions::default()).unwrap();
    Engine::new(cat)
}

/// Fault parity across execution strategies: a page-targeted scorer
/// panic must fire on the same page — with the same message — whether
/// the residual runs through the vectorized batch path or the scalar
/// row-at-a-time reference, serially or in parallel workers.
#[test]
fn page_targeted_scorer_panic_fires_identically_across_strategies() {
    let e = paged_engine();
    e.set_use_envelopes(false); // full scan + black-box residual
    let plan =
        e.plan_predicate(0, Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(0) }));
    let catalog = e.catalog();
    assert!(catalog.table(0).table.n_pages() > 3, "fixture must span pages");

    let healthy: Vec<_> = [true, false]
        .into_iter()
        .map(|v| {
            let opts = ExecOptions { vectorized: v, ..ExecOptions::default() };
            execute_opts(&plan, &catalog, QueryGuard::unlimited(), &opts)
                .expect("healthy run")
                .rows
        })
        .collect();
    assert_eq!(healthy[0], healthy[1]);

    e.fault_injector().set_scorer_panic_on_page(Some(2));
    // Serial executors propagate the raw panic (the engine facade is
    // what catches it); both strategies must name the same page.
    for vectorized in [true, false] {
        let opts = ExecOptions { vectorized, ..ExecOptions::default() };
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = execute_opts(&plan, &catalog, QueryGuard::unlimited(), &opts);
        }))
        .expect_err("armed page fault must panic");
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("injected fault") && msg.contains("heap page 2"),
            "vectorized={vectorized}: {msg}"
        );
    }
    // Parallel workers catch the same panic and surface it typed.
    for vectorized in [true, false] {
        let opts = ExecOptions { parallelism: 4, vectorized, ..ExecOptions::default() };
        match execute_opts(&plan, &catalog, QueryGuard::unlimited(), &opts) {
            Err(EngineError::Internal { detail }) => {
                assert!(detail.contains("heap page 2"), "vectorized={vectorized}: {detail}");
            }
            other => panic!("vectorized={vectorized}: expected Internal, got {other:?}"),
        }
    }

    // The engine facade converts the serial panic into the same typed
    // error, and stays usable once the fault clears.
    let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c1'";
    match e.query(sql) {
        Err(EngineError::Internal { detail }) => {
            assert!(detail.contains("heap page 2"), "detail: {detail}");
        }
        other => panic!("expected Internal error, got {other:?}"),
    }
    e.fault_injector().reset();
    assert!(e.query(sql).is_ok());
}

/// An index-probe fault must degrade to the identical zone-pruned full
/// scan under both execution strategies: same rows, same fallback flag,
/// same heap/skip page accounting.
#[test]
fn index_fault_fallback_is_identical_across_strategies() {
    // A table big enough that the cost model sees many pages, with a
    // 0.1%-rare member 0 of attr 0: an index seek wins decisively.
    let schema = Schema::new(vec![
        Attribute::new("d0", AttrDomain::categorical(["m0", "m1", "m2", "m3"])),
        Attribute::new("d1", AttrDomain::categorical(["n0", "n1", "n2"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema.clone());
    for i in 0..20_000u32 {
        let m0 = if i % 1000 == 0 { 0 } else { 1 + (i % 3) as u16 };
        ds.push_encoded(&[m0, (i % 3) as u16]).unwrap();
    }
    let mut cat = Catalog::new();
    let t = cat.add_table(Table::with_page_bytes("t", &ds, 256)).unwrap();
    cat.create_index(t, &[AttrId(0)]);
    let e = Engine::new(cat);
    let catalog = e.catalog();
    // Build the plan with zone-map costing off so the access-path
    // choice is the index seek — the *fallback* scan still prunes via
    // zone maps, which both strategies must account identically.
    let no_zone = OptimizerOptions { use_zone_maps: false, ..OptimizerOptions::default() };
    let plan = choose_plan(
        Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
        0,
        &schema,
        &catalog,
        &no_zone,
    );
    assert!(
        matches!(plan.access, AccessPath::IndexSeek(_)),
        "fixture must yield an index seek, got {:?}",
        plan.access
    );

    e.fault_injector().set_index_probe_failure(true);
    let runs: Vec<_> = [true, false]
        .into_iter()
        .map(|v| {
            let opts = ExecOptions { vectorized: v, ..ExecOptions::default() };
            execute_opts(&plan, &catalog, QueryGuard::unlimited(), &opts)
                .expect("fallback must not error")
        })
        .collect();
    e.fault_injector().reset();

    let (vec_run, ref_run) = (&runs[0], &runs[1]);
    assert_eq!(vec_run.rows, ref_run.rows, "fallback row sets diverged");
    assert!(vec_run.metrics.index_fallback && ref_run.metrics.index_fallback);
    assert_eq!(vec_run.metrics.heap_pages_read, ref_run.metrics.heap_pages_read);
    assert_eq!(vec_run.metrics.pages_skipped, ref_run.metrics.pages_skipped);
    assert!(
        vec_run.metrics.pages_skipped > 0,
        "clustered member 0 must let the fallback scan prune pages"
    );
    assert_eq!(vec_run.metrics.rows_examined, ref_run.metrics.rows_examined);
    assert_eq!(vec_run.metrics.model_invocations, ref_run.metrics.model_invocations);
    assert_eq!(vec_run.metrics.memo_hits, ref_run.metrics.memo_hits);
}

#[test]
fn guard_trips_each_resource_with_typed_error() {
    let trip = |guard: QueryGuard, sql: &str, envelopes: bool| -> EngineError {
        let e = engine();
        e.set_use_envelopes(envelopes);
        // The proxy cascade would satisfy most rows without a real
        // invocation; this test is about budget enforcement, so pin
        // the classic one-invocation-per-row path.
        e.set_compile_models(false);
        e.set_guard(guard);
        e.query(sql).expect_err("guard must trip")
    };
    let resource = |err: EngineError| match err {
        EngineError::BudgetExceeded { resource, spent, limit } => {
            // Wall-clock spent/limit are reported in whole milliseconds,
            // so a zero deadline can legitimately report spent == limit.
            assert!(spent >= limit, "breach must report spent {spent} >= limit {limit}");
            resource
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    };

    let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c1'";
    // Full scan (envelopes off) examines every row.
    let err = trip(QueryGuard::default().with_max_rows_examined(5), sql, false);
    assert_eq!(resource(err), GuardResource::RowsExamined);

    // Every examined row invokes the model once.
    let err = trip(QueryGuard::default().with_max_model_invocations(5), sql, false);
    assert_eq!(resource(err), GuardResource::ModelInvocations);

    // A zero-page budget trips on the first heap page.
    let err = trip(QueryGuard::default().with_max_pages(0), sql, false);
    assert_eq!(resource(err), GuardResource::PagesRead);

    // A zero deadline trips on wall clock.
    let err = trip(QueryGuard::default().with_deadline(Duration::ZERO), sql, false);
    assert_eq!(resource(err), GuardResource::WallClock);
}

/// A perturbed proxy table must never change a row set: the always-on
/// verification against a fresh rebuild catches the corruption, the
/// engine degrades to the sound envelope+residual scorer path, and the
/// disablement is visible as a typed health note. Clearing the fault
/// restores the cascade and clears the note.
#[test]
fn cascade_band_fault_degrades_to_sound_scorer_path() {
    let e = engine();
    e.set_use_envelopes(false); // full scan → every row reaches the scorer
    let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c1'";
    let healthy = e.query(sql).unwrap();
    let m = &healthy.metrics;
    assert!(
        m.cascade_accepts + m.cascade_rejects + m.band_rows > 0,
        "fixture must exercise the cascade"
    );

    e.fault_injector().set_cascade_band_perturb(true);
    let degraded = e.query(sql).unwrap();
    // Never a wrong row set.
    assert_eq!(degraded.rows, healthy.rows, "degradation must keep the row set sound");
    // The perturbed table fails verification, so no cascade decisions
    // are made at all — every row goes to the real scorer.
    assert_eq!(degraded.metrics.cascade_accepts, 0);
    assert_eq!(degraded.metrics.cascade_rejects, 0);
    assert_eq!(degraded.metrics.band_rows, 0);
    assert_eq!(
        degraded.metrics.model_invocations + degraded.metrics.memo_hits,
        degraded.metrics.rows_examined,
        "fallback path must score every examined row"
    );
    // The disablement is a typed health note, not a silent downgrade.
    let health = e.health();
    let note = health.models[0].cascade_note.as_deref().expect("health must carry the note");
    assert!(note.contains("failed verification"), "note: {note}");
    assert!(health.to_string().contains(note), "display must surface the note");

    // Clearing the fault restores the cascade and clears the note.
    e.fault_injector().reset();
    let recovered = e.query(sql).unwrap();
    assert_eq!(recovered.rows, healthy.rows);
    let rm = &recovered.metrics;
    assert!(rm.cascade_accepts + rm.cascade_rejects + rm.band_rows > 0);
    assert_eq!(e.health().models[0].cascade_note, None, "recovery must clear the note");
}

#[test]
fn guard_headroom_recorded_and_generous_guard_passes() {
    let e = engine();
    e.set_guard(
        QueryGuard::default()
            .with_max_rows_examined(1_000_000)
            .with_deadline(Duration::from_secs(60)),
    );
    let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c1'";
    let out = e.query(sql).unwrap();
    let rows_left = out.metrics.guard.rows_remaining.expect("budget configured");
    assert_eq!(rows_left, 1_000_000 - out.metrics.rows_examined);
    assert!(out.metrics.guard.time_remaining_ms.is_some());
    assert_eq!(out.metrics.guard.pages_remaining, None, "pages were unlimited");
}

#[test]
fn budget_breach_returns_no_partial_rows() {
    let e = engine();
    e.set_guard(QueryGuard::default().with_max_rows_examined(5));
    e.set_use_envelopes(false);
    // A breach is an Err; QueryOutcome (and thus any row set) is never
    // produced — the typed error is the entire result.
    let res = e.query("SELECT * FROM t WHERE PREDICT(m) = 'c1'");
    assert!(matches!(res, Err(EngineError::BudgetExceeded { .. })));
    // Raising the guard re-runs cleanly.
    e.set_guard(QueryGuard::unlimited());
    assert!(!e.query("SELECT * FROM t WHERE PREDICT(m) = 'c1'").unwrap().rows.is_empty());
}
