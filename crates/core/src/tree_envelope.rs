//! Exact envelope extraction for decision trees and rule sets (§3.1).
//!
//! Decision trees: AND the test conditions along each root-to-leaf path
//! (each path is a [`Region`] — per-dimension constraint intersection),
//! OR the paths per class. This envelope is *exact*.
//!
//! Rule sets: the envelope of class `c` is the disjunction of the bodies
//! of `c`'s rules; overlapping rules of other classes make it an upper
//! (not exact) envelope, as the paper notes. The class rows fall back to
//! when no rule fires (the default class) additionally receives the
//! complement of all rule bodies, computed by region subtraction.

use crate::envelope::{DeriveStats, Envelope};
use crate::region::{DimSet, Region};
use crate::topdown::merge_regions;
use mpq_models::{DecisionTree, Node, Rule, RuleCond, RuleSet, Split};
use mpq_types::{ClassId, Schema};

/// Derives the exact upper envelope of `class` from a decision tree.
pub fn tree_envelope(tree: &DecisionTree, class: ClassId) -> Envelope {
    use mpq_models::Classifier as _;
    let schema = tree.schema();
    let mut regions = Vec::new();
    collect_paths(schema, tree.root(), &Region::full(schema), class, &mut regions);
    let mut stats = DeriveStats::default();
    merge_regions(&mut regions, &mut stats);
    Envelope { class, regions, exact: true, stats, trace: Vec::new() }
}

fn collect_paths(schema: &Schema, node: &Node, path: &Region, class: ClassId, out: &mut Vec<Region>) {
    match node {
        Node::Leaf { class: c, .. } => {
            if *c == class {
                out.push(path.clone());
            }
        }
        Node::Internal { split, left, right } => {
            let attr = split.attr();
            let d = attr.index();
            let card = schema.attr(attr).domain.cardinality();
            let (lset, rset) = match split {
                Split::LeMember { cut_member, .. } => (
                    DimSet::Range { lo: 0, hi: *cut_member },
                    DimSet::Range { lo: *cut_member + 1, hi: card - 1 },
                ),
                Split::InSet { members, .. } => (
                    DimSet::Set(members.clone()),
                    DimSet::Set(members.complement()),
                ),
            };
            if let Some(s) = path.dim(d).intersect(&lset) {
                collect_paths(schema, left, &path.with_dim(d, s), class, out);
            }
            if let Some(s) = path.dim(d).intersect(&rset) {
                collect_paths(schema, right, &path.with_dim(d, s), class, out);
            }
        }
    }
}

/// Converts one rule body to a region (conditions on the same attribute
/// intersect). Returns `None` for unsatisfiable bodies.
fn rule_region(schema: &Schema, rule: &Rule) -> Option<Region> {
    let mut region = Region::full(schema);
    for cond in &rule.body {
        let d = cond.attr().index();
        let set = match cond {
            RuleCond::Range { lo, hi, .. } => DimSet::Range { lo: *lo, hi: *hi },
            RuleCond::In { members, .. } => DimSet::Set(members.clone()),
        };
        let merged = region.dim(d).intersect(&set)?;
        region = region.with_dim(d, merged);
    }
    Some(region)
}

/// Derives an upper envelope of `class` from a rule set: the disjunction
/// of the class's rule bodies, plus — for the default class — the
/// complement of every rule body.
pub fn ruleset_envelope(rules: &RuleSet, class: ClassId) -> Envelope {
    use mpq_models::Classifier as _;
    let schema = rules.schema();
    let mut regions: Vec<Region> = rules
        .rules()
        .iter()
        .filter(|r| r.head == class)
        .filter_map(|r| rule_region(schema, r))
        .collect();

    if rules.default_class() == class {
        // Rows covered by no rule fall to the default class: add the
        // complement of the union of all rule bodies.
        let mut uncovered = vec![Region::full(schema)];
        for rule in rules.rules() {
            let Some(body) = rule_region(schema, rule) else { continue };
            uncovered = uncovered.into_iter().flat_map(|r| r.subtract(&body)).collect();
            if uncovered.is_empty() {
                break;
            }
        }
        regions.extend(uncovered);
    }

    // A rule set is exact for a class only when no rule of another class
    // overlaps this class's regions; detecting that cheaply: exact iff no
    // other-class rule body intersects any kept region.
    let overlapped = rules.rules().iter().any(|r| {
        r.head != class
            && rule_region(schema, r)
                .is_some_and(|body| regions.iter().any(|reg| reg.intersect(&body).is_some()))
    });
    let mut stats = DeriveStats::default();
    merge_regions(&mut regions, &mut stats);
    Envelope { class, regions, exact: !overlapped, stats, trace: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_models::{Classifier as _, RuleSetParams, TreeParams};
    use mpq_types::{AttrDomain, AttrId, Attribute, ClassId, Dataset, LabeledDataset, MemberSet};

    /// The paper's Figure 1 tree.
    fn figure1_tree() -> DecisionTree {
        let schema = Schema::new(vec![
            Attribute::new("lowerBP", AttrDomain::binned(vec![91.0]).unwrap()),
            Attribute::new("age", AttrDomain::binned(vec![63.0]).unwrap()),
            Attribute::new("overweight", AttrDomain::categorical(["no", "yes"])),
            Attribute::new("upperBP", AttrDomain::binned(vec![130.0]).unwrap()),
        ])
        .unwrap();
        let c1 = |support| Node::Leaf { class: ClassId(0), support };
        let c2 = |support| Node::Leaf { class: ClassId(1), support };
        let overweight = Node::Internal {
            split: Split::InSet { attr: AttrId(2), members: MemberSet::of(2, [1]) },
            left: Box::new(c1(1)),
            right: Box::new(c2(1)),
        };
        let age = Node::Internal {
            split: Split::LeMember { attr: AttrId(1), cut_member: 0 },
            left: Box::new(c2(1)),
            right: Box::new(overweight),
        };
        let upper = Node::Internal {
            split: Split::LeMember { attr: AttrId(3), cut_member: 0 },
            left: Box::new(c2(1)),
            right: Box::new(c1(1)),
        };
        let root = Node::Internal {
            split: Split::LeMember { attr: AttrId(0), cut_member: 0 },
            left: Box::new(upper),
            right: Box::new(age),
        };
        DecisionTree::from_parts(schema, vec!["c1".into(), "c2".into()], root).unwrap()
    }

    #[test]
    fn figure1_c1_envelope_matches_paper() {
        // Paper: c1's envelope is
        //   (lowerBP > 91 AND age > 63 AND overweight) OR
        //   (lowerBP <= 91 AND upperBP > 130).
        let tree = figure1_tree();
        let env = tree_envelope(&tree, ClassId(0));
        assert!(env.exact);
        assert_eq!(env.n_disjuncts(), 2);
        // Every grid cell agrees with prediction.
        for cell in Region::full(tree.schema()).cells() {
            assert_eq!(env.matches(&cell), tree.predict(&cell) == ClassId(0), "cell {cell:?}");
        }
    }

    #[test]
    fn figure1_c2_envelope_matches_paper() {
        // Paper lists three disjuncts for c2; after merging, regions may
        // be fewer but must cover exactly c2's cells.
        let tree = figure1_tree();
        let env = tree_envelope(&tree, ClassId(1));
        assert!(env.exact);
        for cell in Region::full(tree.schema()).cells() {
            assert_eq!(env.matches(&cell), tree.predict(&cell) == ClassId(1), "cell {cell:?}");
        }
    }

    #[test]
    fn trained_tree_envelopes_are_exact_for_every_class() {
        // Train on a 3-class concept and verify exactness cell-by-cell.
        let schema = Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![10.0, 20.0, 30.0]).unwrap()),
            Attribute::new("f", AttrDomain::categorical(["a", "b", "c"])),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        let mut labels = Vec::new();
        for x in 0..4u16 {
            for f in 0..3u16 {
                for _ in 0..5 {
                    ds.push_encoded(&[x, f]).unwrap();
                    let class = if x >= 2 && f == 1 { 2 } else if x == 0 { 0 } else { 1 };
                    labels.push(ClassId(class));
                }
            }
        }
        let data =
            LabeledDataset::new(ds, labels, vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let tree = DecisionTree::train(&data, TreeParams::default()).unwrap();
        for k in 0..3u16 {
            let env = tree_envelope(&tree, ClassId(k));
            assert!(env.exact);
            for cell in Region::full(tree.schema()).cells() {
                assert_eq!(env.matches(&cell), tree.predict(&cell) == ClassId(k));
            }
        }
    }

    #[test]
    fn unreached_class_gets_empty_envelope() {
        let tree = figure1_tree();
        // The figure-1 tree has classes c1/c2; build a version with a
        // third class name that never appears at a leaf.
        let t3 = DecisionTree::from_parts(
            tree.schema().clone(),
            vec!["c1".into(), "c2".into(), "ghost".into()],
            tree.root().clone(),
        )
        .unwrap();
        let env = tree_envelope(&t3, ClassId(2));
        assert!(env.regions.is_empty(), "ghost class never predicted");
        assert!(env.exact);
    }

    #[test]
    fn ruleset_envelope_covers_predictions() {
        let schema = Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![10.0, 20.0, 30.0]).unwrap()),
            Attribute::new("f", AttrDomain::categorical(["n", "y"])),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        let mut labels = Vec::new();
        for x in 0..4u16 {
            for f in 0..2u16 {
                for _ in 0..10 {
                    ds.push_encoded(&[x, f]).unwrap();
                    labels.push(ClassId(u16::from((1..=2).contains(&x) && f == 1)));
                }
            }
        }
        let data = LabeledDataset::new(ds, labels, vec!["out".into(), "in".into()]).unwrap();
        let rs = RuleSet::train(&data, RuleSetParams::default()).unwrap();
        for k in 0..2u16 {
            let env = ruleset_envelope(&rs, ClassId(k));
            for cell in Region::full(rs.schema()).cells() {
                if rs.predict(&cell) == ClassId(k) {
                    assert!(env.matches(&cell), "class {k} cell {cell:?} not covered");
                }
            }
        }
    }

    #[test]
    fn default_class_envelope_includes_uncovered_space() {
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b", "c"]))]).unwrap();
        let rule = Rule {
            body: vec![RuleCond::In { attr: AttrId(0), members: MemberSet::of(3, [0]) }],
            head: ClassId(1),
            weight: 1.0,
        };
        let rs = RuleSet::from_parts(schema, vec!["d".into(), "p".into()], vec![rule], ClassId(0)).unwrap();
        let env_default = ruleset_envelope(&rs, ClassId(0));
        // Members 1, 2 are uncovered -> default class must cover them.
        assert!(env_default.matches(&[1]) && env_default.matches(&[2]));
        assert!(!env_default.matches(&[0]), "member 0 is covered by the class-1 rule only");
        let env_p = ruleset_envelope(&rs, ClassId(1));
        assert!(env_p.matches(&[0]) && !env_p.matches(&[1]));
    }

    #[test]
    fn overlapping_rules_mark_envelope_inexact() {
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b"]))]).unwrap();
        let mk = |head: u16, members: &[u16], weight: f64| Rule {
            body: vec![RuleCond::In {
                attr: AttrId(0),
                members: MemberSet::of(2, members.iter().copied()),
            }],
            head: ClassId(head),
            weight,
        };
        let rs = RuleSet::from_parts(
            schema,
            vec!["c0".into(), "c1".into()],
            vec![mk(0, &[0, 1], 0.9), mk(1, &[0], 0.5)],
            ClassId(0),
        )
        .unwrap();
        // Rule for c1 overlaps c0's region; c1 never actually wins member
        // 0 (weight 0.5 < 0.9) but its envelope must still cover it and
        // be marked inexact.
        let env1 = ruleset_envelope(&rs, ClassId(1));
        assert!(env1.matches(&[0]));
        assert!(!env1.exact);
    }

    #[test]
    fn unsatisfiable_rule_bodies_are_dropped() {
        let schema = Schema::new(vec![Attribute::new(
            "x",
            AttrDomain::binned(vec![1.0, 2.0]).unwrap(),
        )])
        .unwrap();
        let contradictory = Rule {
            body: vec![
                RuleCond::Range { attr: AttrId(0), lo: 0, hi: 0 },
                RuleCond::Range { attr: AttrId(0), lo: 2, hi: 2 },
            ],
            head: ClassId(1),
            weight: 1.0,
        };
        let rs = RuleSet::from_parts(
            schema,
            vec!["a".into(), "b".into()],
            vec![contradictory],
            ClassId(0),
        )
        .unwrap();
        let env = ruleset_envelope(&rs, ClassId(1));
        assert!(env.regions.is_empty());
    }
}
