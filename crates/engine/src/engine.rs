//! The engine facade: SQL in, rows + metrics out, with a plan cache that
//! is invalidated when a referenced mining model is retrained (§4.2's
//! correctness requirement for content-dependent plans).
//!
//! The engine is concurrently readable: every method takes `&self`, so
//! one `Engine` (or an `Arc<Engine>`) can serve many client threads at
//! once. Queries share a catalog read lock; DDL, inserts, and
//! checkpoints take it exclusively. Lock acquisition order is fixed —
//! catalog → optimizer options → plan cache → persist state — and every
//! lock recovers from poisoning (a panicking query cannot wedge the
//! engine; see DESIGN.md §8).

use crate::catalog::Catalog;
use crate::dedup::{DedupCheck, DedupOutcome};
use crate::display::plan_to_string;
use crate::error::panic_message;
use crate::exec::{execute_opts, ExecMetrics, ExecOptions};
use crate::expr::{Expr, ModelId};
use crate::fault::FaultInjector;
use crate::guard::QueryGuard;
use crate::optimizer::{choose_plan, OptimizerOptions, Plan};
use crate::persist::recovery::{self, Recovered};
use crate::persist::replicate::{self, ReplBatch, ReplRole, ReplStatus};
use crate::persist::wal::WalWriter;
use crate::persist::{snapshot, LogOp, RecoveryReport, StatementId, StoredModel};
use crate::rewrite::rewrite_mining_opts;
use crate::session::SessionState;
use crate::sql::{parse, parse_statement, Statement};
use crate::subscribe::{MatchEvent, SubIndex};
use crate::table::{RowId, Table};
use crate::vectorized::{MemoScorer, DEFAULT_MEMO_CAPACITY};
use crate::EngineError;
use mpq_core::{DeriveOptions, EnvelopeProvider};
use mpq_types::{AttrId, Member};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// How long a synchronously-replicated mutation waits for the standby's
/// acknowledgement before failing with a retryable I/O error. The
/// mutation is already durable locally when the wait starts, so a
/// timed-out (and retried) statement deduplicates instead of
/// re-applying.
const REPL_ACK_TIMEOUT: Duration = Duration::from_secs(5);

/// Durability state of an engine opened from a directory.
struct PersistState {
    dir: PathBuf,
    wal: WalWriter,
    /// LSN the next logged mutation takes.
    next_lsn: u64,
    /// What recovery found when this engine was opened.
    report: RecoveryReport,
    /// Set by [`Engine::simulate_crash`]: suppresses the clean-shutdown
    /// marker so the next open exercises real recovery.
    crashed: bool,
}

/// Live replication state. Everything here is transient — the one
/// durable piece of replication state, the epoch, lives in the catalog
/// (bumped via [`LogOp::EpochBump`], so it replays and snapshots like
/// any other mutation).
struct ReplState {
    role: ReplRole,
    /// True when mutation acknowledgements gate on the standby having
    /// applied the record (synchronous replication).
    sync: bool,
    /// Set once a higher epoch was observed on the wire: `(our epoch
    /// when fenced, the higher epoch)`. A fenced node was deposed by a
    /// promotion and refuses all further mutations.
    fenced: Option<(u64, u64)>,
    /// Highest LSN the standby has acknowledged applying.
    acked_lsn: u64,
    /// Stream bytes of records appended locally (lag accounting).
    appended_bytes: u64,
    /// Stream bytes the standby has acknowledged.
    acked_bytes: u64,
}

impl Default for ReplState {
    fn default() -> ReplState {
        ReplState {
            role: ReplRole::Primary,
            sync: false,
            fenced: None,
            acked_lsn: 0,
            appended_bytes: 0,
            acked_bytes: 0,
        }
    }
}

/// Result of running one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matching row ids (empty for EXPLAIN).
    pub rows: Vec<RowId>,
    /// Execution metrics (zeroed for EXPLAIN).
    pub metrics: ExecMetrics,
    /// EXPLAIN text of the executed (or explained) plan.
    pub plan: String,
    /// Whether the physical plan differs from a plain full scan — the
    /// paper's "plan changed" criterion.
    pub plan_changed: bool,
    /// Whether the plan came from the cache.
    pub cached_plan: bool,
}

/// Result of [`Engine::execute_sql`].
///
/// `Query` dwarfs the ack variants; statements are infrequent enough
/// that boxing it isn't worth the ergonomic cost at every call site.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum StatementOutcome {
    /// A SELECT ran (or was explained).
    Query(QueryOutcome),
    /// A mining model was trained and registered.
    ModelCreated {
        /// The model's catalog name.
        name: String,
        /// Its catalog id.
        model: ModelId,
        /// Number of output classes/clusters.
        n_classes: usize,
        /// `Some(reason)` when envelope derivation failed and the model
        /// was installed with trivial `TRUE` envelopes (degraded but
        /// correct; see [`crate::ModelEntry::degraded`]).
        degraded: Option<String>,
    },
    /// Rows were appended by an `INSERT`.
    Inserted {
        /// Target table name.
        table: String,
        /// Number of rows appended.
        rows_inserted: u64,
        /// Total (subscription, row) matches the insert produced across
        /// every standing subscription on the target table.
        subs_matched: u64,
        /// Total (subscription, row) candidacies the inverted envelope
        /// index pruned without evaluating the rewritten predicate.
        subs_index_pruned: u64,
    },
    /// A standing subscription was registered by `SUBSCRIBE`.
    Subscribed {
        /// The durable subscription id (stable across crash recovery).
        id: u64,
    },
    /// A standing subscription was removed by `UNSUBSCRIBE`.
    Unsubscribed {
        /// The id that was removed.
        id: u64,
    },
    /// `SET PARALLELISM n` changed the session's degree of parallelism.
    ParallelismSet {
        /// The degree now in effect (after clamping).
        dop: usize,
    },
    /// `SET ADAPTIVE {ON|OFF}` toggled adaptive predicate evaluation.
    AdaptiveSet {
        /// Whether adaptive evaluation is now in effect.
        on: bool,
    },
    /// `SET GUARD ...` changed the session's query guard.
    GuardSet {
        /// The complete guard now in effect for the session.
        guard: QueryGuard,
    },
}

/// Health snapshot of one registered model (see [`Engine::health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelHealth {
    /// Catalog name.
    pub name: String,
    /// Current version (bumped by retraining).
    pub version: u64,
    /// Degradation reason, if envelope derivation failed.
    pub degraded: Option<String>,
    /// Number of per-class envelopes installed.
    pub n_envelopes: usize,
    /// How many of those are exact (tight) envelopes.
    pub exact_envelopes: usize,
    /// `Some(note)` when the model's proxy cascade was disabled because
    /// its stored table failed verification against a fresh rebuild
    /// (e.g. under the injected cascade-band fault); queries still run
    /// on the sound envelope+residual scorer path.
    pub cascade_note: Option<String>,
}

/// Engine-wide health report: per-model envelope status plus catalog
/// and cache counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineHealth {
    /// One entry per registered model.
    pub models: Vec<ModelHealth>,
    /// Number of registered tables.
    pub tables: usize,
    /// Number of cached plans.
    pub cached_plans: usize,
    /// What recovery found when the engine was opened from a durability
    /// directory; `None` for purely in-memory engines.
    pub recovery: Option<RecoveryReport>,
    /// This node's replication role (every engine is a primary unless
    /// it was explicitly made a standby).
    pub role: ReplRole,
    /// This node's replication epoch (0 until a promotion happened
    /// anywhere in the replica set's history).
    pub epoch: u64,
    /// Records appended but not yet acknowledged by the standby; `None`
    /// unless this node is a primary with synchronous replication on.
    pub replica_lag_records: Option<u64>,
    /// Bytes appended but not yet acknowledged by the standby.
    pub replica_lag_bytes: Option<u64>,
    /// Number of registered standing subscriptions.
    pub subscriptions: usize,
    /// `Some(note)` when the last insert matched subscriptions in the
    /// degraded per-subscription full-evaluation mode (index-corruption
    /// fault armed); matches stay oracle-identical, only slower.
    pub sub_index_note: Option<String>,
}

impl EngineHealth {
    /// True when no model is degraded.
    pub fn all_healthy(&self) -> bool {
        self.models.iter().all(|m| m.degraded.is_none())
    }
}

impl std::fmt::Display for EngineHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "tables: {}, cached plans: {}, subscriptions: {}",
            self.tables, self.cached_plans, self.subscriptions
        )?;
        if let Some(note) = &self.sub_index_note {
            writeln!(f, "subscription matcher: {note}")?;
        }
        match (self.replica_lag_records, self.replica_lag_bytes) {
            (Some(records), Some(bytes)) => writeln!(
                f,
                "role: {}, epoch: {}, replica lag: {records} records ({bytes} bytes)",
                self.role, self.epoch
            )?,
            _ => writeln!(f, "role: {}, epoch: {}", self.role, self.epoch)?,
        }
        if let Some(r) = &self.recovery {
            writeln!(f, "{r}")?;
        }
        for m in &self.models {
            match &m.degraded {
                Some(reason) => writeln!(
                    f,
                    "model '{}' v{}: DEGRADED ({reason}); {} trivial envelopes",
                    m.name, m.version, m.n_envelopes
                )?,
                None => writeln!(
                    f,
                    "model '{}' v{}: healthy; {} envelopes ({} exact)",
                    m.name, m.version, m.n_envelopes, m.exact_envelopes
                )?,
            }
            if let Some(note) = &m.cascade_note {
                writeln!(f, "  {note}")?;
            }
        }
        Ok(())
    }
}

/// A SQL-facing engine over a [`Catalog`], safe to share across threads
/// (`Engine: Send + Sync`) — queries run under a shared catalog read
/// lock, mutations under an exclusive one.
///
/// Guard-returning accessors ([`Engine::catalog`],
/// [`Engine::catalog_mut`]) hold that lock until dropped: never keep
/// one across a call to a mutating method on the same engine from the
/// same thread, or the write lock will wait on your own read guard.
pub struct Engine {
    catalog: RwLock<Catalog>,
    opts: RwLock<OptimizerOptions>,
    plan_cache: Mutex<HashMap<String, Plan>>,
    guard: RwLock<QueryGuard>,
    /// Degree of parallelism for query execution (`SET PARALLELISM n`).
    parallelism: AtomicUsize,
    /// Whether vectorized filters calibrate and reorder DNF clauses at
    /// runtime (`SET ADAPTIVE {ON|OFF}`).
    adaptive: AtomicBool,
    /// `Some` when the engine was opened from a durability directory.
    persist: Mutex<Option<PersistState>>,
    /// Replication role, fence, and standby-acknowledgement progress.
    repl: Mutex<ReplState>,
    /// Signalled on every standby acknowledgement (and on fencing), so
    /// synchronous mutations can wait without spinning.
    repl_cv: Condvar,
    /// Cached inverted envelope index over the standing subscriptions,
    /// rebuilt when its key (subscription generation, model versions,
    /// compile flag) no longer matches the catalog.
    sub_index: Mutex<Option<Arc<SubIndex>>>,
    /// Where subscription match events go (installed by the server;
    /// `None` drops them). Called *after* the insert's catalog lock is
    /// released and replication has acknowledged, so a slow sink can
    /// never block the write path.
    notify_sink: RwLock<Option<NotifySink>>,
}

/// Callback receiving every subscription match event.
pub type NotifySink = Arc<dyn Fn(MatchEvent) + Send + Sync>;

/// Compile-time proof that the engine can be shared across threads.
#[allow(dead_code)]
fn engine_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
}

/// Default degree of parallelism: the cores this process may use.
fn default_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).clamp(1, 256)
}

impl Engine {
    /// Wraps a catalog with default optimizer options and an unlimited
    /// query guard. Purely in-memory: nothing survives the process (use
    /// [`Engine::open`] for durability).
    pub fn new(catalog: Catalog) -> Engine {
        Engine {
            catalog: RwLock::new(catalog),
            opts: RwLock::new(OptimizerOptions::default()),
            plan_cache: Mutex::new(HashMap::new()),
            guard: RwLock::new(QueryGuard::unlimited()),
            parallelism: AtomicUsize::new(default_parallelism()),
            adaptive: AtomicBool::new(true),
            persist: Mutex::new(None),
            repl: Mutex::new(ReplState::default()),
            repl_cv: Condvar::new(),
            sub_index: Mutex::new(None),
            notify_sink: RwLock::new(None),
        }
    }

    /// Opens (or creates) a durable engine backed by directory `dir`.
    ///
    /// Recovery runs here: the newest checksum-valid snapshot is loaded,
    /// the WAL prefix up to the first torn/corrupt record is replayed,
    /// and the log is truncated to that verified prefix. What was found
    /// — including anything dropped — is reported by
    /// [`Engine::recovery_report`], [`Engine::health`], and `EXPLAIN`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Engine, EngineError> {
        Engine::open_with_faults(dir, Arc::new(FaultInjector::new()))
    }

    /// Like [`Engine::open`], sharing a pre-armed fault injector so
    /// tests can make recovery itself misbehave (short reads).
    pub fn open_with_faults(
        dir: impl AsRef<Path>,
        faults: Arc<FaultInjector>,
    ) -> Result<Engine, EngineError> {
        let dir = dir.as_ref().to_path_buf();
        let Recovered { catalog, wal, next_lsn, report } =
            recovery::recover(&dir, faults)?;
        Ok(Engine {
            catalog: RwLock::new(catalog),
            opts: RwLock::new(OptimizerOptions::default()),
            plan_cache: Mutex::new(HashMap::new()),
            guard: RwLock::new(QueryGuard::unlimited()),
            parallelism: AtomicUsize::new(default_parallelism()),
            adaptive: AtomicBool::new(true),
            persist: Mutex::new(Some(PersistState {
                dir,
                wal,
                next_lsn,
                report,
                crashed: false,
            })),
            repl: Mutex::new(ReplState::default()),
            repl_cv: Condvar::new(),
            sub_index: Mutex::new(None),
            notify_sink: RwLock::new(None),
        })
    }

    // -- poison-recovering lock helpers (a panicking writer must not
    //    wedge every later caller; state under a recovered lock is
    //    consistent because mutations validate before they apply) ------

    fn read_catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.catalog.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_catalog(&self) -> RwLockWriteGuard<'_, Catalog> {
        self.catalog.write().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_cache(&self) -> MutexGuard<'_, HashMap<String, Plan>> {
        self.plan_cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_persist(&self) -> MutexGuard<'_, Option<PersistState>> {
        self.persist.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_repl(&self) -> MutexGuard<'_, ReplState> {
        self.repl.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// What recovery found when this engine was opened from a
    /// durability directory (`None` for in-memory engines).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.lock_persist().as_ref().map(|p| p.report.clone())
    }

    /// Logs a validated mutation (WAL append + fsync, when durable) and
    /// then applies it through the same code replay uses, so the live
    /// state and the recovered state can never disagree. The caller
    /// holds the catalog write lock, which serializes WAL order with
    /// apply order.
    ///
    /// Callers must pre-validate: once the record is on disk it WILL be
    /// replayed, so an op that fails to apply here would poison every
    /// future open. An `Io` error means the append failed and the
    /// mutation was *not* applied.
    ///
    /// A standby refuses with [`EngineError::ReadOnly`] (its mutations
    /// arrive only through [`Engine::apply_replicated_frames`]); a
    /// fenced ex-primary refuses with [`EngineError::StaleEpoch`].
    ///
    /// Returns the LSN the record was logged at (0 for in-memory
    /// engines, whose LSNs start at 1).
    fn apply_durable_locked(
        &self,
        catalog: &mut Catalog,
        op: LogOp,
    ) -> Result<u64, EngineError> {
        {
            let repl = self.lock_repl();
            if repl.role == ReplRole::Standby {
                return Err(EngineError::ReadOnly {
                    detail: "mutations reach a standby only via the replication stream"
                        .to_string(),
                });
            }
            if let Some((sent, have)) = repl.fenced {
                return Err(EngineError::StaleEpoch { sent, have });
            }
        }
        self.lock_cache().clear();
        let mut lsn = 0;
        {
            let mut persist = self.lock_persist();
            if let Some(p) = persist.as_mut() {
                lsn = p.next_lsn;
                let frame_bytes = p.wal.append(p.next_lsn, &op)?;
                p.next_lsn += 1;
                self.lock_repl().appended_bytes += frame_bytes;
            }
        }
        recovery::apply_op(catalog, &op)?;
        Ok(lsn)
    }

    /// Registers a table durably (logged before it is applied when the
    /// engine was opened from a directory).
    pub fn create_table(&self, table: Table) -> Result<usize, EngineError> {
        let mut catalog = self.write_catalog();
        if catalog.table_by_name(table.name()).is_some() {
            return Err(EngineError::Duplicate(table.name().to_string()));
        }
        let columns: Vec<Vec<Member>> =
            (0..table.schema().len()).map(|d| table.column(d).to_vec()).collect();
        let op = LogOp::CreateTable {
            name: table.name().to_string(),
            schema: table.schema().clone(),
            rows_per_page: table.rows_per_page() as u64,
            columns,
        };
        self.apply_durable_locked(&mut catalog, op)?;
        Ok(catalog.n_tables() - 1)
    }

    /// Appends rows to a table durably. All-or-nothing: every row is
    /// validated against the schema before anything is logged.
    pub fn insert_rows(
        &self,
        table: &str,
        rows: Vec<Vec<Member>>,
    ) -> Result<(), EngineError> {
        let mut catalog = self.write_catalog();
        let id = catalog
            .table_by_name(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
        let t = &catalog.table(id).table;
        validate_rows(t, &rows)?;
        let name = t.name().to_string();
        self.apply_durable_locked(&mut catalog, LogOp::Insert { table: name, rows })?;
        Ok(())
    }

    /// Creates a secondary index durably.
    pub fn create_index(&self, table: &str, columns: &[AttrId]) -> Result<(), EngineError> {
        let mut catalog = self.write_catalog();
        let (name, cols) = checked_index_target(&catalog, table, columns)?;
        self.apply_durable_locked(
            &mut catalog,
            LogOp::CreateIndex { table: name, columns: cols },
        )?;
        Ok(())
    }

    /// Drops a secondary index durably (a no-op if none matches).
    pub fn drop_index(&self, table: &str, columns: &[AttrId]) -> Result<(), EngineError> {
        let mut catalog = self.write_catalog();
        let (name, cols) = checked_index_target(&catalog, table, columns)?;
        self.apply_durable_locked(
            &mut catalog,
            LogOp::DropIndex { table: name, columns: cols },
        )?;
        Ok(())
    }

    /// Replaces a model's content durably from its serialized form. The
    /// form is instantiated (and thereby fully validated) *before* it is
    /// logged, so a bad document can never reach the WAL.
    pub fn retrain_durable_model(
        &self,
        name: &str,
        stored: StoredModel,
        opts: DeriveOptions,
    ) -> Result<(), EngineError> {
        let mut catalog = self.write_catalog();
        if catalog.model_by_name(name).is_none() {
            return Err(EngineError::UnknownModel(name.to_string()));
        }
        stored.instantiate()?;
        self.apply_durable_locked(
            &mut catalog,
            LogOp::Retrain { name: name.to_string(), stored, opts },
        )?;
        Ok(())
    }

    /// Registers a model durably from its serialized form (the
    /// programmatic twin of `CREATE MINING MODEL`, for models trained
    /// elsewhere and shipped as PMML).
    pub fn register_durable_model(
        &self,
        name: &str,
        stored: StoredModel,
        opts: DeriveOptions,
    ) -> Result<ModelId, EngineError> {
        let mut catalog = self.write_catalog();
        if catalog.model_by_name(name).is_some() {
            return Err(EngineError::Duplicate(name.to_string()));
        }
        stored.instantiate()?;
        self.apply_durable_locked(
            &mut catalog,
            LogOp::CreateModel { name: name.to_string(), stored, opts },
        )?;
        Ok(catalog.n_models() - 1)
    }

    /// Writes a checkpoint: the whole durable catalog as one atomically
    /// installed, checksummed snapshot, after which the WAL is rotated
    /// and segments older generations no longer need are deleted. The
    /// two newest snapshots are retained so a corrupt newest snapshot
    /// still leaves a recoverable older generation (with its WAL).
    ///
    /// Holds the catalog read lock for the duration, so the snapshot is
    /// a consistent cut: concurrent queries proceed, concurrent DDL
    /// waits.
    ///
    /// Returns the LSN the snapshot covers. Errors if the engine is
    /// in-memory ([`Engine::new`]).
    pub fn checkpoint(&self) -> Result<u64, EngineError> {
        let catalog = self.read_catalog();
        let mut persist = self.lock_persist();
        let p = persist.as_mut().ok_or_else(|| EngineError::Io {
            detail: "checkpoint on an in-memory engine (use Engine::open)".to_string(),
        })?;
        let last_lsn = p.next_lsn - 1;
        snapshot::write_snapshot(&p.dir, &catalog, last_lsn)?;
        // Rotate the log unless the current segment is still empty (a
        // repeated checkpoint with no mutations in between).
        if p.wal.start_lsn() != p.next_lsn {
            p.wal = WalWriter::create(&p.dir, p.next_lsn, catalog.fault_injector())?;
        }
        // Retain the two newest snapshots; drop older ones and every
        // segment the *older* retained snapshot no longer needs (so the
        // fallback generation keeps a complete log suffix).
        let snapshots = recovery::list_snapshots(&p.dir)?;
        for (_, path) in snapshots.iter().skip(2) {
            std::fs::remove_file(path)?;
        }
        if let Some((fallback_lsn, _)) = snapshots.get(1) {
            let segments = recovery::list_segments(&p.dir)?;
            for w in segments.windows(2) {
                let (_, ref path) = w[0];
                let (next_start, _) = w[1];
                if next_start <= fallback_lsn + 1 && path != p.wal.path() {
                    std::fs::remove_file(path)?;
                }
            }
        }
        Ok(last_lsn)
    }

    /// Drops the engine *without* writing the clean-shutdown marker,
    /// exactly as a crash would — the next [`Engine::open`] replays the
    /// log for real. Test hook for crash-safety tests.
    pub fn simulate_crash(self) {
        if let Some(p) = self.lock_persist().as_mut() {
            p.crashed = true;
        }
    }

    /// The guard applied to every query.
    pub fn guard(&self) -> QueryGuard {
        *self.guard.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Sets the resource guard applied to every subsequent query.
    pub fn set_guard(&self, guard: QueryGuard) {
        *self.guard.write().unwrap_or_else(|e| e.into_inner()) = guard;
    }

    /// Degree of parallelism applied to query execution.
    pub fn parallelism(&self) -> usize {
        self.parallelism.load(Ordering::Relaxed)
    }

    /// Sets the degree of parallelism (clamped to `1..=256`); `1` runs
    /// the serial executor. Also reachable as `SET PARALLELISM n`.
    pub fn set_parallelism(&self, dop: usize) {
        self.parallelism.store(dop.clamp(1, 256), Ordering::Relaxed);
    }

    /// Whether adaptive predicate evaluation (runtime DNF reordering,
    /// shared-subexpression factoring, selectivity feedback) is on.
    pub fn adaptive(&self) -> bool {
        self.adaptive.load(Ordering::Relaxed)
    }

    /// Turns adaptive predicate evaluation on or off engine-wide. Off
    /// restores the fixed compile-time evaluation order exactly. Also
    /// reachable as `SET ADAPTIVE {ON|OFF}`.
    pub fn set_adaptive(&self, on: bool) {
        self.adaptive.store(on, Ordering::Relaxed);
    }

    /// The catalog's fault injector (test hook; all faults off by
    /// default).
    pub fn fault_injector(&self) -> Arc<FaultInjector> {
        self.read_catalog().fault_injector()
    }

    // ---- standing subscriptions (predicate pub/sub) ------------------

    /// Installs (or clears) the callback that receives subscription
    /// match events. The server installs one sink per process and fans
    /// events out to subscriber sessions; embedded users can install a
    /// channel sender. Events are delivered on the inserting thread,
    /// after the insert is durable, replicated, and unlocked.
    pub fn set_notify_sink(&self, sink: Option<NotifySink>) {
        *self.notify_sink.write().unwrap_or_else(|e| e.into_inner()) = sink;
    }

    /// The inverted envelope index for the current subscription set,
    /// reusing the cached build when its key still matches (same
    /// subscription generation, same model versions, same compile
    /// setting).
    fn sub_index_for(&self, catalog: &Catalog, compile: bool) -> Arc<SubIndex> {
        let mut cached = self.sub_index.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(idx) = cached.as_ref() {
            if *idx.key() == crate::subscribe::IndexKey::current(catalog, compile) {
                return Arc::clone(idx);
            }
        }
        let idx = Arc::new(SubIndex::build(catalog, compile));
        *cached = Some(Arc::clone(&idx));
        idx
    }

    /// Matches the rows appended at `first_row..` against every
    /// standing subscription on `table`. Runs under the catalog write
    /// lock, immediately after the insert applied, so the match set is
    /// exactly what re-running each subscription's query from scratch
    /// over the post-insert table would add — the differential oracle's
    /// definition of correct delivery.
    ///
    /// Returns the events plus the statement-level counters
    /// (`subs_matched`, `subs_index_pruned`).
    fn match_subscriptions(
        &self,
        catalog: &Catalog,
        table: usize,
        first_row: RowId,
    ) -> (Vec<MatchEvent>, u64, u64) {
        if catalog.n_subscriptions() == 0 {
            return (Vec::new(), 0, 0);
        }
        let opts = self.options();
        let compile = opts.compile_models && !catalog.faults().any_scorer_fault_armed();
        let idx = self.sub_index_for(catalog, compile);
        if idx.n_subs(table) == 0 {
            return (Vec::new(), 0, 0);
        }
        // Degraded mode: with the index-corruption fault armed the
        // matcher evaluates every subscription in full. Identical
        // matches by construction (the index is only ever a
        // necessary-condition filter), recorded as a health note.
        let naive = catalog.faults().sub_index_corrupt_armed();
        catalog.set_sub_index_note(naive.then(|| {
            "inverted subscription index distrusted (corruption fault armed); \
             every subscription evaluated in full against each inserted row"
                .to_string()
        }));
        let cascades = crate::compile::build_cascades(catalog, idx.models(table));
        let memo = MemoScorer::with_cascades(catalog, DEFAULT_MEMO_CAPACITY, cascades);
        let t = &catalog.table(table).table;
        let name = t.name().to_string();
        let mut events = Vec::new();
        let (mut matched, mut pruned) = (0u64, 0u64);
        for row_id in first_row..t.n_rows() as RowId {
            let row = t.row(row_id);
            let (subs, metrics) = idx.match_row(table, &row, &memo, naive);
            matched += subs.len() as u64;
            pruned += metrics.index_pruned;
            for sub in subs {
                events.push(MatchEvent {
                    subscription: sub,
                    table: name.clone(),
                    row_id,
                    row: row.clone(),
                    metrics,
                });
            }
        }
        (events, matched, pruned)
    }

    /// Hands match events to the installed notify sink, if any.
    fn deliver_matches(&self, events: Vec<MatchEvent>) {
        if events.is_empty() {
            return;
        }
        let sink = self.notify_sink.read().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(sink) = sink {
            for event in events {
                sink(event);
            }
        }
    }

    // ---- replication -------------------------------------------------

    /// This node's replication role.
    pub fn role(&self) -> ReplRole {
        self.lock_repl().role
    }

    /// This node's replication epoch (durable, catalog-resident).
    pub fn epoch(&self) -> u64 {
        self.read_catalog().epoch()
    }

    /// Makes this engine a read-only standby: every local mutation is
    /// refused with [`EngineError::ReadOnly`] until [`Engine::promote`].
    pub fn set_standby(&self) {
        self.lock_repl().role = ReplRole::Standby;
        self.repl_cv.notify_all();
    }

    /// Turns on synchronous replication: mutation acknowledgements gate
    /// on the standby confirming the record (via
    /// [`Engine::replica_acked`]).
    pub fn enable_sync_replication(&self) {
        self.lock_repl().sync = true;
    }

    /// Promotes a standby to primary: flips the role, clears any fence,
    /// and durably bumps the epoch so the deposed primary's stream (and
    /// any zombie writes it attempts) is rejected everywhere. Returns
    /// the new epoch. Safe to call on a node that is already primary —
    /// the bump still fences the peer.
    pub fn promote(&self) -> Result<u64, EngineError> {
        let mut catalog = self.write_catalog();
        let prior = {
            let mut repl = self.lock_repl();
            let prior = (repl.role, repl.fenced);
            repl.role = ReplRole::Primary;
            repl.fenced = None;
            prior
        };
        let epoch = catalog.epoch() + 1;
        match self.apply_durable_locked(&mut catalog, LogOp::EpochBump { epoch }) {
            Ok(_) => Ok(epoch),
            Err(e) => {
                // The bump never became durable: restore the prior role
                // so a failed promotion doesn't leave a writable node
                // with an unfenced twin.
                let mut repl = self.lock_repl();
                (repl.role, repl.fenced) = prior;
                Err(e)
            }
        }
    }

    /// Records a standby acknowledgement up to `lsn` (`bytes` is the
    /// stream size acknowledged, for lag accounting) and wakes waiting
    /// mutations. Called by the shipping layer.
    pub fn replica_acked(&self, lsn: u64, bytes: u64) {
        {
            let mut repl = self.lock_repl();
            repl.acked_lsn = repl.acked_lsn.max(lsn);
            repl.acked_bytes = repl.acked_bytes.saturating_add(bytes);
        }
        self.repl_cv.notify_all();
    }

    /// Marks this node fenced: a replication peer reported a higher
    /// epoch (`have`) than the one this node sent (`sent`). Every
    /// mutation — and every waiter in [`Engine::wait_replicated`] —
    /// fails with [`EngineError::StaleEpoch`] from now on.
    pub fn mark_fenced(&self, sent: u64, have: u64) {
        self.lock_repl().fenced = Some((sent, have));
        self.repl_cv.notify_all();
    }

    /// Blocks until the standby has acknowledged `lsn`, the node is
    /// fenced (typed error), or `timeout` elapses (retryable `Io`
    /// error). Immediate `Ok` when synchronous replication is off.
    /// Call *after* dropping the catalog write lock: the record is
    /// already durable locally, and holding the lock here would stall
    /// readers for the full network round-trip.
    pub fn wait_replicated(&self, lsn: u64, timeout: Duration) -> Result<(), EngineError> {
        let deadline = Instant::now() + timeout;
        let mut repl = self.lock_repl();
        loop {
            if !repl.sync || repl.role == ReplRole::Standby {
                return Ok(());
            }
            if let Some((sent, have)) = repl.fenced {
                return Err(EngineError::StaleEpoch { sent, have });
            }
            if repl.acked_lsn >= lsn {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(EngineError::Io {
                    detail: format!(
                        "replication ack timeout: standby at lsn {}, waiting for {lsn}",
                        repl.acked_lsn
                    ),
                });
            }
            let (guard, _) = self
                .repl_cv
                .wait_timeout(repl, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            repl = guard;
        }
    }

    /// Point-in-time replication status (role, epoch, and — on a
    /// synchronous primary — how far behind the standby is).
    pub fn replication_status(&self) -> ReplStatus {
        let epoch = self.read_catalog().epoch();
        let last = self.last_lsn();
        let repl = self.lock_repl();
        let (lag_records, lag_bytes) = if repl.sync && repl.role == ReplRole::Primary {
            (
                Some(last.saturating_sub(repl.acked_lsn)),
                Some(repl.appended_bytes.saturating_sub(repl.acked_bytes)),
            )
        } else {
            (None, None)
        };
        ReplStatus { role: repl.role, epoch, lag_records, lag_bytes }
    }

    /// LSN of the most recently logged record (0 when nothing was ever
    /// logged, including for in-memory engines).
    pub fn last_lsn(&self) -> u64 {
        self.lock_persist().as_ref().map_or(0, |p| p.next_lsn - 1)
    }

    /// Reads committed WAL frames after `from_lsn` for shipping; see
    /// [`replicate::read_frames_after`] for the `None` (snapshot
    /// needed) contract. Errors on in-memory engines.
    pub fn replication_frames_after(
        &self,
        from_lsn: u64,
    ) -> Result<Option<ReplBatch>, EngineError> {
        let dir = self
            .lock_persist()
            .as_ref()
            .map(|p| p.dir.clone())
            .ok_or_else(|| EngineError::Io {
                detail: "replication requires a durable engine (use Engine::open)".to_string(),
            })?;
        replicate::read_frames_after(&dir, from_lsn, &self.fault_injector())
    }

    /// Serializes the whole catalog for standby bootstrap, returning
    /// the checksummed snapshot bytes and the LSN they cover. Taken
    /// under the catalog read lock, so it is a consistent cut.
    pub fn snapshot_for_replication(&self) -> Result<(Vec<u8>, u64), EngineError> {
        let catalog = self.read_catalog();
        let last_lsn = self.last_lsn();
        Ok((snapshot::serialize_catalog(&catalog, last_lsn), last_lsn))
    }

    /// Standby side of shipping: decodes a stream batch (strictly; any
    /// corrupt byte fails the whole batch) and replays each record
    /// through the recovery apply path, appending it to this node's own
    /// WAL first so the standby is itself crash-safe. Records below the
    /// standby's next LSN are skipped (at-least-once delivery), records
    /// above it are a typed gap error. A batch stamped with an epoch
    /// below this node's is refused — that sender was deposed.
    ///
    /// Returns this node's next LSN after the batch (the ack value).
    pub fn apply_replicated_frames(
        &self,
        epoch: u64,
        bytes: &[u8],
    ) -> Result<u64, EngineError> {
        let mut catalog = self.write_catalog();
        if self.lock_repl().role != ReplRole::Standby {
            return Err(EngineError::Internal {
                detail: "replication stream applied to a non-standby node".to_string(),
            });
        }
        if epoch < catalog.epoch() {
            return Err(EngineError::StaleEpoch { sent: epoch, have: catalog.epoch() });
        }
        let records = replicate::decode_stream(bytes)?;
        self.lock_cache().clear();
        let mut persist = self.lock_persist();
        let p = persist.as_mut().ok_or_else(|| EngineError::Io {
            detail: "standby replay requires a durable engine (use Engine::open)".to_string(),
        })?;
        for (lsn, op) in records {
            if lsn < p.next_lsn {
                continue; // duplicate delivery — already applied
            }
            if lsn > p.next_lsn {
                return Err(EngineError::Corrupt {
                    detail: format!(
                        "replication gap: received lsn {lsn}, expected {}",
                        p.next_lsn
                    ),
                });
            }
            p.wal.append(lsn, &op)?;
            p.next_lsn += 1;
            recovery::apply_op(&mut catalog, &op)?;
        }
        Ok(p.next_lsn)
    }

    /// Standby bootstrap: installs a primary-shipped snapshot as this
    /// node's entire durable state, replacing the catalog and starting
    /// a fresh WAL at the snapshot's LSN + 1. The pre-bootstrap log and
    /// snapshots describe a different history and are deleted.
    ///
    /// Returns this node's next LSN (the ack value).
    pub fn install_replica_snapshot(&self, bytes: &[u8]) -> Result<u64, EngineError> {
        let state = snapshot::decode_snapshot(bytes)?;
        let mut catalog = self.write_catalog();
        if self.lock_repl().role != ReplRole::Standby {
            return Err(EngineError::Internal {
                detail: "replication snapshot installed on a non-standby node".to_string(),
            });
        }
        if state.epoch < catalog.epoch() {
            return Err(EngineError::StaleEpoch { sent: state.epoch, have: catalog.epoch() });
        }
        let faults = catalog.fault_injector();
        let (new_catalog, last_lsn) = recovery::build_catalog(state, faults.clone())?;
        self.lock_cache().clear();
        let mut persist = self.lock_persist();
        let p = persist.as_mut().ok_or_else(|| EngineError::Io {
            detail: "standby bootstrap requires a durable engine (use Engine::open)".to_string(),
        })?;
        snapshot::write_snapshot(&p.dir, &new_catalog, last_lsn)?;
        for (lsn, path) in recovery::list_snapshots(&p.dir)? {
            if lsn != last_lsn {
                std::fs::remove_file(&path)?;
            }
        }
        // Delete every old segment *including* the one the current
        // writer holds open (its name could collide with the fresh
        // segment's); the held fd keeps pointing at the unlinked file
        // until the writer is replaced on the next line.
        for (_, path) in recovery::list_segments(&p.dir)? {
            std::fs::remove_file(&path)?;
        }
        p.wal = WalWriter::create(&p.dir, last_lsn + 1, faults)?;
        p.next_lsn = last_lsn + 1;
        *catalog = new_catalog;
        Ok(p.next_lsn)
    }

    /// Reports per-model envelope health plus catalog/cache counts —
    /// the operational view of degraded models.
    pub fn health(&self) -> EngineHealth {
        let catalog = self.read_catalog();
        let models = (0..catalog.n_models())
            .map(|id| {
                let e = catalog.model(id);
                ModelHealth {
                    name: e.name.clone(),
                    version: e.version,
                    degraded: e.degraded.clone(),
                    n_envelopes: e.envelopes.len(),
                    exact_envelopes: e.envelopes.iter().filter(|env| env.exact).count(),
                    cascade_note: e
                        .cascade_note
                        .lock()
                        .unwrap_or_else(|err| err.into_inner())
                        .clone(),
                }
            })
            .collect();
        let last = self.lock_persist().as_ref().map_or(0, |p| p.next_lsn - 1);
        let (role, lag_records, lag_bytes) = {
            let repl = self.lock_repl();
            if repl.sync && repl.role == ReplRole::Primary {
                (
                    repl.role,
                    Some(last.saturating_sub(repl.acked_lsn)),
                    Some(repl.appended_bytes.saturating_sub(repl.acked_bytes)),
                )
            } else {
                (repl.role, None, None)
            }
        };
        EngineHealth {
            models,
            tables: catalog.n_tables(),
            cached_plans: self.lock_cache().len(),
            recovery: self.lock_persist().as_ref().map(|p| p.report.clone()),
            role,
            epoch: catalog.epoch(),
            replica_lag_records: lag_records,
            replica_lag_bytes: lag_bytes,
            subscriptions: catalog.n_subscriptions(),
            sub_index_note: catalog.sub_index_note(),
        }
    }

    /// Read access to the catalog. The returned guard holds a shared
    /// lock: any number of readers (and running queries) coexist, but
    /// DDL waits until every guard is dropped — don't hold one across a
    /// mutating call on the same engine from the same thread.
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.read_catalog()
    }

    /// Mutable access to the catalog (table/model registration, index
    /// creation). Takes the exclusive lock and clears the plan cache —
    /// DDL invalidates plans.
    pub fn catalog_mut(&self) -> RwLockWriteGuard<'_, Catalog> {
        let catalog = self.write_catalog();
        self.lock_cache().clear();
        catalog
    }

    /// Current optimizer options.
    pub fn options(&self) -> OptimizerOptions {
        *self.opts.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Replaces optimizer options (clears the plan cache).
    pub fn set_options(&self, opts: OptimizerOptions) {
        *self.opts.write().unwrap_or_else(|e| e.into_inner()) = opts;
        self.lock_cache().clear();
    }

    /// Enables/disables envelope rewriting — the experiments' switch
    /// between the optimized path and the black-box baseline.
    pub fn set_use_envelopes(&self, on: bool) {
        self.opts.write().unwrap_or_else(|e| e.into_inner()).use_envelopes = on;
        self.lock_cache().clear();
    }

    /// Enables/disables model compilation (exact-envelope predicate
    /// substitution and proxy cascades). Off = the envelope+residual
    /// reference path every compiled plan is differentially tested
    /// against.
    pub fn set_compile_models(&self, on: bool) {
        self.opts.write().unwrap_or_else(|e| e.into_inner()).compile_models = on;
        self.lock_cache().clear();
    }

    /// Registers a trained model (training-time envelope precomputation
    /// happens inside the catalog). The model is *transient*: a bare
    /// trait object has no serialized form, so it is skipped by
    /// checkpoints and does not survive recovery — use
    /// [`Engine::register_durable_model`] or SQL DDL for durability.
    pub fn register_model(
        &self,
        name: impl Into<String>,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
        opts: DeriveOptions,
    ) -> Result<ModelId, EngineError> {
        let mut catalog = self.write_catalog();
        self.lock_cache().clear();
        catalog.add_model(name, model, opts)
    }

    /// Retrains a model in place; dependent cached plans become invalid
    /// via the version check. If the previous registration was degraded,
    /// a successful derivation here clears the flag.
    pub fn retrain_model(
        &self,
        id: ModelId,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
    ) -> Result<(), EngineError> {
        self.write_catalog().retrain_model(id, model)
    }

    /// Retrains with fresh derivation options — the recovery path for a
    /// degraded model (e.g. retry with a larger time budget).
    pub fn retrain_model_with(
        &self,
        id: ModelId,
        model: Arc<dyn EnvelopeProvider + Send + Sync>,
        opts: DeriveOptions,
    ) -> Result<(), EngineError> {
        self.write_catalog().retrain_model_with(id, model, opts)
    }

    /// Plans a predicate for a table (parse-free entry point used by the
    /// benchmark harness).
    pub fn plan_predicate(&self, table: usize, predicate: Expr) -> Plan {
        let catalog = self.read_catalog();
        let opts = self.options();
        plan_with(&catalog, &opts, table, predicate)
    }

    /// Runs (or explains) one SQL query with the engine-wide
    /// parallelism and guard (a session with no overrides).
    ///
    /// No panic escapes this entry point: panics from model code (or
    /// injected scorer faults) are caught and reported as
    /// [`EngineError::Internal`]; the engine remains usable afterwards.
    pub fn query(&self, sql: &str) -> Result<QueryOutcome, EngineError> {
        self.query_in(sql, &SessionState::new())
    }

    /// Runs (or explains) one SQL query under `session`'s overrides
    /// (parallelism and guard); unset overrides fall through to the
    /// engine-wide defaults. Panic containment as in [`Engine::query`].
    pub fn query_in(
        &self,
        sql: &str,
        session: &SessionState,
    ) -> Result<QueryOutcome, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.query_inner(sql, session))).unwrap_or_else(
            |payload| {
                // Conservative: a panic mid-query may have left a
                // half-built plan cached.
                self.lock_cache().clear();
                Err(EngineError::Internal { detail: panic_message(&*payload) })
            },
        )
    }

    fn query_inner(
        &self,
        sql: &str,
        session: &SessionState,
    ) -> Result<QueryOutcome, EngineError> {
        // Held for the whole query: readers share it, so queries run
        // concurrently; DDL takes it exclusively, so no query ever sees
        // a half-applied mutation.
        let catalog = self.read_catalog();
        let opts = self.options();
        let parsed = parse(sql, &catalog)?;
        // The effective compile flag is part of the key: arming a scorer
        // fault must not reuse a plan whose models were compiled away.
        // (The cascade-perturbation fault needs no key bit: it is applied
        // and caught by verification at *execution* time, so a cached
        // plan's cascade annotations stay correct either way.)
        let compile = opts.compile_models && !catalog.faults().any_scorer_fault_armed();
        let cache_key =
            format!("{}|env={}|cmp={}", sql.trim(), opts.use_envelopes, compile);
        let (plan, cached) = {
            // The cache mutex is held while planning: cheap, and it
            // guarantees a stale plan can never be inserted over a
            // fresher one (inserts only happen under the catalog lock).
            let mut cache = self.lock_cache();
            match cache.get(&cache_key) {
                Some(p) if plan_is_valid(p, &catalog) => (p.clone(), true),
                _ => {
                    let plan =
                        plan_with(&catalog, &opts, parsed.table, parsed.predicate.clone());
                    cache.insert(cache_key.clone(), plan.clone());
                    (plan, false)
                }
            }
        };
        let schema = catalog.table(parsed.table).table.schema().clone();
        let plan_text = plan_to_string(&plan, &schema, &catalog);
        let plan_changed = plan.access.changed_from_scan();
        let dop = session.parallelism().unwrap_or_else(|| self.parallelism());
        let adaptive = session.adaptive().unwrap_or_else(|| self.adaptive());
        if parsed.explain {
            // EXPLAIN doubles as the operational status surface: the
            // effective degree of parallelism and adaptivity, plus (for
            // durable engines) what recovery found at open time.
            let mut plan_text = plan_text;
            plan_text.push_str(&format!("\nparallelism: {dop}"));
            plan_text
                .push_str(&format!("\nadaptive: {}", if adaptive { "on" } else { "off" }));
            if let Some(p) = self.lock_persist().as_ref() {
                plan_text.push_str(&format!("\n{}", p.report));
            }
            return Ok(QueryOutcome {
                rows: Vec::new(),
                metrics: ExecMetrics::default(),
                plan: plan_text,
                plan_changed,
                cached_plan: cached,
            });
        }
        let result = execute_opts(
            &plan,
            &catalog,
            session.guard().unwrap_or_else(|| self.guard()),
            &ExecOptions { adaptive, ..ExecOptions::with_parallelism(dop) },
        )?;
        let mut metrics = result.metrics;
        // Fold the calibration's observed clause selectivities into the
        // table's bounded feedback store; later plannings of repeated
        // queries cost access paths from what actually happened instead
        // of the independence assumption. When the fed-back estimates
        // flip the cheapest access path, the cached plan is evicted so
        // the very next run of the same SQL re-plans.
        let stats = &catalog.table(parsed.table).stats;
        if !result.feedback.is_empty() && stats.feedback().record_all(&result.feedback) {
            let replanned = plan_with(&catalog, &opts, parsed.table, parsed.predicate);
            if replanned.access != plan.access {
                self.lock_cache().remove(&cache_key);
            }
        }
        metrics.feedback_entries = stats.feedback().len() as u64;
        Ok(QueryOutcome {
            rows: result.rows,
            metrics,
            plan: plan_text,
            plan_changed,
            cached_plan: cached,
        })
    }

    /// Runs one statement: a query, DDL like `CREATE MINING MODEL m ON
    /// t PREDICT label USING decision_tree`, or a session knob like
    /// `SET PARALLELISM 4`. Training happens here; envelope
    /// precomputation happens at registration (§4.2).
    ///
    /// Like [`Engine::query`], panics are caught and surfaced as
    /// [`EngineError::Internal`]. Envelope-derivation failures do not
    /// fail a `CREATE MINING MODEL`: the model lands degraded (trivial
    /// envelopes) and the outcome's `degraded` field carries the reason.
    pub fn execute_sql(&self, sql: &str) -> Result<StatementOutcome, EngineError> {
        self.execute_sql_dispatch(sql, None, None)
    }

    /// Like [`Engine::execute_sql`], but scoped to `session`: `SET
    /// PARALLELISM` and `SET GUARD` update the session's overrides
    /// instead of the engine-wide defaults, and queries run under them.
    /// This is the entry point one network connection (or any other
    /// client wanting isolation from its neighbours) should use.
    pub fn execute_sql_in(
        &self,
        sql: &str,
        session: &mut SessionState,
    ) -> Result<StatementOutcome, EngineError> {
        self.execute_sql_dispatch(sql, Some(session), None)
    }

    /// Like [`Engine::execute_sql_in`], with an exactly-once stamp: if a
    /// statement carrying the same id already applied — whether observed
    /// live or replayed from the WAL after a crash — the mutation is NOT
    /// re-applied and the original outcome is reconstructed instead.
    /// This is what makes blind client retries safe: a response lost to
    /// a connection drop (or a crash after the WAL append) cannot turn
    /// into a double INSERT.
    ///
    /// Only mutating statements (INSERT, CREATE MINING MODEL) consult
    /// the stamp; queries and SET are idempotent and simply re-execute.
    /// A retry whose outcome was evicted from the dedup cache fails with
    /// [`EngineError::Internal`] rather than re-applying.
    pub fn execute_sql_stamped(
        &self,
        sql: &str,
        session: &mut SessionState,
        id: StatementId,
    ) -> Result<StatementOutcome, EngineError> {
        self.execute_sql_dispatch(sql, Some(session), Some(id))
    }

    fn execute_sql_dispatch(
        &self,
        sql: &str,
        session: Option<&mut SessionState>,
        stamp: Option<StatementId>,
    ) -> Result<StatementOutcome, EngineError> {
        catch_unwind(AssertUnwindSafe(|| self.execute_sql_inner(sql, session, stamp)))
            .unwrap_or_else(|payload| {
                self.lock_cache().clear();
                Err(EngineError::Internal { detail: panic_message(&*payload) })
            })
    }

    /// Checks a statement stamp against the dedup store (caller holds
    /// the catalog write lock). `Ok(Some(..))` means the statement
    /// already applied: hand its reconstructed outcome back instead of
    /// re-executing.
    fn check_stamp(
        &self,
        catalog: &Catalog,
        stamp: Option<StatementId>,
    ) -> Result<Option<StatementOutcome>, EngineError> {
        let Some(id) = stamp else { return Ok(None) };
        match catalog.dedup().check(id) {
            DedupCheck::New => Ok(None),
            DedupCheck::Replay(outcome) => {
                Ok(Some(reconstruct_outcome(catalog, &outcome)?))
            }
            DedupCheck::Evicted => Err(EngineError::Internal {
                detail: format!(
                    "statement {id} already applied but its outcome was evicted \
                     from the dedup cache; refusing to re-apply"
                ),
            }),
        }
    }

    fn execute_sql_inner(
        &self,
        sql: &str,
        mut session: Option<&mut SessionState>,
        stamp: Option<StatementId>,
    ) -> Result<StatementOutcome, EngineError> {
        let statement = {
            let catalog = self.read_catalog();
            parse_statement(sql, &catalog)?
        };
        match statement {
            Statement::Select(_) => {
                let no_overrides = SessionState::new();
                let s = session.as_deref().unwrap_or(&no_overrides);
                Ok(StatementOutcome::Query(self.query_inner(sql, s)?))
            }
            Statement::SetParallelism(dop) => {
                // With a session, the override is session-local; without
                // one, the statement keeps its historical meaning and
                // re-tunes the engine-wide default.
                let dop = match session.as_mut() {
                    Some(s) => s.set_parallelism(dop),
                    None => {
                        self.set_parallelism(dop);
                        self.parallelism()
                    }
                };
                Ok(StatementOutcome::ParallelismSet { dop })
            }
            Statement::SetAdaptive(on) => {
                let on = match session.as_mut() {
                    Some(s) => s.set_adaptive(on),
                    None => {
                        self.set_adaptive(on);
                        self.adaptive()
                    }
                };
                Ok(StatementOutcome::AdaptiveSet { on })
            }
            Statement::SetGuard { resource, limit } => {
                let guard = match session.as_mut() {
                    Some(s) => {
                        let g = s.guard().unwrap_or_else(|| self.guard());
                        let g = g.with_limit(resource, limit);
                        s.set_guard(g);
                        g
                    }
                    None => {
                        let g = self.guard().with_limit(resource, limit);
                        self.set_guard(g);
                        g
                    }
                };
                Ok(StatementOutcome::GuardSet { guard })
            }
            Statement::SetGuardOff => {
                let guard = QueryGuard::unlimited();
                match session.as_mut() {
                    Some(s) => s.set_guard(guard),
                    None => self.set_guard(guard),
                }
                Ok(StatementOutcome::GuardSet { guard })
            }
            Statement::Insert { table, rows } => {
                let (outcome, lsn, events) = {
                    let mut catalog = self.write_catalog();
                    // Stamp check first: a retried INSERT whose response
                    // was lost must come back with the original outcome,
                    // not apply again. The replayed ack still gates on
                    // replication of the *last* local record — the
                    // original apply may not have shipped yet. No events
                    // either: the original apply already delivered them.
                    if let Some(replayed) = self.check_stamp(&catalog, stamp)? {
                        (replayed, self.last_lsn(), Vec::new())
                    } else {
                        let t = &catalog.table(table).table;
                        // Re-validated under the exclusive lock: a logged
                        // op MUST replay, so nothing invalid may reach
                        // the WAL.
                        validate_rows(t, &rows)?;
                        let name = t.name().to_string();
                        let rows_inserted = rows.len() as u64;
                        let first_row = t.n_rows() as RowId;
                        let mut op = LogOp::Insert { table: name.clone(), rows };
                        if let Some(id) = stamp {
                            op = LogOp::Stamped { id, inner: Box::new(op) };
                        }
                        let lsn = self.apply_durable_locked(&mut catalog, op)?;
                        // Match the new rows against standing
                        // subscriptions while still holding the write
                        // lock: the match set is exactly the delta a
                        // from-scratch re-run of each subscription would
                        // see at this point in the insert order.
                        let (events, subs_matched, subs_index_pruned) =
                            self.match_subscriptions(&catalog, table, first_row);
                        if let Some(id) = stamp {
                            // Overwrite the outcome recovery recorded so
                            // a deduplicated retry reports the original
                            // match counters.
                            catalog.dedup_mut().record(
                                id,
                                DedupOutcome::Inserted {
                                    table: name.clone(),
                                    rows_inserted,
                                    subs_matched,
                                    subs_index_pruned,
                                },
                            );
                        }
                        (
                            StatementOutcome::Inserted {
                                table: name,
                                rows_inserted,
                                subs_matched,
                                subs_index_pruned,
                            },
                            lsn,
                            events,
                        )
                    }
                };
                // Catalog lock dropped: the mutation is durable locally,
                // but with synchronous replication on, success is only
                // reported once the standby has it too (zero lost acks
                // across a failover).
                self.wait_replicated(lsn, REPL_ACK_TIMEOUT)?;
                // Notifications go out last — after durability and
                // replication — so a subscriber can never observe a
                // match the writer was not yet acknowledged for.
                self.deliver_matches(events);
                Ok(outcome)
            }
            Statement::Subscribe { query, sql: inner_sql } => {
                let (outcome, lsn) = {
                    let mut catalog = self.write_catalog();
                    if let Some(replayed) = self.check_stamp(&catalog, stamp)? {
                        (replayed, self.last_lsn())
                    } else {
                        let id = catalog.next_subscription_id();
                        // Pre-validate exactly what replay will do: the
                        // logged text must re-parse, or it may not reach
                        // the WAL. (It just parsed above, but against a
                        // borrowed statement — this is cheap insurance
                        // that text and parse stay in lockstep.)
                        let _ = query;
                        crate::sql::parse(&inner_sql, &catalog)?;
                        let mut op = LogOp::Subscribe { id, sql: inner_sql };
                        if let Some(sid) = stamp {
                            op = LogOp::Stamped { id: sid, inner: Box::new(op) };
                        }
                        let lsn = self.apply_durable_locked(&mut catalog, op)?;
                        (StatementOutcome::Subscribed { id }, lsn)
                    }
                };
                self.wait_replicated(lsn, REPL_ACK_TIMEOUT)?;
                Ok(outcome)
            }
            Statement::Unsubscribe { id } => {
                let (outcome, lsn) = {
                    let mut catalog = self.write_catalog();
                    if let Some(replayed) = self.check_stamp(&catalog, stamp)? {
                        (replayed, self.last_lsn())
                    } else {
                        // Pre-validate: an UNSUBSCRIBE of an unknown id
                        // must fail typed here, not poison replay.
                        if catalog.subscription(id).is_none() {
                            return Err(EngineError::UnknownSubscription(id));
                        }
                        let mut op = LogOp::Unsubscribe { id };
                        if let Some(sid) = stamp {
                            op = LogOp::Stamped { id: sid, inner: Box::new(op) };
                        }
                        let lsn = self.apply_durable_locked(&mut catalog, op)?;
                        (StatementOutcome::Unsubscribed { id }, lsn)
                    }
                };
                self.wait_replicated(lsn, REPL_ACK_TIMEOUT)?;
                Ok(outcome)
            }
            Statement::CreateModel { name, table, label, clusters, algorithm } => {
                let (outcome, lsn) = {
                    let mut catalog = self.write_catalog();
                    // Stamp check before the duplicate check: a retried
                    // CREATE of the same name is a replay, not a conflict.
                    if let Some(replayed) = self.check_stamp(&catalog, stamp)? {
                        (replayed, self.last_lsn())
                    } else {
                        // Re-checked under the exclusive lock: another
                        // client may have registered the name since
                        // parsing.
                        if catalog.model_by_name(&name).is_some() {
                            return Err(EngineError::Duplicate(name));
                        }
                        // Train first (fallible, nothing logged yet),
                        // then log the *trained* model — replay
                        // re-registers identical content without
                        // retraining.
                        let (_, stored, n_classes) = crate::ddl::train_model_stored(
                            &catalog,
                            table,
                            label,
                            clusters,
                            algorithm,
                        )?;
                        let mut op = LogOp::CreateModel {
                            name: name.clone(),
                            stored,
                            opts: DeriveOptions::default(),
                        };
                        if let Some(id) = stamp {
                            op = LogOp::Stamped { id, inner: Box::new(op) };
                        }
                        let lsn = self.apply_durable_locked(&mut catalog, op)?;
                        let model = catalog.model_by_name(&name).ok_or_else(|| {
                            EngineError::Internal { detail: "created model missing".to_string() }
                        })?;
                        let degraded = catalog.model(model).degraded.clone();
                        (
                            StatementOutcome::ModelCreated { name, model, n_classes, degraded },
                            lsn,
                        )
                    }
                };
                self.wait_replicated(lsn, REPL_ACK_TIMEOUT)?;
                Ok(outcome)
            }
        }
    }
}

/// Rebuilds the statement-level outcome a deduplicated retry should
/// see from the recorded [`DedupOutcome`]. `ModelCreated` re-resolves
/// the model id by name, because ids are assigned at apply time.
fn reconstruct_outcome(
    catalog: &Catalog,
    o: &DedupOutcome,
) -> Result<StatementOutcome, EngineError> {
    match o {
        DedupOutcome::Inserted { table, rows_inserted, subs_matched, subs_index_pruned } => {
            Ok(StatementOutcome::Inserted {
                table: table.clone(),
                rows_inserted: *rows_inserted,
                subs_matched: *subs_matched,
                subs_index_pruned: *subs_index_pruned,
            })
        }
        DedupOutcome::Subscribed { id } => Ok(StatementOutcome::Subscribed { id: *id }),
        DedupOutcome::Unsubscribed { id } => Ok(StatementOutcome::Unsubscribed { id: *id }),
        DedupOutcome::ModelCreated { name, n_classes, degraded } => {
            let model = catalog.model_by_name(name).ok_or_else(|| EngineError::Internal {
                detail: format!("deduplicated CREATE of model '{name}' but it is missing"),
            })?;
            Ok(StatementOutcome::ModelCreated {
                name: name.clone(),
                model,
                n_classes: *n_classes as usize,
                degraded: degraded.clone(),
            })
        }
        // Statement-level stamps only cover statements that record a
        // shaped outcome.
        DedupOutcome::Applied => Err(EngineError::Internal {
            detail: "recorded dedup outcome has no statement-level shape".to_string(),
        }),
    }
}

/// Validates rows against a table's schema before anything is logged:
/// arity must match and every member must fit its column's domain.
fn validate_rows(t: &Table, rows: &[Vec<Member>]) -> Result<(), EngineError> {
    let schema = t.schema();
    for row in rows {
        if row.len() != schema.len() {
            return Err(EngineError::SchemaMismatch {
                detail: format!(
                    "row has {} values, table {} has {} columns",
                    row.len(),
                    t.name(),
                    schema.len()
                ),
            });
        }
        for (d, &m) in row.iter().enumerate() {
            if m >= schema.attrs()[d].domain.cardinality() {
                return Err(EngineError::BadValue(format!(
                    "member {m} out of range for column {}",
                    schema.attrs()[d].name
                )));
            }
        }
    }
    Ok(())
}

/// Validates an index DDL target, resolving the table name and column
/// list (free function: callers already hold the catalog lock).
fn checked_index_target(
    catalog: &Catalog,
    table: &str,
    columns: &[AttrId],
) -> Result<(String, Vec<u16>), EngineError> {
    let id = catalog
        .table_by_name(table)
        .ok_or_else(|| EngineError::UnknownTable(table.to_string()))?;
    let t = &catalog.table(id).table;
    let n = t.schema().len();
    for a in columns {
        if a.index() >= n {
            return Err(EngineError::UnknownColumn(format!(
                "attribute #{} of table {}",
                a.index(),
                t.name()
            )));
        }
    }
    Ok((t.name().to_string(), columns.iter().map(|a| a.0).collect()))
}

/// Rewrites and plans a predicate against an already-locked catalog
/// (keeping planning lock-free avoids re-entrant catalog acquisition).
///
/// Model compilation is gated twice: by the optimizer option, and by
/// armed scorer faults — a fault targeting the scorer needs the scorer
/// path live, so compilation (which would remove or bypass the scorer)
/// is suspended while one is armed.
fn plan_with(
    catalog: &Catalog,
    opts: &OptimizerOptions,
    table: usize,
    predicate: Expr,
) -> Plan {
    let schema = catalog.table(table).table.schema().clone();
    let compile = opts.compile_models && !catalog.faults().any_scorer_fault_armed();
    let (rewritten, compiled_exact) = if opts.use_envelopes {
        let normalized = predicate.normalize(&schema);
        let rewritten = rewrite_mining_opts(normalized.clone(), &schema, catalog, compile);
        let compiled_exact = if compile {
            crate::compile::compiled_out_models(&normalized, &rewritten)
        } else {
            Vec::new()
        };
        (rewritten, compiled_exact)
    } else {
        (predicate.normalize(&schema), Vec::new())
    };
    let eff = OptimizerOptions { compile_models: compile, ..*opts };
    let mut plan = choose_plan(rewritten, table, &schema, catalog, &eff);
    // Compiled-out models leave no mining predicate behind, but the
    // compiled atoms were derived from the model: its version must still
    // invalidate the cached plan on retrain.
    for m in &compiled_exact {
        if !plan.model_versions.iter().any(|(pm, _)| pm == m) {
            plan.model_versions.push((*m, catalog.model(*m).version));
        }
    }
    plan.compiled_exact = compiled_exact;
    plan
}

fn plan_is_valid(plan: &Plan, catalog: &Catalog) -> bool {
    plan.model_versions
        .iter()
        .all(|(m, v)| catalog.model(*m).version == *v)
}

impl Drop for Engine {
    /// A graceful exit stamps the log with a clean-shutdown marker
    /// (fsync'd like any record), so the next open reports
    /// `clean_shutdown` and never has to drop anything. Failures are
    /// swallowed — the marker is an optimization hint, not a
    /// correctness requirement, and recovery handles its absence.
    fn drop(&mut self) {
        let persist = self.persist.get_mut().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = persist {
            if !p.crashed {
                let _ = p.wal.append(p.next_lsn, &LogOp::CleanShutdown);
                p.next_lsn += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use mpq_core::paper_table1_model;
    use mpq_models::Classifier as _;
    use mpq_types::{AttrId, Dataset};

    /// Engine with the Table-1 model applied to a table whose rows are
    /// the 12 grid cells, each duplicated a skewed number of times.
    fn engine() -> Engine {
        let nb = paper_table1_model();
        let schema = nb.schema().clone();
        let mut ds = Dataset::new(schema);
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                let copies = 1 + (m0 as usize * 3 + m1 as usize) * 7;
                for _ in 0..copies {
                    ds.push_encoded(&[m0, m1]).unwrap();
                }
            }
        }
        let mut cat = Catalog::new();
        let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.create_index(t, &[AttrId(0)]);
        cat.create_index(t, &[AttrId(1)]);
        cat.add_model("m", Arc::new(nb), mpq_core::DeriveOptions::default()).unwrap();
        Engine::new(cat)
    }

    #[test]
    fn mining_query_matches_black_box_baseline() {
        let e = engine();
        for label in ["c1", "c2", "c3"] {
            let sql = format!("SELECT * FROM t WHERE PREDICT(m) = '{label}'");
            let optimized = e.query(&sql).unwrap();
            e.set_use_envelopes(false);
            let baseline = e.query(&sql).unwrap();
            e.set_use_envelopes(true);
            assert_eq!(optimized.rows, baseline.rows, "row sets must agree for {label}");
            assert!(
                optimized.metrics.model_invocations <= baseline.metrics.model_invocations,
                "envelopes must not increase model invocations"
            );
        }
    }

    #[test]
    fn explain_produces_plan_without_execution() {
        let e = engine();
        let out = e.query("EXPLAIN SELECT * FROM t WHERE PREDICT(m) = 'c1'").unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.metrics.rows_examined, 0);
        assert!(out.plan.contains("residual"), "plan text: {}", out.plan);
        assert!(
            out.plan.contains(&format!("parallelism: {}", e.parallelism())),
            "EXPLAIN surfaces the dop: {}",
            out.plan
        );
    }

    #[test]
    fn plan_cache_hits_and_invalidates_on_retrain() {
        let e = engine();
        let sql = "SELECT COUNT(*) FROM t WHERE PREDICT(m) = 'c1'";
        let first = e.query(sql).unwrap();
        assert!(!first.cached_plan);
        let second = e.query(sql).unwrap();
        assert!(second.cached_plan, "same SQL should hit the plan cache");
        // Retrain: version bump must invalidate.
        e.retrain_model(0, Arc::new(paper_table1_model())).unwrap();
        let third = e.query(sql).unwrap();
        assert!(!third.cached_plan, "retrained model must invalidate the cached plan");
        assert_eq!(first.rows, third.rows);
    }

    #[test]
    fn envelope_toggle_changes_plan_not_results() {
        let e = engine();
        let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c3'";
        let on = e.query(sql).unwrap();
        e.set_use_envelopes(false);
        let off = e.query(sql).unwrap();
        assert_eq!(on.rows, off.rows);
        // Without envelopes, a bare mining predicate can only full-scan.
        assert!(!off.plan_changed);
    }

    #[test]
    fn count_queries_work() {
        let e = engine();
        let out = e.query("SELECT COUNT(*) FROM t WHERE d0 = 'm0'").unwrap();
        let expected: u64 = (0..3).map(|m1| 1 + (m1 as u64) * 7).sum();
        assert_eq!(out.metrics.output_rows, expected);
    }

    #[test]
    fn ddl_clears_plan_cache() {
        let e = engine();
        let sql = "SELECT * FROM t WHERE d0 = 'm0'";
        e.query(sql).unwrap();
        drop(e.catalog_mut()); // any DDL touch
        let out = e.query(sql).unwrap();
        assert!(!out.cached_plan);
    }

    #[test]
    fn set_parallelism_statement_round_trips() {
        let e = engine();
        match e.execute_sql("SET PARALLELISM 4").unwrap() {
            StatementOutcome::ParallelismSet { dop } => assert_eq!(dop, 4),
            other => panic!("expected ParallelismSet, got {other:?}"),
        }
        assert_eq!(e.parallelism(), 4);
        // Queries still agree with the serial answer at dop 4.
        let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c2'";
        let parallel = e.query(sql).unwrap();
        e.set_parallelism(1);
        let serial = e.query(sql).unwrap();
        assert_eq!(parallel.rows, serial.rows);
        assert_eq!(parallel.metrics.rows_examined, serial.metrics.rows_examined);
        // Out-of-range values clamp instead of erroring.
        e.set_parallelism(0);
        assert_eq!(e.parallelism(), 1);
        e.set_parallelism(100_000);
        assert_eq!(e.parallelism(), 256);
        // And the knob is visible in EXPLAIN.
        e.set_parallelism(8);
        let out = e.query("EXPLAIN SELECT * FROM t WHERE d0 = 'm0'").unwrap();
        assert!(out.plan.contains("parallelism: 8"), "plan: {}", out.plan);
    }

    #[test]
    fn set_adaptive_statement_round_trips() {
        let e = engine();
        assert!(e.adaptive(), "adaptive evaluation is on by default");
        match e.execute_sql("SET ADAPTIVE OFF").unwrap() {
            StatementOutcome::AdaptiveSet { on } => assert!(!on),
            other => panic!("expected AdaptiveSet, got {other:?}"),
        }
        assert!(!e.adaptive());
        // OFF restores fixed-order evaluation with identical results.
        let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c2' OR d0 = 'm1'";
        let off = e.query(sql).unwrap();
        e.set_adaptive(true);
        let on = e.query(sql).unwrap();
        assert_eq!(on.rows, off.rows);
        assert_eq!(on.metrics.model_invocations, off.metrics.model_invocations);
        // A session-scoped SET stays local and shows up in EXPLAIN.
        let mut s = SessionState::new();
        match e.execute_sql_in("SET ADAPTIVE OFF", &mut s).unwrap() {
            StatementOutcome::AdaptiveSet { on } => assert!(!on),
            other => panic!("expected AdaptiveSet, got {other:?}"),
        }
        assert!(e.adaptive(), "engine default untouched by session SET");
        let out = e.query_in("EXPLAIN SELECT * FROM t WHERE d0 = 'm0'", &s).unwrap();
        assert!(out.plan.contains("adaptive: off"), "plan: {}", out.plan);
        let out = e.query("EXPLAIN SELECT * FROM t WHERE d0 = 'm0'").unwrap();
        assert!(out.plan.contains("adaptive: on"), "plan: {}", out.plan);
    }

    #[test]
    fn feedback_folds_into_table_stats_after_execution() {
        let e = engine();
        let sql = "SELECT * FROM t WHERE d0 = 'm0' AND d1 = 'm1'";
        let first = e.query(sql).unwrap();
        assert!(
            first.metrics.feedback_entries > 0,
            "observed clause selectivities reach the feedback store"
        );
        let second = e.query(sql).unwrap();
        assert_eq!(first.rows, second.rows);
        assert!(second.metrics.feedback_entries >= first.metrics.feedback_entries);
    }

    #[test]
    fn session_scoped_set_does_not_leak_across_sessions() {
        let e = engine();
        let global_dop = e.parallelism();
        let mut s1 = SessionState::new();
        let mut s2 = SessionState::new();
        match e.execute_sql_in("SET PARALLELISM 2", &mut s1).unwrap() {
            StatementOutcome::ParallelismSet { dop } => assert_eq!(dop, 2),
            other => panic!("expected ParallelismSet, got {other:?}"),
        }
        assert_eq!(e.parallelism(), global_dop, "engine default untouched");
        assert_eq!(s2.parallelism(), None, "other session untouched");
        // Session 1 throttles itself to one examined row; session 2 and
        // the session-less path stay unlimited.
        match e.execute_sql_in("SET GUARD ROWS 1", &mut s1).unwrap() {
            StatementOutcome::GuardSet { guard } => {
                assert_eq!(guard.max_rows_examined, Some(1))
            }
            other => panic!("expected GuardSet, got {other:?}"),
        }
        let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c1'";
        assert!(matches!(
            e.execute_sql_in(sql, &mut s1),
            Err(EngineError::BudgetExceeded { .. })
        ));
        assert!(e.execute_sql_in(sql, &mut s2).is_ok());
        assert!(e.query(sql).is_ok());
        // `SET GUARD ROWS 0` lifts the budget; OFF clears everything.
        e.execute_sql_in("SET GUARD ROWS 0", &mut s1).unwrap();
        assert!(e.execute_sql_in(sql, &mut s1).is_ok());
        e.execute_sql_in("SET GUARD TIME_MS 5000", &mut s1).unwrap();
        match e.execute_sql_in("SET GUARD OFF", &mut s1).unwrap() {
            StatementOutcome::GuardSet { guard } => assert!(guard.is_unlimited()),
            other => panic!("expected GuardSet, got {other:?}"),
        }
        // Session EXPLAIN reports the session's effective parallelism.
        let out = e
            .query_in("EXPLAIN SELECT * FROM t WHERE d0 = 'm0'", &s1)
            .unwrap();
        assert!(out.plan.contains("parallelism: 2"), "plan: {}", out.plan);
        // Session-less SET keeps its historical engine-global meaning.
        e.execute_sql("SET PARALLELISM 3").unwrap();
        assert_eq!(e.parallelism(), 3);
    }

    #[test]
    fn engine_is_shareable_across_scoped_threads() {
        let e = engine();
        let sql = "SELECT * FROM t WHERE PREDICT(m) = 'c1'";
        let expected = e.query(sql).unwrap().rows;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let out = e.query(sql).unwrap();
                    assert_eq!(out.rows, expected);
                });
            }
        });
    }
}
