//! Cost-based access-path selection.
//!
//! The decision the paper's experiments exercise: given a (possibly
//! envelope-augmented) predicate, choose between a **full scan**, a
//! **single index seek** on a sargable conjunct, a **multi-index union**
//! over a disjunctive conjunct (Mohan et al.'s single-table multi-index
//! access), or a **constant scan** when the predicate is unsatisfiable.
//! Selectivities come from exact member histograms; unclustered fetches
//! are costed with the Cardenas distinct-page estimate, which is what
//! makes low-selectivity envelope predicates win and high-selectivity
//! ones lose (Figure 6's shape).

use crate::catalog::Catalog;
use crate::expr::{Atom, AtomPred, Expr, MiningPred, ModelId};
use crate::stats::TableStats;
use mpq_types::{AttrId, Schema};

/// Tunable cost constants, in units of one sequential page read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// CPU cost of evaluating the residual predicate on one row.
    pub cpu_row: f64,
    /// Cost of one black-box model invocation (applying the mining model
    /// to a row). The paper notes reductions would grow if this is high.
    pub model_invoke: f64,
    /// Fixed cost of opening an index (root-to-leaf traversal).
    pub index_seek: f64,
    /// Random-fetch penalty multiplier for unclustered heap page reads.
    pub random_page: f64,
    /// Pretended row width in bytes for page accounting. The stored
    /// representation is dictionary-compressed members (2 bytes/column);
    /// the paper's tables hold the original values (strings, floats,
    /// ~tens of bytes per column), and it is that width that makes scans
    /// page-bound. 32 bytes/column places the scan-vs-seek crossover
    /// near 10% selectivity — where Figure 6 observes it.
    pub assumed_row_bytes_per_column: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpu_row: 0.002,
            model_invoke: 0.01,
            index_seek: 1.5,
            random_page: 1.2,
            assumed_row_bytes_per_column: crate::table::ASSUMED_COLUMN_BYTES,
        }
    }
}

/// Optimizer behavior switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerOptions {
    /// Whether mining predicates are rewritten with upper envelopes at
    /// all — the experiment's treatment/control switch.
    pub use_envelopes: bool,
    /// Maximum disjuncts a conjunct-OR may have before the optimizer
    /// refuses index union (the paper's "complex AND/OR expressions
    /// degenerate to sequential scan" behavior, made explicit).
    pub max_union_disjuncts: usize,
    /// Whether full-scan costing credits zone-map pruning: pages no
    /// member of the predicate can appear on are proven empty by the
    /// executor and never read, which makes scans over clustered
    /// selective members competitive with index seeks.
    pub use_zone_maps: bool,
    /// Whether models may be compiled out of the query: exact envelopes
    /// replace their mining predicate outright, and additive-score
    /// models get a proxy cascade so only uncertainty-band rows reach
    /// the real scorer. Off = the classic envelope+residual reference
    /// path.
    pub compile_models: bool,
    /// Cost constants.
    pub cost: CostModel,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            use_envelopes: true,
            max_union_disjuncts: 640,
            use_zone_maps: true,
            compile_models: true,
            cost: CostModel::default(),
        }
    }
}

/// One index probe: which index of the table entry, and the per-column
/// sargable predicates pushed into it.
#[derive(Debug, Clone, PartialEq)]
pub struct Seek {
    /// Position within [`crate::TableEntry`]'s index list.
    pub index: usize,
    /// Predicates pushed into the index, one per constrained column.
    pub preds: Vec<(AttrId, AtomPred)>,
    /// True when the pushed predicates imply the *entire* disjunct this
    /// seek serves: fetched rows then already satisfy the disjunction and
    /// only the plan's `skip_or` residual (other conjuncts) needs
    /// evaluation — the covering-index fast path.
    pub exact: bool,
}

/// The chosen access path.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Read every heap page.
    FullScan,
    /// The predicate is unsatisfiable; produce zero rows without touching
    /// the table.
    ConstantScan,
    /// Probe one (possibly composite) secondary index.
    IndexSeek(Seek),
    /// Probe several indexes and union the row ids (one seek per
    /// disjunct of a conjunct-OR — Mohan et al.'s multi-index access).
    IndexUnion(Vec<Seek>),
}

impl AccessPath {
    /// Whether this is something other than the default full scan — the
    /// paper's "plan changed" criterion (index chosen or constant scan).
    pub fn changed_from_scan(&self) -> bool {
        !matches!(self, AccessPath::FullScan)
    }

    /// Whether the path has per-row work a parallel executor can split
    /// across morsels. Constant scans touch no rows, so dispatching
    /// workers for them is pure overhead.
    pub fn is_parallelizable(&self) -> bool {
        !matches!(self, AccessPath::ConstantScan)
    }
}

/// A finished physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Table scanned/probed.
    pub table: usize,
    /// The access path.
    pub access: AccessPath,
    /// Predicate evaluated on every fetched row (always the full,
    /// semantics-preserving predicate).
    pub residual: Expr,
    /// For [`AccessPath::IndexUnion`]: the residual with the union's OR
    /// conjunct removed — sufficient for rows fetched by an *exact* seek
    /// (their disjunct already holds).
    pub skip_or: Option<Expr>,
    /// Estimated total cost (page units).
    pub est_cost: f64,
    /// Estimated output selectivity.
    pub est_selectivity: f64,
    /// For [`AccessPath::FullScan`]: heap pages (actual table pages,
    /// not cost-model units) the executor is expected to prove empty
    /// via zone maps and skip. Zero for other paths or when zone-map
    /// costing is off. Surfaced in EXPLAIN.
    pub est_pages_skipped: u64,
    /// Model versions this plan depended on (cache invalidation).
    pub model_versions: Vec<(ModelId, u64)>,
    /// Referenced models whose envelopes are degraded to trivial `TRUE`
    /// (derivation failed or timed out): the plan is still correct but
    /// could not use envelope-driven access paths for them. Surfaced in
    /// EXPLAIN.
    pub degraded_models: Vec<ModelId>,
    /// Models the rewrite compiled out of the query entirely (exact
    /// envelopes): the executor never invokes them. Filled in by the
    /// engine, which sees the pre-rewrite expression. Surfaced in
    /// EXPLAIN as `compiled: exact`.
    pub compiled_exact: Vec<ModelId>,
    /// Residual mining models with a verified proxy cascade, paired with
    /// the estimated fraction of rows falling in the uncertainty band
    /// (the only rows that reach the real scorer). Surfaced in EXPLAIN
    /// as `cascade: band ~N%`.
    pub cascades: Vec<(ModelId, f64)>,
    /// Clauses whose selectivity came from the adaptive feedback store
    /// (observed by a previous execution of a structurally identical
    /// clause) rather than the attribute-independence model. Surfaced in
    /// EXPLAIN as `feedback: N clauses`.
    pub feedback_clauses: u32,
}

/// Estimates the selectivity of `expr` under attribute independence.
pub fn estimate_selectivity(expr: &Expr, stats: &TableStats, catalog: &Catalog) -> f64 {
    match expr {
        Expr::Const(b) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        Expr::Atom(a) => atom_selectivity(a, stats),
        Expr::And(ps) => ps.iter().map(|p| estimate_selectivity(p, stats, catalog)).product(),
        Expr::Or(ps) => {
            1.0 - ps
                .iter()
                .map(|p| 1.0 - estimate_selectivity(p, stats, catalog))
                .product::<f64>()
        }
        Expr::Not(p) => 1.0 - estimate_selectivity(p, stats, catalog),
        Expr::Mining(mp) => mining_selectivity(mp, catalog),
    }
}

/// Estimates the selectivity of `expr`, preferring per-clause
/// selectivities observed by previous executions (the adaptive feedback
/// store on [`TableStats`]) over the independence model. Only compound
/// nodes and mining predicates are looked up — atom selectivities come
/// from exact member histograms and cannot be improved by observation.
/// Each hit increments `hits`. With an empty feedback store the fallback
/// arithmetic is the same expression tree as [`estimate_selectivity`],
/// so the result is bit-identical and no existing plan changes.
pub fn estimate_selectivity_with_feedback(
    expr: &Expr,
    stats: &TableStats,
    catalog: &Catalog,
    hits: &mut u32,
) -> f64 {
    match expr {
        Expr::Const(_) | Expr::Atom(_) => estimate_selectivity(expr, stats, catalog),
        _ => {
            if let Some(s) = stats.feedback().selectivity(expr.fingerprint()) {
                *hits += 1;
                return s;
            }
            match expr {
                Expr::And(ps) => ps
                    .iter()
                    .map(|p| estimate_selectivity_with_feedback(p, stats, catalog, hits))
                    .product(),
                Expr::Or(ps) => {
                    1.0 - ps
                        .iter()
                        .map(|p| 1.0 - estimate_selectivity_with_feedback(p, stats, catalog, hits))
                        .product::<f64>()
                }
                Expr::Not(p) => 1.0 - estimate_selectivity_with_feedback(p, stats, catalog, hits),
                Expr::Mining(mp) => mining_selectivity(mp, catalog),
                Expr::Const(_) | Expr::Atom(_) => unreachable!("handled above"),
            }
        }
    }
}

fn atom_selectivity(a: &Atom, stats: &TableStats) -> f64 {
    let col = stats.column(a.attr.index());
    match &a.pred {
        AtomPred::Eq(m) => col.eq_selectivity(*m),
        AtomPred::Range { lo, hi } => col.range_selectivity(*lo, *hi),
        AtomPred::In(s) => col.set_selectivity(s.iter()),
    }
}

/// Without a histogram on predictions, assume classes are uniform — the
/// envelope conjunct usually dominates the estimate anyway.
fn mining_selectivity(mp: &MiningPred, catalog: &Catalog) -> f64 {
    match mp {
        MiningPred::ClassEq { model, .. } => 1.0 / catalog.model(*model).model.n_classes() as f64,
        MiningPred::ClassIn { model, classes } => {
            (classes.len() as f64 / catalog.model(*model).model.n_classes() as f64).min(1.0)
        }
        MiningPred::ModelsAgree { m1, .. } => {
            1.0 / catalog.model(*m1).model.n_classes() as f64
        }
        MiningPred::ClassEqColumn { model, .. } => {
            1.0 / catalog.model(*model).model.n_classes() as f64
        }
    }
}

/// Chooses the cheapest access path for `expr` against `table_id`.
/// `expr` must already be normalized (and envelope-rewritten if enabled).
pub fn choose_plan(
    expr: Expr,
    table_id: usize,
    schema: &Schema,
    catalog: &Catalog,
    opts: &OptimizerOptions,
) -> Plan {
    let entry = catalog.table(table_id);
    let stats = &entry.stats;
    let n_rows = entry.table.n_rows() as f64;
    let cost = &opts.cost;
    // Page accounting uses an assumed on-disk row width.
    let rows_per_page = (crate::table::DEFAULT_PAGE_BYTES
        / (cost.assumed_row_bytes_per_column * schema.len()).max(1))
    .max(1) as f64;
    let heap_pages = (n_rows / rows_per_page).ceil().max(1.0);

    let model_versions: Vec<(ModelId, u64)> = {
        let mut v: Vec<ModelId> =
            expr.mining_preds().iter().flat_map(|mp| mp.models()).collect();
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(|m| (m, catalog.model(m).version)).collect()
    };
    let degraded_models: Vec<ModelId> = model_versions
        .iter()
        .map(|(m, _)| *m)
        .filter(|m| catalog.model(*m).degraded.is_some())
        .collect();

    let sel_independent = estimate_selectivity(&expr, stats, catalog);
    let mut feedback_clauses = 0u32;
    let sel = estimate_selectivity_with_feedback(&expr, stats, catalog, &mut feedback_clauses);
    // Correlation correction: when observed feedback disagrees with the
    // independence estimate (correlated columns, skewed model output),
    // scale the index candidates' expected fetched-row counts by the same
    // ratio. Clamped so a single noisy observation cannot push a plan to
    // an absurd extreme; exactly 1.0 when the store has nothing to say,
    // so an empty store reproduces the old costs bit-for-bit.
    let gamma = if feedback_clauses > 0 && sel_independent > 0.0 {
        (sel / sel_independent).clamp(0.01, 100.0)
    } else {
        1.0
    };
    // Residual mining models with a proxy table cascade: only the
    // estimated uncertainty-band fraction of rows pays the real scorer.
    let cascades: Vec<(ModelId, f64)> = if opts.compile_models {
        model_versions
            .iter()
            .filter_map(|(m, _)| {
                let proxy = catalog.model(*m).proxy.as_ref()?;
                Some((*m, crate::compile::estimate_band_fraction(proxy, stats)))
            })
            .collect()
    } else {
        Vec::new()
    };
    let invoke_frac = |m: &ModelId| -> f64 {
        cascades.iter().find(|(cm, _)| cm == m).map_or(1.0, |(_, band)| *band)
    };
    let expected_invokes: f64 = expr
        .mining_preds()
        .iter()
        .map(|mp| mp.models().iter().map(invoke_frac).sum::<f64>())
        .sum();
    let per_row_residual = cost.cpu_row + expected_invokes * cost.model_invoke;

    if expr == Expr::Const(false) {
        return Plan {
            table: table_id,
            access: AccessPath::ConstantScan,
            residual: expr,
            skip_or: None,
            est_cost: 0.0,
            est_selectivity: 0.0,
            est_pages_skipped: 0,
            model_versions,
            degraded_models,
            compiled_exact: Vec::new(),
            cascades: Vec::new(),
            feedback_clauses,
        };
    }

    // Candidate: full scan, credited with zone-map pruning: only pages
    // some predicate member can appear on are read (and only their rows
    // evaluated). `covered_pages` works in actual table pages; the cost
    // keeps the assumed-width page units via the covered *fraction*.
    let n_pages_actual = entry.table.n_pages() as u64;
    let (covered_frac, est_pages_skipped) = if opts.use_zone_maps && n_pages_actual > 0 {
        let covered = covered_pages(&expr, stats, schema, n_pages_actual);
        (covered as f64 / n_pages_actual as f64, n_pages_actual - covered)
    } else {
        (1.0, 0)
    };
    let scan_cost = heap_pages * covered_frac + n_rows * covered_frac * per_row_residual;
    let mut best = Plan {
        table: table_id,
        access: AccessPath::FullScan,
        residual: expr.clone(),
        skip_or: None,
        est_cost: scan_cost,
        est_selectivity: sel,
        est_pages_skipped,
        model_versions: model_versions.clone(),
        degraded_models: degraded_models.clone(),
        compiled_exact: Vec::new(),
        cascades: cascades.clone(),
        feedback_clauses,
    };

    // Fetch cost of `k` expected rows through an unclustered index:
    // traversal + postings traffic + Cardenas distinct heap pages +
    // residual evaluation on the fetched rows.
    let fetch_cost = |k: f64| {
        let p = heap_pages;
        let distinct = p * (1.0 - (1.0 - 1.0 / p).powf(k));
        let posting_pages = k / (rows_per_page * 4.0).max(1.0);
        cost.index_seek + posting_pages + distinct * cost.random_page + k * per_row_residual
    };

    // Candidate: single index seek over the top-level sargable conjuncts
    // (composite indexes absorb several atoms at once).
    if let Some((seek, s)) = best_seek(&sargable_conjuncts(&expr), entry) {
        let c = fetch_cost((s * gamma).min(1.0) * n_rows);
        if c < best.est_cost {
            best = Plan {
                table: table_id,
                access: AccessPath::IndexSeek(seek),
                residual: expr.clone(),
                skip_or: None,
                est_cost: c,
                est_selectivity: sel,
                est_pages_skipped: 0,
                model_versions: model_versions.clone(),
                degraded_models: degraded_models.clone(),
                compiled_exact: Vec::new(),
                cascades: cascades.clone(),
                feedback_clauses,
            };
        }
    }

    // Candidate: index union over a disjunctive conjunct. Seeks that
    // reuse an already-opened index are nearly free (its upper levels are
    // cached): charge the full traversal once per distinct index and a
    // tenth for repeats.
    if let Some((seeks, k_total, skip_or)) = union_candidate(&expr, entry, opts, n_rows) {
        let distinct_indexes = {
            let mut ids: Vec<usize> = seeks.iter().map(|s| s.index).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len() as f64
        };
        let seek_cost = distinct_indexes * cost.index_seek
            + (seeks.len() as f64 - distinct_indexes) * cost.index_seek * 0.1;
        let c = seek_cost + fetch_cost((k_total * gamma).min(n_rows)) - cost.index_seek; // fetch_cost charges one seek
        if c < best.est_cost {
            best = Plan {
                table: table_id,
                access: AccessPath::IndexUnion(seeks),
                residual: expr.clone(),
                skip_or: Some(skip_or),
                est_cost: c,
                est_selectivity: sel,
                est_pages_skipped: 0,
                model_versions,
                degraded_models,
                compiled_exact: Vec::new(),
                cascades,
                feedback_clauses,
            };
        }
    }

    best
}

/// Upper bound on the heap pages a zone-pruned scan must read: pages
/// that *may* hold a row satisfying `expr`, estimated from the
/// per-member page counts in the statistics. Mirrors the executor's
/// `page_may_match` proof at estimation time: an atom covers at most
/// the pages its members appear on, a conjunction at most its tightest
/// conjunct, a disjunction at most the sum, and mining predicates (or
/// anything else non-columnar) prove nothing.
fn covered_pages(expr: &Expr, stats: &TableStats, schema: &Schema, n_pages: u64) -> u64 {
    match expr {
        Expr::Const(false) => 0,
        Expr::Atom(a) => {
            let card = schema.attr(a.attr).domain.cardinality();
            let col = stats.column(a.attr.index());
            let sum: u64 = a.pred.member_set(card).iter().map(|m| col.pages_with(m)).sum();
            sum.min(n_pages)
        }
        Expr::And(ps) => ps
            .iter()
            .map(|p| covered_pages(p, stats, schema, n_pages))
            .min()
            .unwrap_or(n_pages),
        Expr::Or(ps) => ps
            .iter()
            .map(|p| covered_pages(p, stats, schema, n_pages))
            .sum::<u64>()
            .min(n_pages),
        _ => n_pages,
    }
}

/// The most selective available index probe for a set of conjunct atoms:
/// for every index whose columns intersect the atom columns, push the
/// covered atoms in and score by their product selectivity.
fn best_seek(
    atoms: &[(AttrId, AtomPred)],
    entry: &crate::catalog::TableEntry,
) -> Option<(Seek, f64)> {
    let mut best: Option<(Seek, f64)> = None;
    for (i, ix) in entry.indexes.iter().enumerate() {
        let covered: Vec<(AttrId, AtomPred)> = atoms
            .iter()
            .filter(|(a, _)| ix.columns().contains(a))
            .cloned()
            .collect();
        if covered.is_empty() {
            continue;
        }
        let s: f64 = covered
            .iter()
            .map(|(a, p)| atom_selectivity(&Atom { attr: *a, pred: p.clone() }, &entry.stats))
            .product();
        // Exact iff every atom was pushed into the index (the caller
        // additionally checks the group consists only of atoms).
        let exact = covered.len() == atoms.len();
        if best.as_ref().is_none_or(|(_, bs)| s < *bs) {
            best = Some((Seek { index: i, preds: covered, exact }, s));
        }
    }
    best
}

/// Top-level sargable atoms: the expression itself if it is an atom, or
/// atom conjuncts of a top-level AND. For each column, the most selective
/// single atom is enough — they all qualify as seek keys.
fn sargable_conjuncts(expr: &Expr) -> Vec<(AttrId, AtomPred)> {
    let mut out = Vec::new();
    let mut push = |a: &Atom| out.push((a.attr, a.pred.clone()));
    match expr {
        Expr::Atom(a) => push(a),
        Expr::And(ps) => {
            for p in ps {
                if let Expr::Atom(a) = p {
                    push(a);
                }
            }
        }
        _ => {}
    }
    out
}

/// A conjunct that is an OR whose every disjunct yields one index probe
/// → a multi-index union candidate. Returns the seeks, the expected
/// total fetched rows, and the residual with the served OR removed (for
/// rows fetched by exact seeks).
fn union_candidate(
    expr: &Expr,
    entry: &crate::catalog::TableEntry,
    opts: &OptimizerOptions,
    n_rows: f64,
) -> Option<(Vec<Seek>, f64, Expr)> {
    let conjuncts: Vec<&Expr> = match expr {
        Expr::And(ps) => ps.iter().collect(),
        Expr::Or(_) => vec![expr],
        _ => return None,
    };
    for (ci, c) in conjuncts.iter().enumerate() {
        let Expr::Or(disjuncts) = c else { continue };
        if disjuncts.len() > opts.max_union_disjuncts {
            // The paper's §4.2 concern: overly complex OR defeats the
            // optimizer. We model it honestly instead of pretending.
            continue;
        }
        let mut seeks = Vec::with_capacity(disjuncts.len());
        let mut k_total = 0.0;
        let mut ok = true;
        for d in disjuncts {
            let atoms = sargable_conjuncts(d);
            // A disjunct is fully sargable when it consists of atoms
            // only; a seek covering all of them is exact.
            let pure_atoms = match d {
                Expr::Atom(_) => true,
                Expr::And(ps) => ps.iter().all(|p| matches!(p, Expr::Atom(_))),
                _ => false,
            };
            match best_seek(&atoms, entry) {
                Some((mut seek, s)) => {
                    seek.exact &= pure_atoms;
                    k_total += s * n_rows;
                    seeks.push(seek);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && !seeks.is_empty() {
            // Residual for exact-seek rows: every conjunct except the
            // served OR.
            let skip_or = Expr::and(
                conjuncts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != ci)
                    .map(|(_, e)| (*e).clone())
                    .collect(),
            );
            return Some((seeks, k_total, skip_or));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use mpq_types::{AttrDomain, Attribute, ClassId, Dataset, MemberSet};

    /// 100k rows; column a: member 0 at 0.5%, member 1 at 1%, member 2
    /// at 28.5%, member 3 at 70%.
    fn catalog() -> Catalog {
        let schema = Schema::new(vec![
            Attribute::new("a", AttrDomain::categorical(["rare", "uncommon", "big", "huge"])),
            Attribute::new("b", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..100_000u32 {
            let a = match i % 1000 {
                0..=4 => 0u16,     // 0.5%
                5..=14 => 1,       // 1%
                15..=299 => 2,     // 28.5%
                _ => 3,            // 70%
            };
            rows.push(vec![a, (i % 4) as u16]);
        }
        let ds = Dataset::from_rows(schema, rows).unwrap();
        let mut cat = Catalog::new();
        let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.create_index(t, &[AttrId(0)]);
        cat.create_index(t, &[AttrId(1)]);
        cat
    }

    fn atom(attr: u16, pred: AtomPred) -> Expr {
        Expr::Atom(Atom { attr: AttrId(attr), pred })
    }

    /// Options with zone-map costing off, for tests that exercise the
    /// index paths (the striped fixture clusters its rare members well
    /// enough that a pruned scan otherwise wins).
    fn no_zone() -> OptimizerOptions {
        OptimizerOptions { use_zone_maps: false, ..OptimizerOptions::default() }
    }

    #[test]
    fn selective_predicate_picks_index_seek() {
        let cat = catalog();
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(atom(0, AtomPred::Eq(0)), 0, &schema, &cat, &no_zone());
        assert!(matches!(plan.access, AccessPath::IndexSeek(_)), "{plan:?}");
        assert!(plan.access.changed_from_scan());
        assert!((plan.est_selectivity - 0.005).abs() < 1e-9);
        assert_eq!(plan.est_pages_skipped, 0, "no zone credit when costing is off");
    }

    #[test]
    fn zone_maps_prefer_pruned_scan_for_clustered_member() {
        // Member 0 fills the first 500 rows only: its zone footprint is
        // 2 of 391 pages, so a pruned scan beats any unclustered fetch.
        let schema = Schema::new(vec![Attribute::new(
            "a",
            AttrDomain::categorical(["rare", "common"]),
        )])
        .unwrap();
        let rows = (0..100_000u32).map(|i| vec![u16::from(i >= 500)]);
        let ds = Dataset::from_rows(schema.clone(), rows).unwrap();
        let mut cat = Catalog::new();
        let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.create_index(t, &[AttrId(0)]);
        let e = atom(0, AtomPred::Eq(0));
        let pruned = choose_plan(e.clone(), 0, &schema, &cat, &OptimizerOptions::default());
        assert_eq!(pruned.access, AccessPath::FullScan, "{pruned:?}");
        let n_pages = cat.table(0).table.n_pages() as u64;
        assert_eq!(pruned.est_pages_skipped, n_pages - 2);
        let blind = choose_plan(e, 0, &schema, &cat, &no_zone());
        assert!(matches!(blind.access, AccessPath::IndexSeek(_)), "{blind:?}");
        assert!(pruned.est_cost < blind.est_cost);
    }

    #[test]
    fn unselective_predicate_stays_full_scan() {
        let cat = catalog();
        let schema = cat.table(0).table.schema().clone();
        let plan = choose_plan(
            atom(0, AtomPred::Eq(3)), // 60%
            0,
            &schema,
            &cat,
            &OptimizerOptions::default(),
        );
        assert_eq!(plan.access, AccessPath::FullScan);
        assert!(!plan.access.changed_from_scan());
    }

    #[test]
    fn false_predicate_is_constant_scan() {
        let cat = catalog();
        let schema = cat.table(0).table.schema().clone();
        let plan =
            choose_plan(Expr::Const(false), 0, &schema, &cat, &OptimizerOptions::default());
        assert_eq!(plan.access, AccessPath::ConstantScan);
        assert_eq!(plan.est_cost, 0.0);
    }

    #[test]
    fn disjunction_of_selective_atoms_uses_index_union() {
        let cat = catalog();
        let schema = cat.table(0).table.schema().clone();
        let e = Expr::or(vec![atom(0, AtomPred::Eq(0)), atom(0, AtomPred::Eq(1))]);
        let plan = choose_plan(e, 0, &schema, &cat, &no_zone());
        assert!(matches!(&plan.access, AccessPath::IndexUnion(seeks) if seeks.len() == 2), "{plan:?}");
    }

    #[test]
    fn union_refused_beyond_disjunct_threshold() {
        let cat = catalog();
        let schema = cat.table(0).table.schema().clone();
        let e = Expr::or(vec![atom(0, AtomPred::Eq(0)), atom(0, AtomPred::Eq(1))]);
        let opts = OptimizerOptions { max_union_disjuncts: 1, ..Default::default() };
        let plan = choose_plan(e, 0, &schema, &cat, &opts);
        assert_eq!(plan.access, AccessPath::FullScan, "degenerates to scan as §4.2 warns");
    }

    #[test]
    fn unindexed_column_cannot_seek() {
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b"]))]).unwrap();
        let ds = Dataset::from_rows(schema.clone(), (0..100).map(|i| vec![(i % 2) as u16])).unwrap();
        let mut cat = Catalog::new();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        // No index created.
        let plan = choose_plan(
            atom(0, AtomPred::Eq(0)),
            0,
            &schema,
            &cat,
            &OptimizerOptions::default(),
        );
        assert_eq!(plan.access, AccessPath::FullScan);
    }

    #[test]
    fn estimate_combines_and_or_not() {
        let cat = catalog();
        let stats = &cat.table(0).stats;
        let a = atom(0, AtomPred::Eq(0)); // 0.005
        let b = atom(1, AtomPred::Range { lo: 0, hi: 1 }); // 0.5
        let and = Expr::and(vec![a.clone(), b.clone()]);
        let or = Expr::or(vec![a.clone(), b.clone()]);
        let not = Expr::Not(Box::new(a.clone()));
        assert!((estimate_selectivity(&and, stats, &cat) - 0.0025).abs() < 1e-9);
        assert!((estimate_selectivity(&or, stats, &cat) - (1.0 - 0.995 * 0.5)).abs() < 1e-9);
        assert!((estimate_selectivity(&not, stats, &cat) - 0.995).abs() < 1e-9);
        let in_pred = atom(0, AtomPred::In(MemberSet::of(4, [0, 1])));
        assert!((estimate_selectivity(&in_pred, stats, &cat) - 0.015).abs() < 1e-9);
    }

    #[test]
    fn mining_selectivity_defaults_to_uniform_classes() {
        let mut cat = catalog();
        let nb = mpq_core::paper_table1_model();
        let id = cat
            .add_model("m", std::sync::Arc::new(nb), mpq_core::DeriveOptions::default())
            .unwrap();
        let stats = &cat.table(0).stats;
        let e = Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(0) });
        assert!((estimate_selectivity(&e, stats, &cat) - 1.0 / 3.0).abs() < 1e-9);
        let e = Expr::Mining(MiningPred::ClassIn {
            model: id,
            classes: vec![ClassId(0), ClassId(1)],
        });
        assert!((estimate_selectivity(&e, stats, &cat) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_feedback_store_reproduces_independence_exactly() {
        let cat = catalog();
        let stats = &cat.table(0).stats;
        let e = Expr::and(vec![
            atom(0, AtomPred::Eq(2)),
            atom(1, AtomPred::Range { lo: 0, hi: 1 }),
        ]);
        let mut hits = 0;
        let fb = estimate_selectivity_with_feedback(&e, stats, &cat, &mut hits);
        assert_eq!(hits, 0);
        assert_eq!(fb.to_bits(), estimate_selectivity(&e, stats, &cat).to_bits());
        let plan = choose_plan(e, 0, &cat.table(0).table.schema().clone(), &cat, &no_zone());
        assert_eq!(plan.feedback_clauses, 0);
    }

    #[test]
    fn feedback_flips_scan_to_seek_when_observation_contradicts_independence() {
        let cat = catalog();
        let schema = cat.table(0).table.schema().clone();
        // Independence says 28.5% * 50% = 14.25% — a full scan. Observed
        // execution says the columns are strongly anti-correlated and the
        // conjunction really passes 0.1% of rows, so a seek should win.
        let e = Expr::and(vec![
            atom(0, AtomPred::Eq(2)),
            atom(1, AtomPred::Range { lo: 0, hi: 1 }),
        ]);
        let before = choose_plan(e.clone(), 0, &schema, &cat, &no_zone());
        assert_eq!(before.access, AccessPath::FullScan, "{before:?}");
        let changed = cat.table(0).stats.feedback().record(
            &crate::vectorized::FeedbackObservation {
                fingerprint: e.fingerprint(),
                rows_in: 100_000,
                rows_out: 100,
            },
        );
        assert!(changed);
        let after = choose_plan(e, 0, &schema, &cat, &no_zone());
        assert!(matches!(after.access, AccessPath::IndexSeek(_)), "{after:?}");
        assert_eq!(after.feedback_clauses, 1);
        assert!((after.est_selectivity - 0.001).abs() < 1e-9);
    }

    #[test]
    fn plan_records_model_versions() {
        let mut cat = catalog();
        let nb = mpq_core::paper_table1_model();
        let id = cat
            .add_model("m", std::sync::Arc::new(nb), mpq_core::DeriveOptions::default())
            .unwrap();
        let schema = cat.table(0).table.schema().clone();
        let e = Expr::Mining(MiningPred::ClassEq { model: id, class: ClassId(0) });
        let plan = choose_plan(e, 0, &schema, &cat, &OptimizerOptions::default());
        assert_eq!(plan.model_versions, vec![(id, 1)]);
    }
}
