//! Replication integration tests at the engine level: WAL shipping
//! batches replayed on a standby, idempotence under duplicate delivery,
//! gap detection, read-only refusal, epoch fencing, snapshot bootstrap,
//! and standby crash-safety.

use mpq_engine::{Engine, EngineError, ReplRole, StatementOutcome};
use mpq_types::{AttrDomain, Attribute, Dataset, Schema};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mpq-repl-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("y", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("grade", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap()
}

fn demo_table(name: &str) -> mpq_engine::Table {
    let mut ds = Dataset::new(demo_schema());
    for i in 0..24u16 {
        let x = i % 3;
        let y = (i / 3) % 3;
        ds.push_encoded(&[x, y, u16::from(x == 2 && y >= 1)]).unwrap();
    }
    mpq_engine::Table::from_dataset(name, &ds)
}

fn seed_primary(dir: &PathBuf) -> Engine {
    let e = Engine::open(dir).expect("open fresh dir");
    e.create_table(demo_table("t")).unwrap();
    e.insert_rows("t", vec![vec![0, 0, 0], vec![2, 2, 1]]).unwrap();
    let out = e
        .execute_sql("CREATE MINING MODEL m ON t PREDICT grade USING decision_tree")
        .unwrap();
    assert!(matches!(out, StatementOutcome::ModelCreated { .. }));
    e
}

fn fresh_standby(dir: &PathBuf) -> Engine {
    let e = Engine::open(dir).expect("open standby dir");
    e.set_standby();
    e
}

const QUERIES: &[&str] = &[
    "SELECT * FROM t WHERE PREDICT(m) = 'hi'",
    "SELECT * FROM t WHERE x <= 2 AND y > 2",
    "SELECT COUNT(*) FROM t WHERE PREDICT(m) = 'lo'",
];

/// Both nodes must answer every probe query with byte-identical rows.
fn assert_no_divergence(primary: &Engine, standby: &Engine) {
    for q in QUERIES {
        assert_eq!(
            primary.query(q).unwrap().rows,
            standby.query(q).unwrap().rows,
            "divergent rows for {q}"
        );
    }
}

#[test]
fn shipped_frames_replay_to_identical_state() {
    let (da, db) = (temp_dir("ship-a"), temp_dir("ship-b"));
    let primary = seed_primary(&da);
    let standby = fresh_standby(&db);

    let batch = primary.replication_frames_after(0).unwrap().expect("log covers lsn 1");
    assert!(batch.records >= 3, "table + insert + model");
    let next = standby.apply_replicated_frames(primary.epoch(), &batch.bytes).unwrap();
    assert_eq!(next, batch.last_lsn + 1);
    assert_no_divergence(&primary, &standby);

    // Health reflects the roles.
    assert_eq!(primary.health().role, ReplRole::Primary);
    assert_eq!(standby.health().role, ReplRole::Standby);
    assert!(standby.health().to_string().contains("role: standby"));
}

#[test]
fn duplicate_delivery_is_idempotent() {
    let (da, db) = (temp_dir("dup-a"), temp_dir("dup-b"));
    let primary = seed_primary(&da);
    let standby = fresh_standby(&db);

    let batch = primary.replication_frames_after(0).unwrap().unwrap();
    let first = standby.apply_replicated_frames(0, &batch.bytes).unwrap();
    // The exact same batch again: every record is below the standby's
    // next LSN and is skipped without touching state.
    let second = standby.apply_replicated_frames(0, &batch.bytes).unwrap();
    assert_eq!(first, second);
    assert_no_divergence(&primary, &standby);

    // An overlapping batch (old records plus new ones) applies only the
    // new suffix.
    primary.insert_rows("t", vec![vec![1, 1, 0]]).unwrap();
    let wider = primary.replication_frames_after(0).unwrap().unwrap();
    assert!(wider.records > batch.records);
    standby.apply_replicated_frames(0, &wider.bytes).unwrap();
    assert_no_divergence(&primary, &standby);
}

#[test]
fn gap_in_the_stream_is_a_typed_error() {
    let (da, db) = (temp_dir("gap-a"), temp_dir("gap-b"));
    let primary = seed_primary(&da);
    let standby = fresh_standby(&db);

    // Records 2.. while the standby expects record 1: typed gap.
    let tail = primary.replication_frames_after(1).unwrap().unwrap();
    assert!(tail.records > 0);
    let err = standby.apply_replicated_frames(0, &tail.bytes).unwrap_err();
    assert!(
        matches!(err, EngineError::Corrupt { ref detail } if detail.contains("gap")),
        "got {err}"
    );
}

#[test]
fn standby_refuses_local_mutations_but_serves_reads() {
    let (da, db) = (temp_dir("ro-a"), temp_dir("ro-b"));
    let primary = seed_primary(&da);
    let standby = fresh_standby(&db);
    let batch = primary.replication_frames_after(0).unwrap().unwrap();
    standby.apply_replicated_frames(0, &batch.bytes).unwrap();

    // Reads are fine.
    assert!(!standby.query(QUERIES[0]).unwrap().rows.is_empty());
    // Every mutation path is refused with the typed error.
    let err = standby.insert_rows("t", vec![vec![0, 0, 0]]).unwrap_err();
    assert!(matches!(err, EngineError::ReadOnly { .. }), "got {err}");
    let err = standby
        .execute_sql("INSERT INTO t VALUES (1, 1, 'lo')")
        .unwrap_err();
    assert!(matches!(err, EngineError::ReadOnly { .. }), "got {err}");
    let err = standby.create_table(demo_table("t2")).unwrap_err();
    assert!(matches!(err, EngineError::ReadOnly { .. }), "got {err}");
    // And nothing leaked into the standby's state.
    assert_no_divergence(&primary, &standby);
}

#[test]
fn promotion_bumps_the_epoch_durably_and_fences_the_zombie() {
    let (da, db, dc) = (temp_dir("promo-a"), temp_dir("promo-b"), temp_dir("promo-c"));
    let primary = seed_primary(&da);
    let standby = fresh_standby(&db);
    let batch = primary.replication_frames_after(0).unwrap().unwrap();
    standby.apply_replicated_frames(0, &batch.bytes).unwrap();

    // Promote: role flips, epoch rises, and the new primary accepts
    // writes again.
    let epoch = standby.promote().unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(standby.role(), ReplRole::Primary);
    standby.insert_rows("t", vec![vec![1, 0, 0]]).unwrap();

    // The bump is durable: a crash-reopen still knows the epoch.
    standby.simulate_crash();
    let new_primary = Engine::open(&db).unwrap();
    assert_eq!(new_primary.epoch(), 1);

    // A second standby bootstrapped from the NEW primary carries epoch
    // 1 in its snapshot, so the deposed primary's epoch-0 stream is
    // provably rejected.
    let standby2 = fresh_standby(&dc);
    let (snap, _) = new_primary.snapshot_for_replication().unwrap();
    standby2.install_replica_snapshot(&snap).unwrap();
    assert_eq!(standby2.epoch(), 1);
    let stale = primary.replication_frames_after(0).unwrap().unwrap();
    let err = standby2.apply_replicated_frames(primary.epoch(), &stale.bytes).unwrap_err();
    assert!(matches!(err, EngineError::StaleEpoch { sent: 0, have: 1 }), "got {err}");

    // Once the zombie learns it was deposed, every local mutation (and
    // every in-flight synchronous ack wait) fails typed.
    primary.mark_fenced(0, 1);
    let err = primary.insert_rows("t", vec![vec![0, 0, 0]]).unwrap_err();
    assert!(matches!(err, EngineError::StaleEpoch { sent: 0, have: 1 }), "got {err}");
    primary.enable_sync_replication();
    let err = primary.wait_replicated(u64::MAX, Duration::from_secs(5)).unwrap_err();
    assert!(matches!(err, EngineError::StaleEpoch { .. }), "got {err}");
}

#[test]
fn snapshot_bootstrap_covers_a_checkpointed_log() {
    let (da, db) = (temp_dir("boot-a"), temp_dir("boot-b"));
    let primary = seed_primary(&da);
    // Two checkpoints with mutations in between prune the early
    // segments, so lsn 1 is no longer on disk.
    primary.insert_rows("t", vec![vec![1, 1, 0]]).unwrap();
    primary.checkpoint().unwrap();
    primary.insert_rows("t", vec![vec![0, 1, 0]]).unwrap();
    primary.checkpoint().unwrap();
    assert!(
        primary.replication_frames_after(0).unwrap().is_none(),
        "pruned log must demand a snapshot"
    );

    let standby = fresh_standby(&db);
    let (snap, snap_lsn) = primary.snapshot_for_replication().unwrap();
    let next = standby.install_replica_snapshot(&snap).unwrap();
    assert_eq!(next, snap_lsn + 1);
    assert_no_divergence(&primary, &standby);

    // Incremental shipping continues from the snapshot position.
    primary.insert_rows("t", vec![vec![2, 0, 1]]).unwrap();
    let tail = primary.replication_frames_after(snap_lsn).unwrap().unwrap();
    assert_eq!(tail.records, 1);
    standby.apply_replicated_frames(0, &tail.bytes).unwrap();
    assert_no_divergence(&primary, &standby);
}

#[test]
fn standby_replay_is_itself_crash_safe() {
    let (da, db) = (temp_dir("crash-a"), temp_dir("crash-b"));
    let primary = seed_primary(&da);
    let standby = fresh_standby(&db);
    let batch = primary.replication_frames_after(0).unwrap().unwrap();
    let next = standby.apply_replicated_frames(0, &batch.bytes).unwrap();

    // The standby dies hard; a reopen replays its own WAL back to the
    // replicated state, and shipping resumes where it left off.
    standby.simulate_crash();
    let standby = fresh_standby(&db);
    assert_no_divergence(&primary, &standby);

    primary.insert_rows("t", vec![vec![1, 2, 0]]).unwrap();
    let tail = primary.replication_frames_after(next - 1).unwrap().unwrap();
    standby.apply_replicated_frames(0, &tail.bytes).unwrap();
    assert_no_divergence(&primary, &standby);
}

#[test]
fn synchronous_acks_gate_on_the_standby_and_report_lag() {
    let (da, db) = (temp_dir("sync-a"), temp_dir("sync-b"));
    let primary = seed_primary(&da);
    let standby = fresh_standby(&db);
    let batch = primary.replication_frames_after(0).unwrap().unwrap();
    standby.apply_replicated_frames(0, &batch.bytes).unwrap();

    primary.enable_sync_replication();
    // Nothing acked yet: the whole history counts as lag.
    let h = primary.health();
    assert_eq!(h.replica_lag_records, Some(primary.last_lsn()));

    // An un-acked wait times out with a retryable I/O error...
    let err = primary
        .wait_replicated(primary.last_lsn(), Duration::from_millis(50))
        .unwrap_err();
    assert!(matches!(err, EngineError::Io { .. }), "got {err}");

    // ...and succeeds once the shipping layer reports the ack.
    primary.replica_acked(primary.last_lsn(), batch.bytes.len() as u64);
    primary.wait_replicated(primary.last_lsn(), Duration::from_millis(50)).unwrap();
    assert_eq!(primary.health().replica_lag_records, Some(0));

    // A synchronous SQL insert blocks until a concurrent acker catches
    // the standby up, then returns success.
    std::thread::scope(|s| {
        let (p, sb) = (&primary, &standby);
        s.spawn(move || {
            // Poll as a shipping loop would: read new frames, apply to
            // the standby, report the ack.
            // Bounded so a failing insert can't wedge the scope join.
            for _ in 0..2000 {
                let from = sb.last_lsn();
                if let Ok(Some(b)) = p.replication_frames_after(from) {
                    if b.records > 0 {
                        sb.apply_replicated_frames(0, &b.bytes).unwrap();
                        p.replica_acked(b.last_lsn, b.bytes.len() as u64);
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let out = primary
            .execute_sql("INSERT INTO t VALUES (1, 1, 'lo')")
            .unwrap();
        assert!(matches!(out, StatementOutcome::Inserted { rows_inserted: 1, .. }));
    });
    assert_no_divergence(&primary, &standby);
}
