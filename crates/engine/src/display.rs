//! Rendering expressions and plans back to SQL-ish text (EXPLAIN).

use crate::catalog::Catalog;
use crate::expr::{Atom, AtomPred, Expr, MiningPred};
use crate::optimizer::{AccessPath, Plan};
use mpq_types::{AttrDomain, Schema};

/// Renders an expression as SQL text against the original value space.
pub fn expr_to_sql(e: &Expr, schema: &Schema, catalog: &Catalog) -> String {
    match e {
        Expr::Const(true) => "1=1".into(),
        Expr::Const(false) => "1=0".into(),
        Expr::Atom(a) => atom_to_sql(a, schema),
        Expr::And(ps) => ps
            .iter()
            .map(|p| maybe_paren(p, schema, catalog))
            .collect::<Vec<_>>()
            .join(" AND "),
        Expr::Or(ps) => ps
            .iter()
            .map(|p| maybe_paren(p, schema, catalog))
            .collect::<Vec<_>>()
            .join(" OR "),
        Expr::Not(p) => format!("NOT ({})", expr_to_sql(p, schema, catalog)),
        Expr::Mining(mp) => mining_to_sql(mp, schema, catalog),
    }
}

fn maybe_paren(e: &Expr, schema: &Schema, catalog: &Catalog) -> String {
    match e {
        Expr::And(_) | Expr::Or(_) => format!("({})", expr_to_sql(e, schema, catalog)),
        _ => expr_to_sql(e, schema, catalog),
    }
}

fn atom_to_sql(a: &Atom, schema: &Schema) -> String {
    let attr = schema.attr(a.attr);
    let name = &attr.name;
    match (&a.pred, &attr.domain) {
        (AtomPred::Eq(m), AttrDomain::Categorical { .. }) => {
            format!("{name} = '{}'", attr.domain.member_label(*m))
        }
        (AtomPred::Eq(m), AttrDomain::Binned { .. }) => range_sql(name, &attr.domain, *m, *m),
        (AtomPred::Range { lo, hi }, _) => range_sql(name, &attr.domain, *lo, *hi),
        (AtomPred::In(s), AttrDomain::Categorical { .. }) => {
            let members: Vec<String> =
                s.iter().map(|m| format!("'{}'", attr.domain.member_label(m))).collect();
            format!("{name} IN ({})", members.join(", "))
        }
        (AtomPred::In(s), AttrDomain::Binned { .. }) => {
            // Bin sets on ordered columns print as an OR of ranges.
            let parts: Vec<String> =
                s.iter().map(|m| range_sql(name, &attr.domain, m, m)).collect();
            if parts.len() == 1 {
                // Invariant-backed: guarded by the length check above.
                parts.into_iter().next().expect("one part")
            } else {
                format!("({})", parts.join(" OR "))
            }
        }
    }
}

fn range_sql(name: &str, domain: &AttrDomain, lo: u16, hi: u16) -> String {
    // Invariant-backed: range_sql is only called for Binned domains
    // (the match arms above dispatch on the domain kind).
    let (lo_bound, _) = domain.bin_interval(lo).expect("ordered");
    let (_, hi_bound) = domain.bin_interval(hi).expect("ordered");
    let mut parts = Vec::new();
    if lo_bound.is_finite() {
        parts.push(format!("{name} > {lo_bound}"));
    }
    if hi_bound.is_finite() {
        parts.push(format!("{name} <= {hi_bound}"));
    }
    if parts.is_empty() {
        "1=1".into()
    } else {
        parts.join(" AND ")
    }
}

fn mining_to_sql(mp: &MiningPred, schema: &Schema, catalog: &Catalog) -> String {
    match mp {
        MiningPred::ClassEq { model, class } => {
            let entry = catalog.model(*model);
            format!("PREDICT({}) = '{}'", entry.name, entry.model.class_name(*class))
        }
        MiningPred::ClassIn { model, classes } => {
            let entry = catalog.model(*model);
            let labels: Vec<String> =
                classes.iter().map(|c| format!("'{}'", entry.model.class_name(*c))).collect();
            format!("PREDICT({}) IN ({})", entry.name, labels.join(", "))
        }
        MiningPred::ModelsAgree { m1, m2 } => {
            format!("PREDICT({}) = PREDICT({})", catalog.model(*m1).name, catalog.model(*m2).name)
        }
        MiningPred::ClassEqColumn { model, column } => {
            format!("PREDICT({}) = {}", catalog.model(*model).name, schema.attr(*column).name)
        }
    }
}

fn seek_to_string(seek: &crate::optimizer::Seek, schema: &Schema, catalog: &Catalog, table_id: usize) -> String {
    let entry = catalog.table(table_id);
    let ix = &entry.indexes[seek.index];
    let cols: Vec<&str> =
        ix.columns().iter().map(|c| schema.attr(*c).name.as_str()).collect();
    let preds: Vec<String> = seek
        .preds
        .iter()
        .map(|(attr, pred)| atom_to_sql(&Atom { attr: *attr, pred: pred.clone() }, schema))
        .collect();
    format!("({}) [{}]", cols.join(","), preds.join(" AND "))
}

/// Renders a plan as a compact EXPLAIN block.
pub fn plan_to_string(plan: &Plan, schema: &Schema, catalog: &Catalog) -> String {
    let table = catalog.table(plan.table).table.name();
    let access = match &plan.access {
        AccessPath::FullScan => format!("Full Scan on {table}"),
        AccessPath::ConstantScan => "Constant Scan (predicate is unsatisfiable)".to_string(),
        AccessPath::IndexSeek(seek) => {
            format!("Index Seek on {table} {}", seek_to_string(seek, schema, catalog, plan.table))
        }
        AccessPath::IndexUnion(seeks) => {
            let parts: Vec<String> = seeks
                .iter()
                .map(|s| seek_to_string(s, schema, catalog, plan.table))
                .collect();
            format!("Index Union on {table} ({} seeks: {})", seeks.len(), parts.join(" | "))
        }
    };
    let mut text = format!(
        "{access}\n  est. cost: {:.2} pages, est. selectivity: {:.4}%\n  residual: {}",
        plan.est_cost,
        plan.est_selectivity * 100.0,
        expr_to_sql(&plan.residual, schema, catalog)
    );
    if plan.est_pages_skipped > 0 {
        text.push_str(&format!(
            "\n  zone maps: ~{} pages provably empty, skipped",
            plan.est_pages_skipped
        ));
    }
    if plan.feedback_clauses > 0 {
        text.push_str(&format!(
            "\n  feedback: {} clause selectivities from observed runs",
            plan.feedback_clauses
        ));
    }
    if !plan.compiled_exact.is_empty() {
        let names: Vec<&str> =
            plan.compiled_exact.iter().map(|m| catalog.model(*m).name.as_str()).collect();
        text.push_str(&format!("\n  compiled: exact ({})", names.join(", ")));
    }
    for (m, band) in &plan.cascades {
        text.push_str(&format!(
            "\n  cascade: model '{}' band ~{:.1}%",
            catalog.model(*m).name,
            band * 100.0
        ));
    }
    for m in &plan.degraded_models {
        let entry = catalog.model(*m);
        let reason = entry.degraded.as_deref().unwrap_or("unknown");
        text.push_str(&format!(
            "\n  degraded: model '{}' envelope unavailable ({reason}); residual-only evaluation",
            entry.name
        ));
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use mpq_core::{paper_table1_model, DeriveOptions};
    use mpq_types::{AttrId, Attribute, ClassId, Dataset, MemberSet, Schema};
    use std::sync::Arc;

    fn setup() -> (Catalog, Schema) {
        let schema = Schema::new(vec![
            Attribute::new("age", AttrDomain::binned(vec![30.0, 63.0]).unwrap()),
            Attribute::new("color", AttrDomain::categorical(["red", "green"])),
        ])
        .unwrap();
        let ds = Dataset::from_rows(schema.clone(), vec![vec![0, 0]]).unwrap();
        let mut cat = Catalog::new();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat.add_model("m", Arc::new(paper_table1_model()), DeriveOptions::default()).unwrap();
        (cat, schema)
    }

    #[test]
    fn atoms_render_in_value_space() {
        let (cat, schema) = setup();
        let e = Expr::and(vec![
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 1, hi: 2 } }),
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(1) }),
        ]);
        assert_eq!(expr_to_sql(&e, &schema, &cat), "age > 30 AND color = 'green'");
    }

    #[test]
    fn mining_predicates_render() {
        let (cat, schema) = setup();
        let e = Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(1) });
        assert_eq!(expr_to_sql(&e, &schema, &cat), "PREDICT(m) = 'c2'");
        let e = Expr::Mining(MiningPred::ClassIn { model: 0, classes: vec![ClassId(0), ClassId(2)] });
        assert_eq!(expr_to_sql(&e, &schema, &cat), "PREDICT(m) IN ('c1', 'c3')");
    }

    #[test]
    fn nested_structure_parenthesizes() {
        let (cat, schema) = setup();
        let e = Expr::or(vec![
            Expr::and(vec![
                Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 0, hi: 0 } }),
                Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(0) }),
            ]),
            Expr::Not(Box::new(Expr::Atom(Atom {
                attr: AttrId(1),
                pred: AtomPred::In(MemberSet::of(2, [0])),
            }))),
        ]);
        let s = expr_to_sql(&e, &schema, &cat);
        assert_eq!(s, "(age <= 30 AND color = 'red') OR NOT (color IN ('red'))");
    }

    #[test]
    fn constants_render() {
        let (cat, schema) = setup();
        assert_eq!(expr_to_sql(&Expr::Const(true), &schema, &cat), "1=1");
        assert_eq!(expr_to_sql(&Expr::Const(false), &schema, &cat), "1=0");
    }
}
