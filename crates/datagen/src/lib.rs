//! # mpq-datagen
//!
//! Synthetic stand-ins for the ten evaluation datasets of the paper's
//! Table 2 (nine UCI sets plus KDD-Cup-99). The real files are not
//! available offline, so each generator reproduces the properties the
//! experiments actually depend on:
//!
//! * the schema *shape* — attribute count, categorical vs binned domains
//!   and their cardinalities;
//! * the class structure — number of classes, skewed class priors
//!   (low-selectivity classes are what make envelopes pay off), and
//!   class-conditional attribute distributions so models are learnable;
//! * the training-set sizes of Table 2, and the paper's test-set
//!   construction: *"repeatedly doubling all available data until the
//!   total number of rows exceeded 1 million"*, which preserves every
//!   column's value distribution.
//!
//! Two datasets are generated **exactly**, not statistically:
//! `Parity5+5` (class = parity of five of ten binary attributes) and
//! `Balance-Scale` (class = comparison of left/right torque), because
//! their concepts are fully specified by their names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod specs;

pub use generate::{generate_test, generate_train};
pub use specs::{table2, AttrSpec, ConceptKind, DatasetSpec};
