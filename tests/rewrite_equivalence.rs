//! The §4.2 rewrite must be a *semantic no-op*: for any query predicate
//! containing mining predicates, the rewritten predicate (mining ∧
//! envelope conjuncts) selects exactly the same rows — envelopes are
//! implied predicates, never filters on their own.

use mining_predicates::prelude::*;
use mpq_engine::{rewrite_mining, Atom, AtomPred};
use mpq_types::MemberSet;
use proptest::prelude::*;
use std::sync::Arc;

/// Fixed scenario: the paper's Table-1 model over its 4x3 grid.
fn catalog() -> (Catalog, Schema) {
    let nb = paper_table1_model();
    let schema = Classifier::schema(&nb).clone();
    let mut ds = Dataset::new(schema.clone());
    for m0 in 0..4u16 {
        for m1 in 0..3u16 {
            ds.push_encoded(&[m0, m1]).expect("in range");
        }
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("t", &ds)).expect("fresh");
    cat.add_model("m", Arc::new(nb), DeriveOptions::default()).expect("fresh");
    (cat, schema)
}

/// Strategy: arbitrary boolean expressions over the Table-1 scenario,
/// mixing column atoms and all mining predicate shapes.
fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0u16..4).prop_map(|m| Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(m) })),
        (0u16..3).prop_map(|m| Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(m) })),
        (0u16..4, 0u16..4).prop_map(|(a, b)| {
            let (lo, hi) = (a.min(b), a.max(b));
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo, hi } })
        }),
        proptest::collection::vec(0u16..3, 1..3).prop_map(|ms| {
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::In(MemberSet::of(3, ms)) })
        }),
        (0u16..3).prop_map(|c| Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(c) })),
        proptest::collection::vec(0u16..3, 1..3).prop_map(|cs| {
            Expr::Mining(MiningPred::ClassIn {
                model: 0,
                classes: cs.into_iter().map(ClassId).collect(),
            })
        }),
        Just(Expr::Mining(MiningPred::ModelsAgree { m1: 0, m2: 0 })),
        Just(Expr::Mining(MiningPred::ClassEqColumn { model: 0, column: AttrId(0) })),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rewrite_preserves_row_semantics(e in arb_expr(3)) {
        let (cat, schema) = catalog();
        let rewritten = rewrite_mining(e.clone(), &schema, &cat);
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                let row = [m0, m1];
                let (mut i1, mut i2) = (0u64, 0u64);
                prop_assert_eq!(
                    e.eval(&row, &cat, &mut i1),
                    rewritten.eval(&row, &cat, &mut i2),
                    "semantics diverged at {:?} for {:?}", row, e
                );
            }
        }
    }

    #[test]
    fn normalize_preserves_row_semantics(e in arb_expr(3)) {
        let (cat, schema) = catalog();
        let normalized = e.clone().normalize(&schema);
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                let row = [m0, m1];
                let (mut i1, mut i2) = (0u64, 0u64);
                prop_assert_eq!(
                    e.eval(&row, &cat, &mut i1),
                    normalized.eval(&row, &cat, &mut i2),
                    "normalize changed semantics at {:?} for {:?}", row, e
                );
            }
        }
    }

    #[test]
    fn planned_execution_matches_naive_filter(e in arb_expr(2)) {
        // End to end: whatever plan the optimizer picks, the result set
        // equals brute-force row filtering of the original predicate.
        let (cat, _) = catalog();
        let engine = Engine::new(cat);
        let plan = engine.plan_predicate(0, e.clone());
        let catalog = engine.catalog();
        let result = execute(&plan, &catalog);
        let table = &catalog.table(0).table;
        let mut expected = Vec::new();
        for r in 0..table.n_rows() as u32 {
            let row = table.row(r);
            let mut inv = 0;
            if e.eval(&row, &*catalog, &mut inv) {
                expected.push(r);
            }
        }
        prop_assert_eq!(result.rows, expected, "plan: {:?}", plan.access);
    }
}
