//! Pub/sub matching benchmark: N standing subscriptions (default
//! 10,000) registered against one table, then identical insert batches
//! matched twice — once through the inverted envelope index, once with
//! the index distrusted (the `sub_index_corrupt` degraded path, which
//! evaluates every subscription's full rewritten predicate per row).
//! Writes `BENCH_pubsub_match.json`.
//!
//! The run doubles as a differential oracle: both legs log every
//! delivered (subscription, row) pair through the notify sink and the
//! run aborts if the sets differ — the index is a pure pruner, so
//! disabling it may change cost but never the match set.
//!
//! Every subscription here is *exactly compiled*: the mining
//! predicates reference a decision tree whose envelopes are exact, so
//! the rewrite replaces `PREDICT(watch) = ...` with its envelope
//! expression and matching never touches the model. The model is
//! registered through a counting wrapper to prove it: the benchmark
//! asserts **zero** scorer calls across both legs' entire matching
//! phase.
//!
//! Usage: `bench_pubsub_match [out.json] [n_subs]` (defaults:
//! `BENCH_pubsub_match.json`, 10,000). CI smoke passes a small
//! subscription count; the ≥10x speedup assertion only arms at the
//! full 10k scale — timings from small runs are dominated by fixed
//! per-insert costs, not matching.

use mpq_core::{DeriveOptions, Envelope, EnvelopeProvider};
use mpq_engine::{Catalog, Engine, MatchEvent, SessionState, StatementOutcome, Table};
use mpq_models::{Classifier, DecisionTree, TreeParams};
use mpq_types::{
    AttrDomain, Attribute, ClassId, Dataset, LabeledDataset, Row, Schema,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const RUNS: usize = 5;
const SEGMENTS: usize = 64;
const BANDS: usize = 128;
/// Insert statements per timed run, rows per statement.
const STMTS_PER_RUN: usize = 16;
const ROWS_PER_STMT: usize = 8;

/// Delegates to a trained tree, counting every `predict` call. The
/// envelopes delegate too — a tree's envelopes are exact, so every
/// subscription referencing this model compiles the model away and the
/// counter must stay at zero throughout matching.
struct CountingModel {
    inner: DecisionTree,
    predictions: AtomicU64,
}

impl Classifier for CountingModel {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }
    fn n_classes(&self) -> usize {
        self.inner.n_classes()
    }
    fn class_name(&self, c: ClassId) -> &str {
        self.inner.class_name(c)
    }
    fn predict(&self, row: &Row) -> ClassId {
        self.predictions.fetch_add(1, Ordering::Relaxed);
        self.inner.predict(row)
    }
}

impl EnvelopeProvider for CountingModel {
    fn envelope(&self, class: ClassId, opts: &DeriveOptions) -> Envelope {
        self.inner.envelope(class, opts)
    }
}

fn schema() -> Schema {
    let seg_labels: Vec<String> = (0..SEGMENTS).map(|s| format!("s{s}")).collect();
    // Band cuts at 10, 20, ..., so integer raw values `10*m + 5` land
    // unambiguously in member `m`.
    let cuts: Vec<f64> = (1..BANDS).map(|b| (b * 10) as f64).collect();
    Schema::new(vec![
        Attribute::new("seg", AttrDomain::categorical(seg_labels.iter().map(String::as_str))),
        Attribute::new("band", AttrDomain::binned(cuts).unwrap()),
        Attribute::new("flag", AttrDomain::categorical(["no", "yes"])),
    ])
    .unwrap()
}

/// Deterministic seed/training rows sweeping the member space; the
/// label is an exactly learnable concept over `band` and `seg`.
fn seed_rows(n: usize) -> Vec<Vec<u16>> {
    (0..n)
        .map(|i| {
            let seg = ((i * 7 + i / 31) % SEGMENTS) as u16;
            let band = ((i * 37 + 3) % BANDS) as u16;
            let flag = (i % 2) as u16;
            vec![seg, band, flag]
        })
        .collect()
}

fn label_of(row: &[u16]) -> u16 {
    u16::from(row[1] < 32 && row[0] != 7)
}

fn build_engine(watch: Arc<CountingModel>) -> Engine {
    let mut ds = Dataset::new(schema());
    for row in seed_rows(4096) {
        ds.push_encoded(&row).unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("events", &ds)).unwrap();
    let engine = Engine::new(cat);
    engine.register_model("watch", watch, DeriveOptions::default()).unwrap();
    engine
}

/// The subscription pool: every predicate carries a one-member `seg`
/// anchor (so the inverted index has something selective to post
/// under), combined with plain band ranges and compiled-out mining
/// predicates in equal measure.
fn subscription_sql(i: usize) -> String {
    let seg = i % SEGMENTS;
    match i % 4 {
        0 => format!(
            "SUBSCRIBE SELECT * FROM events WHERE seg = 's{seg}' AND band > {}",
            ((i / 4) % 100) * 10 + 100
        ),
        1 => format!("SUBSCRIBE SELECT * FROM events WHERE seg = 's{seg}' AND PREDICT(watch) = 'pos'"),
        2 => format!(
            "SUBSCRIBE SELECT * FROM events WHERE seg = 's{seg}' \
             AND PREDICT(watch) = 'neg' AND flag = 'yes'"
        ),
        _ => format!(
            "SUBSCRIBE SELECT * FROM events WHERE seg = 's{seg}' AND band > {} \
             AND PREDICT(watch) = 'pos'",
            ((i / 4) % 20) * 10
        ),
    }
}

/// One multi-row INSERT; rows sweep segments and bands so every
/// postings list gets probed across a run.
fn insert_sql(stmt: usize, salt: usize) -> String {
    let values: Vec<String> = (0..ROWS_PER_STMT)
        .map(|r| {
            let i = salt * STMTS_PER_RUN * ROWS_PER_STMT + stmt * ROWS_PER_STMT + r;
            let seg = (i * 11 + 5) % SEGMENTS;
            let band = (i * 29 + 1) % BANDS;
            let flag = ["no", "yes"][i % 2];
            format!("('s{seg}', {}, '{flag}')", band * 10 + 5)
        })
        .collect();
    format!("INSERT INTO events VALUES {}", values.join(", "))
}

struct LegResult {
    median_ms: f64,
    per_row_us: f64,
    subs_matched: u64,
    subs_index_pruned: u64,
    delivered: Vec<(u64, u32)>,
}

/// Runs the full timed insert sequence against one engine and collects
/// timings, counters, and the delivered match log.
fn run_leg(engine: &Engine, name: &str) -> LegResult {
    let log: Arc<Mutex<Vec<(u64, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_log = Arc::clone(&log);
    engine.set_notify_sink(Some(Arc::new(move |ev: MatchEvent| {
        sink_log.lock().unwrap().push((ev.subscription, ev.row_id));
    })));
    let mut session = SessionState::new();

    // Warmup: the first insert after registration pays the one-time
    // index (re)build; keep that out of the timed runs. Both legs do
    // the identical warmup, so the match logs stay comparable.
    engine.execute_sql_in("INSERT INTO events VALUES ('s0', 5, 'no')", &mut session).unwrap();

    let rows_per_run = (STMTS_PER_RUN * ROWS_PER_STMT) as f64;
    let mut times_ms = Vec::with_capacity(RUNS);
    let (mut subs_matched, mut subs_index_pruned) = (0u64, 0u64);
    for run in 0..RUNS {
        let t0 = Instant::now();
        for stmt in 0..STMTS_PER_RUN {
            let out = engine.execute_sql_in(&insert_sql(stmt, run), &mut session).unwrap();
            let StatementOutcome::Inserted { subs_matched: m, subs_index_pruned: p, .. } = out
            else {
                panic!("INSERT produced {out:?}");
            };
            subs_matched += m;
            subs_index_pruned += p;
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        eprintln!("  {name} run {run}: {ms:.1} ms ({:.1} us/row)", ms * 1e3 / rows_per_run);
        times_ms.push(ms);
    }
    engine.set_notify_sink(None);
    times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_ms = times_ms[times_ms.len() / 2];
    let mut delivered = log.lock().unwrap().clone();
    delivered.sort_unstable();
    LegResult {
        median_ms,
        per_row_us: median_ms * 1e3 / rows_per_run,
        subs_matched,
        subs_index_pruned,
        delivered,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pubsub_match.json".into());
    let n_subs: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("n_subs must be a number"))
        .unwrap_or(10_000);

    // Train the watched tree on the seed concept; wrap it counting.
    eprintln!("training the watched decision tree ...");
    let mut train = Dataset::new(schema());
    let rows = seed_rows(4096);
    let labels: Vec<ClassId> = rows.iter().map(|r| ClassId(label_of(r))).collect();
    for row in &rows {
        train.push_encoded(row).unwrap();
    }
    let lds =
        LabeledDataset::new(train, labels, vec!["neg".into(), "pos".into()]).unwrap();
    let tree = DecisionTree::train(&lds, TreeParams::default()).unwrap();
    let watch = Arc::new(CountingModel { inner: tree, predictions: AtomicU64::new(0) });

    // Two identical engines sharing the counting model: one matches
    // through the inverted index, the other with the index distrusted.
    let indexed = build_engine(Arc::clone(&watch) as Arc<CountingModel>);
    let naive = build_engine(Arc::clone(&watch));
    naive.fault_injector().set_sub_index_corrupt(true);

    eprintln!("registering {n_subs} subscriptions on each engine ...");
    let mut session = SessionState::new();
    for i in 0..n_subs {
        let sql = subscription_sql(i);
        for e in [&indexed, &naive] {
            let out = e.execute_sql_in(&sql, &mut session).unwrap();
            assert!(matches!(out, StatementOutcome::Subscribed { .. }));
        }
    }

    // Everything from here on is the matching phase: registration and
    // envelope derivation are allowed to touch the model, matching is
    // not.
    let scorer_calls_before = watch.predictions.load(Ordering::Relaxed);

    eprintln!("matching through the inverted index ...");
    let fast = run_leg(&indexed, "indexed");
    eprintln!("matching with the index distrusted (naive full evaluation) ...");
    let slow = run_leg(&naive, "naive");

    // Differential oracle: the index is a pure pruner — identical
    // delivered matches, identical match counters, or the run aborts.
    assert_eq!(
        fast.delivered, slow.delivered,
        "indexed and naive legs delivered different match sets"
    );
    assert_eq!(fast.subs_matched, slow.subs_matched, "match counters diverged");
    assert_eq!(slow.subs_index_pruned, 0, "the naive leg must not prune");
    assert!(
        naive.health().sub_index_note.is_some_and(|n| n.contains("distrusted")),
        "the degraded leg must carry the typed health note"
    );

    // Every subscription compiled its model away: matching made zero
    // scorer calls, on both legs, across every inserted row.
    let scorer_calls = watch.predictions.load(Ordering::Relaxed) - scorer_calls_before;
    assert_eq!(
        scorer_calls, 0,
        "exactly-compiled subscriptions must never invoke the model during matching"
    );

    let speedup = slow.median_ms / fast.median_ms;
    eprintln!(
        "indexed {:.1} ms ({:.1} us/row), naive {:.1} ms ({:.1} us/row): {speedup:.1}x, \
         {} matches, {} pruned, {scorer_calls} scorer calls",
        fast.median_ms, fast.per_row_us, slow.median_ms, slow.per_row_us, fast.subs_matched,
        fast.subs_index_pruned
    );
    if n_subs >= 10_000 {
        assert!(
            speedup >= 10.0,
            "inverted index must beat naive matching by >= 10x at {n_subs} subscriptions, \
             got {speedup:.1}x"
        );
    } else {
        eprintln!(
            "note: {n_subs} subscriptions is below the 10k reference scale; \
             the >= 10x speedup assertion is not armed"
        );
    }

    let leg_json = |l: &LegResult| {
        format!(
            "{{\"median_ms\": {:.3}, \"per_row_us\": {:.3}, \"subs_matched\": {}, \
             \"subs_index_pruned\": {}}}",
            l.median_ms, l.per_row_us, l.subs_matched, l.subs_index_pruned
        )
    };
    let json = format!(
        "{{\n  \"benchmark\": \"pubsub_match\",\n  \"n_subscriptions\": {n_subs},\n  \
         \"rows_per_run\": {},\n  \"runs\": {RUNS},\n  \"indexed\": {},\n  \"naive\": {},\n  \
         \"speedup\": {speedup:.3},\n  \"matching_scorer_calls\": {scorer_calls}\n}}\n",
        STMTS_PER_RUN * ROWS_PER_STMT,
        leg_json(&fast),
        leg_json(&slow),
    );
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
