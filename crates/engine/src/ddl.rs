//! DDL execution: `CREATE MINING MODEL` (§2.2's model-as-catalog-object
//! world, with training driven from SQL).
//!
//! Classification models are trained on a table with a designated label
//! column. The registered model is a [`ProjectedModel`]: it carries the
//! *full* table schema, ignores the label column at prediction time, and
//! lifts the inner model's envelopes by leaving the label dimension
//! unconstrained — so prediction joins and envelope rewriting against
//! the same table keep working without any column mapping.

use crate::persist::StoredModel;
use crate::sql::ModelAlgorithm;
use crate::{Catalog, EngineError};
use mpq_core::{DeriveOptions, Envelope, EnvelopeProvider, ProxyScore};
use mpq_pmml::PmmlModel;
use mpq_models::{
    Classifier, DecisionTree, Gmm, GmmParams, KMeans, KMeansParams, NaiveBayes, RuleSet,
    RuleSetParams, TreeParams,
};
use mpq_types::{AttrDomain, AttrId, ClassId, Dataset, LabeledDataset, Row, Schema};
use std::sync::Arc;

/// A model trained on a projection of a table (all columns except the
/// label), presented against the full table schema.
pub struct ProjectedModel {
    full_schema: Schema,
    /// Index of the ignored (label) column in the full schema.
    label: usize,
    inner: Arc<dyn EnvelopeProvider + Send + Sync>,
}

impl ProjectedModel {
    /// Wraps `inner` (trained on the schema without column `label`).
    pub fn new(
        full_schema: Schema,
        label: AttrId,
        inner: Arc<dyn EnvelopeProvider + Send + Sync>,
    ) -> ProjectedModel {
        debug_assert_eq!(inner.schema().len() + 1, full_schema.len());
        ProjectedModel { full_schema, label: label.index(), inner }
    }

    fn project(&self, row: &Row, buf: &mut Vec<u16>) {
        buf.clear();
        buf.extend(row.iter().enumerate().filter(|(d, _)| *d != self.label).map(|(_, &m)| m));
    }

    /// Lifts an inner-schema envelope into the full schema: each region
    /// gains an unconstrained label dimension.
    fn lift(&self, inner_env: Envelope) -> Envelope {
        let label_dim = {
            let attr = &self.full_schema.attrs()[self.label];
            mpq_core::DimSet::full(attr.domain.cardinality(), attr.domain.is_ordered())
        };
        let regions = inner_env
            .regions
            .into_iter()
            .map(|r| {
                let mut dims: Vec<mpq_core::DimSet> =
                    (0..r.n_dims()).map(|d| r.dim(d).clone()).collect();
                dims.insert(self.label, label_dim.clone());
                mpq_core::Region::from_dims(dims)
            })
            .collect();
        Envelope { regions, ..inner_env }
    }
}

impl Classifier for ProjectedModel {
    fn schema(&self) -> &Schema {
        &self.full_schema
    }

    fn n_classes(&self) -> usize {
        self.inner.n_classes()
    }

    fn class_name(&self, c: ClassId) -> &str {
        self.inner.class_name(c)
    }

    fn predict(&self, row: &Row) -> ClassId {
        let mut buf = Vec::with_capacity(row.len() - 1);
        self.project(row, &mut buf);
        self.inner.predict(&buf)
    }
}

impl EnvelopeProvider for ProjectedModel {
    fn envelope(&self, class: ClassId, opts: &DeriveOptions) -> Envelope {
        self.lift(self.inner.envelope(class, opts))
    }

    fn try_envelope(
        &self,
        class: ClassId,
        opts: &DeriveOptions,
    ) -> Result<Envelope, mpq_core::CoreError> {
        // Forward the fallible path so a time budget on the inner
        // derivation propagates (and degradation can kick in upstream).
        Ok(self.lift(self.inner.try_envelope(class, opts)?))
    }

    fn proxy(&self) -> Option<ProxyScore> {
        // Mirror `lift`: the label dimension joins the table with
        // all-zero contributions, so full-row decisions equal the inner
        // model's decisions on projected rows.
        let card = self.full_schema.attrs()[self.label].domain.cardinality();
        Some(self.inner.proxy()?.with_zero_dim(self.label, card.into()))
    }
}

/// Builds the labeled training view of a table: all columns except
/// `label` become features; `label` (must be categorical) provides the
/// class names.
pub fn labeled_view(catalog: &Catalog, table: usize, label: AttrId) -> Result<LabeledDataset, EngineError> {
    let t = &catalog.table(table).table;
    let schema = t.schema();
    let AttrDomain::Categorical { members } = &schema.attr(label).domain else {
        return Err(EngineError::SchemaMismatch {
            detail: format!("label column {} must be categorical", schema.attr(label).name),
        });
    };
    let class_names = members.clone();
    let feature_attrs: Vec<_> = schema
        .iter()
        .filter(|(id, _)| *id != label)
        .map(|(_, a)| a.clone())
        .collect();
    let fschema = Schema::new(feature_attrs)
        .map_err(|e| EngineError::SchemaMismatch { detail: e.to_string() })?;
    let mut ds = Dataset::new(fschema);
    let mut labels = Vec::with_capacity(t.n_rows());
    let mut buf = Vec::with_capacity(schema.len() - 1);
    for r in 0..t.n_rows() as u32 {
        buf.clear();
        for d in 0..schema.len() {
            if d == label.index() {
                continue;
            }
            buf.push(t.cell(r, d));
        }
        ds.push_encoded(&buf)
            .map_err(|e| EngineError::SchemaMismatch { detail: e.to_string() })?;
        labels.push(ClassId(t.cell(r, label.index())));
    }
    LabeledDataset::new(ds, labels, class_names)
        .map_err(|e| EngineError::SchemaMismatch { detail: e.to_string() })
}

/// Serializes a freshly trained model as PMML. Training only produces
/// domain-consistent structures, so failure here means a bug, not bad
/// user input — surfaced as `Internal` rather than panicking.
fn export_trained(model: PmmlModel) -> Result<String, EngineError> {
    mpq_pmml::export(&model)
        .map_err(|e| EngineError::Internal { detail: format!("pmml export: {e}") })
}

/// Trains the requested model *without* registering it, returning the
/// live trait object, its durable serialized form (see
/// [`crate::persist::StoredModel`]), and its class count. The durable
/// mutation path logs the serialized form before the catalog applies it.
pub(crate) fn train_model_stored(
    catalog: &Catalog,
    table: usize,
    label: Option<AttrId>,
    clusters: Option<usize>,
    algorithm: ModelAlgorithm,
) -> Result<(Arc<dyn EnvelopeProvider + Send + Sync>, StoredModel, usize), EngineError> {
    let full_schema = catalog.table(table).table.schema().clone();
    match algorithm {
        ModelAlgorithm::DecisionTree | ModelAlgorithm::NaiveBayes | ModelAlgorithm::Rules => {
            // The SQL parser guarantees a label, but this is reachable
            // from public API: reject rather than panic on a direct call.
            let label = label.ok_or_else(|| EngineError::SchemaMismatch {
                detail: "classification algorithms need a label column".to_string(),
            })?;
            let train = labeled_view(catalog, table, label)?;
            let (inner, inner_xml): (Arc<dyn EnvelopeProvider + Send + Sync>, String) =
                match algorithm {
                    ModelAlgorithm::DecisionTree => {
                        let m = DecisionTree::train(&train, TreeParams::default())
                            .map_err(|e| EngineError::SchemaMismatch { detail: e.to_string() })?;
                        let xml = export_trained(PmmlModel::Tree(m.clone()))?;
                        (Arc::new(m), xml)
                    }
                    ModelAlgorithm::NaiveBayes => {
                        let m = NaiveBayes::train(&train)
                            .map_err(|e| EngineError::SchemaMismatch { detail: e.to_string() })?;
                        let xml = export_trained(PmmlModel::NaiveBayes(m.clone()))?;
                        (Arc::new(m), xml)
                    }
                    _ => {
                        let m = RuleSet::train(&train, RuleSetParams::default())
                            .map_err(|e| EngineError::SchemaMismatch { detail: e.to_string() })?;
                        let xml = export_trained(PmmlModel::Rules(m.clone()))?;
                        (Arc::new(m), xml)
                    }
                };
            let stored = StoredModel::Projected {
                label_name: full_schema.attrs()[label.index()].name.clone(),
                label_pos: label.index() as u32,
                inner_xml,
            };
            let model = Arc::new(ProjectedModel::new(full_schema, label, inner));
            let n_classes = model.n_classes();
            Ok((model, stored, n_classes))
        }
        ModelAlgorithm::KMeans => {
            let k = clusters.ok_or_else(|| EngineError::SchemaMismatch {
                detail: "clustering algorithms need a cluster count".to_string(),
            })?;
            let data = table_dataset(catalog, table);
            let m = KMeans::train_encoded(&data, KMeansParams { k, ..Default::default() })
                .map_err(|e| EngineError::SchemaMismatch { detail: e.to_string() })?;
            let stored = StoredModel::Plain { xml: export_trained(PmmlModel::KMeans(m.clone()))? };
            let n_classes = m.n_classes();
            Ok((Arc::new(m), stored, n_classes))
        }
        ModelAlgorithm::Gmm => {
            let k = clusters.ok_or_else(|| EngineError::SchemaMismatch {
                detail: "clustering algorithms need a cluster count".to_string(),
            })?;
            let data = table_dataset(catalog, table);
            let m = Gmm::train_encoded(&data, GmmParams { k, ..Default::default() })
                .map_err(|e| EngineError::SchemaMismatch { detail: e.to_string() })?;
            let stored = StoredModel::Plain { xml: export_trained(PmmlModel::Gmm(m.clone()))? };
            let n_classes = m.n_classes();
            Ok((Arc::new(m), stored, n_classes))
        }
    }
}

/// Trains the requested model and registers it in the catalog under
/// `name` (with its durable serialized form attached), returning the
/// model id and its class count.
pub fn create_model(
    catalog: &mut Catalog,
    name: &str,
    table: usize,
    label: Option<AttrId>,
    clusters: Option<usize>,
    algorithm: ModelAlgorithm,
    derive_opts: DeriveOptions,
) -> Result<(usize, usize), EngineError> {
    let (model, stored, n_classes) =
        train_model_stored(catalog, table, label, clusters, algorithm)?;
    let id = catalog.add_model_stored(name.to_string(), model, derive_opts, Some(stored))?;
    Ok((id, n_classes))
}

fn table_dataset(catalog: &Catalog, table: usize) -> Dataset {
    let t = &catalog.table(table).table;
    let mut ds = Dataset::new(t.schema().clone());
    for r in 0..t.n_rows() as u32 {
        // Invariant-backed: rows were validated against this same
        // schema when the table was built, so re-encoding cannot fail.
        ds.push_encoded(&t.row(r)).expect("stored rows are valid");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Table;
    use mpq_types::Attribute;

    fn catalog_with_training_table() -> Catalog {
        let schema = Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![5.0]).unwrap()),
            Attribute::new("f", AttrDomain::categorical(["a", "b"])),
            Attribute::new("outcome", AttrDomain::categorical(["lo", "hi"])),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        for i in 0..200u16 {
            let x = i % 2;
            let f = (i / 2) % 2;
            // outcome = hi iff x high and f = 'b'.
            let y = u16::from(x == 1 && f == 1);
            ds.push_encoded(&[x, f, y]).unwrap();
        }
        let mut cat = Catalog::new();
        cat.add_table(Table::from_dataset("t", &ds)).unwrap();
        cat
    }

    #[test]
    fn labeled_view_splits_features_and_labels() {
        let cat = catalog_with_training_table();
        let label = cat.table(0).table.schema().attr_by_name("outcome").unwrap();
        let view = labeled_view(&cat, 0, label).unwrap();
        assert_eq!(view.data.schema().len(), 2);
        assert_eq!(view.n_classes(), 2);
        assert_eq!(view.class_names, vec!["lo".to_string(), "hi".to_string()]);
        assert_eq!(view.len(), 200);
    }

    #[test]
    fn labeled_view_rejects_numeric_labels() {
        let cat = catalog_with_training_table();
        let x = cat.table(0).table.schema().attr_by_name("x").unwrap();
        assert!(labeled_view(&cat, 0, x).is_err());
    }

    #[test]
    fn projected_model_predicts_against_full_rows() {
        let mut cat = catalog_with_training_table();
        let label = cat.table(0).table.schema().attr_by_name("outcome").unwrap();
        let (id, classes) = create_model(
            &mut cat,
            "m",
            0,
            Some(label),
            None,
            ModelAlgorithm::DecisionTree,
            DeriveOptions::default(),
        )
        .unwrap();
        assert_eq!(classes, 2);
        let model = &cat.model(id).model;
        // Full rows include the (ignored) label column.
        assert_eq!(model.predict(&[1, 1, 0]), ClassId(1), "x hi + f=b -> hi");
        assert_eq!(model.predict(&[0, 1, 1]), ClassId(0));
        // Envelopes are lifted over the full schema: they never constrain
        // the label column.
        let env = &cat.model(id).envelopes[1];
        assert!(env.matches(&[1, 1, 0]) && env.matches(&[1, 1, 1]));
        assert!(!env.matches(&[0, 0, 0]));
    }

    #[test]
    fn projected_model_lifts_the_inner_proxy() {
        let mut cat = catalog_with_training_table();
        let label = cat.table(0).table.schema().attr_by_name("outcome").unwrap();
        let (id, _) = create_model(
            &mut cat,
            "m",
            0,
            Some(label),
            None,
            ModelAlgorithm::NaiveBayes,
            DeriveOptions::default(),
        )
        .unwrap();
        let model = &cat.model(id).model;
        let proxy = model.proxy().expect("projected additive model must tabulate a proxy");
        assert_eq!(proxy.n_dims(), 3, "lifted proxy covers the full schema, label included");
        for x in 0..2u16 {
            for f in 0..2u16 {
                // The label column must not influence the decision...
                assert_eq!(proxy.decide(&[x, f, 0]), proxy.decide(&[x, f, 1]));
                for y in 0..2u16 {
                    // ...and unique decisions must be the model's
                    // prediction on the full row.
                    let row = [x, f, y];
                    if let mpq_core::ProxyDecision::Unique(c) = proxy.decide(&row) {
                        assert_eq!(c, model.predict(&row), "row {row:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn clustering_ddl_trains_on_all_columns() {
        let schema = Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
            Attribute::new("y", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        for i in 0..100u16 {
            ds.push_encoded(&[(i % 3), ((i / 3) % 3)]).unwrap();
        }
        let mut cat = Catalog::new();
        cat.add_table(Table::from_dataset("pts", &ds)).unwrap();
        let (id, k) = create_model(
            &mut cat,
            "c",
            0,
            None,
            Some(3),
            ModelAlgorithm::KMeans,
            DeriveOptions::default(),
        )
        .unwrap();
        assert_eq!(k, 3);
        assert_eq!(cat.model(id).envelopes.len(), 3);
    }
}
