//! Differential oracle for adaptive predicate evaluation.
//!
//! The fixed-order scalar interpreter (`vectorized: false`) is the
//! reference semantics. For random DNF shapes over all five model
//! algorithms, the adaptive vectorized path must reproduce, at every
//! degree of parallelism:
//!
//! * the exact row set,
//! * the exact `model_invocations` count with the memo disabled
//!   (reordering only permutes scalar-free runs, so the same rows reach
//!   every model scorer in the same order),
//! * the guard-breach classification when a budget trips, and
//! * dop-independent values for the new `clauses_reordered` /
//!   `factor_hits` counters and the calibration feedback observations.
//!
//! A separate test drives the feedback loop end to end: a query whose
//! observed conjunction selectivity contradicts the independence
//! assumption must evict its cached plan, flip from full scan to index
//! seek on the next run, and surface the fed-back costing in EXPLAIN.

use mpq_engine::{
    execute_opts, parse, Catalog, Engine, EngineError, ExecOptions, GuardResource,
    QueryGuard, StatementOutcome, Table,
};
use mpq_types::{AttrDomain, Attribute, AttrId, Dataset, Schema};
use proptest::prelude::*;

const DOPS: [usize; 4] = [1, 2, 4, 8];

// Classification trains on the mixed-schema table `t`; clustering needs
// an all-ordered schema, so it trains on the numeric table `pts`.
const ALGORITHMS: [(&str, &str, &str); 5] = [
    ("dt", "t", "PREDICT outcome USING decision_tree"),
    ("nb", "t", "PREDICT outcome USING naive_bayes"),
    ("rl", "t", "PREDICT outcome USING rules"),
    ("km", "pts", "WITH 2 CLUSTERS USING kmeans"),
    ("gm", "pts", "WITH 2 CLUSTERS USING gmm"),
];

/// Atom pool for DNF generation over `t`: cheap scalar-free atoms mixed
/// with mining predicates over every classification algorithm.
const T_ATOMS: [&str; 12] = [
    "x <= 1",
    "x > 1",
    "f = 'a'",
    "f = 'b'",
    "outcome = 'lo'",
    "outcome = 'hi'",
    "PREDICT(dt) = 'lo'",
    "PREDICT(dt) = 'hi'",
    "PREDICT(nb) = 'lo'",
    "PREDICT(nb) = 'hi'",
    "PREDICT(rl) = 'lo'",
    "PREDICT(rl) = 'hi'",
];

/// Atom pool over `pts`, covering both clustering algorithms.
const PTS_ATOMS: [&str; 8] = [
    "px <= 1",
    "px > 1",
    "py <= 1",
    "py > 1",
    "PREDICT(km) = 'cluster_0'",
    "PREDICT(km) = 'cluster_1'",
    "PREDICT(gm) = 'cluster_0'",
    "PREDICT(gm) = 'cluster_1'",
];

/// Engine over `t` (x, f, outcome) and `pts` (px, py) with all five
/// models trained healthy. The deterministic base grid guarantees every
/// class has training examples; `extra` adds the proptest-random bulk.
fn engine_with_rows(extra: &[(u16, u16, u16)]) -> Engine {
    let schema = Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
        Attribute::new("f", AttrDomain::categorical(["a", "b"])),
        Attribute::new("outcome", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for x in 0..3u16 {
        for f in 0..2u16 {
            for y in 0..2u16 {
                ds.push_encoded(&[x, f, y]).unwrap();
            }
        }
    }
    for &(x, f, y) in extra {
        ds.push_encoded(&[x, f, y]).unwrap();
    }
    let mut cat = Catalog::new();
    cat.add_table(Table::from_dataset("t", &ds)).unwrap();

    let pts_schema = Schema::new(vec![
        Attribute::new("px", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),
        Attribute::new("py", AttrDomain::binned(vec![1.0]).unwrap()),
    ])
    .unwrap();
    let mut pts = Dataset::new(pts_schema);
    for x in 0..3u16 {
        for f in 0..2u16 {
            pts.push_encoded(&[x, f]).unwrap();
        }
    }
    for &(x, f, _) in extra {
        pts.push_encoded(&[x, f]).unwrap();
    }
    cat.add_table(Table::from_dataset("pts", &pts)).unwrap();
    let e = Engine::new(cat);
    for (name, table, clause) in ALGORITHMS {
        let ddl = format!("CREATE MINING MODEL {name} ON {table} {clause}");
        match e.execute_sql(&ddl).expect("training must succeed") {
            StatementOutcome::ModelCreated { degraded, .. } => {
                assert!(degraded.is_none(), "model {name} must train healthy")
            }
            other => panic!("expected ModelCreated, got {other:?}"),
        }
    }
    e
}

/// Renders DNF atom indices as a WHERE clause: `(a AND b) OR (c)`.
fn dnf_sql(atoms: &[&str], shape: &[Vec<usize>]) -> String {
    shape
        .iter()
        .map(|conj| {
            let parts: Vec<&str> = conj.iter().map(|&i| atoms[i % atoms.len()]).collect();
            format!("({})", parts.join(" AND "))
        })
        .collect::<Vec<_>>()
        .join(" OR ")
}

/// The oracle proper: reference (scalar, fixed order) vs the fixed-order
/// vectorized leg and the adaptive leg at every dop, memo off so model
/// invocation counts are raw.
fn check_query(e: &Engine, table: &str, where_sql: &str) -> Result<(), TestCaseError> {
    let sql = format!("SELECT * FROM {table} WHERE {where_sql}");
    let parsed = {
        let catalog = e.catalog();
        parse(&sql, &catalog).expect("generated SQL must parse")
    };
    let plan = e.plan_predicate(parsed.table, parsed.predicate);
    let catalog = e.catalog();
    let no_memo = |adaptive: bool, dop: usize| ExecOptions {
        parallelism: dop,
        memo_capacity: 0,
        adaptive,
        ..ExecOptions::default()
    };
    let reference = execute_opts(
        &plan,
        &catalog,
        QueryGuard::unlimited(),
        &ExecOptions { vectorized: false, ..no_memo(false, 1) },
    )
    .expect("reference must run");
    // Fixed-order vectorized (what SET ADAPTIVE OFF executes).
    let fixed = execute_opts(&plan, &catalog, QueryGuard::unlimited(), &no_memo(false, 1))
        .expect("fixed-order must run");
    prop_assert_eq!(&fixed.rows, &reference.rows, "fixed-order rows: {}", sql);
    prop_assert_eq!(
        fixed.metrics.model_invocations,
        reference.metrics.model_invocations,
        "fixed-order invocations: {}",
        sql
    );
    prop_assert_eq!(fixed.metrics.clauses_reordered, 0);
    prop_assert_eq!(fixed.metrics.factor_hits, 0);
    prop_assert!(fixed.feedback.is_empty(), "fixed order reports no feedback");

    let mut baseline: Option<(u64, u64, Vec<mpq_engine::FeedbackObservation>)> = None;
    for dop in DOPS {
        let adaptive =
            execute_opts(&plan, &catalog, QueryGuard::unlimited(), &no_memo(true, dop))
                .expect("adaptive must run");
        prop_assert_eq!(&adaptive.rows, &reference.rows, "rows at dop {}: {}", dop, sql);
        prop_assert_eq!(
            adaptive.metrics.model_invocations,
            reference.metrics.model_invocations,
            "invocations at dop {}: {}",
            dop,
            sql
        );
        let counters = (
            adaptive.metrics.clauses_reordered,
            adaptive.metrics.factor_hits,
            adaptive.feedback.clone(),
        );
        match &baseline {
            None => baseline = Some(counters),
            Some((reord, hits, fb)) => {
                prop_assert_eq!(
                    counters.0, *reord,
                    "clauses_reordered must be dop-deterministic: {}", sql
                );
                prop_assert_eq!(
                    counters.1, *hits,
                    "factor_hits must be dop-deterministic: {}", sql
                );
                prop_assert_eq!(
                    &counters.2, fb,
                    "feedback must be dop-deterministic: {}", sql
                );
            }
        }
    }

    // Guard-breach classification: halve a budget the query actually
    // consumed and demand the same typed breach from every leg.
    let (guard, resource) = if reference.metrics.model_invocations >= 2 {
        (
            QueryGuard::unlimited()
                .with_max_model_invocations(reference.metrics.model_invocations / 2),
            GuardResource::ModelInvocations,
        )
    } else if reference.metrics.rows_examined >= 2 {
        (
            QueryGuard::unlimited()
                .with_max_rows_examined(reference.metrics.rows_examined / 2),
            GuardResource::RowsExamined,
        )
    } else {
        return Ok(());
    };
    let classify = |r: Result<mpq_engine::ExecResult, EngineError>| match r {
        Err(EngineError::BudgetExceeded { resource, .. }) => Some(resource),
        _ => None,
    };
    let want = classify(execute_opts(
        &plan,
        &catalog,
        guard,
        &ExecOptions { vectorized: false, ..no_memo(false, 1) },
    ));
    prop_assert_eq!(want, Some(resource), "reference must breach: {}", sql);
    for dop in DOPS {
        let got = classify(execute_opts(&plan, &catalog, guard, &no_memo(true, dop)));
        prop_assert_eq!(
            got,
            want,
            "breach classification at dop {}: {}",
            dop,
            sql
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn adaptive_matches_fixed_order_scalar_reference(
        extra in proptest::collection::vec((0u16..3, 0u16..2, 0u16..2), 60..120),
        shapes in proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(0usize..64, 1..4), 1..4),
            2..5,
        ),
    ) {
        let e = engine_with_rows(&extra);
        for (i, shape) in shapes.iter().enumerate() {
            // Alternate between the classification table and the
            // clustering table so all five algorithms get exercised.
            let (table, atoms): (&str, &[&str]) =
                if i % 2 == 0 { ("t", &T_ATOMS) } else { ("pts", &PTS_ATOMS) };
            check_query(&e, table, &dnf_sql(atoms, shape))?;
        }
    }
}

/// Feedback convergence: a conjunction whose observed selectivity is
/// ~100x below the independence estimate must re-cost on the second
/// run — evicting the cached full-scan plan, flipping to an index
/// seek, and surfacing the fed-back costing in EXPLAIN — with the row
/// set unchanged throughout.
#[test]
fn feedback_convergence_flips_plan_and_shows_in_explain() {
    let schema = Schema::new(vec![
        Attribute::new("a", AttrDomain::categorical(["a0", "a1"])),
        Attribute::new("b", AttrDomain::categorical(["b0", "b1"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    // a and b are ~50/50 marginally but strongly anti-correlated: the
    // pair (a0, b0) appears once every 800 rows. Interleaving defeats
    // zone pruning, so the scan-vs-seek choice is purely cost.
    for i in 0..40_000u32 {
        let row: [u16; 2] = if i % 800 == 0 {
            [0, 0]
        } else if i % 800 == 400 {
            [1, 1]
        } else if i % 2 == 0 {
            [0, 1]
        } else {
            [1, 0]
        };
        ds.push_encoded(&row).unwrap();
    }
    let mut cat = Catalog::new();
    let t = cat.add_table(Table::from_dataset("t", &ds)).unwrap();
    cat.create_index(t, &[AttrId(0)]);
    let e = Engine::new(cat);
    let sql = "SELECT * FROM t WHERE a = 'a0' AND b = 'b0'";

    // First run: independence says ~25% selective, so the optimizer
    // full-scans; calibration observes the true ~0.125%.
    let first = e.query(sql).unwrap();
    assert!(first.plan.contains("Full Scan"), "first plan: {}", first.plan);
    assert!(first.metrics.feedback_entries > 0, "feedback must be recorded");
    assert_eq!(first.rows.len(), 50);

    // Second run: the fed-back selectivity flipped the cheapest access
    // path, so the cached plan was evicted and re-planning picks the
    // seek. Same rows either way.
    let second = e.query(sql).unwrap();
    assert!(!second.cached_plan, "feedback flip must evict the cached plan");
    assert!(second.plan.contains("Index Seek"), "second plan: {}", second.plan);
    assert_eq!(second.rows, first.rows);

    // Third run: the re-costed plan is stable and cache-hits.
    let third = e.query(sql).unwrap();
    assert!(third.cached_plan, "re-costed plan must be cacheable");
    assert_eq!(third.rows, first.rows);

    // EXPLAIN (a fresh plan under its own cache key) reflects both the
    // adaptive knob and the fed-back costing.
    let ex = e.query("EXPLAIN SELECT * FROM t WHERE a = 'a0' AND b = 'b0'").unwrap();
    assert!(ex.plan.contains("adaptive: on"), "plan: {}", ex.plan);
    assert!(ex.plan.contains("feedback:"), "plan: {}", ex.plan);
    assert!(ex.plan.contains("Index Seek"), "plan: {}", ex.plan);

    // SET ADAPTIVE OFF restores fixed-order execution with identical
    // rows (the fed-back plan stays, feedback just stops flowing).
    e.execute_sql("SET ADAPTIVE OFF").unwrap();
    let off = e.query(sql).unwrap();
    assert_eq!(off.rows, first.rows);
    assert_eq!(off.metrics.clauses_reordered, 0);
    assert_eq!(off.metrics.factor_hits, 0);
}
