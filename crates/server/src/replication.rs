//! The WAL shipper: the server half of primary→standby replication.
//!
//! The engine owns the data plane (reading committed frames, strict
//! stream decoding, LSN-deduplicated replay — see the engine's
//! `persist::replicate`); this module owns the control plane: a
//! background thread on the primary that tails the WAL and pushes
//! batches to the standby over the protocol-v4 replication requests,
//! plus [`ReplPeer`], the minimal blocking protocol client it (and the
//! supervisor) speaks through.
//!
//! The shipping loop is pull-free and stateless across reconnects: on
//! every (re)connect it asks the standby for its next LSN
//! (`ReplState`) and ships from there, so a dropped stream, a standby
//! restart, or a duplicated batch all converge by the standby's own
//! LSN arithmetic. When the on-disk log no longer covers the standby's
//! position (a checkpoint pruned it, or the standby is fresh), the
//! shipper falls back to a full snapshot and resumes incrementally
//! after it.
//!
//! Fencing rides the same channel: every ack carries the standby's
//! epoch. The moment the shipper sees an epoch above its own — a
//! `StaleEpoch` refusal or a higher epoch in an ack — it knows this
//! node was deposed while it wasn't looking, and it fences the local
//! engine so in-flight and future mutations fail typed instead of
//! diverging.
//!
//! The standby's address lives in a *peer file*, re-read on every
//! reconnect and idle poll: a supervisor repoints replication by
//! atomically rewriting one file, with no channel to the shipper
//! thread needed.

use crate::protocol::{
    decode_frame, encode_frame, FrameError, Request, Response, ServerError,
    DEFAULT_MAX_FRAME_LEN, PROTO_VERSION,
};
use mpq_engine::{Engine, EngineError, EngineHealth, ReplRole};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Why a peer exchange failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PeerError {
    /// Socket-level failure (connect, read, write, EOF).
    Io(String),
    /// A frame arrived torn or undecodable.
    Frame(String),
    /// The peer answered with a typed error.
    Remote(ServerError),
    /// The peer answered with a message that makes no sense for the
    /// request.
    Unexpected(String),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Io(e) => write!(f, "peer i/o error: {e}"),
            PeerError::Frame(e) => write!(f, "bad frame from peer: {e}"),
            PeerError::Remote(e) => write!(f, "peer error: {e}"),
            PeerError::Unexpected(e) => write!(f, "unexpected peer response: {e}"),
        }
    }
}

impl std::error::Error for PeerError {}

impl From<std::io::Error> for PeerError {
    fn from(e: std::io::Error) -> PeerError {
        PeerError::Io(e.to_string())
    }
}

/// What a peer reported about its replication position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerState {
    /// The peer's role.
    pub role: ReplRole,
    /// The peer's replication epoch.
    pub epoch: u64,
    /// The next LSN the peer expects.
    pub next_lsn: u64,
}

/// A minimal blocking protocol-v4 session, used by the shipper and the
/// supervisor (which live in this crate and therefore cannot use the
/// full `mpq-client`).
pub struct ReplPeer {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ReplPeer {
    /// Connects, arms `timeout` on connect and every read, and
    /// performs the v4 handshake.
    pub fn connect(addr: &str, timeout: Duration) -> Result<ReplPeer, PeerError> {
        let sock_addr = addr
            .parse()
            .map_err(|e| PeerError::Io(format!("bad peer address {addr:?}: {e}")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        let mut peer = ReplPeer { stream, buf: Vec::new() };
        let resp = peer.exchange(&Request::Hello {
            proto_version: PROTO_VERSION,
            client: "mpq-repl-shipper".to_string(),
        })?;
        match resp {
            Response::Hello { .. } => Ok(peer),
            Response::Error(e) => Err(PeerError::Remote(e)),
            other => Err(PeerError::Unexpected(format!("{other:?} to Hello"))),
        }
    }

    /// One stop-and-wait request/response round trip.
    pub fn exchange(&mut self, req: &Request) -> Result<Response, PeerError> {
        let frame = encode_frame(&req.encode());
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match decode_frame(&self.buf, DEFAULT_MAX_FRAME_LEN) {
                Ok((payload, consumed)) => {
                    self.buf.drain(..consumed);
                    return Response::decode(&payload)
                        .map_err(|e| PeerError::Frame(e.to_string()));
                }
                Err(FrameError::Incomplete { .. }) => {}
                Err(e) => return Err(PeerError::Frame(e.to_string())),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(PeerError::Io("peer closed the connection".into())),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(PeerError::Io(e.to_string())),
            }
        }
    }

    /// Asks the peer for its role, epoch, and next expected LSN.
    pub fn repl_state(&mut self) -> Result<PeerState, PeerError> {
        match self.exchange(&Request::ReplState)? {
            Response::ReplState { role, epoch, next_lsn } => {
                Ok(PeerState { role, epoch, next_lsn })
            }
            Response::Error(e) => Err(PeerError::Remote(e)),
            other => Err(PeerError::Unexpected(format!("{other:?} to ReplState"))),
        }
    }

    /// Ships one batch of WAL frames; returns the peer's post-apply
    /// state (next LSN and epoch).
    pub fn append(&mut self, epoch: u64, frames: Vec<u8>) -> Result<(u64, u64), PeerError> {
        match self.exchange(&Request::ReplAppend { epoch, frames })? {
            Response::ReplAck { next_lsn, epoch } => Ok((next_lsn, epoch)),
            Response::Error(e) => Err(PeerError::Remote(e)),
            other => Err(PeerError::Unexpected(format!("{other:?} to ReplAppend"))),
        }
    }

    /// Ships a full snapshot for standby bootstrap.
    pub fn snapshot(&mut self, snapshot: Vec<u8>) -> Result<(u64, u64), PeerError> {
        match self.exchange(&Request::ReplSnapshot { snapshot })? {
            Response::ReplAck { next_lsn, epoch } => Ok((next_lsn, epoch)),
            Response::Error(e) => Err(PeerError::Remote(e)),
            other => Err(PeerError::Unexpected(format!("{other:?} to ReplSnapshot"))),
        }
    }

    /// Asks the peer to promote itself to primary; returns its state
    /// after the epoch bump.
    pub fn promote(&mut self) -> Result<PeerState, PeerError> {
        match self.exchange(&Request::Promote)? {
            Response::ReplState { role, epoch, next_lsn } => {
                Ok(PeerState { role, epoch, next_lsn })
            }
            Response::Error(e) => Err(PeerError::Remote(e)),
            other => Err(PeerError::Unexpected(format!("{other:?} to Promote"))),
        }
    }

    /// Fetches the peer's health report.
    pub fn health(&mut self) -> Result<EngineHealth, PeerError> {
        match self.exchange(&Request::Health)? {
            Response::Health(h) => Ok(h),
            Response::Error(e) => Err(PeerError::Remote(e)),
            other => Err(PeerError::Unexpected(format!("{other:?} to Health"))),
        }
    }
}

/// Shipper tuning.
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// File holding the standby's address (one line). Re-read on every
    /// reconnect and idle poll, so a supervisor repoints replication by
    /// rewriting it atomically. An absent or empty file means "no
    /// standby yet" — the shipper idles.
    pub peer_file: PathBuf,
    /// How often to poll for new WAL when caught up, and how long to
    /// back off after a failure.
    pub poll_interval: Duration,
    /// Connect and per-read deadline for the replication channel.
    pub io_timeout: Duration,
}

impl Default for ShipperConfig {
    fn default() -> ShipperConfig {
        ShipperConfig {
            peer_file: PathBuf::from("standby.addr"),
            poll_interval: Duration::from_millis(20),
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// A running shipper thread. Stop it explicitly; dropping without
/// [`ShipperHandle::stop`] detaches the thread (it exits on its next
/// poll once the process tears the engine down).
pub struct ShipperHandle {
    stop: Arc<AtomicBool>,
    snapshots_shipped: Arc<AtomicU64>,
    batches_shipped: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl ShipperHandle {
    /// Signals the thread and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Snapshot bootstraps performed (observability for tests).
    pub fn snapshots_shipped(&self) -> u64 {
        self.snapshots_shipped.load(Ordering::Relaxed)
    }

    /// Non-empty frame batches acknowledged (observability for tests).
    pub fn batches_shipped(&self) -> u64 {
        self.batches_shipped.load(Ordering::Relaxed)
    }
}

/// Starts the WAL-shipping thread for `engine`. The thread idles while
/// the engine is not a primary (so it is safe to start on every node;
/// a promoted standby's shipper wakes up on its own) and exits when
/// the handle is stopped.
pub fn start_shipper(engine: Arc<Engine>, cfg: ShipperConfig) -> ShipperHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let snapshots = Arc::new(AtomicU64::new(0));
    let batches = Arc::new(AtomicU64::new(0));
    let t_stop = Arc::clone(&stop);
    let t_snapshots = Arc::clone(&snapshots);
    let t_batches = Arc::clone(&batches);
    let thread = thread::Builder::new()
        .name("mpq-shipper".to_string())
        .spawn(move || ship_loop(&engine, &cfg, &t_stop, &t_snapshots, &t_batches))
        .expect("spawn shipper thread");
    ShipperHandle {
        stop,
        snapshots_shipped: snapshots,
        batches_shipped: batches,
        thread: Some(thread),
    }
}

fn read_peer_file(cfg: &ShipperConfig) -> Option<String> {
    let text = std::fs::read_to_string(&cfg.peer_file).ok()?;
    let addr = text.trim();
    (!addr.is_empty()).then(|| addr.to_string())
}

fn ship_loop(
    engine: &Engine,
    cfg: &ShipperConfig,
    stop: &AtomicBool,
    snapshots: &AtomicU64,
    batches: &AtomicU64,
) {
    let faults = engine.fault_injector();
    while !stop.load(Ordering::SeqCst) {
        if engine.role() != ReplRole::Primary || faults.repl_stall_armed() {
            thread::sleep(cfg.poll_interval);
            continue;
        }
        let Some(addr) = read_peer_file(cfg) else {
            thread::sleep(cfg.poll_interval);
            continue;
        };
        let Ok(mut peer) = ReplPeer::connect(&addr, cfg.io_timeout) else {
            thread::sleep(cfg.poll_interval);
            continue;
        };
        let state = match peer.repl_state() {
            Ok(s) => s,
            Err(_) => {
                thread::sleep(cfg.poll_interval);
                continue;
            }
        };
        if state.epoch > engine.epoch() {
            // The "standby" has lived through a promotion we missed:
            // this node is the deposed side of a failover. Fence.
            engine.mark_fenced(engine.epoch(), state.epoch);
            thread::sleep(cfg.poll_interval);
            continue;
        }
        if state.role != ReplRole::Standby {
            // Not a standby (mis-pointed peer file, or the new primary
            // after a failover). Never ship into a primary.
            thread::sleep(cfg.poll_interval);
            continue;
        }
        ship_session(engine, cfg, stop, snapshots, batches, &mut peer, state.next_lsn);
    }
}

/// Ships over one connection until it fails, the peer file changes,
/// this node stops being primary, or the handle stops.
#[allow(clippy::too_many_arguments)]
fn ship_session(
    engine: &Engine,
    cfg: &ShipperConfig,
    stop: &AtomicBool,
    snapshots: &AtomicU64,
    batches: &AtomicU64,
    peer: &mut ReplPeer,
    mut standby_next: u64,
) {
    let faults = engine.fault_injector();
    let session_addr = read_peer_file(cfg);
    while !stop.load(Ordering::SeqCst) && engine.role() == ReplRole::Primary {
        if faults.repl_stall_armed() {
            thread::sleep(cfg.poll_interval);
            continue;
        }
        let from = standby_next.saturating_sub(1);
        let batch = match engine.replication_frames_after(from) {
            Ok(Some(b)) => b,
            Ok(None) => {
                // Coverage gap: the log no longer reaches back to the
                // standby's position. Bootstrap it from a snapshot and
                // resume incrementally after.
                let Ok((bytes, _last_lsn)) = engine.snapshot_for_replication() else {
                    return;
                };
                match peer.snapshot(bytes) {
                    Ok((next_lsn, peer_epoch)) => {
                        if peer_epoch > engine.epoch() {
                            engine.mark_fenced(engine.epoch(), peer_epoch);
                            return;
                        }
                        snapshots.fetch_add(1, Ordering::Relaxed);
                        // A snapshot carries everything up to its LSN:
                        // clear the byte lag wholesale (record lag
                        // clears through the acked LSN).
                        let stale_bytes =
                            engine.replication_status().lag_bytes.unwrap_or(0);
                        engine.replica_acked(next_lsn.saturating_sub(1), stale_bytes);
                        standby_next = next_lsn;
                        continue;
                    }
                    Err(e) => return fence_on_stale(engine, &e),
                }
            }
            Err(_) => return,
        };
        if batch.records == 0 {
            // Caught up. Idle one poll; bail out if the supervisor
            // repointed the peer file so the outer loop reconnects.
            thread::sleep(cfg.poll_interval);
            if read_peer_file(cfg) != session_addr {
                return;
            }
            continue;
        }
        if faults.take_repl_drop_stream() {
            // Fault: sever the stream mid-segment, after the standby
            // may have read part of the batch. At-least-once delivery
            // plus LSN dedup makes the retry safe.
            let _ = peer.stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let sends = if faults.take_repl_duplicate() { 2 } else { 1 };
        let batch_len = batch.bytes.len() as u64;
        let mut acked = None;
        for _ in 0..sends {
            match peer.append(engine.epoch(), batch.bytes.clone()) {
                Ok(ack) => acked = Some(ack),
                Err(e) => return fence_on_stale(engine, &e),
            }
        }
        if let Some((next_lsn, peer_epoch)) = acked {
            if peer_epoch > engine.epoch() {
                engine.mark_fenced(engine.epoch(), peer_epoch);
                return;
            }
            batches.fetch_add(1, Ordering::Relaxed);
            engine.replica_acked(next_lsn.saturating_sub(1), batch_len);
            standby_next = next_lsn;
        }
    }
}

/// On a `StaleEpoch` refusal from the peer, fence the local engine —
/// this node was deposed and must stop accepting writes. Other errors
/// just end the session (the outer loop reconnects).
fn fence_on_stale(engine: &Engine, e: &PeerError) {
    if let PeerError::Remote(ServerError::Engine(EngineError::StaleEpoch { sent, have })) = e
    {
        engine.mark_fenced(*sent, *have);
    }
}
