//! Server-push plumbing for standing subscriptions (DESIGN.md §14).
//!
//! The engine matches inserted rows against the durable subscription
//! catalog and hands each match to the server through its notify sink.
//! This module routes those [`MatchEvent`]s to the session that issued
//! the `SUBSCRIBE`, through a **bounded** per-session queue:
//!
//! * The sink side ([`SubRegistry::deliver`]) runs on the *writer's*
//!   connection thread, immediately after its INSERT was acked. It must
//!   never block — a slow subscriber cannot be allowed to stall the
//!   write path — so when a session's queue is full the event is
//!   dropped and counted.
//! * The drain side (the subscriber's own connection thread, on its
//!   25 ms idle tick and after each of its responses) pops
//!   notifications and writes them as `Notify` frames. Counted drops
//!   surface as a single [`Notification::Gap`] in stream position —
//!   strictly after every event that preceded the loss — so a lagging
//!   subscriber knows exactly that (and how much) it missed, and
//!   everything it *did* receive is in true insert order.
//!
//! Subscription ownership is session-scoped and in-memory: the
//! subscription itself is durable engine state and survives crashes,
//! but after its session dies (or after recovery) its matches have no
//! live queue and are dropped here until some session re-subscribes.

use crate::protocol::Notification;
use mpq_engine::{FaultInjector, MatchEvent};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Default bound on a session's pending-notification queue. Beyond
/// this, new matches are dropped and summarized by a gap marker.
pub const DEFAULT_NOTIFY_QUEUE_CAP: usize = 256;

/// A bounded per-session queue of pending push notifications.
#[derive(Debug)]
pub struct NotifyQueue {
    inner: Mutex<QueueInner>,
    cap: usize,
}

#[derive(Debug)]
struct QueueInner {
    queue: VecDeque<Notification>,
    /// Matches dropped since the last gap marker was enqueued (or
    /// popped). Positionally these losses happened *after* everything
    /// currently in `queue`.
    dropped: u64,
}

impl NotifyQueue {
    fn new(cap: usize) -> NotifyQueue {
        NotifyQueue {
            inner: Mutex::new(QueueInner { queue: VecDeque::new(), dropped: 0 }),
            cap: cap.max(1),
        }
    }

    /// Enqueues one match, never blocking: on overflow (or an armed
    /// `notify_overflow_pulse` fault, which force-drops exactly one
    /// event) the event is counted into the pending gap instead.
    fn push(&self, n: Notification, faults: &FaultInjector) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // A pending gap flushes as soon as there is room: it must stay
        // ordered before any later event.
        if g.dropped > 0 && g.queue.len() < self.cap {
            let gap = Notification::Gap { dropped: g.dropped };
            g.dropped = 0;
            g.queue.push_back(gap);
        }
        if faults.take_notify_overflow_pulse() || g.queue.len() >= self.cap {
            g.dropped += 1;
            return;
        }
        g.queue.push_back(n);
    }

    /// Pops the next notification, if any. An outstanding gap with an
    /// empty queue surfaces here — the consumer learns about the loss
    /// even if no further match ever arrives.
    pub fn pop(&self) -> Option<Notification> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(n) = g.queue.pop_front() {
            return Some(n);
        }
        if g.dropped > 0 {
            let gap = Notification::Gap { dropped: g.dropped };
            g.dropped = 0;
            return Some(gap);
        }
        None
    }
}

/// Routes subscription matches to the sessions that own them.
#[derive(Debug, Default)]
pub struct SubRegistry {
    /// subscription id → owning session id.
    owners: Mutex<HashMap<u64, u64>>,
    /// session id → that connection's pending-notification queue.
    queues: Mutex<HashMap<u64, Arc<NotifyQueue>>>,
}

impl SubRegistry {
    /// Creates a queue for a freshly handshaken session.
    pub fn register_session(&self, session_id: u64, cap: usize) -> Arc<NotifyQueue> {
        let q = Arc::new(NotifyQueue::new(cap));
        self.queues
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(session_id, Arc::clone(&q));
        q
    }

    /// Tears down a session: its queue goes away, and so does its claim
    /// on any subscriptions (which remain durable engine state — their
    /// future matches simply have no live consumer).
    pub fn drop_session(&self, session_id: u64) {
        self.queues.lock().unwrap_or_else(|e| e.into_inner()).remove(&session_id);
        self.owners
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|_, owner| *owner != session_id);
    }

    /// Records that `session_id` issued the `SUBSCRIBE` that created
    /// subscription `sub_id` — its matches push to that session.
    pub fn claim(&self, sub_id: u64, session_id: u64) {
        self.owners.lock().unwrap_or_else(|e| e.into_inner()).insert(sub_id, session_id);
    }

    /// Forgets a subscription's owner (after `UNSUBSCRIBE`, from any
    /// session).
    pub fn release(&self, sub_id: u64) {
        self.owners.lock().unwrap_or_else(|e| e.into_inner()).remove(&sub_id);
    }

    /// Sink entry point: files one engine match into its owner's queue.
    /// Unowned matches (recovered subscriptions, dead sessions) drop
    /// silently. Never blocks.
    pub fn deliver(&self, ev: MatchEvent, faults: &FaultInjector) {
        let owner = self
            .owners
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&ev.subscription)
            .copied();
        let Some(session_id) = owner else { return };
        let queue = self
            .queues
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session_id)
            .cloned();
        let Some(queue) = queue else { return };
        queue.push(
            Notification::Match {
                subscription: ev.subscription,
                table: ev.table,
                row_id: ev.row_id,
                row: ev.row,
                metrics: ev.metrics,
            },
            faults,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_engine::MatchMetrics;

    fn ev(sub: u64, row_id: u32) -> MatchEvent {
        MatchEvent {
            subscription: sub,
            table: "t".to_string(),
            row_id,
            row: vec![1, 2],
            metrics: MatchMetrics::default(),
        }
    }

    #[test]
    fn overflow_drops_new_events_and_surfaces_one_gap_in_order() {
        let faults = FaultInjector::default();
        let q = NotifyQueue::new(2);
        for i in 0..5 {
            q.push(
                Notification::Match {
                    subscription: 1,
                    table: "t".into(),
                    row_id: i,
                    row: vec![],
                    metrics: MatchMetrics::default(),
                },
                &faults,
            );
        }
        // Two queued, three dropped; the gap pops after the survivors.
        match q.pop().unwrap() {
            Notification::Match { row_id, .. } => assert_eq!(row_id, 0),
            g => panic!("{g:?}"),
        }
        match q.pop().unwrap() {
            Notification::Match { row_id, .. } => assert_eq!(row_id, 1),
            g => panic!("{g:?}"),
        }
        assert_eq!(q.pop(), Some(Notification::Gap { dropped: 3 }));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn gap_flushes_before_later_events_once_there_is_room() {
        let faults = FaultInjector::default();
        let q = NotifyQueue::new(3);
        for i in 0..5 {
            q.push(
                Notification::Match {
                    subscription: 1,
                    table: "t".into(),
                    row_id: i,
                    row: vec![],
                    metrics: MatchMetrics::default(),
                },
                &faults,
            );
        }
        // Drain the three survivors; rows 3 and 4 are the pending gap.
        for want in 0..3 {
            match q.pop().unwrap() {
                Notification::Match { row_id, .. } => assert_eq!(row_id, want),
                g => panic!("{g:?}"),
            }
        }
        // A later push finds room: the gap lands first, then the event.
        q.push(
            Notification::Match {
                subscription: 1,
                table: "t".into(),
                row_id: 9,
                row: vec![],
                metrics: MatchMetrics::default(),
            },
            &faults,
        );
        assert_eq!(q.pop(), Some(Notification::Gap { dropped: 2 }));
        match q.pop().unwrap() {
            Notification::Match { row_id, .. } => assert_eq!(row_id, 9),
            g => panic!("{g:?}"),
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_pulse_fault_drops_exactly_one_event() {
        let faults = FaultInjector::default();
        let reg = SubRegistry::default();
        let queue = reg.register_session(7, 16);
        reg.claim(5, 7);
        faults.set_notify_overflow_pulse(true);
        reg.deliver(ev(5, 0), &faults); // eaten by the one-shot pulse
        reg.deliver(ev(5, 1), &faults); // gap flushes first, then this
        assert_eq!(queue.pop(), Some(Notification::Gap { dropped: 1 }));
        match queue.pop().unwrap() {
            Notification::Match { row_id, .. } => assert_eq!(row_id, 1),
            g => panic!("{g:?}"),
        }
        assert_eq!(queue.pop(), None, "pulse is one-shot");
        assert!(!faults.notify_overflow_pulse_armed());
    }

    #[test]
    fn routing_respects_ownership_and_session_teardown() {
        let faults = FaultInjector::default();
        let reg = SubRegistry::default();
        let qa = reg.register_session(1, 8);
        let qb = reg.register_session(2, 8);
        reg.claim(10, 1);
        reg.claim(20, 2);
        reg.deliver(ev(10, 0), &faults);
        reg.deliver(ev(20, 1), &faults);
        reg.deliver(ev(99, 2), &faults); // unowned: dropped silently
        assert!(matches!(qa.pop(), Some(Notification::Match { subscription: 10, .. })));
        assert!(matches!(qb.pop(), Some(Notification::Match { subscription: 20, .. })));
        assert_eq!(qa.pop(), None);
        // Session 1 dies: its claim dissolves, later matches go nowhere.
        reg.drop_session(1);
        reg.deliver(ev(10, 3), &faults);
        assert_eq!(qa.pop(), None);
        // Unsubscribe releases ownership without touching the queue.
        reg.release(20);
        reg.deliver(ev(20, 4), &faults);
        assert_eq!(qb.pop(), None);
    }
}
