//! Greedy rectangle covering of cell sets.
//!
//! Used by the enumeration baseline (§3.2.2's "generic algorithm") and by
//! boundary-based clustering (§3.3), where a cluster is an explicit set of
//! grid cells and the envelope is a small set of hyper-rectangles covering
//! it. Exact covers in minimal rectangle count are NP-hard in general
//! (the paper cites Reckhow/Culberson and CLIQUE); a greedy grow-from-seed
//! heuristic is standard and produces exact covers (every emitted region
//! is a subset of the cell set).

use crate::region::{DimSet, Region};
use mpq_types::{Member, MemberSet, Row, Schema};
use std::collections::HashSet;

/// Covers `cells` exactly with hyper-rectangular regions: every returned
/// region contains only cells of the input set, and their union is the
/// whole set. Greedy: repeatedly seed at an uncovered cell and expand
/// each dimension in turn as far as the set allows.
pub fn cover_cells(schema: &Schema, cells: &[Vec<Member>]) -> Vec<Region> {
    let set: HashSet<&[Member]> = cells.iter().map(|c| c.as_slice()).collect();
    let mut covered: HashSet<&[Member]> = HashSet::with_capacity(cells.len());
    let mut out = Vec::new();
    // Deterministic order: seed cells in sorted order.
    let mut seeds: Vec<&[Member]> = set.iter().copied().collect();
    seeds.sort();
    for seed in seeds {
        if covered.contains(seed) {
            continue;
        }
        let region = grow(schema, seed, &set);
        for cell in region.cells() {
            if let Some(&c) = set.get(cell.as_slice()) {
                covered.insert(c);
            }
        }
        out.push(region);
    }
    out
}

/// Expands the single-cell region at `seed` dimension by dimension.
/// Ordered dimensions grow down then up one member at a time; unordered
/// dimensions try every absent member. A growth step is accepted only if
/// all newly included cells are in the set.
fn grow(schema: &Schema, seed: &Row, set: &HashSet<&[Member]>) -> Region {
    let mut region = Region::cell(schema, seed);
    for (d, attr) in schema.iter() {
        let d = d.index();
        let card = attr.domain.cardinality();
        if attr.domain.is_ordered() {
            let (mut lo, mut hi) = match region.dim(d) {
                DimSet::Range { lo, hi } => (*lo, *hi),
                DimSet::Set(_) => unreachable!("ordered dim uses Range"),
            };
            while lo > 0 && slice_in_set(&region, d, lo - 1, set) {
                lo -= 1;
                region = region.with_dim(d, DimSet::Range { lo, hi });
            }
            while hi + 1 < card && slice_in_set(&region, d, hi + 1, set) {
                hi += 1;
                region = region.with_dim(d, DimSet::Range { lo, hi });
            }
        } else {
            let current = match region.dim(d) {
                DimSet::Set(s) => s.clone(),
                DimSet::Range { .. } => unreachable!("categorical dim uses Set"),
            };
            let mut s = current;
            for m in 0..card {
                if !s.contains(m) && slice_in_set(&region, d, m, set) {
                    s.insert(m);
                    region = region.with_dim(d, DimSet::Set(s.clone()));
                }
            }
        }
    }
    region
}

/// Whether every cell of `region` with dimension `d` replaced by member
/// `m` belongs to the set.
fn slice_in_set(region: &Region, d: usize, m: Member, set: &HashSet<&[Member]>) -> bool {
    let slice = region.with_dim(
        d,
        if matches!(region.dim(d), DimSet::Range { .. }) {
            DimSet::Range { lo: m, hi: m }
        } else {
            DimSet::Set(MemberSet::of(
                match region.dim(d) {
                    DimSet::Set(s) => s.domain(),
                    DimSet::Range { .. } => unreachable!(),
                },
                [m],
            ))
        },
    );
    slice.cells().all(|c| set.contains(c.as_slice()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()), // 4
            Attribute::new("y", AttrDomain::binned(vec![1.0, 2.0]).unwrap()),      // 3
        ])
        .unwrap()
    }

    fn check_exact_cover(schema: &Schema, cells: &[Vec<u16>]) {
        let regions = cover_cells(schema, cells);
        let set: HashSet<&[u16]> = cells.iter().map(|c| c.as_slice()).collect();
        // Every region cell is in the set (exactness)...
        for r in &regions {
            for c in r.cells() {
                assert!(set.contains(c.as_slice()), "region includes foreign cell {c:?}");
            }
        }
        // ...and every set cell is covered (completeness).
        for c in cells {
            assert!(regions.iter().any(|r| r.contains(c)), "cell {c:?} uncovered");
        }
    }

    #[test]
    fn covers_a_rectangle_with_one_region() {
        let s = schema();
        let mut cells = Vec::new();
        for x in 1..=2u16 {
            for y in 0..=2u16 {
                cells.push(vec![x, y]);
            }
        }
        let regions = cover_cells(&s, &cells);
        assert_eq!(regions.len(), 1);
        check_exact_cover(&s, &cells);
    }

    #[test]
    fn covers_an_l_shape_with_two_regions() {
        let s = schema();
        // L-shape: column x=0 (all y) plus row y=0 (all x).
        let mut cells = Vec::new();
        for y in 0..3u16 {
            cells.push(vec![0, y]);
        }
        for x in 1..4u16 {
            cells.push(vec![x, 0]);
        }
        let regions = cover_cells(&s, &cells);
        check_exact_cover(&s, &cells);
        assert!(regions.len() <= 2, "greedy should cover an L with 2 rectangles, got {}", regions.len());
    }

    #[test]
    fn empty_input_yields_no_regions() {
        assert!(cover_cells(&schema(), &[]).is_empty());
    }

    #[test]
    fn single_cells_are_their_own_regions() {
        let s = schema();
        let cells = vec![vec![0u16, 0], vec![3, 2]];
        let regions = cover_cells(&s, &cells);
        assert_eq!(regions.len(), 2);
        check_exact_cover(&s, &cells);
    }

    #[test]
    fn categorical_dimensions_grow_arbitrary_subsets() {
        let s = Schema::new(vec![
            Attribute::new("c", AttrDomain::categorical(["a", "b", "c", "d"])),
            Attribute::new("y", AttrDomain::binned(vec![1.0]).unwrap()),
        ])
        .unwrap();
        // Members {0, 2} of c at both y values: one region with a set dim.
        let cells = vec![vec![0u16, 0], vec![0, 1], vec![2, 0], vec![2, 1]];
        let regions = cover_cells(&s, &cells);
        assert_eq!(regions.len(), 1, "non-contiguous categorical subset covers in one region");
        check_exact_cover(&s, &cells);
    }

    #[test]
    fn checkerboard_costs_many_regions_but_stays_exact() {
        let s = schema();
        let mut cells = Vec::new();
        for x in 0..4u16 {
            for y in 0..3u16 {
                if (x + y) % 2 == 0 {
                    cells.push(vec![x, y]);
                }
            }
        }
        check_exact_cover(&s, &cells);
    }
}
