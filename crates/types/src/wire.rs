//! A small length-checked binary wire format for durability.
//!
//! The engine's write-ahead log and snapshot files (see the engine
//! crate's `persist` module) serialize catalog state through this
//! module: primitive put/get pairs over a byte buffer, plus codecs for
//! the shared vocabulary types ([`Schema`], [`AttrDomain`]). Everything
//! read back is *validated* — a reader over corrupted bytes returns
//! [`WireError`], never panics and never produces an out-of-contract
//! value (domains are rebuilt through their checked constructors).
//!
//! The format is little-endian, length-prefixed and deliberately
//! version-tagged by the containing file's magic header rather than per
//! value; it is a private on-disk format, not an interchange one.

use crate::attribute::{AttrDomain, Attribute, Schema};

/// Errors raised while decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// Bytes decoded but the value failed validation.
    Invalid {
        /// Explanation.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { at } => write!(f, "wire input truncated at byte {at}"),
            WireError::Invalid { detail } => write!(f, "invalid wire value: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends primitive values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed `u16` slice.
    pub fn put_u16s(&mut self, vs: &[u16]) {
        self.put_u32(vs.len() as u32);
        for &v in vs {
            self.put_u16(v);
        }
    }
}

/// Reads primitive values back out of a byte slice, with bounds checks.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { at: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; any byte other than 0/1 is invalid.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Invalid { detail: format!("bool byte {other}") }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated { at: self.pos });
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Invalid { detail: "string is not UTF-8".into() })
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::Truncated { at: self.pos });
        }
        self.take(n)
    }

    /// Reads a length-prefixed `u16` vector.
    pub fn get_u16s(&mut self) -> Result<Vec<u16>, WireError> {
        let n = self.get_u32()? as usize;
        // Bound the allocation by what the buffer could actually hold.
        if n > self.remaining() / 2 {
            return Err(WireError::Truncated { at: self.pos });
        }
        (0..n).map(|_| self.get_u16()).collect()
    }
}

// ---------------------------------------------------------------------
// Vocabulary codecs
// ---------------------------------------------------------------------

const DOMAIN_CATEGORICAL: u8 = 0;
const DOMAIN_BINNED: u8 = 1;

/// Encodes an attribute domain.
pub fn put_domain(w: &mut WireWriter, d: &AttrDomain) {
    match d {
        AttrDomain::Categorical { members } => {
            w.put_u8(DOMAIN_CATEGORICAL);
            w.put_u32(members.len() as u32);
            for m in members {
                w.put_str(m);
            }
        }
        AttrDomain::Binned { cuts } => {
            w.put_u8(DOMAIN_BINNED);
            w.put_u32(cuts.len() as u32);
            for &c in cuts {
                w.put_f64(c);
            }
        }
    }
}

/// Decodes an attribute domain, revalidating through the checked
/// constructors.
pub fn get_domain(r: &mut WireReader<'_>) -> Result<AttrDomain, WireError> {
    match r.get_u8()? {
        DOMAIN_CATEGORICAL => {
            let n = r.get_u32()? as usize;
            if n > r.remaining() {
                return Err(WireError::Truncated { at: r.position() });
            }
            let members: Vec<String> =
                (0..n).map(|_| r.get_str()).collect::<Result<_, _>>()?;
            if members.is_empty() {
                return Err(WireError::Invalid { detail: "categorical domain with no members".into() });
            }
            Ok(AttrDomain::categorical(members))
        }
        DOMAIN_BINNED => {
            let n = r.get_u32()? as usize;
            if n > r.remaining() / 8 {
                return Err(WireError::Truncated { at: r.position() });
            }
            let cuts: Vec<f64> = (0..n).map(|_| r.get_f64()).collect::<Result<_, _>>()?;
            AttrDomain::binned(cuts).map_err(|e| WireError::Invalid { detail: e.to_string() })
        }
        other => Err(WireError::Invalid { detail: format!("unknown domain tag {other}") }),
    }
}

/// Encodes a schema (attribute names + domains, in order).
pub fn put_schema(w: &mut WireWriter, s: &Schema) {
    w.put_u16(s.len() as u16);
    for (_, attr) in s.iter() {
        w.put_str(&attr.name);
        put_domain(w, &attr.domain);
    }
}

/// Decodes a schema, revalidating through [`Schema::new`].
pub fn get_schema(r: &mut WireReader<'_>) -> Result<Schema, WireError> {
    let n = r.get_u16()? as usize;
    let mut attrs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = r.get_str()?;
        let domain = get_domain(r)?;
        attrs.push(Attribute::new(name, domain));
    }
    Schema::new(attrs).map_err(|e| WireError::Invalid { detail: e.to_string() })
}

// ---------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32` flavour) of `bytes`.
/// Used by the engine's WAL records and snapshot files to detect
/// torn/corrupt writes.
pub fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    // const-evaluated at compile time: no per-call table cost.
    const TABLE: [u32; 256] = {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u16(65535);
        w.put_u32(123_456);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-2.5e300);
        w.put_bool(true);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        w.put_u16s(&[10, 20, 30]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65535);
        assert_eq!(r.get_u32().unwrap(), 123_456);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), -2.5e300);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_u16s().unwrap(), vec![10, 20, 30]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.put_str("abcdef");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(r.get_str().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_lengths_do_not_overallocate() {
        // A length prefix claiming 4 GiB over a 6-byte buffer.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 1, 2];
        assert!(WireReader::new(&bytes).get_bytes().is_err());
        assert!(WireReader::new(&bytes).get_str().is_err());
        assert!(WireReader::new(&bytes).get_u16s().is_err());
    }

    #[test]
    fn bad_bool_and_tag_are_invalid() {
        assert!(matches!(
            WireReader::new(&[9]).get_bool(),
            Err(WireError::Invalid { .. })
        ));
        assert!(matches!(
            get_domain(&mut WireReader::new(&[7])),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn schema_roundtrips() {
        let s = Schema::new(vec![
            Attribute::new("age", AttrDomain::binned(vec![30.0, 63.0]).unwrap()),
            Attribute::new("color", AttrDomain::categorical(["red", "green"])),
            Attribute::new("free", AttrDomain::binned(vec![]).unwrap()),
        ])
        .unwrap();
        let mut w = WireWriter::new();
        put_schema(&mut w, &s);
        let bytes = w.into_bytes();
        let back = get_schema(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(back, s);
        // Every strict prefix fails cleanly.
        for cut in 0..bytes.len() {
            assert!(get_schema(&mut WireReader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
