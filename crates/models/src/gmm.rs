//! Model-based clustering: diagonal-covariance Gaussian mixtures fitted
//! with EM (paper §3.3, after McLachlan & Basford).
//!
//! Each cluster `k` carries a mixing weight `τ_k` and per-dimension
//! Gaussian parameters; because the covariance is diagonal, the log
//! posterior score decomposes per dimension — the same additive shape as
//! Eq. 2 — so `mpq-core` derives envelopes for it with the naive-Bayes
//! machinery, bounding each quadratic per-dimension term over each bin.

use crate::kmeans::{embed, KMeans, KMeansParams};
use crate::Classifier;
use mpq_types::{ClassId, Dataset, Row, Schema, TypesError};

const LOG_2PI: f64 = 1.8378770664093453; // ln(2π)

/// Training hyperparameters for [`Gmm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmParams {
    /// Number of mixture components `K`.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the mean log-likelihood improves less than this.
    pub tol: f64,
    /// RNG seed (used by the k-means initialization).
    pub seed: u64,
    /// Variance floor preventing components from collapsing onto a point.
    pub min_var: f64,
}

impl Default for GmmParams {
    fn default() -> Self {
        GmmParams { k: 5, max_iters: 60, tol: 1e-6, seed: 7, min_var: 1e-4 }
    }
}

/// A trained diagonal-covariance Gaussian mixture model.
#[derive(Debug, Clone, PartialEq)]
pub struct Gmm {
    schema: Schema,
    cluster_names: Vec<String>,
    /// `log τ_k`.
    log_tau: Vec<f64>,
    /// `means[k][d]`.
    means: Vec<Vec<f64>>,
    /// `vars[k][d]` (diagonal covariance entries).
    vars: Vec<Vec<f64>>,
}

impl Gmm {
    /// Fits a GMM to an encoded dataset (all attributes must be ordered).
    pub fn train_encoded(data: &Dataset, params: GmmParams) -> Result<Self, TypesError> {
        let schema = data.schema().clone();
        if schema.attrs().iter().any(|a| !a.domain.is_ordered()) {
            return Err(TypesError::TypeMismatch { expected: "all-ordered schema for clustering" });
        }
        let points: Vec<Vec<f64>> = data.rows().map(|r| embed(&schema, r)).collect();
        Self::train_raw(schema, &points, params)
    }

    /// Fits a GMM to raw points with EM, initialized from k-means.
    pub fn train_raw(schema: Schema, points: &[Vec<f64>], params: GmmParams) -> Result<Self, TypesError> {
        let n = schema.len();
        if points.is_empty() || params.k == 0 {
            return Err(TypesError::ArityMismatch { expected: 1, got: 0 });
        }
        let km = KMeans::train_raw(
            schema.clone(),
            points,
            KMeansParams { k: params.k, max_iters: 25, seed: params.seed, normalize_weights: false },
        )?;
        let k = km.n_classes();
        let mut means: Vec<Vec<f64>> = km.centroids().to_vec();
        let mut vars = vec![vec![1.0f64; n]; k];
        let mut log_tau = vec![(1.0 / k as f64).ln(); k];

        // Initialize variances from the k-means partition.
        {
            let mut counts = vec![0usize; k];
            let mut ss = vec![vec![0.0f64; n]; k];
            for p in points {
                let a = km.assign_raw(p).index();
                counts[a] += 1;
                for d in 0..n {
                    ss[a][d] += (p[d] - means[a][d]).powi(2);
                }
            }
            for c in 0..k {
                for d in 0..n {
                    vars[c][d] = (ss[c][d] / counts[c].max(1) as f64).max(params.min_var);
                }
            }
        }

        let mut resp = vec![0.0f64; points.len() * k];
        let mut prev_ll = f64::NEG_INFINITY;
        for _ in 0..params.max_iters {
            // E step.
            let mut ll = 0.0;
            for (i, p) in points.iter().enumerate() {
                let row = &mut resp[i * k..(i + 1) * k];
                for (c, r) in row.iter_mut().enumerate() {
                    *r = log_tau[c] + log_gauss(p, &means[c], &vars[c]);
                }
                let m = row.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
                let z: f64 = row.iter().map(|&r| (r - m).exp()).sum();
                ll += m + z.ln();
                for r in row.iter_mut() {
                    *r = (*r - m).exp() / z;
                }
            }
            ll /= points.len() as f64;
            // M step.
            for c in 0..k {
                let nk: f64 = (0..points.len()).map(|i| resp[i * k + c]).sum();
                let nk = nk.max(1e-12);
                log_tau[c] = (nk / points.len() as f64).max(1e-12).ln();
                for d in 0..n {
                    let mu = (0..points.len()).map(|i| resp[i * k + c] * points[i][d]).sum::<f64>() / nk;
                    means[c][d] = mu;
                }
                for d in 0..n {
                    let v = (0..points.len())
                        .map(|i| resp[i * k + c] * (points[i][d] - means[c][d]).powi(2))
                        .sum::<f64>()
                        / nk;
                    vars[c][d] = v.max(params.min_var);
                }
            }
            if (ll - prev_ll).abs() < params.tol {
                break;
            }
            prev_ll = ll;
        }

        let cluster_names = (0..k).map(|i| format!("cluster_{i}")).collect();
        Ok(Gmm { schema, cluster_names, log_tau, means, vars })
    }

    /// Builds a GMM from explicit parameters.
    pub fn from_parts(
        schema: Schema,
        taus: Vec<f64>,
        means: Vec<Vec<f64>>,
        vars: Vec<Vec<f64>>,
    ) -> Result<Self, TypesError> {
        let (k, n) = (taus.len(), schema.len());
        if k == 0 || means.len() != k || vars.len() != k {
            return Err(TypesError::ArityMismatch { expected: k, got: means.len() });
        }
        if means.iter().chain(vars.iter()).any(|v| v.len() != n) {
            return Err(TypesError::ArityMismatch { expected: n, got: 0 });
        }
        if taus.iter().any(|&t| t.is_nan() || t <= 0.0)
            || vars.iter().flatten().any(|&v| v.is_nan() || v <= 0.0)
        {
            return Err(TypesError::BadCuts { detail: "taus and variances must be positive".into() });
        }
        let cluster_names = (0..k).map(|i| format!("cluster_{i}")).collect();
        Ok(Gmm { schema, cluster_names, log_tau: taus.iter().map(|t| t.ln()).collect(), means, vars })
    }

    /// `log τ_k` of component `k`.
    pub fn log_tau(&self, k: ClassId) -> f64 {
        self.log_tau[k.index()]
    }

    /// Component means, `[k][d]`.
    pub fn means(&self) -> &[Vec<f64>] {
        &self.means
    }

    /// Component variances, `[k][d]`.
    pub fn vars(&self) -> &[Vec<f64>] {
        &self.vars
    }

    /// The additive log score `log τ_k + log f_k(x)` whose argmax is the
    /// cluster assignment.
    pub fn score_raw(&self, x: &[f64], k: ClassId) -> f64 {
        self.log_tau[k.index()] + log_gauss(x, &self.means[k.index()], &self.vars[k.index()])
    }

    /// The additive log-density contribution of dimension `d` at
    /// coordinate `x` to component `k`'s score. `log f_k` is exactly the
    /// dimension-order sum of these terms, which is what lets
    /// proxy-score compilation tabulate per-member contributions that
    /// reproduce the scorer bit-for-bit.
    pub fn dim_score(&self, k: ClassId, d: usize, x: f64) -> f64 {
        gauss_term(x, self.means[k.index()][d], self.vars[k.index()][d])
    }

    /// Assigns a raw point to the maximum-posterior component.
    pub fn assign_raw(&self, x: &[f64]) -> ClassId {
        let mut best = ClassId(0);
        let mut best_s = self.score_raw(x, best);
        for c in 1..self.log_tau.len() {
            let k = ClassId(c as u16);
            let s = self.score_raw(x, k);
            if s > best_s {
                best = k;
                best_s = s;
            }
        }
        best
    }
}

fn gauss_term(x: f64, mean: f64, var: f64) -> f64 {
    -0.5 * (LOG_2PI + var.ln()) - (x - mean).powi(2) / (2.0 * var)
}

fn log_gauss(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut s = 0.0;
    for d in 0..x.len() {
        s += gauss_term(x[d], mean[d], var[d]);
    }
    s
}

impl Classifier for Gmm {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn n_classes(&self) -> usize {
        self.log_tau.len()
    }

    fn class_name(&self, c: ClassId) -> &str {
        &self.cluster_names[c.index()]
    }

    fn predict(&self, row: &Row) -> ClassId {
        self.assign_raw(&embed(&self.schema, row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute};

    fn schema2d() -> Schema {
        Schema::new(vec![
            Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0, 6.0, 8.0]).unwrap()),
            Attribute::new("y", AttrDomain::binned(vec![2.0, 4.0, 6.0, 8.0]).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn em_separates_two_gaussians() {
        let mut points = Vec::new();
        for i in 0..50 {
            let j = (i % 7) as f64 * 0.15;
            points.push(vec![1.0 + j, 1.5 - j]);
            points.push(vec![8.5 - j, 8.0 + j]);
        }
        let gmm = Gmm::train_raw(schema2d(), &points, GmmParams { k: 2, ..Default::default() }).unwrap();
        let a = gmm.assign_raw(&[1.2, 1.2]);
        let b = gmm.assign_raw(&[8.3, 8.3]);
        assert_ne!(a, b);
        // Mixing weights near 1/2 each.
        let t0 = gmm.log_tau(ClassId(0)).exp();
        assert!((t0 - 0.5).abs() < 0.15, "tau0 = {t0}");
    }

    #[test]
    fn score_decomposes_per_dimension() {
        let gmm = Gmm::from_parts(
            schema2d(),
            vec![0.5, 0.5],
            vec![vec![0.0, 0.0], vec![5.0, 5.0]],
            vec![vec![1.0, 4.0], vec![1.0, 1.0]],
        )
        .unwrap();
        let expected = 0.5f64.ln()
            + (-0.5 * (LOG_2PI + 0.0) - 1.0 / 2.0)
            + (-0.5 * (LOG_2PI + 4.0f64.ln()) - 4.0 / 8.0);
        let got = gmm.score_raw(&[1.0, 2.0], ClassId(0));
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn higher_tau_wins_at_the_midpoint() {
        let gmm = Gmm::from_parts(
            schema2d(),
            vec![0.9, 0.1],
            vec![vec![0.0, 0.0], vec![4.0, 0.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        )
        .unwrap();
        // Equidistant from both means; the heavier component wins.
        assert_eq!(gmm.assign_raw(&[2.0, 0.0]), ClassId(0));
    }

    #[test]
    fn variance_floor_is_enforced() {
        // All points identical: without a floor, variance would collapse.
        let points = vec![vec![3.0, 3.0]; 20];
        let gmm = Gmm::train_raw(schema2d(), &points, GmmParams { k: 2, ..Default::default() }).unwrap();
        for v in gmm.vars().iter().flatten() {
            assert!(*v >= 1e-4);
        }
        assert!(gmm.score_raw(&[3.0, 3.0], ClassId(0)).is_finite());
    }

    #[test]
    fn from_parts_validates() {
        assert!(Gmm::from_parts(schema2d(), vec![], vec![], vec![]).is_err());
        assert!(Gmm::from_parts(
            schema2d(),
            vec![0.5, 0.5],
            vec![vec![0.0, 0.0], vec![1.0, 1.0]],
            vec![vec![1.0, 0.0], vec![1.0, 1.0]], // zero variance
        )
        .is_err());
    }

    #[test]
    fn encoded_prediction_matches_representative_assignment() {
        let gmm = Gmm::from_parts(
            schema2d(),
            vec![0.5, 0.5],
            vec![vec![1.0, 1.0], vec![9.0, 9.0]],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        )
        .unwrap();
        assert_eq!(gmm.predict(&[0, 0]), ClassId(0));
        assert_eq!(gmm.predict(&[4, 4]), ClassId(1));
    }
}
