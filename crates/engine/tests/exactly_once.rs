//! Exactly-once integration tests: a stamped statement retried by a
//! client — because the response was lost to a dropped connection, or
//! because the server crashed between the WAL append and the reply —
//! must apply its mutation exactly once, and the retry must receive the
//! original outcome. Also covers the disk-full / fsync-failure faults:
//! the engine degrades to read-only with typed errors, never a poisoned
//! lock or a double-applied write.

use mpq_engine::{
    Engine, EngineError, FaultInjector, SessionState, StatementId, StatementOutcome, Table,
};
use mpq_types::{AttrDomain, Attribute, Dataset, Schema};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "mpq-once-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn demo_table(name: &str) -> Table {
    let schema = Schema::new(vec![
        Attribute::new("x", AttrDomain::binned(vec![2.0, 4.0]).unwrap()),
        Attribute::new("grade", AttrDomain::categorical(["lo", "hi"])),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for i in 0..12u16 {
        ds.push_encoded(&[i % 3, u16::from(i % 3 == 2)]).unwrap();
    }
    Table::from_dataset(name, &ds)
}

fn rows_in(e: &Engine) -> usize {
    e.catalog().table(0).table.n_rows()
}

const INSERT: &str = "INSERT INTO t VALUES (1, 'lo'), (5, 'hi')";

fn id(seq: u64) -> StatementId {
    StatementId { nonce: 0xdead_beef, seq }
}

#[test]
fn retried_stamped_insert_applies_exactly_once() {
    let dir = temp_dir("live");
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    let before = rows_in(&e);
    let mut s = SessionState::new();

    let first = e.execute_sql_stamped(INSERT, &mut s, id(0)).unwrap();
    assert!(matches!(
        &first,
        StatementOutcome::Inserted { table, rows_inserted: 2, .. } if table == "t"
    ));
    assert_eq!(rows_in(&e), before + 2);

    // The client never saw the response and retries blindly — twice.
    for _ in 0..2 {
        let retry = e.execute_sql_stamped(INSERT, &mut s, id(0)).unwrap();
        assert_eq!(retry, first, "replay hands back the original outcome");
        assert_eq!(rows_in(&e), before + 2, "retry must not re-apply");
    }

    // A fresh id is a fresh statement, not a replay.
    e.execute_sql_stamped(INSERT, &mut s, id(1)).unwrap();
    assert_eq!(rows_in(&e), before + 4);
}

#[test]
fn retry_after_crash_is_deduplicated_by_wal_replay() {
    let dir = temp_dir("crash");
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    let mut s = SessionState::new();
    e.execute_sql_stamped(INSERT, &mut s, id(0)).unwrap();
    let applied = rows_in(&e);
    // The response is lost: the server dies before the client reads it.
    e.simulate_crash();

    let e = Engine::open(&dir).unwrap();
    assert_eq!(rows_in(&e), applied, "replay restored the write");
    let mut s = SessionState::new();
    let retry = e.execute_sql_stamped(INSERT, &mut s, id(0)).unwrap();
    assert!(matches!(
        retry,
        StatementOutcome::Inserted { rows_inserted: 2, .. }
    ));
    assert_eq!(rows_in(&e), applied, "recovered dedup state blocks the re-apply");
}

/// The acceptance-criterion crash window: the WAL append succeeded (the
/// frame is fully on disk) but the statement still *failed* from the
/// engine's point of view because fsync reported an error — exactly the
/// ambiguity of a crash between append and response. After restart the
/// record replays, and the client's retry must be recognised as a
/// duplicate, not applied a second time.
#[test]
fn crash_between_wal_append_and_response_still_dedups() {
    let dir = temp_dir("window");
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    let before = rows_in(&e);
    let mut s = SessionState::new();

    e.fault_injector().set_wal_fsync_fail(true);
    let err = e.execute_sql_stamped(INSERT, &mut s, id(0)).unwrap_err();
    assert!(matches!(err, EngineError::Io { .. }), "got {err:?}");
    assert_eq!(rows_in(&e), before, "in-memory state is untouched");
    e.simulate_crash();

    let e = Engine::open(&dir).unwrap();
    // The frame reached the file before the injected fsync failure, so
    // recovery legitimately replays it: the write *did* happen.
    assert_eq!(rows_in(&e), before + 2);
    let mut s = SessionState::new();
    let retry = e.execute_sql_stamped(INSERT, &mut s, id(0)).unwrap();
    assert!(matches!(
        retry,
        StatementOutcome::Inserted { rows_inserted: 2, .. }
    ));
    assert_eq!(rows_in(&e), before + 2, "retry after the crash window applies nothing");
}

#[test]
fn dedup_state_survives_checkpoint_and_recovery() {
    let dir = temp_dir("ckpt");
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    let mut s = SessionState::new();
    e.execute_sql_stamped(INSERT, &mut s, id(0)).unwrap();
    let applied = rows_in(&e);
    // The checkpoint absorbs the WAL: dedup state must ride the snapshot.
    e.checkpoint().unwrap();
    e.simulate_crash();

    let e = Engine::open(&dir).unwrap();
    assert_eq!(e.recovery_report().unwrap().wal_records_replayed, 0);
    let mut s = SessionState::new();
    let retry = e.execute_sql_stamped(INSERT, &mut s, id(0)).unwrap();
    assert!(matches!(
        retry,
        StatementOutcome::Inserted { rows_inserted: 2, .. }
    ));
    assert_eq!(rows_in(&e), applied, "snapshot-loaded dedup blocks the re-apply");
}

#[test]
fn retried_create_model_is_a_replay_not_a_name_conflict() {
    let dir = temp_dir("ddl");
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    let mut s = SessionState::new();
    const DDL: &str = "CREATE MINING MODEL m ON t PREDICT grade USING decision_tree";

    let first = e.execute_sql_stamped(DDL, &mut s, id(0)).unwrap();
    let StatementOutcome::ModelCreated { name, n_classes, .. } = &first else {
        panic!("expected ModelCreated, got {first:?}");
    };
    assert_eq!((name.as_str(), *n_classes), ("m", 2));

    // Without the stamp a retry would be EngineError::Duplicate; the
    // stamp turns it into a replay of the original outcome.
    let retry = e.execute_sql_stamped(DDL, &mut s, id(0)).unwrap();
    assert_eq!(retry, first);
    assert_eq!(e.catalog().n_models(), 1);

    // And the same holds across a crash: the stamped DDL record replays.
    e.simulate_crash();
    let e = Engine::open(&dir).unwrap();
    let mut s = SessionState::new();
    let retry = e.execute_sql_stamped(DDL, &mut s, id(0)).unwrap();
    assert!(matches!(retry, StatementOutcome::ModelCreated { .. }));
    assert_eq!(e.catalog().n_models(), 1);
}

/// A retry that arrives after its outcome was evicted from the bounded
/// dedup cache must fail loudly rather than silently re-apply. (The
/// per-session window defaults to 256 outcomes; a client would have to
/// fall 256+ acknowledged statements behind its own retry for this to
/// trigger.)
#[test]
fn evicted_stamp_refuses_to_reapply() {
    let dir = temp_dir("evict");
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    let mut s = SessionState::new();
    e.execute_sql_stamped("INSERT INTO t VALUES (0, 'lo')", &mut s, id(0)).unwrap();
    let per_session = 256;
    for seq in 1..=per_session {
        e.execute_sql_stamped("INSERT INTO t VALUES (0, 'lo')", &mut s, id(seq)).unwrap();
    }
    let rows = rows_in(&e);

    let err = e
        .execute_sql_stamped("INSERT INTO t VALUES (0, 'lo')", &mut s, id(0))
        .unwrap_err();
    match err {
        EngineError::Internal { detail } => {
            assert!(detail.contains("evicted"), "detail: {detail}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(rows_in(&e), rows, "an evicted retry must never re-apply");
}

/// Satellite: injected ENOSPC on the WAL path. The insert fails with a
/// typed I/O error, nothing is half-applied, the engine stays fully
/// queryable, and once space "frees up" (the fault is disarmed) writes
/// succeed again — the writer was never poisoned.
#[test]
fn enospc_degrades_to_read_only_then_recovers() {
    let dir = temp_dir("enospc");
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    let before = rows_in(&e);
    let mut s = SessionState::new();

    e.fault_injector().set_wal_enospc(true);
    for seq in 0..3 {
        let err = e.execute_sql_stamped(INSERT, &mut s, id(seq)).unwrap_err();
        match err {
            EngineError::Io { detail } => assert!(detail.contains("ENOSPC"), "{detail}"),
            other => panic!("expected Io, got {other:?}"),
        }
    }
    assert_eq!(rows_in(&e), before, "failed appends must not mutate memory");
    // Read-only degraded, not poisoned: queries keep working.
    e.query("SELECT COUNT(*) FROM t WHERE x <= 2").expect("reads survive ENOSPC");

    // Space freed: the same writer accepts the retried statement. The
    // failed attempts recorded nothing, so the stamp is still `New`.
    e.fault_injector().set_wal_enospc(false);
    let out = e.execute_sql_stamped(INSERT, &mut s, id(0)).unwrap();
    assert!(matches!(out, StatementOutcome::Inserted { rows_inserted: 2, .. }));
    assert_eq!(rows_in(&e), before + 2);

    // And the post-ENOSPC write is durable like any other.
    e.simulate_crash();
    let e = Engine::open(&dir).unwrap();
    assert_eq!(rows_in(&e), before + 2);
}

/// Satellite: after an fsync failure the WAL writer is dead — every
/// further mutation fails typed — but reads never degrade and the
/// process restart (the only safe way out) recovers a consistent state.
#[test]
fn fsync_failure_is_read_only_degraded_not_poisoned() {
    let dir = temp_dir("fsync");
    let e = Engine::open(&dir).unwrap();
    e.create_table(demo_table("t")).unwrap();
    let before = rows_in(&e);

    e.fault_injector().set_wal_fsync_fail(true);
    assert!(matches!(e.insert_rows("t", vec![vec![0, 0]]), Err(EngineError::Io { .. })));
    // One-shot fault consumed, but the writer stays dead on purpose.
    assert!(matches!(e.insert_rows("t", vec![vec![0, 0]]), Err(EngineError::Io { .. })));
    assert_eq!(rows_in(&e), before);
    for _ in 0..3 {
        e.query("SELECT * FROM t WHERE x <= 2").expect("reads survive a dead writer");
    }
    let health = e.health();
    assert_eq!(health.tables, 1, "health introspection still works degraded");

    e.simulate_crash();
    let faults = Arc::new(FaultInjector::new());
    let e = Engine::open_with_faults(&dir, faults).unwrap();
    // The first failed append's frame reached the file; only it replays
    // (the second was refused by the dead writer before any byte).
    assert_eq!(rows_in(&e), before + 1);
    e.insert_rows("t", vec![vec![1, 1]]).expect("restart fully heals the writer");
}
