//! Predicate expressions, including mining predicates.
//!
//! Ordinary atoms live in *member space* (encoded values); mining
//! predicates reference catalog models and come in the four §4.1 shapes:
//! `PREDICT(M) = c`, `PREDICT(M) IN (...)`, `PREDICT(M1) = PREDICT(M2)`
//! and `PREDICT(M) = column`. The optimizer rewrites mining predicates by
//! ANDing in their upper envelopes; the executor evaluates whatever
//! mining predicates remain by invoking the model (black-box), counting
//! each invocation.

use mpq_types::{AttrId, ClassId, Member, MemberSet, Row, Schema};

/// Identifier of a mining model in the catalog.
pub type ModelId = usize;

/// Comparison of one column against constants, in member space.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomPred {
    /// `col = m`.
    Eq(Member),
    /// `lo <= col <= hi` (member order; meaningful on ordered domains).
    Range {
        /// Lowest matching member.
        lo: Member,
        /// Highest matching member.
        hi: Member,
    },
    /// `col IN (...)`.
    In(MemberSet),
}

impl AtomPred {
    /// Whether member `m` satisfies the predicate.
    #[inline]
    pub fn matches(&self, m: Member) -> bool {
        match self {
            AtomPred::Eq(v) => m == *v,
            AtomPred::Range { lo, hi } => *lo <= m && m <= *hi,
            AtomPred::In(s) => s.contains(m),
        }
    }

    /// The exact set of matching members over a domain of `card`
    /// members — the bitset form the vectorized executor tests
    /// column-at-a-time. Out-of-domain bounds clamp to the domain, so
    /// the set agrees with [`AtomPred::matches`] on every storable
    /// member.
    pub fn member_set(&self, card: u16) -> MemberSet {
        match self {
            AtomPred::Eq(v) => {
                if *v < card {
                    MemberSet::of(card, [*v])
                } else {
                    MemberSet::empty(card)
                }
            }
            AtomPred::Range { lo, hi } => {
                if card == 0 || *lo > *hi || *lo >= card {
                    MemberSet::empty(card)
                } else {
                    MemberSet::range(card, *lo, (*hi).min(card - 1))
                }
            }
            AtomPred::In(s) => s.clone(),
        }
    }
}

/// A column atom.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Column tested.
    pub attr: AttrId,
    /// The member-space predicate.
    pub pred: AtomPred,
}

/// The mining predicates of §4.1.
#[derive(Debug, Clone, PartialEq)]
pub enum MiningPred {
    /// `PREDICT(model) = class`.
    ClassEq {
        /// The model.
        model: ModelId,
        /// The class label.
        class: ClassId,
    },
    /// `PREDICT(model) IN (classes)`.
    ClassIn {
        /// The model.
        model: ModelId,
        /// Matching class labels.
        classes: Vec<ClassId>,
    },
    /// `PREDICT(m1) = PREDICT(m2)` — two models concur.
    ModelsAgree {
        /// First model.
        m1: ModelId,
        /// Second model.
        m2: ModelId,
    },
    /// `PREDICT(model) = column` — prediction matches a data column
    /// (cross-validation-style queries).
    ClassEqColumn {
        /// The model.
        model: ModelId,
        /// The data column compared against.
        column: AttrId,
    },
}

impl MiningPred {
    /// Models referenced by this predicate.
    pub fn models(&self) -> Vec<ModelId> {
        match self {
            MiningPred::ClassEq { model, .. }
            | MiningPred::ClassIn { model, .. }
            | MiningPred::ClassEqColumn { model, .. } => vec![*model],
            MiningPred::ModelsAgree { m1, m2 } => vec![*m1, *m2],
        }
    }
}

/// A boolean predicate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Constant truth value.
    Const(bool),
    /// A column atom.
    Atom(Atom),
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// A mining predicate.
    Mining(MiningPred),
}

/// How the executor resolves model predictions while evaluating an
/// expression. Implemented by the catalog.
pub trait ModelOracle {
    /// Predicts the class of `row` under `model`, counting an invocation.
    fn predict(&self, model: ModelId, row: &Row) -> ClassId;
    /// Maps member `m` of `column` to the model's class with the same
    /// label, if any (for `PREDICT(M) = column`).
    fn class_for_member(&self, model: ModelId, column: AttrId, m: Member) -> Option<ClassId>;
    /// Evaluates `predict(model, row) ∈ accept`. The default scores the
    /// row; oracles with a sound proxy cascade may answer set membership
    /// without invoking the scorer when the proxy's argmax is unique
    /// (see `ProxyScore`), which is why every mining predicate routes
    /// through this set form instead of comparing `predict` directly.
    fn predict_in(&self, model: ModelId, row: &Row, accept: &[ClassId]) -> bool {
        accept.contains(&self.predict(model, row))
    }
}

impl Expr {
    /// Builds a conjunction, flattening trivial cases.
    pub fn and(mut parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => Expr::Const(true),
            1 => parts.pop().expect("len checked"),
            _ => Expr::And(parts),
        }
    }

    /// Builds a disjunction, flattening trivial cases.
    pub fn or(mut parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => Expr::Const(false),
            1 => parts.pop().expect("len checked"),
            _ => Expr::Or(parts),
        }
    }

    /// Evaluates the expression on an encoded row. `invocations` counts
    /// black-box model applications (the metric the paper's baseline
    /// "extract and mine" pays per row).
    pub fn eval(&self, row: &Row, oracle: &impl ModelOracle, invocations: &mut u64) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Atom(a) => a.pred.matches(row[a.attr.index()]),
            Expr::And(parts) => parts.iter().all(|p| p.eval(row, oracle, invocations)),
            Expr::Or(parts) => parts.iter().any(|p| p.eval(row, oracle, invocations)),
            Expr::Not(inner) => !inner.eval(row, oracle, invocations),
            Expr::Mining(mp) => match mp {
                MiningPred::ClassEq { model, class } => {
                    *invocations += 1;
                    oracle.predict_in(*model, row, std::slice::from_ref(class))
                }
                MiningPred::ClassIn { model, classes } => {
                    *invocations += 1;
                    oracle.predict_in(*model, row, classes)
                }
                MiningPred::ModelsAgree { m1, m2 } => {
                    *invocations += 2;
                    // Predicted *labels* must agree (class ids are
                    // per-model).
                    oracle.predict(*m1, row) == oracle.predict(*m2, row)
                }
                MiningPred::ClassEqColumn { model, column } => {
                    *invocations += 1;
                    match oracle.class_for_member(*model, *column, row[column.index()]) {
                        Some(c) => oracle.predict_in(*model, row, std::slice::from_ref(&c)),
                        // No class carries this member's label: the
                        // equality cannot hold, but the row is still
                        // scored (an empty accept set) so invocation
                        // side effects don't silently vanish.
                        None => oracle.predict_in(*model, row, &[]),
                    }
                }
            },
        }
    }

    /// True if any mining predicate occurs in the expression.
    pub fn has_mining(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Atom(_) => false,
            Expr::And(ps) | Expr::Or(ps) => ps.iter().any(Expr::has_mining),
            Expr::Not(p) => p.has_mining(),
            Expr::Mining(_) => true,
        }
    }

    /// Collects every mining predicate (for envelope lookup and plan
    /// invalidation tracking).
    pub fn mining_preds(&self) -> Vec<&MiningPred> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Mining(mp) = e {
                out.push(mp);
            }
        });
        out
    }

    /// Structural FNV-1a fingerprint, the key of the optimizer's
    /// selectivity feedback store. Two expressions share a fingerprint
    /// iff they are structurally identical (same shape, same columns,
    /// same constants, child order included) — callers fingerprint
    /// *normalized* clauses, so equivalent spellings of repeated
    /// queries collide on purpose while distinct predicates do not
    /// (modulo the hash). Stable across executions but not across
    /// catalog rebuilds of a different schema: ids, not names, are
    /// hashed.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        self.fnv(&mut h);
        h
    }

    fn fnv(&self, h: &mut u64) {
        fn mix(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        match self {
            Expr::Const(b) => {
                mix(h, 1);
                mix(h, u64::from(*b));
            }
            Expr::Atom(a) => {
                mix(h, 2);
                mix(h, u64::from(a.attr.0));
                match &a.pred {
                    AtomPred::Eq(m) => {
                        mix(h, 10);
                        mix(h, u64::from(*m));
                    }
                    AtomPred::Range { lo, hi } => {
                        mix(h, 11);
                        mix(h, u64::from(*lo));
                        mix(h, u64::from(*hi));
                    }
                    AtomPred::In(s) => {
                        mix(h, 12);
                        mix(h, u64::from(s.domain()));
                        for m in s.iter() {
                            mix(h, u64::from(m));
                        }
                    }
                }
            }
            Expr::And(ps) => {
                mix(h, 3);
                mix(h, ps.len() as u64);
                for p in ps {
                    p.fnv(h);
                }
            }
            Expr::Or(ps) => {
                mix(h, 4);
                mix(h, ps.len() as u64);
                for p in ps {
                    p.fnv(h);
                }
            }
            Expr::Not(p) => {
                mix(h, 5);
                p.fnv(h);
            }
            Expr::Mining(mp) => {
                mix(h, 6);
                match mp {
                    MiningPred::ClassEq { model, class } => {
                        mix(h, 20);
                        mix(h, *model as u64);
                        mix(h, u64::from(class.0));
                    }
                    MiningPred::ClassIn { model, classes } => {
                        mix(h, 21);
                        mix(h, *model as u64);
                        for c in classes {
                            mix(h, u64::from(c.0));
                        }
                    }
                    MiningPred::ModelsAgree { m1, m2 } => {
                        mix(h, 22);
                        mix(h, *m1 as u64);
                        mix(h, *m2 as u64);
                    }
                    MiningPred::ClassEqColumn { model, column } => {
                        mix(h, 23);
                        mix(h, *model as u64);
                        mix(h, u64::from(column.0));
                    }
                }
            }
        }
    }

    pub(crate) fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::And(ps) | Expr::Or(ps) => ps.iter().for_each(|p| p.walk(f)),
            Expr::Not(p) => p.walk(f),
            _ => {}
        }
    }

    /// Normalizes: flattens nested AND/OR, folds constants, pushes NOT
    /// down to atoms (complementing them in member space) and eliminates
    /// double negation. NOT over mining predicates is preserved (they are
    /// residual-evaluated).
    pub fn normalize(self, schema: &Schema) -> Expr {
        match self {
            Expr::Const(_) | Expr::Atom(_) | Expr::Mining(_) => self,
            Expr::And(parts) => {
                let mut out: Vec<Expr> = Vec::new();
                for p in parts {
                    match p.normalize(schema) {
                        Expr::Const(false) => return Expr::Const(false),
                        Expr::Const(true) => {}
                        Expr::And(inner) => {
                            for i in inner {
                                if !out.contains(&i) {
                                    out.push(i);
                                }
                            }
                        }
                        other => {
                            // Duplicate conjuncts arise from repeated
                            // envelope augmentation; keeping them once
                            // makes the §4.2 rewrite loop idempotent.
                            if !out.contains(&other) {
                                out.push(other);
                            }
                        }
                    }
                }
                // Expensive predicates last (predicate migration,
                // Hellerstein & Stonebraker — cited by the paper): under
                // short-circuit AND evaluation, cheap column predicates —
                // including derived envelopes — reject rows before any
                // model is invoked. Stable sort keeps relative order.
                out.sort_by_key(|e| usize::from(e.has_mining()));
                Expr::and(out)
            }
            Expr::Or(parts) => {
                let mut out: Vec<Expr> = Vec::new();
                for p in parts {
                    match p.normalize(schema) {
                        Expr::Const(true) => return Expr::Const(true),
                        Expr::Const(false) => {}
                        Expr::Or(inner) => {
                            for i in inner {
                                // Quadratic dedup is only worth it on
                                // small disjunctions; envelope ORs can
                                // carry thousands of (already distinct)
                                // disjuncts.
                                if out.len() > 128 || !out.contains(&i) {
                                    out.push(i);
                                }
                            }
                        }
                        other => {
                            if out.len() > 128 || !out.contains(&other) {
                                out.push(other);
                            }
                        }
                    }
                }
                Expr::or(out)
            }
            Expr::Not(inner) => match inner.normalize(schema) {
                Expr::Const(b) => Expr::Const(!b),
                Expr::Not(e) => *e,
                Expr::Atom(a) => complement_atom(schema, &a),
                Expr::And(ps) => {
                    Expr::or(ps.into_iter().map(|p| Expr::Not(Box::new(p)).normalize(schema)).collect())
                }
                Expr::Or(ps) => {
                    Expr::and(ps.into_iter().map(|p| Expr::Not(Box::new(p)).normalize(schema)).collect())
                }
                other @ Expr::Mining(_) => Expr::Not(Box::new(other)),
            },
        }
    }
}

/// The complement of an atom, in member space.
fn complement_atom(schema: &Schema, atom: &Atom) -> Expr {
    let card = schema.attr(atom.attr).domain.cardinality();
    match &atom.pred {
        AtomPred::Eq(m) => {
            let mut s = MemberSet::full(card);
            s.remove(*m);
            atom_or_const(atom.attr, s)
        }
        AtomPred::Range { lo, hi } => {
            let mut parts = Vec::new();
            if *lo > 0 {
                parts.push(Expr::Atom(Atom {
                    attr: atom.attr,
                    pred: AtomPred::Range { lo: 0, hi: lo - 1 },
                }));
            }
            if *hi + 1 < card {
                parts.push(Expr::Atom(Atom {
                    attr: atom.attr,
                    pred: AtomPred::Range { lo: hi + 1, hi: card - 1 },
                }));
            }
            Expr::or(parts)
        }
        AtomPred::In(s) => atom_or_const(atom.attr, s.complement()),
    }
}

fn atom_or_const(attr: AttrId, s: MemberSet) -> Expr {
    if s.is_empty() {
        Expr::Const(false)
    } else if s.is_full() {
        Expr::Const(true)
    } else if s.len() == 1 {
        // Canonical form: single members print and compare as equality,
        // which also makes double negation a syntactic identity.
        Expr::Atom(Atom { attr, pred: AtomPred::Eq(s.min().expect("nonempty")) })
    } else {
        Expr::Atom(Atom { attr, pred: AtomPred::In(s) })
    }
}

/// Converts an envelope region into a conjunction of atoms over the data
/// columns (the `u_f` of §4.2, in expression form).
pub fn region_to_expr(schema: &Schema, region: &mpq_core::Region) -> Expr {
    use mpq_core::DimSet;
    let mut conj = Vec::new();
    for (id, attr) in schema.iter() {
        let ds = region.dim(id.index());
        let card = attr.domain.cardinality();
        if ds.is_full(card) {
            continue;
        }
        let pred = match ds {
            DimSet::Range { lo, hi } => {
                if lo == hi {
                    AtomPred::Eq(*lo)
                } else {
                    AtomPred::Range { lo: *lo, hi: *hi }
                }
            }
            DimSet::Set(s) => {
                if s.len() == 1 {
                    AtomPred::Eq(s.min().expect("nonempty"))
                } else {
                    AtomPred::In(s.clone())
                }
            }
        };
        conj.push(Expr::Atom(Atom { attr: id, pred }));
    }
    Expr::and(conj)
}

/// Converts a whole envelope into a disjunction of region conjunctions.
pub fn envelope_to_expr(schema: &Schema, env: &mpq_core::Envelope) -> Expr {
    Expr::or(env.regions.iter().map(|r| region_to_expr(schema, r)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("a", AttrDomain::binned(vec![1.0, 2.0, 3.0]).unwrap()), // 4 members
            Attribute::new("b", AttrDomain::categorical(["x", "y", "z"])),
        ])
        .unwrap()
    }

    struct NoModels;
    impl ModelOracle for NoModels {
        fn predict(&self, _: ModelId, _: &Row) -> ClassId {
            unreachable!("no mining predicates in these tests")
        }
        fn class_for_member(&self, _: ModelId, _: AttrId, _: Member) -> Option<ClassId> {
            None
        }
    }

    fn eval(e: &Expr, row: &[Member]) -> bool {
        let mut inv = 0;
        e.eval(row, &NoModels, &mut inv)
    }

    #[test]
    fn atom_semantics() {
        assert!(AtomPred::Eq(2).matches(2) && !AtomPred::Eq(2).matches(1));
        assert!(AtomPred::Range { lo: 1, hi: 2 }.matches(2));
        assert!(!AtomPred::Range { lo: 1, hi: 2 }.matches(3));
        assert!(AtomPred::In(MemberSet::of(4, [0, 3])).matches(3));
    }

    #[test]
    fn member_set_agrees_with_matches() {
        let preds = [
            AtomPred::Eq(2),
            AtomPred::Eq(9), // out of domain
            AtomPred::Range { lo: 1, hi: 2 },
            AtomPred::Range { lo: 2, hi: 9 }, // clamped
            AtomPred::Range { lo: 5, hi: 9 }, // fully out of domain
            AtomPred::In(MemberSet::of(4, [0, 3])),
        ];
        for p in &preds {
            let s = p.member_set(4);
            for m in 0..4u16 {
                assert_eq!(s.contains(m), p.matches(m), "{p:?} member {m}");
            }
        }
    }

    #[test]
    fn and_or_evaluation() {
        let e = Expr::and(vec![
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Range { lo: 1, hi: 3 } }),
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(0) }),
        ]);
        assert!(eval(&e, &[2, 0]));
        assert!(!eval(&e, &[0, 0]));
        assert!(!eval(&e, &[2, 1]));
        let o = Expr::or(vec![e, Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(2) })]);
        assert!(eval(&o, &[0, 2]));
    }

    #[test]
    fn normalize_folds_constants_and_flattens() {
        let s = schema();
        let e = Expr::And(vec![
            Expr::Const(true),
            Expr::And(vec![
                Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) }),
                Expr::Const(true),
            ]),
        ]);
        let n = e.normalize(&s);
        assert_eq!(n, Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) }));
        let f = Expr::And(vec![Expr::Const(false), Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) })]);
        assert_eq!(f.normalize(&s), Expr::Const(false));
        let t = Expr::Or(vec![Expr::Const(true), Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) })]);
        assert_eq!(t.normalize(&s), Expr::Const(true));
    }

    #[test]
    fn normalize_pushes_not_to_atoms() {
        let s = schema();
        // NOT (a in [1..2]) -> a in [0..0] OR a in [3..3]
        let e = Expr::Not(Box::new(Expr::Atom(Atom {
            attr: AttrId(0),
            pred: AtomPred::Range { lo: 1, hi: 2 },
        })))
        .normalize(&s);
        for m in 0..4u16 {
            assert_eq!(eval(&e, &[m, 0]), !(1..=2).contains(&m), "member {m}");
        }
        // NOT (b = 'y') -> b IN {x, z}
        let e = Expr::Not(Box::new(Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(1) })))
            .normalize(&s);
        assert_eq!(
            e,
            Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::In(MemberSet::of(3, [0, 2])) })
        );
    }

    #[test]
    fn normalize_de_morgan() {
        let s = schema();
        let a = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) });
        let b = Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(1) });
        let e = Expr::Not(Box::new(Expr::And(vec![a, b]))).normalize(&s);
        // Result is an OR of complements; verify semantics row-wise.
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                assert_eq!(eval(&e, &[m0, m1]), !(m0 == 0 && m1 == 1));
            }
        }
    }

    #[test]
    fn double_negation_cancels() {
        let s = schema();
        let a = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(2) });
        let e = Expr::Not(Box::new(Expr::Not(Box::new(a.clone())))).normalize(&s);
        assert_eq!(e, a);
    }

    #[test]
    fn mining_detection_and_collection() {
        let mp = MiningPred::ClassEq { model: 0, class: ClassId(1) };
        let e = Expr::and(vec![
            Expr::Mining(mp.clone()),
            Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(0) }),
        ]);
        assert!(e.has_mining());
        assert_eq!(e.mining_preds(), vec![&mp]);
        assert!(!Expr::Const(true).has_mining());
        assert_eq!(MiningPred::ModelsAgree { m1: 3, m2: 5 }.models(), vec![3, 5]);
    }

    #[test]
    fn fingerprint_separates_structure_and_is_stable() {
        let a = Expr::Atom(Atom { attr: AttrId(0), pred: AtomPred::Eq(1) });
        let b = Expr::Atom(Atom { attr: AttrId(1), pred: AtomPred::Eq(1) });
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Child order is part of the structure (clauses are
        // fingerprinted post-normalization, which fixes the order).
        let ab = Expr::and(vec![a.clone(), b.clone()]);
        let ba = Expr::and(vec![b.clone(), a.clone()]);
        assert_ne!(ab.fingerprint(), ba.fingerprint());
        assert_ne!(ab.fingerprint(), Expr::or(vec![a.clone(), b]).fingerprint());
        let m = Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(1) });
        let m2 = Expr::Mining(MiningPred::ClassEq { model: 0, class: ClassId(2) });
        assert_ne!(m.fingerprint(), m2.fingerprint());
        assert_ne!(m.fingerprint(), Expr::Not(Box::new(m.clone())).fingerprint());
    }

    #[test]
    fn envelope_conversion_produces_matching_expr() {
        let s = schema();
        let region = mpq_core::Region::full(&s)
            .with_dim(0, mpq_core::DimSet::Range { lo: 1, hi: 2 })
            .with_dim(1, mpq_core::DimSet::Set(MemberSet::of(3, [0, 2])));
        let env = mpq_core::Envelope {
            class: ClassId(0),
            regions: vec![region.clone()],
            exact: true,
            stats: mpq_core::DeriveStats::default(),
            trace: Vec::new(),
        };
        let e = envelope_to_expr(&s, &env);
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                assert_eq!(eval(&e, &[m0, m1]), region.contains(&[m0, m1]));
            }
        }
        // Empty envelope -> FALSE.
        let never = mpq_core::Envelope::never(ClassId(0));
        assert_eq!(envelope_to_expr(&s, &never), Expr::Const(false));
    }
}
