//! `mpq-repl`: a line-oriented client for `mpq-serverd`.
//!
//! ```text
//! mpq-repl (--connect HOST:PORT | --port-file FILE)
//! ```
//!
//! Reads statements from stdin, one per line, and prints each outcome.
//! Lines starting with `.` are meta commands:
//!
//! * `.health`   — print the engine health report
//! * `.shutdown` — ask the server to drain and exit
//! * `.quit`     — close this session (EOF does the same)
//!
//! Everything else is sent as SQL. Suitable both interactively and
//! piped (`printf '...\n' | mpq-repl --port-file p`), which is how the
//! CI smoke test drives it.

use mpq_client::{Client, ClientError};
use mpq_engine::StatementOutcome;
use std::io::BufRead;
use std::process::ExitCode;

fn parse_addr() -> Result<String, String> {
    let mut addr: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => {
                addr = Some(it.next().ok_or("--connect requires HOST:PORT")?);
            }
            "--port-file" => {
                let path = it.next().ok_or("--port-file requires a path")?;
                let contents = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {path}: {e}"))?;
                addr = Some(contents.trim().to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    addr.ok_or_else(|| "need --connect HOST:PORT or --port-file FILE".to_string())
}

fn print_outcome(outcome: &StatementOutcome) {
    match outcome {
        StatementOutcome::Query(q) => {
            println!(
                "{} rows ({} examined, {} heap + {} index pages, {} model calls, {:?}){}",
                q.rows.len(),
                q.metrics.rows_examined,
                q.metrics.heap_pages_read,
                q.metrics.index_pages_read,
                q.metrics.model_invocations,
                q.metrics.elapsed,
                if q.cached_plan { " [cached plan]" } else { "" },
            );
            if q.rows.is_empty() && !q.plan.is_empty() && q.metrics.rows_examined == 0 {
                // EXPLAIN returns no rows and zero metrics: show the plan.
                println!("{}", q.plan);
            }
        }
        StatementOutcome::ModelCreated { name, n_classes, degraded, .. } => {
            match degraded {
                Some(reason) => println!(
                    "model {name} created ({n_classes} classes; DEGRADED: {reason})"
                ),
                None => println!("model {name} created ({n_classes} classes)"),
            }
        }
        StatementOutcome::Inserted { table, rows_inserted } => {
            println!("{rows_inserted} rows inserted into {table}");
        }
        StatementOutcome::ParallelismSet { dop } => {
            println!("session parallelism set to {dop}");
        }
        StatementOutcome::GuardSet { guard } => {
            println!("session guard set: {guard:?}");
        }
    }
}

fn run() -> Result<(), String> {
    let addr = parse_addr()?;
    let mut client =
        Client::connect_named(&addr, "mpq-repl").map_err(|e| format!("connect {addr}: {e}"))?;
    eprintln!("connected to {addr} (session {})", client.session_id());

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        match line {
            ".quit" => break,
            ".health" => match client.health() {
                Ok(h) => {
                    println!(
                        "health: {} tables, {} models, {} cached plans",
                        h.tables,
                        h.models.len(),
                        h.cached_plans
                    );
                    // Replication fields arrived with protocol v4; a v3
                    // server's report decodes with the defaults (role
                    // primary, epoch 0, no lag), so print the lag line
                    // only when the server actually measured one.
                    println!("  role: {}, epoch: {}", h.role, h.epoch);
                    if let (Some(records), Some(bytes)) =
                        (h.replica_lag_records, h.replica_lag_bytes)
                    {
                        println!("  replica lag: {records} records ({bytes} bytes)");
                    }
                    for m in &h.models {
                        println!(
                            "  model {} v{} ({}/{} exact envelopes){}",
                            m.name,
                            m.version,
                            m.exact_envelopes,
                            m.n_envelopes,
                            match &m.degraded {
                                Some(r) => format!(" DEGRADED: {r}"),
                                None => String::new(),
                            }
                        );
                    }
                    if let Some(rec) = &h.recovery {
                        println!(
                            "  recovery: clean_shutdown={} replayed={} dropped={}",
                            rec.clean_shutdown, rec.wal_records_replayed, rec.records_dropped
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            ".shutdown" => {
                match client.shutdown_server() {
                    Ok(()) => println!("server shutting down"),
                    Err(e) => println!("error: {e}"),
                }
                break;
            }
            sql => match client.statement(sql) {
                Ok(outcome) => print_outcome(&outcome),
                // Typed remote errors keep the session alive; anything
                // else (disconnect, torn frame) ends it.
                Err(ClientError::Remote(e)) => println!("error: {e}"),
                Err(e) => return Err(format!("connection failed: {e}")),
            },
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mpq-repl: error: {e}");
            ExitCode::FAILURE
        }
    }
}
