//! Discrete naive Bayes classifier (paper §3.2.1).
//!
//! The predicted class of an instance `x` is
//! `argmax_k ( log Pr(c_k) + Σ_d log Pr(x_d | c_k) )` (Eq. 2), with ties
//! resolved toward the class with the higher prior, as the paper
//! prescribes. All probabilities are stored in the log domain; envelope
//! derivation in `mpq-core` reads the same log tables through the public
//! accessors so the predictor and the derived bounds agree bit-for-bit.

use crate::Classifier;
use mpq_types::{ClassId, LabeledDataset, Row, Schema, TypesError};

/// A trained discrete naive Bayes model.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    schema: Schema,
    class_names: Vec<String>,
    /// `log_prior[k]` = log Pr(c_k).
    log_prior: Vec<f64>,
    /// `log_cond[d][m][k]` = log Pr(m_{md} | c_k); dimension-major then
    /// member-major so the per-dimension slices the derivation scans are
    /// contiguous.
    log_cond: Vec<Vec<Vec<f64>>>,
}

impl NaiveBayes {
    /// Trains a naive Bayes model with Laplace (add-one) smoothing.
    pub fn train(data: &LabeledDataset) -> Result<Self, TypesError> {
        let schema = data.data.schema().clone();
        let k = data.n_classes();
        if k == 0 || data.is_empty() {
            return Err(TypesError::ArityMismatch { expected: 1, got: 0 });
        }
        let counts = data.class_counts();
        let n = data.len() as f64;
        // Laplace-smoothed priors keep every log finite even for classes
        // absent from the training sample.
        let log_prior: Vec<f64> =
            counts.iter().map(|&c| ((c as f64 + 1.0) / (n + k as f64)).ln()).collect();

        let mut log_cond: Vec<Vec<Vec<f64>>> = schema
            .attrs()
            .iter()
            .map(|a| vec![vec![0.0f64; k]; a.domain.cardinality() as usize])
            .collect();
        // Raw joint counts first...
        for (row, label) in data.iter() {
            for (d, &m) in row.iter().enumerate() {
                log_cond[d][m as usize][label.index()] += 1.0;
            }
        }
        // ...then smooth and take logs per (dimension, class) column.
        for (d, attr) in schema.attrs().iter().enumerate() {
            let card = attr.domain.cardinality() as f64;
            for kk in 0..k {
                let denom = counts[kk] as f64 + card;
                for per_member in log_cond[d].iter_mut() {
                    let c = per_member[kk];
                    per_member[kk] = ((c + 1.0) / denom).ln();
                }
            }
        }
        Ok(NaiveBayes { schema, class_names: data.class_names.clone(), log_prior, log_cond })
    }

    /// Builds a model directly from probability tables — how the paper's
    /// Table 1 example and PMML imports are materialized.
    ///
    /// `priors[k]` = Pr(c_k); `cond[d][m][k]` = Pr(m | c_k). Probabilities
    /// must be positive (use smoothing upstream; zeros would produce
    /// `-inf` logs that poison the score sums).
    pub fn from_probabilities(
        schema: Schema,
        class_names: Vec<String>,
        priors: &[f64],
        cond: &[Vec<Vec<f64>>],
    ) -> Result<Self, TypesError> {
        let k = class_names.len();
        if priors.len() != k || cond.len() != schema.len() {
            return Err(TypesError::ArityMismatch { expected: k, got: priors.len() });
        }
        if priors.iter().any(|&p| p.is_nan() || p <= 0.0) {
            return Err(TypesError::BadCuts { detail: "priors must be positive".into() });
        }
        for (d, attr) in schema.attrs().iter().enumerate() {
            if cond[d].len() != attr.domain.cardinality() as usize {
                return Err(TypesError::ArityMismatch {
                    expected: attr.domain.cardinality() as usize,
                    got: cond[d].len(),
                });
            }
            for per_member in &cond[d] {
                if per_member.len() != k {
                    return Err(TypesError::ArityMismatch { expected: k, got: per_member.len() });
                }
                if per_member.iter().any(|&p| p.is_nan() || p <= 0.0) {
                    return Err(TypesError::BadCuts {
                        detail: "conditional probabilities must be positive".into(),
                    });
                }
            }
        }
        let log_prior = priors.iter().map(|p| p.ln()).collect();
        let log_cond = cond
            .iter()
            .map(|per_dim| per_dim.iter().map(|pm| pm.iter().map(|p| p.ln()).collect()).collect())
            .collect();
        Ok(NaiveBayes { schema, class_names, log_prior, log_cond })
    }

    /// Log prior of class `k`.
    pub fn log_prior(&self, k: ClassId) -> f64 {
        self.log_prior[k.index()]
    }

    /// Log conditional `log Pr(member m of dim d | class k)`.
    pub fn log_cond(&self, d: usize, m: u16, k: ClassId) -> f64 {
        self.log_cond[d][m as usize][k.index()]
    }

    /// The per-class log-score of `row` (Eq. 2); summed in fixed dimension
    /// order so derivation-side bounds are consistent under f64 rounding.
    pub fn log_score(&self, row: &Row, k: ClassId) -> f64 {
        let mut s = self.log_prior[k.index()];
        for (d, &m) in row.iter().enumerate() {
            s += self.log_cond[d][m as usize][k.index()];
        }
        s
    }

    /// The paper's tie-break: higher prior wins; equal priors fall back to
    /// the lower class id so prediction stays deterministic. Returns true
    /// if `a` beats `b` at equal scores.
    pub fn tie_break_beats(&self, a: ClassId, b: ClassId) -> bool {
        let (pa, pb) = (self.log_prior[a.index()], self.log_prior[b.index()]);
        pa > pb || (pa == pb && a.0 < b.0)
    }
}

impl Classifier for NaiveBayes {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    fn class_name(&self, c: ClassId) -> &str {
        &self.class_names[c.index()]
    }

    fn predict(&self, row: &Row) -> ClassId {
        debug_assert_eq!(row.len(), self.schema.len());
        let mut best = ClassId(0);
        let mut best_score = self.log_score(row, best);
        for k in 1..self.n_classes() {
            let c = ClassId(k as u16);
            let s = self.log_score(row, c);
            if s > best_score || (s == best_score && self.tie_break_beats(c, best)) {
                best = c;
                best_score = s;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpq_types::{AttrDomain, Attribute, Dataset};

    fn two_attr_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("d0", AttrDomain::categorical(["m0", "m1", "m2", "m3"])),
            Attribute::new("d1", AttrDomain::categorical(["m0", "m1", "m2"])),
        ])
        .unwrap()
    }

    /// The exact classifier of the paper's Table 1: K=3 classes, 2 dims,
    /// domain sizes 4 and 3.
    pub(crate) fn paper_table1() -> NaiveBayes {
        let schema = two_attr_schema();
        let priors = [0.33, 0.5, 0.17];
        // cond[d][m][k]: values transcribed from the row/column margins.
        let d0 = vec![
            vec![0.4, 0.1, 0.05],
            vec![0.4, 0.1, 0.05],
            vec![0.05, 0.4, 0.4],
            vec![0.05, 0.4, 0.4],
        ];
        // Note: Table 1 as printed shows m21's triplet as (.49, .1, .9),
        // but the internal cells (e.g. Pr(x|c2)·Pr(c2) = .002 at
        // (m20, m21)) and every bound in Figure 2 require Pr(m21|c2) =
        // .01 — the printed .1 is a typo in the paper.
        let d1 = vec![
            vec![0.01, 0.7, 0.05],
            vec![0.5, 0.29, 0.05],
            vec![0.49, 0.01, 0.9],
        ];
        NaiveBayes::from_probabilities(
            schema,
            vec!["c1".into(), "c2".into(), "c3".into()],
            &priors,
            &[d0, d1],
        )
        .unwrap()
    }

    #[test]
    fn reproduces_paper_table1_cell_predictions() {
        let nb = paper_table1();
        // Expected winners per (d0, d1) cell, straight from Table 1.
        let cases: [((u16, u16), u16); 12] = [
            ((0, 0), 1), ((1, 0), 1), ((2, 0), 1), ((3, 0), 1),
            ((0, 1), 0), ((1, 1), 0), ((2, 1), 1), ((3, 1), 1),
            ((0, 2), 0), ((1, 2), 0), ((2, 2), 2), ((3, 2), 2),
        ];
        for ((m0, m1), want) in cases {
            assert_eq!(
                nb.predict(&[m0, m1]),
                ClassId(want),
                "cell (m{m0}0, m{m1}1) should predict c{}",
                want + 1
            );
        }
    }

    #[test]
    fn table1_joint_probabilities_match_paper() {
        let nb = paper_table1();
        // Top-left cell: Pr(x|c1)*Pr(c1) = .33*.4*.01 ≈ .00132, paper
        // prints the triplet (.001, .03, .0005) rounded.
        let s1 = nb.log_score(&[0, 0], ClassId(0)).exp();
        let s2 = nb.log_score(&[0, 0], ClassId(1)).exp();
        let s3 = nb.log_score(&[0, 0], ClassId(2)).exp();
        assert!((s1 - 0.33 * 0.4 * 0.01).abs() < 1e-12);
        assert!((s2 - 0.5 * 0.1 * 0.7).abs() < 1e-12);
        assert!((s3 - 0.17 * 0.05 * 0.05).abs() < 1e-12);
    }

    #[test]
    fn training_learns_a_separable_concept() {
        // Class = value of attribute 0; attribute 1 is noise.
        let schema = two_attr_schema();
        let mut ds = Dataset::new(schema);
        let mut labels = Vec::new();
        for m0 in 0..4u16 {
            for m1 in 0..3u16 {
                for _ in 0..5 {
                    ds.push_encoded(&[m0, m1]).unwrap();
                    labels.push(ClassId(u16::from(m0 >= 2)));
                }
            }
        }
        let lds = LabeledDataset::new(ds, labels, vec!["lo".into(), "hi".into()]).unwrap();
        let nb = NaiveBayes::train(&lds).unwrap();
        assert_eq!(crate::accuracy(&nb, &lds), 1.0);
        assert_eq!(nb.predict(&[0, 2]), ClassId(0));
        assert_eq!(nb.predict(&[3, 0]), ClassId(1));
    }

    #[test]
    fn smoothing_keeps_unseen_members_finite() {
        let schema = two_attr_schema();
        let mut ds = Dataset::new(schema);
        // Member m3 of d0 and m2 of d1 never appear in training.
        ds.push_encoded(&[0, 0]).unwrap();
        ds.push_encoded(&[1, 1]).unwrap();
        let lds = LabeledDataset::new(ds, vec![ClassId(0), ClassId(1)], vec!["a".into(), "b".into()]).unwrap();
        let nb = NaiveBayes::train(&lds).unwrap();
        let s = nb.log_score(&[3, 2], ClassId(0));
        assert!(s.is_finite());
    }

    #[test]
    fn tie_break_prefers_higher_prior() {
        // Two classes with identical conditionals; class 1 has the higher
        // prior and must win everywhere.
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b"]))]).unwrap();
        let cond = vec![vec![vec![0.5, 0.5], vec![0.5, 0.5]]];
        let nb = NaiveBayes::from_probabilities(
            schema,
            vec!["c0".into(), "c1".into()],
            &[0.4, 0.6],
            &cond,
        )
        .unwrap();
        assert_eq!(nb.predict(&[0]), ClassId(1));
        assert!(nb.tie_break_beats(ClassId(1), ClassId(0)));
        assert!(!nb.tie_break_beats(ClassId(0), ClassId(1)));
    }

    #[test]
    fn tie_break_equal_priors_uses_class_id() {
        let schema = Schema::new(vec![Attribute::new("x", AttrDomain::categorical(["a", "b"]))]).unwrap();
        let cond = vec![vec![vec![0.5, 0.5], vec![0.5, 0.5]]];
        let nb = NaiveBayes::from_probabilities(
            schema,
            vec!["c0".into(), "c1".into()],
            &[0.5, 0.5],
            &cond,
        )
        .unwrap();
        assert_eq!(nb.predict(&[1]), ClassId(0));
    }

    #[test]
    fn from_probabilities_rejects_bad_shapes_and_zeros() {
        let schema = two_attr_schema();
        let names = vec!["a".into(), "b".into()];
        assert!(NaiveBayes::from_probabilities(schema.clone(), names.clone(), &[0.5], &[]).is_err());
        let d0 = vec![vec![0.5, 0.5]; 4];
        let d1_bad = vec![vec![0.5, 0.0]; 3]; // zero probability
        assert!(
            NaiveBayes::from_probabilities(schema, names, &[0.5, 0.5], &[d0, d1_bad]).is_err()
        );
    }

    #[test]
    fn class_by_name_is_case_insensitive() {
        let nb = paper_table1();
        assert_eq!(nb.class_by_name("C2"), Some(ClassId(1)));
        assert_eq!(nb.class_by_name("nope"), None);
    }
}
